// Verification of §4.5's analytic claims from measured operation counts:
//   * total comparisons = n + n log^2(n/4),
//   * the inverted cycles-per-blend estimate lands in the published 6-7
//     range,
//   * the per-comparator instruction gap vs the bitonic baseline (>= 53
//     instructions) explains the ~order-of-magnitude GPU-vs-GPU speedup.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/device.h"
#include "hwmodel/gpu_model.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/pbsn_gpu.h"
#include "sort/pbsn_network.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader("Analytic-model check (Sec. 4.5)",
                     "(n + n log^2(n/4)) comparisons; 6-7 cycles per blend; >= 53 "
                     "instructions per bitonic pixel");

  std::printf("%10s %16s %16s %14s %16s\n", "n", "gpu-comparisons", "n*log2^2(n/4)",
              "cycles/blend", "bitonic-instr/px");

  for (std::size_t n : {16384u, 65536u, 262144u, 1048576u}) {
    if (n > bench::Scaled(1 << 20)) break;
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 23});
    auto data = gen.Take(n);

    gpu::GpuDevice device;
    sort::PbsnOptions opt;
    opt.format = gpu::Format::kFloat16;
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, opt);
    pbsn.Sort(data);

    const auto log_m = static_cast<std::uint64_t>(sort::CeilLog2(n / 4));
    const std::uint64_t formula = n * log_m * log_m;

    // Invert the timing model the way the paper inverted its measurements:
    // observed device compute time * pipes * clock / fragments.
    const hwmodel::GpuModel model(hwmodel::kGeForce6800Ultra);
    const auto breakdown = model.Simulate(pbsn.last_stats());
    const double cycles_per_blend =
        breakdown.compute_s * hwmodel::kGeForce6800Ultra.fragment_pipes *
        hwmodel::kGeForce6800Ultra.core_clock_hz /
        static_cast<double>(pbsn.last_stats().blend_fragments);

    std::printf("%10zu %16llu %16llu %14.1f %16llu\n", n,
                static_cast<unsigned long long>(pbsn.last_stats().ScalarComparisons()),
                static_cast<unsigned long long>(formula), cycles_per_blend,
                static_cast<unsigned long long>(sort::BitonicGpuSorter::kInstructionsPerFragment));
  }
  std::printf("\n");
  return 0;
}
