// Ablations of the GPU PBSN sort's design choices (DESIGN.md):
//   * four-channel RGBA packing vs a single data channel (§4.1/§4.4),
//   * the row-block SortStep fast path of Fig. 2 vs per-row quads,
//   * 16-bit vs 32-bit offscreen buffers (§4.5).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

double RunVariant(const sort::PbsnOptions& opt, const std::vector<float>& data,
                  std::uint64_t* draws = nullptr) {
  gpu::GpuDevice device;
  sort::PbsnGpuSorter sorter(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, opt);
  std::vector<float> copy = data;
  sorter.Sort(copy);
  if (draws != nullptr) *draws = sorter.last_stats().draw_calls;
  return sorter.last_run().simulated_seconds * 1e3;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: GPU PBSN design choices",
                     "4-channel packing ~4x; fp16 buffers halve memory time; the "
                     "row-block fast path removes draw-call overhead");

  std::printf("%10s | %12s %12s %12s %15s | %14s\n", "n", "default(ms)", "1-chan(ms)",
              "fp32(ms)", "per-row-quads", "rowopt-draws");

  for (std::size_t n : {16384u, 65536u, 262144u, 1048576u}) {
    if (n > bench::Scaled(1 << 20)) break;
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 13});
    const auto data = gen.Take(n);

    sort::PbsnOptions base;
    base.format = gpu::Format::kFloat16;

    sort::PbsnOptions one_channel = base;
    one_channel.use_four_channels = false;

    sort::PbsnOptions fp32 = base;
    fp32.format = gpu::Format::kFloat32;

    sort::PbsnOptions no_rowopt = base;
    no_rowopt.use_row_block_optimization = false;

    std::uint64_t draws_fast = 0;
    std::uint64_t draws_slow = 0;
    const double t_base = RunVariant(base, data, &draws_fast);
    const double t_1ch = RunVariant(one_channel, data);
    const double t_fp32 = RunVariant(fp32, data);
    const double t_norow = RunVariant(no_rowopt, data, &draws_slow);

    std::printf("%10zu | %12.2f %12.2f %12.2f %12.2f(ms) | %6llu vs %llu\n", n, t_base,
                t_1ch, t_fp32, t_norow, static_cast<unsigned long long>(draws_fast),
                static_cast<unsigned long long>(draws_slow));
  }
  std::printf("\n");
  return 0;
}
