// Baseline comparison across the frequency and quantile algorithm families
// the paper's related work surveys (§2.1): deterministic window-based
// (Manku-Motwani lossy counting — the paper's choice), deterministic
// counter-based (Misra-Gries), probabilistic sampling (sticky sampling),
// hash-based (Count-Min), and for quantiles the window-based GK +
// exponential histogram vs the single-element adaptive GK01.
//
// Reports accuracy (max observed error), space, and host wall time on a
// common Zipf stream.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "sketch/count_min.h"
#include "sketch/exact.h"
#include "sketch/exponential_histogram.h"
#include "sketch/gk_adaptive.h"
#include "sketch/gk_summary.h"
#include "sketch/histogram.h"
#include "sketch/lossy_counting.h"
#include "sketch/misra_gries.h"
#include "sketch/sticky_sampling.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

struct FreqRow {
  const char* name;
  std::uint64_t max_error = 0;
  std::size_t space = 0;
  double wall_ms = 0;
  bool no_false_negatives = true;
};

}  // namespace

int main() {
  bench::PrintHeader("Baselines: frequency & quantile algorithm families (Sec. 2.1)",
                     "all meet their epsilon guarantees; space/time trade-offs differ");

  const std::size_t n = bench::Scaled(1 << 20);
  const double epsilon = 0.001;
  const double support = 0.01;

  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = 77,
                               .domain_size = 2000});
  const auto stream = gen.Take(n);
  const auto exact = sketch::ExactCounts(stream);
  const auto true_hitters = sketch::ExactHeavyHitters(stream, support);

  std::vector<FreqRow> rows;

  const auto check = [&](const char* name, auto estimate, std::size_t space,
                         double wall_ms, const auto& reported) {
    FreqRow row{name};
    row.space = space;
    row.wall_ms = wall_ms;
    for (const auto& [value, truth] : exact) {
      const std::uint64_t est = estimate(value);
      const std::uint64_t err = est > truth ? est - truth : truth - est;
      row.max_error = std::max(row.max_error, err);
    }
    for (const auto& [value, f] : true_hitters) {
      const bool found = std::any_of(reported.begin(), reported.end(),
                                     [v = value](const auto& r) { return r.first == v; });
      if (!found) row.no_false_negatives = false;
    }
    rows.push_back(row);
  };

  {
    Timer t;
    sketch::LossyCounting lc(epsilon);
    const std::uint64_t w = lc.window_width();
    for (std::size_t off = 0; off < stream.size(); off += w) {
      const std::size_t len = std::min<std::size_t>(w, stream.size() - off);
      std::vector<float> window(stream.begin() + off, stream.begin() + off + len);
      std::sort(window.begin(), window.end());
      lc.AddWindowHistogram(sketch::BuildHistogram(window), len);
    }
    const double ms = t.ElapsedMillis();
    check("lossy-counting", [&](float v) { return lc.EstimateCount(v); },
          lc.summary_size(), ms, lc.HeavyHitters(support));
  }
  {
    Timer t;
    sketch::MisraGries mg(epsilon);
    mg.ObserveBatch(stream);
    const double ms = t.ElapsedMillis();
    check("misra-gries", [&](float v) { return mg.EstimateCount(v); },
          mg.summary_size(), ms, mg.HeavyHitters(support));
  }
  {
    Timer t;
    sketch::StickySampling ss(epsilon, support, 0.01);
    ss.ObserveBatch(stream);
    const double ms = t.ElapsedMillis();
    check("sticky-sampling", [&](float v) { return ss.EstimateCount(v); },
          ss.summary_size(), ms, ss.HeavyHitters(support));
  }
  {
    Timer t;
    sketch::CountMinSketch cm(epsilon, 0.01);
    cm.ObserveBatch(stream);
    const double ms = t.ElapsedMillis();
    // Count-Min has no item list; report the exact hitters' presence via
    // estimates (it cannot miss since it never undercounts).
    std::vector<std::pair<float, std::uint64_t>> reported;
    for (const auto& [value, f] : true_hitters) {
      if (cm.EstimateCount(value) >=
          static_cast<std::int64_t>((support - epsilon) * static_cast<double>(n))) {
        reported.emplace_back(value, static_cast<std::uint64_t>(cm.EstimateCount(value)));
      }
    }
    check("count-min",
          [&](float v) { return static_cast<std::uint64_t>(cm.EstimateCount(v)); },
          cm.width() * cm.depth(), ms, reported);
  }

  std::printf("frequencies: N=%zu, epsilon=%g, support=%g (allowed error %.0f)\n", n,
              epsilon, support, epsilon * static_cast<double>(n));
  std::printf("%-16s %12s %12s %12s %18s\n", "algorithm", "max-error", "space",
              "wall(ms)", "all-hitters-found");
  for (const FreqRow& r : rows) {
    std::printf("%-16s %12llu %12zu %12.1f %18s\n", r.name,
                static_cast<unsigned long long>(r.max_error), r.space, r.wall_ms,
                r.no_false_negatives ? "yes" : "NO");
  }

  // --- Quantiles: window-based GK+EH (the paper's) vs adaptive GK01. ---
  std::printf("\nquantiles: max rank deviation over phi in {0.01..0.99}\n");
  std::printf("%-16s %12s %12s %12s\n", "algorithm", "max-rankdev", "space",
              "wall(ms)");

  std::vector<float> sorted(stream);
  std::sort(sorted.begin(), sorted.end());
  const auto rank_dev = [&](float q, double phi) {
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), q);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), q);
    const double target = std::ceil(phi * static_cast<double>(n));
    const double rank_lo = static_cast<double>(lo - sorted.begin()) + 1;
    const double rank_hi = static_cast<double>(hi - sorted.begin());
    if (target < rank_lo) return rank_lo - target;
    if (target > rank_hi) return target - rank_hi;
    return 0.0;
  };
  const double phis[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};

  {
    Timer t;
    const std::uint64_t w = static_cast<std::uint64_t>(1.0 / epsilon);
    sketch::EhQuantileSummary eh(epsilon, w, n);
    for (std::size_t off = 0; off < stream.size(); off += w) {
      const std::size_t len = std::min<std::size_t>(w, stream.size() - off);
      std::vector<float> window(stream.begin() + off, stream.begin() + off + len);
      std::sort(window.begin(), window.end());
      eh.AddWindowSummary(sketch::GkSummary::FromSorted(window, epsilon / 2.0));
    }
    double dev = 0;
    for (double phi : phis) dev = std::max(dev, rank_dev(eh.Query(phi), phi));
    std::printf("%-16s %12.0f %12zu %12.1f\n", "gk-window-eh", dev, eh.TotalTuples(),
                t.ElapsedMillis());
  }
  {
    Timer t;
    sketch::GkAdaptive gk(epsilon);
    gk.ObserveBatch(stream);
    double dev = 0;
    for (double phi : phis) dev = std::max(dev, rank_dev(gk.Quantile(phi), phi));
    std::printf("%-16s %12.0f %12zu %12.1f\n", "gk01-adaptive", dev, gk.summary_size(),
                t.ElapsedMillis());
  }
  std::printf("\nallowed rank deviation: %.0f\n\n", epsilon * static_cast<double>(n));
  return 0;
}
