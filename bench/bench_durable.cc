// Durability cost: checkpoint ingest overhead and restore time at scale.
//
// Two contracts from docs/DURABILITY.md:
//
//  * Checkpointing is cheap when amortized. Each commit serializes the full
//    estimator state and pays two fsyncs (snapshot + directory), so the
//    cost per element is cadence-bound. The bench ingests the same stream
//    plain and checkpointed at three cadences (~64 / ~8 / 1 commits per
//    run) and reports the within-run overhead ratio. The CI gate
//    (tools/check_bench_regression.py --durable) holds the coarse
//    production cadence to <= 5% overhead — a within-run ratio, so the
//    gate is machine-independent.
//
//  * Restore is fast at registry scale. A StreamService with up to 100k
//    checkpointed streams must come back in seconds: the bench checkpoints
//    populated services at three stream counts and times RestoreFrom().
//    Wall-clock seconds vary with the runner, so the gate on these rows is
//    loose (2x the blessed baseline).
//
// JSON out (STREAMGPU_BENCH_JSON): overhead ratios and snapshot bytes are
// within-run / deterministic and gated; raw ns/key and restore seconds are
// machine-dependent (restore seconds gated loosely).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/quantile_estimator.h"
#include "durable/checkpoint.h"
#include "service/stream_service.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

constexpr double kEpsilon = 0.001;  // window 1000
constexpr std::size_t kChunk = 8192;
constexpr int kReps = 3;  // paired best-of-N; min cancels machine drift

std::string ScratchDir(const char* leaf) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "streamgpu_bench_durable" / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// One full ingest of `stream`; returns wall seconds. With a non-empty
// `ckpt_dir` the estimator auto-checkpoints every `every_windows` windows.
double IngestOnce(const std::vector<float>& stream, const std::string& ckpt_dir,
                  std::uint64_t every_windows, std::uint64_t* commits,
                  std::uint64_t* snapshot_bytes) {
  core::Options opt;
  opt.epsilon = kEpsilon;
  opt.backend = core::Backend::kCpuRadixMerge;
  opt.checkpoint_dir = ckpt_dir;
  opt.checkpoint_every_windows = ckpt_dir.empty() ? 0 : every_windows;
  core::QuantileEstimator estimator(opt);
  Timer timer;
  for (std::size_t i = 0; i < stream.size(); i += kChunk) {
    const std::size_t take = std::min(kChunk, stream.size() - i);
    estimator.ObserveBatch(std::span<const float>(stream).subspan(i, take));
  }
  estimator.Flush();
  const double seconds = timer.ElapsedSeconds();
  if (commits != nullptr) *commits = estimator.checkpoints();
  if (snapshot_bytes != nullptr) {
    *snapshot_bytes = 0;
    const auto manifest = durable::ReadManifest(ckpt_dir);
    if (!manifest.empty()) *snapshot_bytes = manifest.back().snapshot_size;
  }
  return seconds;
}

struct IngestRow {
  const char* label;
  std::uint64_t every_windows = 0;
  std::uint64_t commits = 0;
  double plain_ns_per_key = 0;
  double ckpt_ns_per_key = 0;
  double overhead = 0;  // ckpt/plain wall-clock, within one paired run
  std::uint64_t snapshot_bytes = 0;
  bool gated = false;
};

struct RestoreRow {
  std::uint64_t streams = 0;
  double checkpoint_seconds = 0;
  std::uint64_t snapshot_bytes = 0;
  double restore_seconds = 0;
  double streams_per_sec = 0;
};

// Checkpoint a populated service at `streams` streams, then time RestoreFrom.
RestoreRow RunRestore(std::uint64_t streams) {
  constexpr std::size_t kPerStream = 160;  // one merged window + staged tail
  service::ServiceConfig config;
  config.backend = core::Backend::kCpuRadixMerge;
  config.num_workers = 4;

  service::StreamConfig stream_config;
  stream_config.epsilon = 0.01;  // window 100
  auto service = std::make_unique<service::StreamService>(config);
  std::vector<service::StreamKey> keys;
  keys.reserve(streams);
  for (std::uint64_t i = 0; i < streams; ++i) {
    keys.push_back({i % 257, i});
    service->Register(keys.back(), stream_config);
  }
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 29});
  std::vector<float> data(kPerStream);
  for (const service::StreamKey& key : keys) {
    gen.Fill(data);
    service->Append(key, data);
  }
  service->FlushAll();

  RestoreRow row;
  row.streams = streams;
  const std::string dir = ScratchDir("restore");
  durable::CheckpointWriter writer(dir);
  Timer ckpt_timer;
  if (const auto status = service->Checkpoint(&writer); !status.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", status.message().c_str());
    std::abort();
  }
  row.checkpoint_seconds = ckpt_timer.ElapsedSeconds();
  row.snapshot_bytes = writer.last_snapshot_bytes();
  service.reset();  // the "crash": only the snapshot survives

  Timer restore_timer;
  auto restored = service::StreamService::RestoreFrom(config, dir);
  row.restore_seconds = restore_timer.ElapsedSeconds();
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().message().c_str());
    std::abort();
  }
  if ((*restored)->stats().streams != streams) std::abort();
  row.streams_per_sec =
      static_cast<double>(streams) / row.restore_seconds;
  std::filesystem::remove_all(dir);
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Durability: checkpoint ingest overhead and restore time",
      "amortized checkpointing costs <= 5%; 100k-stream restore in seconds");

  const std::size_t n = bench::Scaled(32'000'000);
  const std::uint64_t windows =
      std::max<std::uint64_t>(1, n / static_cast<std::size_t>(1.0 / kEpsilon));
  std::printf("\nepsilon %g (window %d), %zu elements, %llu windows, "
              "best of %d paired runs\n\n",
              kEpsilon, static_cast<int>(1.0 / kEpsilon), n,
              static_cast<unsigned long long>(windows), kReps);

  std::vector<float> stream(n);
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 23});
  gen.Fill(stream);

  // Cadences targeting ~64 / ~8 / 1 commits per run regardless of scale.
  // Only the coarse row is gated: a production checkpoint cadence snapshots
  // a small multiple per run, not per handful of windows.
  std::vector<IngestRow> ingest_rows = {
      {"fine", std::max<std::uint64_t>(1, windows / 64)},
      {"medium", std::max<std::uint64_t>(1, windows / 8)},
      {"coarse", windows, 0, 0, 0, 0, 0, true},
  };
  std::printf("%8s | %14s | %12s | %12s | %8s | %12s | %8s\n", "cadence",
              "every windows", "plain ns/key", "ckpt ns/key", "overhead",
              "snapshot B", "commits");
  for (IngestRow& row : ingest_rows) {
    double plain_s = 1e300;
    double ckpt_s = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      plain_s = std::min(plain_s, IngestOnce(stream, "", 0, nullptr, nullptr));
      const std::string dir = ScratchDir(row.label);
      ckpt_s = std::min(ckpt_s, IngestOnce(stream, dir, row.every_windows,
                                           &row.commits, &row.snapshot_bytes));
      std::filesystem::remove_all(dir);
    }
    row.plain_ns_per_key = plain_s * 1e9 / static_cast<double>(n);
    row.ckpt_ns_per_key = ckpt_s * 1e9 / static_cast<double>(n);
    row.overhead = ckpt_s / plain_s;
    std::printf("%8s | %14llu | %12.1f | %12.1f | %7.3fx | %12llu | %8llu%s\n",
                row.label,
                static_cast<unsigned long long>(row.every_windows),
                row.plain_ns_per_key, row.ckpt_ns_per_key, row.overhead,
                static_cast<unsigned long long>(row.snapshot_bytes),
                static_cast<unsigned long long>(row.commits),
                row.gated ? "  <- gated" : "");
  }

  std::printf("\n%10s | %10s | %12s | %11s | %12s\n", "streams", "ckpt s",
              "snapshot B", "restore s", "streams/s");
  const std::vector<std::uint64_t> stream_counts = {
      bench::Scaled(1000), bench::Scaled(10'000), bench::Scaled(100'000)};
  std::vector<RestoreRow> restore_rows;
  for (std::uint64_t streams : stream_counts) {
    restore_rows.push_back(RunRestore(streams));
    const RestoreRow& row = restore_rows.back();
    std::printf("%10llu | %10.2f | %12llu | %11.2f | %12.3g\n",
                static_cast<unsigned long long>(row.streams),
                row.checkpoint_seconds,
                static_cast<unsigned long long>(row.snapshot_bytes),
                row.restore_seconds, row.streams_per_sec);
  }

  if (const char* path = bench::JsonOutPath(nullptr)) {
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      bench::JsonWriter json(f);
      json.Number("schema", std::uint64_t{1});
      json.BeginObject("durable");
      json.Number("n", static_cast<std::uint64_t>(n));
      json.Number("epsilon", kEpsilon);
      json.BeginArray("ingest");
      for (const IngestRow& row : ingest_rows) {
        json.BeginArrayObject();
        json.String("cadence", row.label);
        json.Number("every_windows", row.every_windows);
        json.Number("commits", row.commits);
        json.Number("plain_ns_per_key", row.plain_ns_per_key);
        json.Number("ckpt_ns_per_key", row.ckpt_ns_per_key);
        json.Number("overhead", row.overhead);
        json.Number("snapshot_bytes", row.snapshot_bytes);
        json.Number("gated", static_cast<std::uint64_t>(row.gated ? 1 : 0));
        json.End('}');
      }
      json.End(']');
      json.BeginArray("restore");
      for (const RestoreRow& row : restore_rows) {
        json.BeginArrayObject();
        json.Number("streams", row.streams);
        json.Number("checkpoint_seconds", row.checkpoint_seconds);
        json.Number("snapshot_bytes", row.snapshot_bytes);
        json.Number("restore_seconds", row.restore_seconds);
        json.Number("streams_per_sec", row.streams_per_sec);
        json.End('}');
      }
      json.End(']');
      json.End('}');
    }
    if (f != nullptr) std::fclose(f);
    std::printf("# json -> %s\n", path);
  }
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              "streamgpu_bench_durable");
  return 0;
}
