// Engine microbenchmarks: host-side throughput of the pass-execution engine.
//
// Unlike the figure benches, nothing here is simulated-2005 time — this is
// the wall-clock cost of the simulator itself, per element, for the shapes
// the PBSN sort actually issues (docs/COST_MODEL.md, "Host wall-clock vs.
// simulated time"):
//
//   copy_identity  — full-surface REPLACE quad (memcpy row kernel)
//   min_wide       — one row-block comparator, block = width (contiguous
//                    descending rows, the vectorized MIN kernel)
//   min_narrow     — block = 8 comparators tiling the surface (narrow
//                    columns; cache-line-transaction bound)
//   tall_mirrored  — tall-block comparator with mirrored v (per-row kernel
//                    dispatch path)
//   fb_copy        — CopyFramebufferToTexture in the ping-pong steady state
//                    (storage swap, should be near-free)
//   two_way_merge / kway8_merge — the CPU merge stage
//   radix_1m       — cache-blocked LSD radix passes on 1M ordered keys
//                    (the radix/merge backend's per-chunk kernel)
//   loser_merge8   — loser-tree merge of 8 sorted key runs (MergeKeyRuns)
//   sample_1m      — full sample-sort pass on 1M floats (classify + scatter
//                    + in-cache bucket radix)
//
// A large-memcpy calibration (ns/byte) is reported alongside, so the CI
// regression gate can compare machine-normalized ratios instead of raw
// nanoseconds (tools/check_bench_regression.py).
//
// Results go to stdout and, as JSON, to STREAMGPU_BENCH_JSON (default
// BENCH_engine.json). The committed repo-root BENCH_sort.json holds the
// blessed baseline of these numbers.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gpu/device.h"
#include "gpu/rasterizer.h"
#include "gpu/surface.h"
#include "gpu/vertex.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/merge.h"
#include "sort/radix_sort.h"
#include "sort/sample_sort.h"

namespace {

using namespace streamgpu;
using gpu::BlendOp;
using gpu::Quad;
using gpu::Surface;

constexpr int kDim = 512;  // the 1M-key sort's texture (4 x 256K channels)

// Median-of-samples wall time for `fn`, amortized over `reps` inner
// iterations, in nanoseconds per `elements`.
template <typename Fn>
double NsPerElement(int samples, int reps, double elements, Fn&& fn) {
  std::vector<double> times;
  times.reserve(samples);
  for (int s = 0; s < samples; ++s) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    times.push_back(t.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  const double median = times[times.size() / 2];
  return median * 1e9 / (static_cast<double>(reps) * elements);
}

void FillRandom(Surface* s, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 1000.0f);
  for (int c = 0; c < gpu::kNumChannels; ++c) {
    for (int y = 0; y < s->height(); ++y) {
      for (int x = 0; x < s->width(); ++x) s->Set(c, x, y, dist(rng));
    }
  }
}

struct Result {
  const char* name;
  double ns_per_element;
  double elements_per_pass;
};

}  // namespace

int main() {
  bench::PrintHeader("Engine microbenchmarks: host ns/element of the simulator",
                     "(not a paper figure; see docs/COST_MODEL.md)");

  // --- memcpy calibration: the machine's streaming-copy speed. ---
  const std::size_t cal_bytes = 16u << 20;
  std::vector<char> cal_src(cal_bytes, 1);
  std::vector<char> cal_dst(cal_bytes, 0);
  const double memcpy_ns_per_byte =
      NsPerElement(5, 8, static_cast<double>(cal_bytes),
                   [&] { std::memcpy(cal_dst.data(), cal_src.data(), cal_bytes); });

  std::vector<Result> results;

  // --- DrawQuad kernels on the 1M-key texture shape. ---
  Surface tex(kDim, kDim, gpu::Format::kFloat32);
  Surface fb(kDim, kDim, gpu::Format::kFloat32);
  FillRandom(&tex, 7);
  gpu::GpuStats stats;
  const float w = kDim;
  const float h = kDim;

  results.push_back({"copy_identity",
                     NsPerElement(5, 50, static_cast<double>(kDim) * kDim,
                                  [&] {
                                    gpu::Rasterizer::DrawQuad(
                                        tex, Quad::Identity(0, 0, w, h),
                                        BlendOp::kReplace, &fb, &stats);
                                  }),
                     static_cast<double>(kDim) * kDim});

  // Row-block comparator with block = width: the MIN half covers w/2 x h.
  const Quad min_wide = Quad::Make(0, 0, w / 2, h,  //
                                   w, 0, w / 2, 0,  //
                                   w / 2, h, w, h);
  results.push_back({"min_wide",
                     NsPerElement(5, 50, static_cast<double>(kDim) * kDim / 2,
                                  [&] {
                                    gpu::Rasterizer::DrawQuad(tex, min_wide,
                                                              BlendOp::kMin, &fb,
                                                              &stats);
                                  }),
                     static_cast<double>(kDim) * kDim / 2});

  // Row-block comparators with block = 8: w/8 quads of 4 columns each.
  std::vector<Quad> narrow;
  for (int j = 0; j < kDim / 8; ++j) {
    const float off = static_cast<float>(j) * 8;
    narrow.push_back(Quad::Make(off, 0, off + 4, h,    //
                                off + 8, 0, off + 4, 0,  //
                                off + 4, h, off + 8, h));
  }
  results.push_back({"min_narrow",
                     NsPerElement(5, 50, static_cast<double>(kDim) * kDim / 2,
                                  [&] {
                                    for (const Quad& q : narrow) {
                                      gpu::Rasterizer::DrawQuad(tex, q, BlendOp::kMin,
                                                                &fb, &stats);
                                    }
                                  }),
                     static_cast<double>(kDim) * kDim / 2});

  // Tall-block comparator, block spanning all rows: mirrored v, full-width
  // rows (the per-row dispatch path).
  const Quad tall = Quad::Make(0, 0, w, h / 2,  //
                               w, h, 0, h,      //
                               0, h / 2, w, h / 2);
  results.push_back({"tall_mirrored",
                     NsPerElement(5, 50, static_cast<double>(kDim) * kDim / 2,
                                  [&] {
                                    gpu::Rasterizer::DrawQuad(tex, tall, BlendOp::kMin,
                                                              &fb, &stats);
                                  }),
                     static_cast<double>(kDim) * kDim / 2});

  // --- Framebuffer-to-texture copy in the ping-pong steady state. ---
  {
    gpu::GpuDevice device;
    gpu::TextureHandle t = device.CreateTexture(kDim, kDim, gpu::Format::kFloat32);
    device.BindFramebuffer(kDim, kDim, gpu::Format::kFloat32);
    device.SetBlend(BlendOp::kReplace);
    device.DrawQuad(t, Quad::Identity(0, 0, w, h));
    results.push_back({"fb_copy",
                       NsPerElement(5, 200, static_cast<double>(kDim) * kDim,
                                    [&] {
                                      device.DrawQuad(t, Quad::Identity(0, 0, w, h));
                                      device.CopyFramebufferToTexture(t);
                                    }),
                       static_cast<double>(kDim) * kDim});
  }

  // --- CPU merge stage. ---
  {
    std::mt19937 rng(11);
    std::uniform_real_distribution<float> dist(0.0f, 1.0f);
    const std::size_t half = 512u << 10;
    std::vector<float> a(half), b(half), out(2 * half);
    for (float& v : a) v = dist(rng);
    for (float& v : b) v = dist(rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    results.push_back({"two_way_merge",
                       NsPerElement(5, 4, static_cast<double>(out.size()),
                                    [&] { sort::TwoWayMerge(a, b, out); }),
                       static_cast<double>(out.size())});

    std::vector<std::vector<float>> runs(8);
    std::size_t total = 0;
    for (auto& run : runs) {
      run.resize(128u << 10);
      for (float& v : run) v = dist(rng);
      std::sort(run.begin(), run.end());
      total += run.size();
    }
    std::vector<std::span<const float>> views(runs.begin(), runs.end());
    std::vector<float> kout(total);
    results.push_back({"kway8_merge",
                       NsPerElement(5, 4, static_cast<double>(total),
                                    [&] { sort::KWayMerge(views, kout); }),
                       static_cast<double>(total)});
  }

  // --- Second-generation sort kernels (radix passes, loser-tree merge,
  // sample sort end to end). ---
  {
    std::mt19937 rng(13);
    const std::size_t n = 1u << 20;
    std::vector<std::uint32_t> keys(n);
    std::vector<std::uint32_t> work(n);
    std::vector<std::uint32_t> scratch;
    for (auto& k : keys) k = rng();
    results.push_back({"radix_1m",
                       NsPerElement(5, 2, static_cast<double>(n),
                                    [&] {
                                      work = keys;
                                      sort::RadixSortKeys(work, &scratch);
                                    }),
                       static_cast<double>(n)});

    const std::size_t run_len = n / 8;
    std::vector<std::vector<std::uint32_t>> key_runs(8);
    for (auto& run : key_runs) {
      run.resize(run_len);
      for (auto& k : run) k = rng();
      std::sort(run.begin(), run.end());
    }
    std::vector<std::span<const std::uint32_t>> run_views(key_runs.begin(),
                                                          key_runs.end());
    std::vector<std::uint32_t> merged(n);
    results.push_back({"loser_merge8",
                       NsPerElement(5, 2, static_cast<double>(n),
                                    [&] { sort::MergeKeyRuns(run_views, merged); }),
                       static_cast<double>(n)});

    std::uniform_real_distribution<float> dist(-1000.0f, 1000.0f);
    std::vector<float> data(n);
    std::vector<float> sorted(n);
    for (float& v : data) v = dist(rng);
    sort::SampleSortSorter sample(hwmodel::kPentium4_3400);
    results.push_back({"sample_1m",
                       NsPerElement(5, 2, static_cast<double>(n),
                                    [&] {
                                      sorted = data;
                                      sample.Sort(sorted);
                                    }),
                       static_cast<double>(n)});
  }

  std::printf("%-16s %16s %18s\n", "kernel", "ns/element", "vs memcpy(ns/B)");
  std::printf("%-16s %16.3f %18s\n", "memcpy", memcpy_ns_per_byte, "1 B");
  for (const Result& r : results) {
    std::printf("%-16s %16.3f %18.2f\n", r.name, r.ns_per_element,
                r.ns_per_element / memcpy_ns_per_byte);
  }
  std::printf("\n");

  if (const char* path = bench::JsonOutPath("BENCH_engine.json")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      {
        // Scoped so the writer's closing brace lands before fclose.
        bench::JsonWriter j(f);
        j.Number("schema", std::uint64_t{1});
        j.BeginObject("engine");
        j.Number("memcpy_ns_per_byte", memcpy_ns_per_byte);
        j.BeginObject("kernels");
        for (const Result& r : results) {
          j.BeginObject(r.name);
          j.Number("ns_per_element", r.ns_per_element);
          j.Number("rel_memcpy", r.ns_per_element / memcpy_ns_per_byte);
          j.End('}');
        }
        j.End('}');
        j.End('}');
      }
      std::fclose(f);
      std::printf("JSON results written to %s\n", path);
    }
  }
  return 0;
}
