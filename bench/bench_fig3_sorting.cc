// Figure 3: sorting time vs input size — our GPU PBSN sort against the
// prior GPU bitonic sort [40] and CPU quicksort built with two compilers.
//
// Expected shape (§4.5): the GPU PBSN sort is comparable to the
// Intel-compiler quicksort, clearly faster than the MSVC qsort for
// reasonably large n, almost an order of magnitude faster than the GPU
// bitonic baseline, and ~3x slower than the CPU below n = 16K.
//
// Two time scales are reported per row (docs/COST_MODEL.md, "Host wall-clock
// vs. simulated time"): the simulated-2005 milliseconds the figures are
// built from, and the host wall-clock of the simulator itself (also as
// ns per sorted key, the engine's throughput metric). STREAMGPU_SORT_FORMAT
// = f16 (default, the paper's 16-bit buffers) | f32 selects the PBSN render
// format. Results are also written as JSON (see JsonOutPath) for the CI
// regression gate.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

double SortSimMs(sort::Sorter& sorter, const std::vector<float>& data,
                 double* wall_ms = nullptr) {
  std::vector<float> copy = data;
  Timer t;
  sorter.Sort(copy);
  if (wall_ms != nullptr) *wall_ms = t.ElapsedMillis();
  return sorter.last_run().simulated_seconds * 1e3;
}

struct Row {
  std::size_t n = 0;
  double pbsn_sim_ms = 0;
  double pbsn_wall_ms = 0;
  double pbsn_ns_per_key = 0;
  double bitonic_sim_ms = -1;
  double intel_sim_ms = 0;
  double msvc_sim_ms = 0;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: sorting performance, GPU PBSN vs GPU bitonic vs CPU quicksort",
      "GPU PBSN ~ Intel quicksort; beats MSVC qsort and is ~10x faster than "
      "GPU bitonic at large n; ~3x slower than CPU below 16K");

  const char* fmt_env = std::getenv("STREAMGPU_SORT_FORMAT");
  const bool use_f32 = fmt_env != nullptr && std::strcmp(fmt_env, "f32") == 0;
  const gpu::Format format = use_f32 ? gpu::Format::kFloat32 : gpu::Format::kFloat16;

  // The paper sweeps up to 8M elements; default scale covers 16K..1M.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 16384; n <= bench::Scaled(1 << 20); n *= 4) sizes.push_back(n);
  const std::size_t bitonic_cap = bench::Scaled(1 << 17);

  std::printf("%10s %14s %16s %16s %15s %14s %13s\n", "n", "gpu-pbsn(ms)",
              "gpu-bitonic(ms)", "cpu-intel(ms)", "cpu-msvc(ms)", "pbsn-wall(ms)",
              "wall(ns/key)");

  std::vector<Row> rows;
  for (std::size_t n : sizes) {
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 42});
    const auto data = gen.Take(n);

    gpu::GpuDevice device;
    sort::PbsnOptions pbsn_opt;
    pbsn_opt.format = format;  // f16 = the paper's 16-bit buffers
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, pbsn_opt);
    sort::BitonicGpuSorter bitonic(&device, hwmodel::kGeForce6800Ultra, format);
    sort::QuicksortSorter intel(hwmodel::kPentium4_3400);
    sort::QuicksortSorter msvc(hwmodel::kPentium4_3400Msvc);

    Row row;
    row.n = n;
    row.pbsn_sim_ms = SortSimMs(pbsn, data, &row.pbsn_wall_ms);
    row.pbsn_ns_per_key = row.pbsn_wall_ms * 1e6 / static_cast<double>(n);
    row.bitonic_sim_ms = n <= bitonic_cap ? SortSimMs(bitonic, data) : -1.0;
    row.intel_sim_ms = SortSimMs(intel, data);
    row.msvc_sim_ms = SortSimMs(msvc, data);
    rows.push_back(row);

    if (row.bitonic_sim_ms >= 0) {
      std::printf("%10zu %14.2f %16.2f %16.2f %15.2f %14.1f %13.1f\n", n,
                  row.pbsn_sim_ms, row.bitonic_sim_ms, row.intel_sim_ms,
                  row.msvc_sim_ms, row.pbsn_wall_ms, row.pbsn_ns_per_key);
    } else {
      std::printf("%10zu %14.2f %16s %16.2f %15.2f %14.1f %13.1f\n", n,
                  row.pbsn_sim_ms, "(skipped)", row.intel_sim_ms, row.msvc_sim_ms,
                  row.pbsn_wall_ms, row.pbsn_ns_per_key);
    }
  }
  std::printf("\nNote: gpu timings include CPU<->GPU transfer, as in the paper. "
              "Set STREAMGPU_SCALE=8 for the paper's full 8M sweep.\n\n");

  if (const char* path = bench::JsonOutPath("BENCH_fig3.json")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      {
        // Scoped so the writer's closing brace lands before fclose.
        bench::JsonWriter j(f);
        j.Number("schema", std::uint64_t{1});
        j.BeginObject("fig3_sorting");
        j.String("format", use_f32 ? "f32" : "f16");
        j.BeginArray("rows");
        for (const Row& r : rows) {
          j.BeginArrayObject();
          j.Number("n", static_cast<std::uint64_t>(r.n));
          j.Number("pbsn_sim_ms", r.pbsn_sim_ms);
          j.Number("pbsn_wall_ms", r.pbsn_wall_ms);
          j.Number("pbsn_ns_per_key", r.pbsn_ns_per_key);
          if (r.bitonic_sim_ms >= 0) j.Number("bitonic_sim_ms", r.bitonic_sim_ms);
          j.Number("intel_sim_ms", r.intel_sim_ms);
          j.Number("msvc_sim_ms", r.msvc_sim_ms);
          j.End('}');
        }
        j.End(']');
        j.End('}');
      }
      std::fclose(f);
      std::printf("JSON results written to %s\n", path);
    }
  }
  return 0;
}
