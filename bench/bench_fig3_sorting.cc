// Figure 3: sorting time vs input size — our GPU PBSN sort against the
// prior GPU bitonic sort [40] and CPU quicksort built with two compilers.
//
// Expected shape (§4.5): the GPU PBSN sort is comparable to the
// Intel-compiler quicksort, clearly faster than the MSVC qsort for
// reasonably large n, almost an order of magnitude faster than the GPU
// bitonic baseline, and ~3x slower than the CPU below n = 16K.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

double SortSimMs(sort::Sorter& sorter, const std::vector<float>& data,
                 double* wall_ms = nullptr) {
  std::vector<float> copy = data;
  Timer t;
  sorter.Sort(copy);
  if (wall_ms != nullptr) *wall_ms = t.ElapsedMillis();
  return sorter.last_run().simulated_seconds * 1e3;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: sorting performance, GPU PBSN vs GPU bitonic vs CPU quicksort",
      "GPU PBSN ~ Intel quicksort; beats MSVC qsort and is ~10x faster than "
      "GPU bitonic at large n; ~3x slower than CPU below 16K");

  // The paper sweeps up to 8M elements; default scale covers 16K..1M.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 16384; n <= bench::Scaled(1 << 20); n *= 4) sizes.push_back(n);
  const std::size_t bitonic_cap = bench::Scaled(1 << 17);

  std::printf("%10s %14s %16s %16s %15s %14s\n", "n", "gpu-pbsn(ms)", "gpu-bitonic(ms)",
              "cpu-intel(ms)", "cpu-msvc(ms)", "pbsn-wall(ms)");

  for (std::size_t n : sizes) {
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 42});
    const auto data = gen.Take(n);

    gpu::GpuDevice device;
    sort::PbsnOptions pbsn_opt;
    pbsn_opt.format = gpu::Format::kFloat16;  // the paper's 16-bit buffers
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, pbsn_opt);
    sort::BitonicGpuSorter bitonic(&device, hwmodel::kGeForce6800Ultra,
                                   gpu::Format::kFloat16);
    sort::QuicksortSorter intel(hwmodel::kPentium4_3400);
    sort::QuicksortSorter msvc(hwmodel::kPentium4_3400Msvc);

    double pbsn_wall = 0;
    const double pbsn_ms = SortSimMs(pbsn, data, &pbsn_wall);
    const double bitonic_ms = n <= bitonic_cap ? SortSimMs(bitonic, data) : -1.0;
    const double intel_ms = SortSimMs(intel, data);
    const double msvc_ms = SortSimMs(msvc, data);

    if (bitonic_ms >= 0) {
      std::printf("%10zu %14.2f %16.2f %16.2f %15.2f %14.1f\n", n, pbsn_ms, bitonic_ms,
                  intel_ms, msvc_ms, pbsn_wall);
    } else {
      std::printf("%10zu %14.2f %16s %16.2f %15.2f %14.1f\n", n, pbsn_ms, "(skipped)",
                  intel_ms, msvc_ms, pbsn_wall);
    }
  }
  std::printf("\nNote: gpu timings include CPU<->GPU transfer, as in the paper. "
              "Set STREAMGPU_SCALE=8 for the paper's full 8M sweep.\n\n");
  return 0;
}
