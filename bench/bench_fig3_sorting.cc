// Figure 3: sorting time vs input size — our GPU PBSN sort against the
// prior GPU bitonic sort [40] and CPU quicksort built with two compilers.
//
// Expected shape (§4.5): the GPU PBSN sort is comparable to the
// Intel-compiler quicksort, clearly faster than the MSVC qsort for
// reasonably large n, almost an order of magnitude faster than the GPU
// bitonic baseline, and ~3x slower than the CPU below n = 16K.
//
// Two time scales are reported per row (docs/COST_MODEL.md, "Host wall-clock
// vs. simulated time"): the simulated-2005 milliseconds the figures are
// built from, and the host wall-clock of the simulator itself (also as
// ns per sorted key, the engine's throughput metric). STREAMGPU_SORT_FORMAT
// = f16 (default, the paper's 16-bit buffers) | f32 selects the PBSN render
// format. Results are also written as JSON (see JsonOutPath) for the CI
// regression gate.
//
// Like bench_engine, a large-memcpy calibration (ns/byte) is measured first
// and each row's ns/key is also reported as a machine-normalized ratio
// (rel_memcpy). tools/check_bench_regression.py --fig3-overhead gates that
// ratio against BENCH_sort.json: the estimator hot path carries the
// observability hooks (src/obs/), and this is the bench that proves the
// disabled-by-default guard stays under the 2% overhead budget.
//
// A second table sweeps the second-generation host backends (sample sort,
// radix/merge) and the cost-model "auto" planner against PBSN on host
// wall-clock; each row's per-backend numbers land in the JSON under
// "backends" and tools/check_bench_regression.py --fig3-backends gates the
// planner's >2x ns/key win over PBSN at n >= 1M (docs/SORT_BACKENDS.md).
//
// A third table re-runs PBSN with observability fully ENABLED (labeled
// metrics + latency summaries via core::TracingSorter, plus an armed
// FlightRecorder) and reports the paired overhead. Those numbers land at row
// level as obs_ns_per_key / obs_rel_memcpy — deliberately NOT inside
// "backends" (the backend gate's name set is closed) — and
// tools/check_bench_regression.py --fig3-obs-overhead gates the within-run
// geomean obs_rel_memcpy / rel_memcpy under the same < 2% budget.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/instrumentation.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "hwmodel/sort_planner.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "sort/planned.h"
#include "sort/radix_sort.h"
#include "sort/sample_sort.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

double SortSimMs(sort::Sorter& sorter, const std::vector<float>& data,
                 double* wall_ms = nullptr) {
  std::vector<float> copy = data;
  Timer t;
  sorter.Sort(copy);
  if (wall_ms != nullptr) *wall_ms = t.ElapsedMillis();
  return sorter.last_run().simulated_seconds * 1e3;
}

// The machine's streaming-copy speed (median of samples), same calibration
// bench_engine uses: ns/key divided by this is stable across CI runners.
double MemcpyNsPerByte() {
  const std::size_t bytes = 16u << 20;
  std::vector<char> src(bytes, 1);
  std::vector<char> dst(bytes, 0);
  std::vector<double> times;
  for (int s = 0; s < 5; ++s) {
    Timer t;
    for (int r = 0; r < 8; ++r) std::memcpy(dst.data(), src.data(), bytes);
    times.push_back(t.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2] * 1e9 / (8.0 * static_cast<double>(bytes));
}

/// One backend's numbers at one size, both clocks plus the normalized ratio.
struct BackendSample {
  double sim_ms = 0;
  double wall_ms = 0;
  double ns_per_key = 0;
  double rel_memcpy = 0;  // ns/key over the machine's memcpy ns/byte
};

BackendSample Measure(sort::Sorter& sorter, const std::vector<float>& data,
                      double memcpy_ns_per_byte) {
  BackendSample b;
  b.sim_ms = SortSimMs(sorter, data, &b.wall_ms);
  b.ns_per_key = b.wall_ms * 1e6 / static_cast<double>(data.size());
  b.rel_memcpy = b.ns_per_key / memcpy_ns_per_byte;
  return b;
}

// Best-of-N wall clock: the paired obs-overhead gate divides two wall
// measurements of the same sort, so single-run jitter would dominate the
// < 2% budget it checks. Minimum-of-repeats is the standard stabilizer.
BackendSample MeasureBest(sort::Sorter& sorter, const std::vector<float>& data,
                          double memcpy_ns_per_byte, int reps = 5) {
  BackendSample best = Measure(sorter, data, memcpy_ns_per_byte);
  for (int r = 1; r < reps; ++r) {
    const BackendSample s = Measure(sorter, data, memcpy_ns_per_byte);
    if (s.wall_ms < best.wall_ms) best = s;
  }
  return best;
}

struct Row {
  std::size_t n = 0;
  double pbsn_sim_ms = 0;
  double pbsn_wall_ms = 0;
  double pbsn_ns_per_key = 0;
  double rel_memcpy = 0;  // ns/key over the machine's memcpy ns/byte
  double bitonic_sim_ms = -1;
  double intel_sim_ms = 0;
  double msvc_sim_ms = 0;
  // Second-generation host backends and the planner (host wall-clock focus).
  BackendSample sample;
  BackendSample radix;
  BackendSample autos;
  const char* auto_chosen = "?";
  // PBSN with observability enabled (TracingSorter + armed FlightRecorder).
  double obs_ns_per_key = 0;
  double obs_rel_memcpy = 0;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3: sorting performance, GPU PBSN vs GPU bitonic vs CPU quicksort",
      "GPU PBSN ~ Intel quicksort; beats MSVC qsort and is ~10x faster than "
      "GPU bitonic at large n; ~3x slower than CPU below 16K");

  const char* fmt_env = std::getenv("STREAMGPU_SORT_FORMAT");
  const bool use_f32 = fmt_env != nullptr && std::strcmp(fmt_env, "f32") == 0;
  const gpu::Format format = use_f32 ? gpu::Format::kFloat32 : gpu::Format::kFloat16;

  // The paper sweeps up to 8M elements; default scale covers 16K..1M.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 16384; n <= bench::Scaled(1 << 20); n *= 4) sizes.push_back(n);
  const std::size_t bitonic_cap = bench::Scaled(1 << 17);

  const double memcpy_ns_per_byte = MemcpyNsPerByte();
  std::printf("memcpy calibration: %.4f ns/byte (rel column = ns/key over this)\n\n",
              memcpy_ns_per_byte);

  std::printf("%10s %14s %16s %16s %15s %14s %13s %8s\n", "n", "gpu-pbsn(ms)",
              "gpu-bitonic(ms)", "cpu-intel(ms)", "cpu-msvc(ms)", "pbsn-wall(ms)",
              "wall(ns/key)", "rel");

  std::vector<Row> rows;
  for (std::size_t n : sizes) {
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 42});
    const auto data = gen.Take(n);

    gpu::GpuDevice device;
    sort::PbsnOptions pbsn_opt;
    pbsn_opt.format = format;  // f16 = the paper's 16-bit buffers
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, pbsn_opt);
    sort::BitonicGpuSorter bitonic(&device, hwmodel::kGeForce6800Ultra, format);
    sort::QuicksortSorter intel(hwmodel::kPentium4_3400);
    sort::QuicksortSorter msvc(hwmodel::kPentium4_3400Msvc);
    sort::SampleSortSorter sample(hwmodel::kPentium4_3400);
    sort::RadixMergeSorter radix(hwmodel::kPentium4_3400);
    // The planner, pinned to this run's calibration so the JSON records a
    // reproducible decision; same candidate pool as core::Backend::kAuto.
    hwmodel::SortPlannerConfig plan_config;
    plan_config.memcpy_ns_per_byte = memcpy_ns_per_byte;
    hwmodel::SortPlanner planner(
        plan_config, hwmodel::PlanObjective::kHostWall,
        {hwmodel::SortBackend::kGpuPbsn, hwmodel::SortBackend::kSampleSort,
         hwmodel::SortBackend::kCpuRadixMerge,
         hwmodel::SortBackend::kCpuQuicksort});
    sort::PlannedSorter autos(&planner,
                              {{hwmodel::SortBackend::kGpuPbsn, &pbsn},
                               {hwmodel::SortBackend::kSampleSort, &sample},
                               {hwmodel::SortBackend::kCpuRadixMerge, &radix},
                               {hwmodel::SortBackend::kCpuQuicksort, &intel}},
                              obs::Observability{}, "bench.");

    Row row;
    row.n = n;
    // Best-of-3: the obs-overhead gate below divides two wall measurements
    // of this same sort, so both sides use the jitter-stabilized minimum.
    const BackendSample pbsn_best = MeasureBest(pbsn, data, memcpy_ns_per_byte);
    row.pbsn_sim_ms = pbsn_best.sim_ms;
    row.pbsn_wall_ms = pbsn_best.wall_ms;
    row.pbsn_ns_per_key = pbsn_best.ns_per_key;
    row.rel_memcpy = pbsn_best.rel_memcpy;
    row.bitonic_sim_ms = n <= bitonic_cap ? SortSimMs(bitonic, data) : -1.0;
    row.intel_sim_ms = SortSimMs(intel, data);
    row.msvc_sim_ms = SortSimMs(msvc, data);
    row.sample = Measure(sample, data, memcpy_ns_per_byte);
    row.radix = Measure(radix, data, memcpy_ns_per_byte);
    row.autos = Measure(autos, data, memcpy_ns_per_byte);
    row.auto_chosen = hwmodel::SortBackendName(autos.last_choice());

    // The same PBSN sort with telemetry fully enabled: labeled counters, the
    // GK latency summary, and an armed flight recorder all on the hot path.
    obs::MetricsRegistry obs_metrics;
    obs::FlightRecorder obs_flight;
    core::TracingSorter traced(
        &pbsn, &device, obs::Observability{&obs_metrics, nullptr, &obs_flight},
        "bench");
    const BackendSample obs_best = MeasureBest(traced, data, memcpy_ns_per_byte);
    row.obs_ns_per_key = obs_best.ns_per_key;
    row.obs_rel_memcpy = obs_best.rel_memcpy;
    rows.push_back(row);

    if (row.bitonic_sim_ms >= 0) {
      std::printf("%10zu %14.2f %16.2f %16.2f %15.2f %14.1f %13.1f %8.1f\n", n,
                  row.pbsn_sim_ms, row.bitonic_sim_ms, row.intel_sim_ms,
                  row.msvc_sim_ms, row.pbsn_wall_ms, row.pbsn_ns_per_key,
                  row.rel_memcpy);
    } else {
      std::printf("%10zu %14.2f %16s %16.2f %15.2f %14.1f %13.1f %8.1f\n", n,
                  row.pbsn_sim_ms, "(skipped)", row.intel_sim_ms, row.msvc_sim_ms,
                  row.pbsn_wall_ms, row.pbsn_ns_per_key, row.rel_memcpy);
    }
  }
  std::printf("\nNote: gpu timings include CPU<->GPU transfer, as in the paper. "
              "Set STREAMGPU_SCALE=8 for the paper's full 8M sweep.\n\n");

  std::printf("Second-generation host backends, host wall ns/key "
              "(auto = cost-model planner):\n");
  std::printf("%10s %12s %12s %12s %12s %12s %10s\n", "n", "pbsn", "sample",
              "radix", "auto", "auto-pick", "vs-pbsn");
  for (const Row& r : rows) {
    std::printf("%10zu %12.1f %12.1f %12.1f %12.1f %12s %9.1fx\n", r.n,
                r.pbsn_ns_per_key, r.sample.ns_per_key, r.radix.ns_per_key,
                r.autos.ns_per_key, r.auto_chosen,
                r.autos.ns_per_key > 0 ? r.pbsn_ns_per_key / r.autos.ns_per_key
                                       : 0.0);
  }
  std::printf("\n");

  std::printf("Observability-enabled PBSN (labeled metrics + GK latency summary "
              "+ flight recorder), host wall ns/key:\n");
  std::printf("%10s %14s %14s %10s\n", "n", "plain", "obs-enabled", "overhead");
  for (const Row& r : rows) {
    std::printf("%10zu %14.1f %14.1f %9.3fx\n", r.n, r.pbsn_ns_per_key,
                r.obs_ns_per_key,
                r.pbsn_ns_per_key > 0 ? r.obs_ns_per_key / r.pbsn_ns_per_key
                                      : 0.0);
  }
  std::printf("\n");

  if (const char* path = bench::JsonOutPath("BENCH_fig3.json")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      {
        // Scoped so the writer's closing brace lands before fclose.
        bench::JsonWriter j(f);
        j.Number("schema", std::uint64_t{1});
        j.BeginObject("fig3_sorting");
        j.String("format", use_f32 ? "f32" : "f16");
        j.Number("memcpy_ns_per_byte", memcpy_ns_per_byte);
        j.BeginArray("rows");
        for (const Row& r : rows) {
          j.BeginArrayObject();
          j.Number("n", static_cast<std::uint64_t>(r.n));
          j.Number("pbsn_sim_ms", r.pbsn_sim_ms);
          j.Number("pbsn_wall_ms", r.pbsn_wall_ms);
          j.Number("pbsn_ns_per_key", r.pbsn_ns_per_key);
          j.Number("rel_memcpy", r.rel_memcpy);
          if (r.bitonic_sim_ms >= 0) j.Number("bitonic_sim_ms", r.bitonic_sim_ms);
          j.Number("intel_sim_ms", r.intel_sim_ms);
          j.Number("msvc_sim_ms", r.msvc_sim_ms);
          // Enabled-observability PBSN numbers live at row level, NOT under
          // "backends": the --fig3-backends gate's name set is closed, and
          // these are the same backend re-measured, not a new one.
          j.Number("obs_ns_per_key", r.obs_ns_per_key);
          j.Number("obs_rel_memcpy", r.obs_rel_memcpy);
          // Per-backend host numbers; --fig3-backends gates these rows.
          j.BeginObject("backends");
          const struct {
            const char* name;
            const BackendSample* b;
          } backends[] = {{"pbsn", nullptr},
                          {"sample", &r.sample},
                          {"cpu-radix", &r.radix},
                          {"auto", &r.autos}};
          for (const auto& [name, b] : backends) {
            j.BeginObject(name);
            if (b == nullptr) {
              j.Number("sim_ms", r.pbsn_sim_ms);
              j.Number("wall_ms", r.pbsn_wall_ms);
              j.Number("ns_per_key", r.pbsn_ns_per_key);
              j.Number("rel_memcpy", r.rel_memcpy);
            } else {
              j.Number("sim_ms", b->sim_ms);
              j.Number("wall_ms", b->wall_ms);
              j.Number("ns_per_key", b->ns_per_key);
              j.Number("rel_memcpy", b->rel_memcpy);
            }
            if (b == &r.autos) j.String("chosen", r.auto_chosen);
            j.End('}');
          }
          j.End('}');
          j.End('}');
        }
        j.End(']');
        j.End('}');
      }
      std::fclose(f);
      std::printf("JSON results written to %s\n", path);
    }
  }
  return 0;
}
