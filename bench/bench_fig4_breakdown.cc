// Figure 4: breakdown of the GPU PBSN sort into on-device sorting time and
// CPU<->GPU data-transfer time, plus the O(n log^2 n) extrapolation check.
//
// Expected shape: "the data transfer times are not significant in comparison
// to the time spent in performing comparisons and sorting", and timings
// estimated from the largest size with the n log^2(n) model match the
// observed timings within a few milliseconds.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "sort/pbsn_network.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Figure 4: GPU sort time breakdown (compute vs transfer) and O(n log^2 n) fit",
      "transfer time is a small, flat fraction; times follow n log^2(n/4) scaling");

  std::vector<std::size_t> sizes;
  for (std::size_t n = 16384; n <= bench::Scaled(1 << 20); n *= 2) sizes.push_back(n);

  struct Row {
    std::size_t n;
    double sort_ms;
    double transfer_ms;
    double total_ms;
  };
  std::vector<Row> rows;

  for (std::size_t n : sizes) {
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 7});
    auto data = gen.Take(n);
    gpu::GpuDevice device;
    sort::PbsnOptions opt;
    opt.format = gpu::Format::kFloat16;
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, opt);
    pbsn.Sort(data);
    const auto& run = pbsn.last_run();
    rows.push_back({n, run.sim_device_seconds * 1e3, run.sim_transfer_seconds * 1e3,
                    run.simulated_seconds * 1e3});
  }

  // The paper uses its largest input as the reference and estimates the rest
  // with the n log^2(n/4) comparison model.
  const Row& ref = rows.back();
  const double ref_work = static_cast<double>(ref.n) *
                          std::pow(std::log2(static_cast<double>(ref.n) / 4.0), 2.0);

  std::printf("%10s %13s %15s %13s %18s %10s\n", "n", "sort(ms)", "transfer(ms)",
              "total(ms)", "nlog2-estimate(ms)", "delta(ms)");
  for (const Row& r : rows) {
    const double work = static_cast<double>(r.n) *
                        std::pow(std::log2(static_cast<double>(r.n) / 4.0), 2.0);
    const double estimate = ref.sort_ms * work / ref_work;
    std::printf("%10zu %13.2f %15.2f %13.2f %18.2f %10.2f\n", r.n, r.sort_ms,
                r.transfer_ms, r.total_ms, estimate, r.sort_ms - estimate);
  }
  std::printf("\nNote: estimates are extrapolated from n=%zu, as the paper extrapolates "
              "from its 8M reference.\n\n", ref.n);
  return 0;
}
