// Figure 5: epsilon-approximate frequency estimation (Manku-Motwani) over a
// large random stream — GPU-accelerated pipeline vs optimized CPU pipeline,
// for varying epsilon (window = ceil(1/epsilon)).
//
// Expected shape: "our GPU-based algorithm performs better than the
// optimized CPU implementation for large sized windows" (small epsilon);
// "the GPU incurs overhead for small window sizes"; "the data transfer time
// remains constant and is significantly lower than the time taken to sort."

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/frequency_estimator.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Figure 5: frequency estimation over a random stream, GPU vs CPU",
      "GPU wins at large windows (small epsilon), CPU wins at small windows; "
      "transfer time flat and small");

  // The paper streams 100M elements; the default here is 1M (STREAMGPU_SCALE
  // raises it).
  const std::size_t stream_length = bench::Scaled(1 << 21);

  std::printf("%12s %10s | %13s %16s | %13s | %12s %12s\n", "epsilon", "window",
              "gpu-total(ms)", "gpu-transfer(ms)", "cpu-total(ms)", "gpu-wall(s)",
              "cpu-wall(s)");

  for (std::size_t window : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 19}) {
    if (window * 4 > stream_length) break;
    const double epsilon = 1.0 / static_cast<double>(window);

    double gpu_total = 0;
    double gpu_transfer = 0;
    double gpu_wall = 0;
    double cpu_total = 0;
    double cpu_wall = 0;
    for (const core::Backend backend :
         {core::Backend::kGpuPbsn, core::Backend::kCpuQuicksort}) {
      stream::StreamGenerator gen(
          {.distribution = stream::Distribution::kUniform, .seed = 99, .domain_size = 2000});
      core::Options opt;
      opt.epsilon = epsilon;
      opt.backend = backend;
      core::FrequencyEstimator fe(opt);
      Timer t;
      for (std::size_t i = 0; i < stream_length; ++i) fe.Observe(gen.Next());
      fe.Flush();
      if (backend == core::Backend::kGpuPbsn) {
        gpu_total = fe.SimulatedSeconds() * 1e3;
        gpu_transfer = fe.costs().sort.sim_transfer_seconds * 1e3;
        gpu_wall = t.ElapsedSeconds();
      } else {
        cpu_total = fe.SimulatedSeconds() * 1e3;
        cpu_wall = t.ElapsedSeconds();
      }
    }
    std::printf("%12.2e %10zu | %13.1f %16.1f | %13.1f | %12.2f %12.2f\n", epsilon,
                static_cast<std::size_t>(window), gpu_total, gpu_transfer, cpu_total,
                gpu_wall, cpu_wall);
  }
  std::printf("\nNote: totals include sorting plus the CPU-side histogram/merge/compress "
              "operations; the paper's 100M-element run needs STREAMGPU_SCALE=100.\n\n");
  return 0;
}
