// Figure 6: cost split of the epsilon-approximate frequency summary
// operations (sort vs merge vs compress, plus the histogram scan) across
// epsilon values, on the CPU pipeline.
//
// Expected shape: "the majority of the computational time is spent in
// sorting the window values" — 80-90% (§5.1), 70-95% (§3.2).

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/frequency_estimator.h"
#include "hwmodel/cpu_model.h"
#include "hwmodel/hardware_profiles.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Figure 6: cost of summary operations (sort / histogram / merge / compress)",
      "sorting takes 80-90% of the total running time");

  const std::size_t stream_length = bench::Scaled(1 << 20);
  const hwmodel::CpuModel p4(hwmodel::kPentium4_3400);

  std::printf("%12s %10s | %9s %9s %9s %9s | %12s\n", "epsilon", "window", "sort%",
              "hist%", "merge%", "compress%", "total(ms)");

  for (std::size_t window : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    if (window * 4 > stream_length) break;
    const double epsilon = 1.0 / static_cast<double>(window);
    stream::StreamGenerator gen(
        {.distribution = stream::Distribution::kUniform, .seed = 17, .domain_size = 2000});
    core::Options opt;
    opt.epsilon = epsilon;
    opt.backend = core::Backend::kCpuQuicksort;
    core::FrequencyEstimator fe(opt);
    for (std::size_t i = 0; i < stream_length; ++i) fe.Observe(gen.Next());
    fe.Flush();

    const core::PipelineCosts& costs = fe.costs();
    const double sort_s = costs.sort.simulated_seconds;
    const double hist_s = costs.SimulatedHistogramSeconds(p4);
    const double merge_s = costs.SimulatedMergeSeconds(p4);
    const double compress_s = costs.SimulatedCompressSeconds(p4);
    const double total = sort_s + hist_s + merge_s + compress_s;

    std::printf("%12.2e %10zu | %8.1f%% %8.1f%% %8.1f%% %8.1f%% | %12.1f\n", epsilon,
                window, 100 * sort_s / total, 100 * hist_s / total, 100 * merge_s / total,
                100 * compress_s / total, total * 1e3);
  }

  // Serial vs pipelined execution of the same summary maintenance: the
  // simulated-2005 split above is identical in both modes (the pipeline is a
  // wall-clock-only change); what differs is where the host time goes. The
  // queue-wait columns come from the PipelineCosts overlap accounting.
  std::printf("\nserial vs pipelined host execution (window 16384, cpu backend):\n");
  std::printf("%8s | %9s | %12s | %9s %9s %9s\n", "workers", "wall(s)",
              "sim-2005(ms)", "stall(s)", "sortQ(s)", "drainQ(s)");
  for (int workers : {1, 2, 4}) {
    stream::StreamGenerator gen(
        {.distribution = stream::Distribution::kUniform, .seed = 17, .domain_size = 2000});
    core::Options opt;
    opt.epsilon = 1.0 / 16384.0;
    opt.backend = core::Backend::kCpuQuicksort;
    opt.num_sort_workers = workers;
    core::FrequencyEstimator fe(opt);
    Timer timer;
    for (std::size_t i = 0; i < stream_length; ++i) fe.Observe(gen.Next());
    fe.Flush();
    const double wall = timer.ElapsedSeconds();
    const core::PipelineCosts& costs = fe.costs();
    std::printf("%8d | %9.3f | %12.1f | %9.3f %9.3f %9.3f\n", workers, wall,
                fe.SimulatedSeconds() * 1e3, costs.ingest_stall_seconds,
                costs.sort_queue_wait_seconds, costs.drain_queue_wait_seconds);
  }
  std::printf("\n");
  return 0;
}
