// Figure 6: cost split of the epsilon-approximate frequency summary
// operations (sort vs merge vs compress, plus the histogram scan) across
// epsilon values, on the CPU pipeline.
//
// Expected shape: "the majority of the computational time is spent in
// sorting the window values" — 80-90% (§5.1), 70-95% (§3.2).

#include <cstdio>

#include "bench_util.h"
#include "core/frequency_estimator.h"
#include "hwmodel/cpu_model.h"
#include "hwmodel/hardware_profiles.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Figure 6: cost of summary operations (sort / histogram / merge / compress)",
      "sorting takes 80-90% of the total running time");

  const std::size_t stream_length = bench::Scaled(1 << 20);
  const hwmodel::CpuModel p4(hwmodel::kPentium4_3400);

  std::printf("%12s %10s | %9s %9s %9s %9s | %12s\n", "epsilon", "window", "sort%",
              "hist%", "merge%", "compress%", "total(ms)");

  for (std::size_t window : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    if (window * 4 > stream_length) break;
    const double epsilon = 1.0 / static_cast<double>(window);
    stream::StreamGenerator gen(
        {.distribution = stream::Distribution::kUniform, .seed = 17, .domain_size = 2000});
    core::Options opt;
    opt.epsilon = epsilon;
    opt.backend = core::Backend::kCpuQuicksort;
    core::FrequencyEstimator fe(opt);
    for (std::size_t i = 0; i < stream_length; ++i) fe.Observe(gen.Next());
    fe.Flush();

    const core::PipelineCosts& costs = fe.costs();
    const double sort_s = costs.sort.simulated_seconds;
    const double hist_s = costs.SimulatedHistogramSeconds(p4);
    const double merge_s = costs.SimulatedMergeSeconds(p4);
    const double compress_s = costs.SimulatedCompressSeconds(p4);
    const double total = sort_s + hist_s + merge_s + compress_s;

    std::printf("%12.2e %10zu | %8.1f%% %8.1f%% %8.1f%% %8.1f%% | %12.1f\n", epsilon,
                window, 100 * sort_s / total, 100 * hist_s / total, 100 * merge_s / total,
                100 * compress_s / total, total * 1e3);
  }
  std::printf("\n");
  return 0;
}
