// Figure 7: epsilon-approximate quantile estimation (Greenwald-Khanna +
// exponential histogram, §5.2) over a large random stream — GPU vs CPU for
// varying epsilon.
//
// Expected shape: "the GPU performance is comparable to a high-end Pentium
// IV CPU"; "for low window sizes, the performance of the CPU-based algorithm
// is better ... the elements in the window fit within the L2 cache."

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/quantile_estimator.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Figure 7: quantile estimation over a random stream, GPU vs CPU",
      "GPU comparable to CPU overall; CPU better at small (cache-resident) windows");

  const std::size_t stream_length = bench::Scaled(1 << 21);

  std::printf("%12s %10s | %13s %13s | %10s | %12s %12s\n", "epsilon", "window",
              "gpu-total(ms)", "cpu-total(ms)", "median", "gpu-wall(s)", "cpu-wall(s)");

  for (std::size_t window : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 19}) {
    if (window * 4 > stream_length) break;
    const double epsilon = 1.0 / static_cast<double>(window);

    double gpu_total = 0;
    double cpu_total = 0;
    double gpu_wall = 0;
    double cpu_wall = 0;
    float median = 0;
    for (const core::Backend backend :
         {core::Backend::kGpuPbsn, core::Backend::kCpuQuicksort}) {
      stream::StreamGenerator gen(
          {.distribution = stream::Distribution::kUniform, .seed = 55, .domain_size = 2000});
      core::Options opt;
      opt.epsilon = epsilon;
      opt.backend = backend;
      opt.expected_stream_length = stream_length;
      core::QuantileEstimator qe(opt);
      Timer t;
      for (std::size_t i = 0; i < stream_length; ++i) qe.Observe(gen.Next());
      qe.Flush();
      if (backend == core::Backend::kGpuPbsn) {
        gpu_total = qe.SimulatedSeconds() * 1e3;
        gpu_wall = t.ElapsedSeconds();
        median = qe.Quantile(0.5).value;
      } else {
        cpu_total = qe.SimulatedSeconds() * 1e3;
        cpu_wall = t.ElapsedSeconds();
      }
    }
    std::printf("%12.2e %10zu | %13.1f %13.1f | %10.1f | %12.2f %12.2f\n", epsilon,
                window, gpu_total, cpu_total, median, gpu_wall, cpu_wall);
  }
  std::printf("\nNote: the uniform-[0,2000) stream's true median is ~1000; the reported "
              "median sanity-checks the summary while timing it.\n\n");
  return 0;
}
