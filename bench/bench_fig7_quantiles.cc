// Figure 7: epsilon-approximate quantile estimation (Greenwald-Khanna +
// exponential histogram, §5.2) over a large random stream — GPU vs CPU for
// varying epsilon.
//
// Expected shape: "the GPU performance is comparable to a high-end Pentium
// IV CPU"; "for low window sizes, the performance of the CPU-based algorithm
// is better ... the elements in the window fit within the L2 cache."

// The sketch shootout below compares the swappable whole-history quantile
// backends (GK+EH vs KLL, docs/SKETCHES.md) on ns/update, serialized summary
// bytes, and observed-vs-stated rank error; STREAMGPU_BENCH_JSON captures the
// rows for the CI gate (tools/check_bench_regression.py --sketch against
// BENCH_sketch.json).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/quantile_estimator.h"
#include "sketch/exact.h"
#include "sketch/quantile_sketch.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

/// Worst observed rank error over a phi sweep, as a fraction of n.
double ObservedRelativeError(const sketch::QuantileSketch& sk,
                             const std::vector<float>& sorted) {
  const double n = static_cast<double>(sorted.size());
  double worst = 0;
  for (int i = 1; i <= 99; i += 2) {
    const double phi = static_cast<double>(i) / 100.0;
    const float answer = sk.Query(phi);
    const auto [lo, hi] = sketch::ExactRankRange(sorted, answer);
    const double target = std::ceil(phi * n);
    const double below = static_cast<double>(lo) + 1 - target;  // 1-based
    const double above = target - static_cast<double>(hi) - 1;
    worst = std::max(worst, std::max(below, above));
  }
  return worst / n;
}

void RunSketchShootout() {
  std::printf("\nSketch shootout: GK+EH vs KLL whole-history backends\n");
  std::printf("%8s %12s | %12s %13s | %14s %12s\n", "epsilon", "sketch",
              "ns/update", "summary(B)", "observed-eps", "bound-ok");

  const std::size_t n = bench::Scaled(1 << 20);
  const std::uint64_t window = 4096;

  const char* json_path = bench::JsonOutPath(nullptr);
  std::FILE* json_file = json_path != nullptr ? std::fopen(json_path, "w") : nullptr;
  std::unique_ptr<bench::JsonWriter> json;
  if (json_file != nullptr) {
    json = std::make_unique<bench::JsonWriter>(json_file);
    json->Number("schema", std::uint64_t{1});
    json->BeginObject("sketch");
    json->Number("n", static_cast<std::uint64_t>(n));
    json->BeginArray("rows");
  }

  for (const double epsilon : {0.02, 0.01, 0.005}) {
    for (const auto kind :
         {sketch::QuantileSketchKind::kGk, sketch::QuantileSketchKind::kKll}) {
      stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                                   .seed = 404});
      std::vector<float> data = gen.Take(n);

      auto sk = sketch::QuantileSketch::Create(kind, epsilon, window, n);
      if (!sk.ok()) continue;
      Timer timer;
      std::vector<float> chunk;
      for (std::size_t off = 0; off < data.size(); off += window) {
        const std::size_t len = std::min<std::size_t>(window, data.size() - off);
        chunk.assign(data.begin() + off, data.begin() + off + len);
        std::sort(chunk.begin(), chunk.end());
        (*sk)->AddSortedWindow(chunk);
      }
      const double ns_per_update =
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(n);

      std::vector<std::uint8_t> wire;
      const bool serialized = (*sk)->AppendWireSummary(&wire).ok();
      std::sort(data.begin(), data.end());
      const double observed = ObservedRelativeError(**sk, data);
      const double stated =
          static_cast<double>((*sk)->rank_error_bound()) / static_cast<double>(n);
      const bool bound_ok = observed <= stated + 1.0 / static_cast<double>(n);
      const char* name = sketch::QuantileSketchKindName(kind);

      std::printf("%8.3f %12s | %12.1f %13zu | %14.5f %12s\n", epsilon, name,
                  ns_per_update, wire.size(), observed, bound_ok ? "yes" : "NO");
      if (json != nullptr && serialized) {
        json->BeginArrayObject();
        json->String("sketch", name);
        json->Number("epsilon", epsilon);
        json->Number("ns_per_update", ns_per_update);
        json->Number("summary_bytes", static_cast<std::uint64_t>(wire.size()));
        json->Number("observed_rel_error", observed);
        json->Number("stated_rel_error", stated);
        json->End('}');
      }
    }
  }

  if (json != nullptr) {
    json->End(']');
    json->End('}');
    json.reset();
    std::fclose(json_file);
    std::printf("# sketch rows -> %s\n", json_path);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 7: quantile estimation over a random stream, GPU vs CPU",
      "GPU comparable to CPU overall; CPU better at small (cache-resident) windows");

  const std::size_t stream_length = bench::Scaled(1 << 21);

  std::printf("%12s %10s | %13s %13s | %10s | %12s %12s\n", "epsilon", "window",
              "gpu-total(ms)", "cpu-total(ms)", "median", "gpu-wall(s)", "cpu-wall(s)");

  for (std::size_t window : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 19}) {
    if (window * 4 > stream_length) break;
    const double epsilon = 1.0 / static_cast<double>(window);

    double gpu_total = 0;
    double cpu_total = 0;
    double gpu_wall = 0;
    double cpu_wall = 0;
    float median = 0;
    for (const core::Backend backend :
         {core::Backend::kGpuPbsn, core::Backend::kCpuQuicksort}) {
      stream::StreamGenerator gen(
          {.distribution = stream::Distribution::kUniform, .seed = 55, .domain_size = 2000});
      core::Options opt;
      opt.epsilon = epsilon;
      opt.backend = backend;
      opt.expected_stream_length = stream_length;
      core::QuantileEstimator qe(opt);
      Timer t;
      for (std::size_t i = 0; i < stream_length; ++i) qe.Observe(gen.Next());
      qe.Flush();
      if (backend == core::Backend::kGpuPbsn) {
        gpu_total = qe.SimulatedSeconds() * 1e3;
        gpu_wall = t.ElapsedSeconds();
        median = qe.Quantile(0.5).value;
      } else {
        cpu_total = qe.SimulatedSeconds() * 1e3;
        cpu_wall = t.ElapsedSeconds();
      }
    }
    std::printf("%12.2e %10zu | %13.1f %13.1f | %10.1f | %12.2f %12.2f\n", epsilon,
                window, gpu_total, cpu_total, median, gpu_wall, cpu_wall);
  }
  std::printf("\nNote: the uniform-[0,2000) stream's true median is ~1000; the reported "
              "median sanity-checks the summary while timing it.\n\n");
  RunSketchShootout();
  return 0;
}
