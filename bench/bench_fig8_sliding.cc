// §5.3: epsilon-approximate frequency and quantile queries over fixed and
// variable-sized sliding windows. (The section's figures are truncated in
// the source text; this harness reports the natural series: maintenance cost
// GPU vs CPU across window/epsilon combinations — equivalently, across the
// block sizes epsilon*W/2 the structures sort — plus measured query accuracy
// against exact ground truth over the live window.)
//
// Expected shape: errors stay within epsilon*W; the GPU pays heavy setup
// overhead when blocks are small and approaches the CPU as blocks grow —
// the same small-window behavior as Figs. 5 and 7.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"
#include "sketch/exact.h"
#include "stream/generator.h"

namespace {

// Distance of the value's realizable rank interval in `sorted_tail` from
// `target` (0 when the interval contains the target) — duplicate-safe.
double RankDeviation(const std::vector<float>& sorted_tail, float value, double target) {
  const auto lo = std::lower_bound(sorted_tail.begin(), sorted_tail.end(), value);
  const auto hi = std::upper_bound(sorted_tail.begin(), sorted_tail.end(), value);
  const double rank_lo = static_cast<double>(lo - sorted_tail.begin()) + 1;
  const double rank_hi = static_cast<double>(hi - sorted_tail.begin());
  if (target < rank_lo) return rank_lo - target;
  if (target > rank_hi) return target - rank_hi;
  return 0.0;
}

}  // namespace

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Sliding windows (Sec. 5.3): maintenance cost and accuracy, GPU vs CPU",
      "errors bounded by epsilon*W; GPU closes on the CPU as the block size "
      "epsilon*W/2 grows");

  const std::size_t stream_length = bench::Scaled(1 << 21);

  std::printf("%10s %10s %8s | %13s %13s | %14s %14s\n", "window", "epsilon", "block",
              "gpu-total(ms)", "cpu-total(ms)", "freq-maxerr", "quant-rankerr");

  for (const auto& [window, epsilon] :
       std::vector<std::pair<std::size_t, double>>{{1u << 16, 1.0 / 128},
                                                   {1u << 18, 1.0 / 256},
                                                   {1u << 20, 1.0 / 256},
                                                   {1u << 20, 1.0 / 64}}) {
    if (window * 2 > stream_length) continue;

    double gpu_total = 0;
    double cpu_total = 0;
    std::uint64_t freq_err = 0;
    double rank_err = 0;

    for (const core::Backend backend :
         {core::Backend::kGpuPbsn, core::Backend::kCpuQuicksort}) {
      stream::StreamGenerator gen({.distribution = stream::Distribution::kNetworkFlows,
                                   .seed = 31,
                                   .domain_size = 1000});
      const auto stream = gen.Take(stream_length);
      core::Options opt;
      opt.epsilon = epsilon;
      opt.backend = backend;
      opt.sliding_window = window;
      core::FrequencyEstimator fe(opt);
      core::QuantileEstimator qe(opt);
      fe.ObserveBatch(stream);
      qe.ObserveBatch(stream);
      fe.Flush();
      qe.Flush();
      const double total = (fe.SimulatedSeconds() + qe.SimulatedSeconds()) * 1e3;
      if (backend == core::Backend::kGpuPbsn) {
        gpu_total = total;
      } else {
        cpu_total = total;

        // Accuracy against the exact most-recent-W window (CPU run; fp32
        // exact values). The epsilon*W budget covers both the summary error
        // and the partially-covered window boundary.
        std::vector<float> tail(stream.end() - static_cast<std::ptrdiff_t>(window),
                                stream.end());
        const auto exact = sketch::ExactCounts(tail);
        for (const auto& [value, truth] : exact) {
          const std::uint64_t est = fe.EstimateCount(value);
          freq_err = std::max(freq_err, truth > est ? truth - est : 0);
        }
        std::sort(tail.begin(), tail.end());
        for (double phi : {0.25, 0.5, 0.75}) {
          const float q = qe.Quantile(phi).value;
          const double target = std::ceil(phi * static_cast<double>(tail.size()));
          rank_err = std::max(rank_err, RankDeviation(tail, q, target));
        }
      }
    }
    const auto block_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(epsilon * static_cast<double>(window) / 2.0));
    std::printf("%10zu %10.2e %8zu | %13.1f %13.1f | %10llu/%0.0f %10.0f/%0.0f\n",
                window, epsilon, block_size, gpu_total, cpu_total,
                static_cast<unsigned long long>(freq_err),
                epsilon * static_cast<double>(window), rank_err,
                epsilon * static_cast<double>(window));
  }
  std::printf("\nNote: error columns report measured-max / allowed (epsilon*W).\n\n");
  return 0;
}
