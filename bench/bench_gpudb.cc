// GPU database operations ([20], §2.2): COUNT predicates, semi-linear
// predicates, and k-th largest selection on the simulated device, against a
// modeled Pentium IV sequential scan — the comparison the companion paper
// reports and that motivates using the GPU as a database co-processor.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/device.h"
#include "gpudb/gpu_relation.h"
#include "hwmodel/cpu_model.h"
#include "hwmodel/hardware_profiles.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader("GPU database operations (Sec. 2.2 / [20])",
                     "depth-test COUNTs beat a CPU scan once resident; k-th largest "
                     "pays ~32 occlusion-query stalls");

  const hwmodel::CpuModel p4(hwmodel::kPentium4_3400);
  const hwmodel::GpuModel nv40(hwmodel::kGeForce6800Ultra);

  std::printf("%10s | %12s %12s | %12s %12s | %14s\n", "n", "count-gpu", "count-cpu",
              "kth-gpu", "kth-cpu", "upload(ms)");

  for (std::size_t n : {1u << 16, 1u << 18, 1u << 20}) {
    if (n > bench::Scaled(1 << 20)) break;
    stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                                 .seed = 5});
    const auto column = gen.Take(n);

    gpu::GpuDevice device;
    gpudb::GpuRelation rel(&device, hwmodel::kGeForce6800Ultra, column);
    const auto after_upload = rel.SimulatedCosts();

    // One predicate COUNT.
    rel.Count(gpudb::Predicate::kLess, 500.0f);
    const auto after_count = rel.SimulatedCosts();
    const double count_gpu_ms =
        (after_count.TotalSeconds() - after_upload.TotalSeconds()) * 1e3;

    // k-th largest (binary search, ~32 counted passes).
    rel.KthLargest(n / 10);
    const auto after_kth = rel.SimulatedCosts();
    const double kth_gpu_ms =
        (after_kth.TotalSeconds() - after_count.TotalSeconds()) * 1e3;

    // CPU reference: a predicate scan is one linear pass (~2 cycles/elem);
    // selection via nth_element is ~2 passes of quicksort-partition work.
    const double count_cpu_ms = p4.LinearPassSeconds(n, sizeof(float), 2.0) * 1e3;
    const double kth_cpu_ms =
        p4.ComparisonSortSeconds(2 * n, n, sizeof(float)) * 1e3;

    std::printf("%10zu | %10.3fms %10.3fms | %10.2fms %10.2fms | %12.2f\n", n,
                count_gpu_ms, count_cpu_ms, kth_gpu_ms, kth_cpu_ms,
                after_upload.TotalSeconds() * 1e3);
  }
  std::printf("\nNote: gpu columns exclude the one-time upload (amortized over queries "
              "on a resident relation), shown separately.\n\n");
  return 0;
}
