// Input-order sensitivity: a sorting network performs exactly the same
// comparator schedule on every input (data-oblivious — the property that
// lets the GPU pipeline guarantee throughput for bursty streams, §1's
// real-time requirement), while quicksort's cost and branch behavior vary
// with input order. Simulated times across input distributions.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;
  bench::PrintHeader(
      "Input-order sensitivity of the sorting backends",
      "the PBSN network is data-oblivious (identical cost on every input); "
      "quicksort's comparisons vary with input order");

  const std::size_t n = bench::Scaled(1 << 18);

  std::printf("%-16s | %14s %18s | %14s %18s\n", "distribution", "gpu-pbsn(ms)",
              "gpu-comparisons", "cpu-qsort(ms)", "cpu-comparisons");

  const std::pair<stream::Distribution, const char*> cases[] = {
      {stream::Distribution::kUniformReal, "random"},
      {stream::Distribution::kSorted, "sorted"},
      {stream::Distribution::kReverseSorted, "reverse-sorted"},
      {stream::Distribution::kNearlySorted, "nearly-sorted"},
      {stream::Distribution::kNetworkFlows, "bursty-duplicates"},
  };

  for (const auto& [dist, name] : cases) {
    stream::StreamGenerator gen({.distribution = dist, .seed = 3});
    const auto data = gen.Take(n);

    gpu::GpuDevice device;
    sort::PbsnOptions opt;
    opt.format = gpu::Format::kFloat16;
    sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra,
                             hwmodel::kPentium4_3400, opt);
    auto a = data;
    pbsn.Sort(a);

    sort::QuicksortSorter qs(hwmodel::kPentium4_3400);
    auto b = data;
    qs.Sort(b);

    std::printf("%-16s | %14.2f %18llu | %14.2f %18llu\n", name,
                pbsn.last_run().simulated_seconds * 1e3,
                static_cast<unsigned long long>(pbsn.last_stats().ScalarComparisons()),
                qs.last_run().simulated_seconds * 1e3,
                static_cast<unsigned long long>(qs.last_run().comparisons));
  }
  std::printf("\nNote: the GPU columns are identical by construction — the network's "
              "schedule depends only on n.\n\n");
  return 0;
}
