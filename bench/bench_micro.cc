// Microbenchmarks (google-benchmark) of the building blocks: simulator
// rasterization throughput, half conversion, histogram construction, summary
// merges, and the CPU sorts. These measure the *simulator's host
// performance* (useful when tuning the simulator itself), not simulated
// 2005-hardware time.

#include <algorithm>
#include <random>
#include <vector>

#include <benchmark/benchmark.h>

#include "gpu/device.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"
#include "sketch/gk_summary.h"
#include "sketch/histogram.h"
#include "sketch/lossy_counting.h"
#include "sort/cpu_sort.h"
#include "sort/merge.h"
#include "sort/pbsn_network.h"

namespace {

using namespace streamgpu;

std::vector<float> RandomData(std::size_t n, int domain = 0) {
  std::mt19937 rng(5);
  std::vector<float> v(n);
  if (domain > 0) {
    std::uniform_int_distribution<int> d(0, domain - 1);
    for (float& x : v) x = static_cast<float>(d(rng));
  } else {
    std::uniform_real_distribution<float> d(0.0f, 1e4f);
    for (float& x : v) x = d(rng);
  }
  return v;
}

void BM_HalfRoundTrip(benchmark::State& state) {
  const auto data = RandomData(4096);
  for (auto _ : state) {
    for (float v : data) benchmark::DoNotOptimize(gpu::QuantizeToHalf(v));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HalfRoundTrip);

void BM_RasterizerCopyPass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  gpu::GpuDevice device;
  const auto tex = device.CreateTexture(side, side, gpu::Format::kFloat32);
  device.BindFramebuffer(side, side, gpu::Format::kFloat32);
  device.SetBlend(gpu::BlendOp::kReplace);
  for (auto _ : state) {
    device.DrawQuad(tex, gpu::Quad::Identity(0, 0, static_cast<float>(side),
                                             static_cast<float>(side)));
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_RasterizerCopyPass)->Arg(128)->Arg(512)->Arg(1024);

void BM_RasterizerBlendPass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  gpu::GpuDevice device;
  const auto tex = device.CreateTexture(side, side, gpu::Format::kFloat32);
  device.BindFramebuffer(side, side, gpu::Format::kFloat32);
  device.SetBlend(gpu::BlendOp::kMin);
  // Mirrored mapping, as a PBSN step issues.
  const auto quad = gpu::Quad::Make(0, 0, static_cast<float>(side),
                                    static_cast<float>(side), static_cast<float>(side),
                                    0, 0, 0, 0, static_cast<float>(side),
                                    static_cast<float>(side), static_cast<float>(side));
  for (auto _ : state) device.DrawQuad(tex, quad);
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_RasterizerBlendPass)->Arg(128)->Arg(512)->Arg(1024);

void BM_PbsnNetworkCpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = RandomData(n);
  for (auto _ : state) {
    auto copy = data;
    sort::PbsnSortCpu(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PbsnNetworkCpu)->Arg(1024)->Arg(16384);

void BM_QuicksortInstrumented(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = RandomData(n);
  for (auto _ : state) {
    auto copy = data;
    sort::CpuSortCounters counters;
    sort::QuicksortInstrumented(copy, &counters);
    benchmark::DoNotOptimize(counters.comparisons);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuicksortInstrumented)->Arg(16384)->Arg(262144);

void BM_FourWayMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::array<std::vector<float>, 4> runs;
  for (auto& r : runs) {
    r = RandomData(n / 4);
    std::sort(r.begin(), r.end());
  }
  std::vector<float> out(runs[0].size() * 4);
  const std::array<std::span<const float>, 4> views{runs[0], runs[1], runs[2], runs[3]};
  for (auto _ : state) {
    sort::FourWayMerge(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FourWayMerge)->Arg(65536)->Arg(1048576);

void BM_BuildHistogram(benchmark::State& state) {
  auto data = RandomData(static_cast<std::size_t>(state.range(0)), 2000);
  std::sort(data.begin(), data.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::BuildHistogram(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildHistogram)->Arg(4096)->Arg(65536);

void BM_LossyCountingWindow(benchmark::State& state) {
  const double epsilon = 1.0 / static_cast<double>(state.range(0));
  auto window = RandomData(static_cast<std::size_t>(state.range(0)), 2000);
  std::sort(window.begin(), window.end());
  const auto hist = sketch::BuildHistogram(window);
  for (auto _ : state) {
    sketch::LossyCounting lc(epsilon);
    lc.AddWindowHistogram(hist, window.size());
    benchmark::DoNotOptimize(lc.summary_size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LossyCountingWindow)->Arg(1024)->Arg(16384);

void BM_GkMerge(benchmark::State& state) {
  auto a = RandomData(static_cast<std::size_t>(state.range(0)));
  auto b = RandomData(static_cast<std::size_t>(state.range(0)));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto sa = sketch::GkSummary::FromSorted(a, 0.01);
  const auto sb = sketch::GkSummary::FromSorted(b, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::GkSummary::Merge(sa, sb).size());
  }
  state.SetItemsProcessed(state.iterations() * (sa.size() + sb.size()));
}
BENCHMARK(BM_GkMerge)->Arg(16384)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
