// Pipeline scaling: wall-clock throughput of the parallel multi-window
// ingest pipeline vs worker count, per backend.
//
// This is a host-performance benchmark, not a figure reproduction: the
// simulated-2005 milliseconds are printed only to show they stay identical
// across worker counts (the pipeline changes wall-clock, never simulated
// time — see docs/COST_MODEL.md). On a multi-core host the CPU-sort backend
// should reach >= 1.5x at 4 workers; on fewer cores the speedup degrades to
// whatever the hardware can overlap, and the queue-wait columns show where
// the time went (see docs/ARCHITECTURE.md, "Execution modes").

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/frequency_estimator.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

struct Result {
  double wall_seconds = 0;
  double simulated_ms = 0;
  core::PipelineCosts costs;
};

Result RunOnce(core::Backend backend, int workers, std::size_t n) {
  stream::StreamGenerator gen({.distribution = stream::Distribution::kZipf,
                               .seed = 42,
                               .domain_size = 5000});
  core::Options opt;
  opt.epsilon = 1.0 / 16384.0;  // 16K windows: large enough to be sort-bound
  opt.backend = backend;
  opt.num_sort_workers = workers;
  core::FrequencyEstimator fe(opt);

  const std::vector<float> data = gen.Take(n);
  Timer timer;
  fe.ObserveBatch(data);
  fe.Flush();
  Result r;
  r.wall_seconds = timer.ElapsedSeconds();
  r.simulated_ms = fe.SimulatedSeconds() * 1e3;
  r.costs = fe.costs();
  return r;
}

void RunBackend(core::Backend backend, std::size_t n) {
  std::printf("\nbackend %s, %zu elements, window 16384\n",
              core::BackendName(backend), n);
  std::printf("%8s | %9s %8s | %12s | %9s %9s %9s\n", "workers", "wall(s)",
              "speedup", "sim-2005(ms)", "stall(s)", "sortQ(s)", "drainQ(s)");

  double serial_wall = 0;
  for (int workers : {1, 2, 4, 8}) {
    const Result r = RunOnce(backend, workers, n);
    if (workers == 1) serial_wall = r.wall_seconds;
    std::printf("%8d | %9.3f %7.2fx | %12.1f | %9.3f %9.3f %9.3f\n", workers,
                r.wall_seconds, serial_wall / r.wall_seconds, r.simulated_ms,
                r.costs.ingest_stall_seconds, r.costs.sort_queue_wait_seconds,
                r.costs.drain_queue_wait_seconds);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Pipeline scaling: serial vs parallel multi-window ingest",
      "sorting overlaps summary maintenance; simulated time is unchanged");
  std::printf("host hardware threads: %u\n", std::thread::hardware_concurrency());

  const std::size_t n = bench::Scaled(1 << 22);  // 4M elements
  RunBackend(core::Backend::kCpuStdSort, n);
  RunBackend(core::Backend::kCpuQuicksort, n);
  // The simulated-GPU backend is much slower in host wall-clock (it executes
  // the rasterizer in software), so run it at reduced size.
  RunBackend(core::Backend::kGpuPbsn, n / 16);
  std::printf("\n");
  return 0;
}
