// Multi-tenant StreamService throughput: aggregate ingest vs stream count on
// one fixed worker pool, versus a dedicated single-stream pipeline.
//
// The tentpole claim (docs/SERVICE.md): because small per-stream writes are
// coalesced into per-shard micro-batches before they reach the worker pool,
// aggregate ingest throughput tracks the worker count, not the stream count —
// at 1000 multiplexed streams the service stays within 0.9x of a dedicated
// pipeline ingesting the same volume into one stream. A dedicated pipeline
// *per stream* would instead need 1000 thread pools.
//
// Also measured, because the service exists to run at registry scale:
//  * per-idle-stream registry memory (100k registered streams must be cheap),
//  * batch-query snapshot rate (reports/s over a 1000-stream snapshot) with
//    p99 per-call latency.
//
// JSON out (STREAMGPU_BENCH_JSON): the `rel_single` ratios and
// `bytes_per_idle_stream` are within-run / machine-stable numbers the CI
// gate (tools/check_bench_regression.py --service) checks against
// BENCH_service.json; raw element rates are informational.

#include <algorithm>
#include <cstdio>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "bench_util.h"
#include "common/timer.h"
#include "core/quantile_estimator.h"
#include "service/stream_service.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

constexpr int kWorkers = 4;
constexpr double kEpsilon = 0.001;  // window 1000
constexpr std::size_t kChunk = 64;  // small-write ingest granularity

// Current RSS in bytes (0 where /proc is unavailable).
std::size_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

// Aggregate service ingest: `total` elements spread round-robin over
// `streams` streams in kChunk-element appends. Returns elements/second.
double RunService(std::uint64_t streams, std::size_t total) {
  service::ServiceConfig config;
  config.backend = core::Backend::kCpuRadixMerge;
  config.num_workers = kWorkers;
  service::StreamService service(config);

  service::StreamConfig stream_config;
  stream_config.epsilon = kEpsilon;
  std::vector<service::StreamKey> keys;
  keys.reserve(streams);
  for (std::uint64_t i = 0; i < streams; ++i) {
    keys.push_back({i % 16, i});
    service.Register(keys.back(), stream_config);
  }

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 7});
  std::vector<float> chunk(kChunk);
  // At least one round, so reduced-scale runs (STREAMGPU_SCALE < 1) never
  // produce a zero-ingest row; full scale is >= 6 rounds at every count.
  const std::size_t rounds =
      std::max<std::size_t>(1, total / (streams * kChunk));
  Timer timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const service::StreamKey& key : keys) {
      gen.Fill(chunk);
      service.Append(key, chunk);
    }
  }
  service.FlushAll();
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(service.stats().elements_observed) / seconds;
}

// Dedicated single-stream pipeline baseline: same epsilon, same worker
// count, same small-write call granularity, all elements into one stream.
double RunDedicated(std::size_t total) {
  core::Options opt;
  opt.epsilon = kEpsilon;
  opt.backend = core::Backend::kCpuRadixMerge;
  opt.num_sort_workers = kWorkers;
  core::QuantileEstimator estimator(opt);

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 7});
  std::vector<float> chunk(kChunk);
  const std::size_t rounds = total / kChunk;
  Timer timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    gen.Fill(chunk);
    estimator.ObserveBatch(chunk);
  }
  estimator.Flush();
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(estimator.observed_length()) / seconds;
}

struct QueryResult {
  double reports_per_sec = 0;
  double p99_call_seconds = 0;
};

// Snapshot rate: BatchQuantiles over every registered stream, repeated.
QueryResult RunBatchQueries(std::uint64_t streams, std::size_t per_stream) {
  service::ServiceConfig config;
  config.backend = core::Backend::kCpuRadixMerge;
  config.num_workers = kWorkers;
  service::StreamService service(config);

  service::StreamConfig stream_config;
  stream_config.epsilon = kEpsilon;
  std::vector<service::StreamKey> keys;
  for (std::uint64_t i = 0; i < streams; ++i) {
    keys.push_back({i % 16, i});
    service.Register(keys.back(), stream_config);
  }
  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kZipf, .seed = 13});
  std::vector<float> data(per_stream);
  for (const service::StreamKey& key : keys) {
    gen.Fill(data);
    service.Append(key, data);
  }
  service.FlushAll();

  constexpr int kIters = 50;
  std::vector<double> call_seconds;
  call_seconds.reserve(kIters);
  Timer total_timer;
  for (int iter = 0; iter < kIters; ++iter) {
    Timer call_timer;
    const auto reports = service.BatchQuantiles(keys, 0.5);
    call_seconds.push_back(call_timer.ElapsedSeconds());
    if (reports.size() != keys.size()) std::abort();  // keep the call live
  }
  QueryResult result;
  result.reports_per_sec = static_cast<double>(keys.size()) * kIters /
                           total_timer.ElapsedSeconds();
  std::sort(call_seconds.begin(), call_seconds.end());
  result.p99_call_seconds = call_seconds[(call_seconds.size() * 99) / 100];
  return result;
}

// Registry footprint: bytes of RSS growth per registered-but-idle stream.
double MeasureIdleStreamBytes(std::uint64_t streams) {
  auto service = std::make_unique<service::StreamService>(service::ServiceConfig{});
  service::StreamConfig stream_config;
  stream_config.epsilon = kEpsilon;
  const std::size_t before = CurrentRssBytes();
  Timer timer;
  for (std::uint64_t i = 0; i < streams; ++i) {
    service->Register({i % 257, i}, stream_config);
  }
  const double seconds = timer.ElapsedSeconds();
  const std::size_t after = CurrentRssBytes();
  std::printf("registry   %llu idle streams in %.2f s, %.0f bytes/stream RSS\n",
              static_cast<unsigned long long>(streams), seconds,
              static_cast<double>(after - before) / static_cast<double>(streams));
  return static_cast<double>(after - before) / static_cast<double>(streams);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Multi-tenant StreamService: aggregate ingest vs stream count",
      "aggregate throughput tracks worker count, not stream count");

  const std::size_t total = bench::Scaled(4'000'000);
  std::printf("\n%d workers, epsilon %g, %zu-element appends, %zu total elements\n\n",
              kWorkers, kEpsilon, kChunk, total);

  const double single = RunDedicated(total);
  std::printf("%10s | %14s | %10s\n", "streams", "elements/s", "vs single");
  std::printf("%10s | %14.3g | %10s\n", "dedicated", single, "1.00");

  const std::vector<std::uint64_t> stream_counts = {1, 100, 1000, 10000};
  std::vector<double> rates, ratios;
  for (std::uint64_t streams : stream_counts) {
    const double rate = RunService(streams, total);
    rates.push_back(rate);
    ratios.push_back(rate / single);
    std::printf("%10llu | %14.3g | %10.2f\n",
                static_cast<unsigned long long>(streams), rate, rate / single);
  }

  std::printf("\n");
  const double idle_bytes = MeasureIdleStreamBytes(100'000);
  const QueryResult queries = RunBatchQueries(1000, 4000);
  std::printf("queries    %.3g reports/s snapshotting 1000 streams (p99 call %.2f ms)\n",
              queries.reports_per_sec, queries.p99_call_seconds * 1e3);

  if (const char* path = bench::JsonOutPath(nullptr)) {
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      bench::JsonWriter json(f);
      json.Number("schema", std::uint64_t{1});
      json.BeginObject("service");
      json.Number("workers", std::uint64_t{kWorkers});
      json.Number("total_elements", static_cast<std::uint64_t>(total));
      json.Number("single_elements_per_sec", single);
      json.BeginArray("streams");
      for (std::size_t i = 0; i < stream_counts.size(); ++i) {
        json.BeginArrayObject();
        json.Number("streams", stream_counts[i]);
        json.Number("elements_per_sec", rates[i]);
        json.Number("rel_single", ratios[i]);
        json.End('}');
      }
      json.End(']');
      json.Number("bytes_per_idle_stream", idle_bytes);
      json.Number("batch_reports_per_sec", queries.reports_per_sec);
      json.Number("batch_p99_call_seconds", queries.p99_call_seconds);
      json.End('}');
    }
    if (f != nullptr) std::fclose(f);
    std::printf("# json -> %s\n", path);
  }
  return 0;
}
