// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's evaluation as aligned
// text rows: simulated 2005-hardware milliseconds (the apples-to-apples
// numbers, produced by the hwmodel layer from exact operation counts) plus
// host wall-clock of the simulator itself for reference.
//
// STREAMGPU_SCALE (default 1) scales stream/input sizes toward the paper's
// full scale (8M-element sorts, 100M-element streams). The default sizes are
// chosen so every binary finishes in tens of seconds on one core.

#ifndef STREAMGPU_BENCH_BENCH_UTIL_H_
#define STREAMGPU_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/env.h"

namespace streamgpu::bench {

/// Scales `base` by STREAMGPU_SCALE, keeping at least `base`... values below
/// 1 shrink (useful for quick smoke runs).
inline std::size_t Scaled(std::size_t base) {
  const double s = BenchScale();
  const auto scaled = static_cast<std::size_t>(static_cast<double>(base) * s);
  return scaled < 16 ? 16 : scaled;
}

/// Where a bench should write its machine-readable JSON results:
/// STREAMGPU_BENCH_JSON when set (empty string disables), else `fallback`
/// (pass nullptr for no default). The committed baseline the CI regression
/// gate compares against lives at the repo root as BENCH_sort.json.
inline const char* JsonOutPath(const char* fallback) {
  const char* p = std::getenv("STREAMGPU_BENCH_JSON");
  if (p != nullptr) return *p != '\0' ? p : nullptr;
  return fallback;
}

/// Minimal JSON emitter for flat benchmark reports: objects, string keys,
/// number/string values. No escaping (keys and values are programmer-chosen
/// identifiers), no arrays-of-arrays — just enough for BENCH_*.json.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) { std::fputc('{', f_); }
  ~JsonWriter() { std::fputs("}\n", f_); }

  void Key(const char* key) {
    Comma();
    std::fprintf(f_, "\"%s\": ", key);
    value_pending_ = true;
  }
  void Number(const char* key, double value) {
    Key(key);
    std::fprintf(f_, "%.6g", value);
    value_pending_ = false;
  }
  void Number(const char* key, std::uint64_t value) {
    Key(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(value));
    value_pending_ = false;
  }
  void String(const char* key, const char* value) {
    Key(key);
    std::fprintf(f_, "\"%s\"", value);
    value_pending_ = false;
  }
  void BeginObject(const char* key) {
    Key(key);
    std::fputc('{', f_);
    first_ = true;
    value_pending_ = false;
  }
  void BeginArray(const char* key) {
    Key(key);
    std::fputc('[', f_);
    first_ = true;
    value_pending_ = false;
  }
  void BeginArrayObject() {
    Comma();
    std::fputc('{', f_);
    first_ = true;
  }
  void End(char close) {  // '}' or ']'
    std::fputc(close, f_);
    first_ = false;
  }

 private:
  void Comma() {
    if (!first_ && !value_pending_) std::fputs(", ", f_);
    first_ = false;
  }
  std::FILE* f_;
  bool first_ = true;
  bool value_pending_ = false;
};

/// Prints the standard figure header.
inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper's qualitative claim: %s\n", claim);
  std::printf("(simulated hardware: GeForce FX 6800 Ultra vs 3.4 GHz Pentium IV; scale=%g)\n",
              BenchScale());
  std::printf("==============================================================================\n");
}

}  // namespace streamgpu::bench

#endif  // STREAMGPU_BENCH_BENCH_UTIL_H_
