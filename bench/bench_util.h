// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's evaluation as aligned
// text rows: simulated 2005-hardware milliseconds (the apples-to-apples
// numbers, produced by the hwmodel layer from exact operation counts) plus
// host wall-clock of the simulator itself for reference.
//
// STREAMGPU_SCALE (default 1) scales stream/input sizes toward the paper's
// full scale (8M-element sorts, 100M-element streams). The default sizes are
// chosen so every binary finishes in tens of seconds on one core.

#ifndef STREAMGPU_BENCH_BENCH_UTIL_H_
#define STREAMGPU_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/env.h"

namespace streamgpu::bench {

/// Scales `base` by STREAMGPU_SCALE, keeping at least `base`... values below
/// 1 shrink (useful for quick smoke runs).
inline std::size_t Scaled(std::size_t base) {
  const double s = BenchScale();
  const auto scaled = static_cast<std::size_t>(static_cast<double>(base) * s);
  return scaled < 16 ? 16 : scaled;
}

/// Prints the standard figure header.
inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper's qualitative claim: %s\n", claim);
  std::printf("(simulated hardware: GeForce FX 6800 Ultra vs 3.4 GHz Pentium IV; scale=%g)\n",
              BenchScale());
  std::printf("==============================================================================\n");
}

}  // namespace streamgpu::bench

#endif  // STREAMGPU_BENCH_BENCH_UTIL_H_
