// GPU database operations example — the §2.2 foundation ([20]) this paper's
// stream mining builds on: selection COUNTs and k-th largest over a column
// resident in video memory, answered with depth tests and occlusion queries.
//
//   $ ./examples/db_queries

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gpu/device.h"
#include "gpudb/gpu_relation.h"
#include "hwmodel/hardware_profiles.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;

  // A "salary" column (log-normal-ish positive values) and a "bonus" column.
  stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                               .seed = 1789});
  std::vector<float> salaries = gen.Take(1 << 18);
  for (float& s : salaries) s = 30.0f + s * s / 12000.0f;  // 30..~113 (k$)
  std::vector<float> bonuses = gen.Take(1 << 18);
  for (float& b : bonuses) b = b / 50.0f;  // 0..20 (k$)

  gpu::GpuDevice device;
  gpudb::GpuRelation relation(&device, hwmodel::kGeForce6800Ultra,
                              std::vector<std::span<const float>>{salaries, bonuses});

  std::printf("relation: %llu records resident on the (simulated) GPU\n\n",
              static_cast<unsigned long long>(relation.size()));

  std::printf("SELECT COUNT(*) WHERE salary <  50  -> %llu\n",
              static_cast<unsigned long long>(
                  relation.Count(gpudb::Predicate::kLess, 50.0f)));
  std::printf("SELECT COUNT(*) WHERE salary >= 100 -> %llu\n",
              static_cast<unsigned long long>(
                  relation.Count(gpudb::Predicate::kGreaterEqual, 100.0f)));
  std::printf("SELECT COUNT(*) WHERE salary BETWEEN 60 AND 80 -> %llu\n",
              static_cast<unsigned long long>(relation.CountRange(60.0f, 80.0f)));

  // Semi-linear predicate over both columns ([20]).
  const std::vector<float> comp{1.0f, 1.0f};
  std::printf("SELECT COUNT(*) WHERE salary + bonus > 110 -> %llu\n",
              static_cast<unsigned long long>(
                  relation.CountLinear(comp, gpudb::Predicate::kGreater, 110.0f)));

  // Boolean combination via the stencil buffer ([20]).
  const gpudb::GpuRelation::Clause conj[] = {
      {0, gpudb::Predicate::kGreater, 90.0f},   // salary > 90
      {1, gpudb::Predicate::kGreater, 15.0f}};  // AND bonus > 15
  std::printf("SELECT COUNT(*) WHERE salary > 90 AND bonus > 15 -> %llu\n",
              static_cast<unsigned long long>(relation.CountConjunction(conj)));

  std::printf("\nk-th largest (one occlusion-counted pass per binary-search step):\n");
  for (std::uint64_t k :
       {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{1000}, relation.size() / 2}) {
    std::printf("  k = %-8llu -> %.2f\n", static_cast<unsigned long long>(k),
                relation.KthLargest(k));
  }

  // Cross-check against host computation.
  std::vector<float> sorted(salaries);
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  std::printf("\nhost check: 1000-th largest = %.2f, median = %.2f\n", sorted[999],
              sorted[relation.size() / 2 - 1]);

  const auto costs = relation.SimulatedCosts();
  std::printf("simulated device time: %.2f ms (incl. %.2f ms of occlusion-query "
              "stalls), transfer %.2f ms\n",
              costs.DeviceSeconds() * 1e3, costs.setup_s * 1e3, costs.transfer_s * 1e3);
  return 0;
}
