// DSMS load-shedding example — §1's motivation, quantified: a stream
// arriving faster than the summary pipeline can absorb forces the ingress
// queue to shed elements, and shedding costs heavy-hitter recall. The
// backend that sorts windows faster keeps up at rates where the slower one
// sheds.
//
//   $ ./examples/dsms_load_shedding

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/frequency_estimator.h"
#include "sketch/exact.h"
#include "stream/dsms.h"
#include "stream/generator.h"

namespace {

using namespace streamgpu;

struct RunResult {
  double shed_pct = 0;
  double top_count_pct = 0;  // estimated count of the hottest value / truth
};

RunResult RunPipeline(core::Backend backend, double arrival_rate_hz,
                      std::size_t n, float top_value, std::uint64_t top_count) {
  core::Options opt;
  opt.epsilon = 1.0 / 65536;  // 64K-element windows (see Fig. 5)
  opt.backend = backend;
  core::FrequencyEstimator estimator(opt);

  stream::DsmsSimulator sim({.arrival_rate_hz = arrival_rate_hz,
                             .queue_capacity = 1 << 17,
                             .service_chunk = 1 << 14});
  stream::StreamGenerator source({.distribution = stream::Distribution::kZipf,
                                  .seed = 99,
                                  .domain_size = 2000});
  double last_cost = 0;
  const auto r = sim.Run(&source, n, [&](std::span<const float> chunk) {
    estimator.ObserveBatch(chunk);
    // Service time = the simulated 2005-hardware time this chunk added.
    const double now = estimator.SimulatedSeconds();
    const double service = now - last_cost;
    last_cost = now;
    return service;
  });
  estimator.Flush();

  RunResult out;
  out.shed_pct = 100.0 * r.shed_fraction();
  out.top_count_pct = 100.0 * static_cast<double>(estimator.EstimateCount(top_value)) /
                      static_cast<double>(top_count);
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 1 << 21;

  // Ground truth: the hottest value's exact frequency over the full stream.
  stream::StreamGenerator reference({.distribution = stream::Distribution::kZipf,
                                     .seed = 99,
                                     .domain_size = 2000});
  const auto full_stream = reference.Take(kN);
  const auto top = sketch::ExactHeavyHitters(full_stream, 0.01).front();

  std::printf("DSMS ingestion under increasing arrival rates (N=%zu, epsilon=1/65536).\n"
              "Shed elements never reach the summary, so the hottest value's estimated\n"
              "count decays with the shed fraction — the Sec. 1 resource-limit story.\n"
              "(At this window size the two backends are nearly matched; see Fig. 5.)\n\n",
              kN);
  std::printf("%14s | %12s %14s | %12s %14s\n", "arrival(M/s)", "gpu-shed(%)",
              "gpu-topcount(%)", "cpu-shed(%)", "cpu-topcount(%)");

  for (double rate : {4e6, 8e6, 12e6, 24e6, 48e6}) {
    const RunResult gpu =
        RunPipeline(core::Backend::kGpuPbsn, rate, kN, top.first, top.second);
    const RunResult cpu =
        RunPipeline(core::Backend::kCpuQuicksort, rate, kN, top.first, top.second);
    std::printf("%14.0f | %12.1f %14.1f | %12.1f %14.1f\n", rate / 1e6, gpu.shed_pct,
                gpu.top_count_pct, cpu.shed_pct, cpu.top_count_pct);
  }
  return 0;
}
