// Finance-log example (§1's finance motivation): maintain running quantiles
// of tick prices — median, quartiles, and tail percentiles — over both the
// full session and a sliding intraday window, and use them to flag outlier
// prints.
//
//   $ ./examples/finance_ticks

#include <cstdio>
#include <vector>

#include "core/quantile_estimator.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;

  // Whole-session quantiles at tight accuracy, plus a 100K-tick sliding view.
  core::Options session_opt;
  session_opt.epsilon = 1e-3;
  session_opt.backend = core::Backend::kGpuPbsn;
  core::QuantileEstimator session(session_opt);

  core::Options window_opt = session_opt;
  window_opt.epsilon = 5e-3;
  window_opt.sliding_window = 100'000;
  core::QuantileEstimator recent(window_opt);

  stream::StreamGenerator ticks({.distribution = stream::Distribution::kFinanceTicks,
                                 .seed = 314,
                                 .start_price = 100.0,
                                 .volatility = 0.08});

  constexpr std::size_t kTicks = 800'000;
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < kTicks; ++i) {
    const float price = ticks.Next();
    session.Observe(price);
    recent.Observe(price);

    // Flag prints outside the recent 1st..99th percentile band (checked
    // every 10K ticks once enough history exists).
    if (i >= 200'000 && i % 10'000 == 0) {
      const float lo = recent.Quantile(0.01).value;
      const float hi = recent.Quantile(0.99).value;
      if (price < lo || price > hi) ++outliers;
    }
  }
  session.Flush();
  recent.Flush();

  std::printf("ticks processed: %llu\n",
              static_cast<unsigned long long>(session.processed_length()));
  std::printf("%-28s %10s %10s\n", "", "session", "last-100K");
  for (const auto& [label, phi] :
       std::vector<std::pair<const char*, double>>{{"1st percentile", 0.01},
                                                   {"lower quartile", 0.25},
                                                   {"median", 0.50},
                                                   {"upper quartile", 0.75},
                                                   {"99th percentile", 0.99}}) {
    std::printf("%-28s %10.2f %10.2f\n", label, session.Quantile(phi).value,
                recent.Quantile(phi).value);
  }
  std::printf("outlier prints flagged during session: %zu\n", outliers);
  std::printf("memory: %zu tuples (session) + %zu tuples (sliding)\n",
              session.summary_size(), recent.summary_size());
  std::printf("simulated pipeline time: %.1f ms (session), %.1f ms (sliding)\n",
              session.SimulatedSeconds() * 1e3, recent.SimulatedSeconds() * 1e3);
  return 0;
}
