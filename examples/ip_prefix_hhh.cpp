// Hierarchical heavy hitters over IP-style addresses — the extension query
// §1.2 names ("hierarchical heavy hitter ... queries"). Addresses are
// 16-bit values aggregated 4 bits at a time (branch 16), like rolling up
// /16 -> /12 -> /8 -> /4 prefixes; the report finds subnets whose aggregate
// traffic is heavy even when no single host is.
//
//   $ ./examples/ip_prefix_hhh

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "sketch/hierarchical.h"

int main() {
  using namespace streamgpu;

  // Four levels of 4-bit aggregation above the 16-bit "addresses".
  sketch::HierarchicalHeavyHitters hhh(/*epsilon=*/0.002, /*levels=*/4,
                                       /*branch=*/16.0);

  // Traffic: background scatter across the whole space, one hot host, and
  // one hot /12 subnet whose individual hosts are all light.
  std::mt19937 rng(2718);
  std::uniform_int_distribution<int> background(0, 0xFFFF);
  std::uniform_int_distribution<int> hot_subnet(0x1230, 0x123F);  // 16 hosts
  std::vector<float> stream;
  constexpr int kPackets = 600'000;
  for (int i = 0; i < kPackets; ++i) {
    const int r = i % 20;
    if (r < 4) {
      stream.push_back(0x4242);  // hot host: 20% of traffic
    } else if (r < 9) {
      stream.push_back(static_cast<float>(hot_subnet(rng)));  // hot subnet: 25%
    } else {
      stream.push_back(static_cast<float>(background(rng)));
    }
  }

  // Feed in sorted windows (the pipeline's GPU-sorted histograms; here the
  // sort runs on the host for brevity — see examples/quickstart for the
  // full backend plumbing).
  const std::uint64_t w = hhh.window_width();
  for (std::size_t off = 0; off < stream.size(); off += w) {
    const std::size_t len = std::min<std::size_t>(w, stream.size() - off);
    std::vector<float> window(stream.begin() + off, stream.begin() + off + len);
    std::sort(window.begin(), window.end());
    hhh.AddSortedWindow(window);
  }

  std::printf("hierarchical heavy hitters at 10%% support "
              "(%d packets, 16-bit addresses, 4-bit rollup):\n\n", kPackets);
  std::printf("%-8s %-12s %14s %18s\n", "level", "prefix", "subtree-count",
              "discounted-count");
  for (const auto& r : hhh.Query(0.10)) {
    std::printf("%-8d 0x%04X/%-5d %14llu %18llu\n", r.level,
                static_cast<unsigned>(r.prefix) << (4 * r.level), 16 - 4 * r.level,
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.discounted_count));
  }

  std::printf("\nExpected: host 0x4242 (level 0) and the 0x1230/12 subnet "
              "(level 1) — the subnet is heavy only in aggregate.\n");
  std::printf("summary footprint across all levels: %zu entries\n",
              hhh.summary_size());
  return 0;
}
