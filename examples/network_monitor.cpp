// Network-monitoring example (§1's high-speed networking motivation):
// track heavy-hitter flows over a sliding window of the most recent traffic,
// the classic DSMS task — "which flows used more than s% of the last W
// packets?" — with epsilon-approximate guarantees and bounded memory.
//
//   $ ./examples/network_monitor
//
// The synthetic trace interleaves Zipf-popular flows in bursts; halfway
// through, a "hot" flow starts flooding, and the sliding-window estimator
// catches it while the expired early traffic no longer influences answers.

#include <cstdio>
#include <vector>

#include "core/frequency_estimator.h"
#include "stream/generator.h"

namespace {

void Report(const streamgpu::core::FrequencyEstimator& monitor, double support,
            const char* when) {
  std::printf("--- %s: flows above %.1f%% of the last %llu packets ---\n", when,
              support * 100,
              static_cast<unsigned long long>(monitor.options().sliding_window));
  const streamgpu::core::FrequencyReport report = monitor.HeavyHitters(support);
  for (const auto& item : report.items) {
    std::printf("   flow %5.0f   >= %6llu packets\n", item.value,
                static_cast<unsigned long long>(item.estimate));
  }
  std::printf("   (undercount <= %llu over the last %llu packets)\n",
              static_cast<unsigned long long>(report.error_bound),
              static_cast<unsigned long long>(report.window_coverage));
}

}  // namespace

int main() {
  using namespace streamgpu;

  core::Options options;
  options.epsilon = 0.005;           // 0.5% of the window
  options.sliding_window = 200'000;  // the last 200K packets
  options.backend = core::Backend::kGpuPbsn;
  auto created = core::FrequencyEstimator::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 created.status().message().c_str());
    return 2;
  }
  core::FrequencyEstimator& monitor = **created;

  // Phase 1: normal traffic — bursty flows with Zipf popularity.
  stream::StreamGenerator normal({.distribution = stream::Distribution::kNetworkFlows,
                                  .seed = 7,
                                  .domain_size = 5000,
                                  .zipf_s = 1.1,
                                  .mean_burst = 6.0});
  // Queries are valid mid-stream: they reflect every fully merged window, so
  // no Flush() is needed between phases (Flush() now finalizes the stream).
  for (int i = 0; i < 400'000; ++i) monitor.Observe(normal.Next());
  Report(monitor, 0.02, "baseline");

  // Phase 2: flow 1776 floods 30% of the traffic (e.g. a DDoS source or an
  // elephant flow).
  stream::StreamGenerator mixed({.distribution = stream::Distribution::kNetworkFlows,
                                 .seed = 8,
                                 .domain_size = 5000,
                                 .zipf_s = 1.1,
                                 .mean_burst = 6.0});
  for (int i = 0; i < 300'000; ++i) {
    monitor.Observe(i % 10 < 3 ? 1776.0f : mixed.Next());
  }
  Report(monitor, 0.02, "during flood");
  std::printf("flow 1776 estimated packets in window: %llu\n",
              static_cast<unsigned long long>(monitor.EstimateCount(1776.0f)));

  // Phase 3: flood stops; once the window slides past it, flow 1776 drops
  // out of the report.
  for (int i = 0; i < 300'000; ++i) monitor.Observe(normal.Next());
  monitor.Flush();  // end of stream: finalize the last partial window
  Report(monitor, 0.02, "after flood expired");
  std::printf("flow 1776 estimated packets in window: %llu\n",
              static_cast<unsigned long long>(monitor.EstimateCount(1776.0f)));

  std::printf("\nsummary footprint: %zu entries for a %llu-packet window "
              "(simulated pipeline time %.1f ms)\n",
              monitor.summary_size(),
              static_cast<unsigned long long>(options.sliding_window),
              monitor.SimulatedSeconds() * 1e3);
  return 0;
}
