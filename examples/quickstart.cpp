// Quickstart: mine quantiles and heavy hitters from a stream with the
// GPU-accelerated (simulated) pipeline in a dozen lines.
//
//   $ ./examples/quickstart
//
// Feeds one million Zipf-distributed values through a StreamMiner configured
// with epsilon = 1e-3 on the GPU PBSN backend, then asks for the median, the
// 99th percentile, and every value above 1% support.

#include <cstdio>

#include "core/stream_miner.h"
#include "stream/generator.h"

int main() {
  using namespace streamgpu;

  // 1. Configure: approximation budget and backend. Create() validates the
  //    options and reports configuration errors instead of aborting.
  core::Options options;
  options.epsilon = 1e-3;                        // answers within 0.1% of N
  options.backend = core::Backend::kGpuPbsn;     // the paper's GPU sort
  auto created = core::StreamMiner::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 created.status().message().c_str());
    return 2;
  }
  core::StreamMiner& miner = **created;

  // 2. Stream data through it (any float source works; here a synthetic
  //    Zipf stream standing in for a network/web-click log).
  stream::StreamGenerator source({.distribution = stream::Distribution::kZipf,
                                  .seed = 2025,
                                  .domain_size = 1000});
  constexpr std::size_t kStreamLength = 1'000'000;
  for (std::size_t i = 0; i < kStreamLength; ++i) miner.Observe(source.Next());
  miner.Flush();  // end of stream: finalize the last partial window

  // 3. Query.
  std::printf("stream length           : %llu\n",
              static_cast<unsigned long long>(miner.quantiles().processed_length()));
  const core::QuantileReport median = miner.quantiles().Quantile(0.50);
  std::printf("median (phi = 0.50)     : %.0f (rank error <= %llu)\n", median.value,
              static_cast<unsigned long long>(median.rank_error_bound));
  std::printf("p99    (phi = 0.99)     : %.0f\n",
              miner.quantiles().Quantile(0.99).value);

  const core::FrequencyReport hh = miner.frequencies().HeavyHitters(0.01);
  std::printf("heavy hitters (s = 1%%) :\n");
  for (const auto& item : hh.items) {
    std::printf("   value %4.0f  count >= %llu\n", item.value,
                static_cast<unsigned long long>(item.estimate));
  }

  // 4. Inspect cost: simulated 2005-hardware time and summary footprint.
  std::printf("simulated GPU-pipeline time : %.1f ms (frequencies) + %.1f ms (quantiles)\n",
              miner.frequencies().SimulatedSeconds() * 1e3,
              miner.quantiles().SimulatedSeconds() * 1e3);
  std::printf("summary sizes               : %zu frequency entries, %zu quantile tuples\n",
              miner.frequencies().summary_size(), miner.quantiles().summary_size());
  return 0;
}
