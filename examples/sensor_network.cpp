// Sensor-network quantile aggregation example — the Greenwald-Khanna
// setting §5.2 builds on: a tree of sensor nodes each holding local
// observations; summaries flow up the tree with bounded communication, and
// the root answers epsilon-approximate quantile queries over the union.
//
//   $ ./examples/sensor_network

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "sketch/exact.h"
#include "sketch/sensor_tree.h"

int main() {
  using namespace streamgpu;

  // 64 sensors in a 4-ary tree (height 4 including the root hop), each with
  // 10K temperature-like readings around a per-sensor offset.
  constexpr int kSensors = 64;
  constexpr int kFanout = 4;
  constexpr std::size_t kReadingsPerSensor = 10000;
  const double epsilon = 0.01;

  std::mt19937 rng(515);
  std::vector<std::vector<float>> sensor_data(kSensors);
  for (int s = 0; s < kSensors; ++s) {
    std::normal_distribution<float> readings(20.0f + 0.1f * static_cast<float>(s),
                                             3.0f);
    sensor_data[s].resize(kReadingsPerSensor);
    for (float& v : sensor_data[s]) v = readings(rng);
    std::sort(sensor_data[s].begin(), sensor_data[s].end());
  }

  sketch::SensorTreeAggregator tree(epsilon, /*height=*/4);
  const sketch::GkSummary root = tree.AggregateComplete(sensor_data, kFanout);

  std::vector<float> all;
  for (const auto& sensor : sensor_data) all.insert(all.end(), sensor.begin(), sensor.end());

  std::printf("%d sensors x %zu readings, fanout %d, epsilon %.2f\n\n", kSensors,
              kReadingsPerSensor, kFanout, epsilon);
  std::printf("%-20s %12s %12s\n", "quantile", "aggregated", "exact");
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    std::printf("%-20.2f %12.2f %12.2f\n", phi, root.Query(phi),
                sketch::ExactQuantile(all, phi));
  }

  const double raw = static_cast<double>(all.size());
  std::printf("\ncommunication: %llu tuples transmitted vs %zu raw readings "
              "(%.1f%% of shipping everything)\n",
              static_cast<unsigned long long>(tree.tuples_transmitted()), all.size(),
              100.0 * static_cast<double>(tree.tuples_transmitted()) / raw);
  std::printf("root summary: %zu tuples, epsilon bound %.4f\n", root.size(),
              root.epsilon());
  return 0;
}
