// Sorting-backend comparison: sorts the same array with every backend and
// prints correctness, work counts, and simulated-2005-hardware timings side
// by side — a compact tour of the library's sorting layer (§4).
//
//   $ ./examples/sort_comparison [n]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"

int main(int argc, char** argv) {
  using namespace streamgpu;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 262144;
  stream::StreamGenerator gen({.distribution = stream::Distribution::kUniformReal,
                               .seed = 99});
  const auto data = gen.Take(n);
  auto expected = data;
  std::sort(expected.begin(), expected.end());

  gpu::GpuDevice device;
  sort::PbsnOptions pbsn_opt;
  pbsn_opt.format = gpu::Format::kFloat32;
  sort::PbsnGpuSorter pbsn(&device, hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400,
                           pbsn_opt);
  sort::BitonicGpuSorter bitonic(&device, hwmodel::kGeForce6800Ultra);
  sort::QuicksortSorter intel(hwmodel::kPentium4_3400);
  sort::QuicksortSorter msvc(hwmodel::kPentium4_3400Msvc);
  sort::StdSortSorter stdsort(hwmodel::kPentium4_3400);

  std::printf("sorting %zu random floats with every backend:\n\n", n);
  std::printf("%-16s %10s %16s %14s\n", "backend", "correct", "comparisons",
              "simulated(ms)");

  sort::Sorter* sorters[] = {&pbsn, &bitonic, &intel, &msvc, &stdsort};
  for (sort::Sorter* sorter : sorters) {
    auto copy = data;
    sorter->Sort(copy);
    std::printf("%-16s %10s %16llu %14.2f\n", sorter->name(),
                copy == expected ? "yes" : "NO",
                static_cast<unsigned long long>(sorter->last_run().comparisons),
                sorter->last_run().simulated_seconds * 1e3);
  }

  std::printf("\nGPU PBSN device-side breakdown: device %.2f ms, transfer %.2f ms, "
              "CPU 4-way merge %.2f ms\n",
              pbsn.last_run().sim_device_seconds * 1e3,
              pbsn.last_run().sim_transfer_seconds * 1e3,
              pbsn.last_run().sim_merge_seconds * 1e3);
  std::printf("render passes: %llu draws, %llu framebuffer-to-texture copies\n",
              static_cast<unsigned long long>(pbsn.last_stats().draw_calls),
              static_cast<unsigned long long>(pbsn.last_stats().fb_to_texture_copies));
  return 0;
}
