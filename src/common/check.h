// Lightweight runtime assertion macros, in the spirit of Arrow's DCHECK family.
//
// The library is exception-free (Google style); invariant violations are
// programming errors and abort with a diagnostic rather than unwinding.

#ifndef STREAMGPU_COMMON_CHECK_H_
#define STREAMGPU_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace streamgpu {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "streamgpu: CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace streamgpu

/// Aborts with a diagnostic when `expr` evaluates to false. Always enabled.
#define STREAMGPU_CHECK(expr)                                        \
  do {                                                               \
    if (!(expr)) ::streamgpu::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like STREAMGPU_CHECK but with a human-readable explanation.
#define STREAMGPU_CHECK_MSG(expr, msg)                                \
  do {                                                                \
    if (!(expr)) ::streamgpu::CheckFailed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Debug-only check; compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define STREAMGPU_DCHECK(expr) \
  do {                         \
  } while (0)
#else
#define STREAMGPU_DCHECK(expr) STREAMGPU_CHECK(expr)
#endif

#endif  // STREAMGPU_COMMON_CHECK_H_
