// Helpers for reading benchmark scale factors and flags from the environment.

#ifndef STREAMGPU_COMMON_ENV_H_
#define STREAMGPU_COMMON_ENV_H_

#include <cstdlib>
#include <string>

namespace streamgpu {

/// Returns the value of environment variable `name` parsed as a double, or
/// `fallback` when unset or unparsable.
inline double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

/// Returns the value of environment variable `name` parsed as a long, or
/// `fallback` when unset or unparsable.
inline long GetEnvLong(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

/// Global benchmark scale factor (STREAMGPU_SCALE). 1.0 keeps the
/// seconds-level default sizes; larger values move toward the paper's full
/// 8M-element sorts and 100M-element streams.
inline double BenchScale() { return GetEnvDouble("STREAMGPU_SCALE", 1.0); }

}  // namespace streamgpu

#endif  // STREAMGPU_COMMON_ENV_H_
