// Wall-clock timing helper used by the benchmark harness and the pipeline's
// per-operation cost accounting.

#ifndef STREAMGPU_COMMON_TIMER_H_
#define STREAMGPU_COMMON_TIMER_H_

#include <chrono>

namespace streamgpu {

/// Monotonic wall-clock stopwatch with millisecond/second readouts.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction or the last Reset(), in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamgpu

#endif  // STREAMGPU_COMMON_TIMER_H_
