#include "core/backend.h"

#include "common/check.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"

namespace streamgpu::core {

SortEngine::SortEngine(const Options& options) {
  switch (options.backend) {
    case Backend::kGpuPbsn: {
      device_ = std::make_unique<gpu::GpuDevice>();
      sort::PbsnOptions pbsn;
      pbsn.format = options.gpu_format;
      sorter_ = std::make_unique<sort::PbsnGpuSorter>(
          device_.get(), hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400, pbsn);
      batch_windows_ = gpu::kNumChannels;
      break;
    }
    case Backend::kGpuBitonic:
      device_ = std::make_unique<gpu::GpuDevice>();
      sorter_ = std::make_unique<sort::BitonicGpuSorter>(
          device_.get(), hwmodel::kGeForce6800Ultra, options.gpu_format);
      break;
    case Backend::kCpuQuicksort:
      sorter_ = std::make_unique<sort::QuicksortSorter>(hwmodel::kPentium4_3400);
      break;
    case Backend::kCpuStdSort:
      sorter_ = std::make_unique<sort::StdSortSorter>(hwmodel::kPentium4_3400);
      break;
  }
  STREAMGPU_CHECK(sorter_ != nullptr);
}

}  // namespace streamgpu::core
