#include "core/backend.h"

#include "common/check.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/bitonic_gpu.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "sort/planned.h"
#include "sort/radix_sort.h"
#include "sort/sample_sort.h"

namespace streamgpu::core {

SortEngine::SortEngine(const Options& options) {
  switch (options.backend) {
    case Backend::kGpuPbsn: {
      device_ = std::make_unique<gpu::GpuDevice>();
      sort::PbsnOptions pbsn;
      pbsn.format = options.gpu_format;
      sorter_ = std::make_unique<sort::PbsnGpuSorter>(
          device_.get(), hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400, pbsn);
      batch_windows_ = gpu::kNumChannels;
      break;
    }
    case Backend::kGpuBitonic:
      device_ = std::make_unique<gpu::GpuDevice>();
      sorter_ = std::make_unique<sort::BitonicGpuSorter>(
          device_.get(), hwmodel::kGeForce6800Ultra, options.gpu_format);
      break;
    case Backend::kCpuQuicksort:
      sorter_ = std::make_unique<sort::QuicksortSorter>(hwmodel::kPentium4_3400);
      break;
    case Backend::kCpuStdSort:
      sorter_ = std::make_unique<sort::StdSortSorter>(hwmodel::kPentium4_3400);
      break;
    case Backend::kCpuRadixMerge:
      sorter_ = std::make_unique<sort::RadixMergeSorter>(hwmodel::kPentium4_3400);
      break;
    case Backend::kSampleSort:
      sorter_ = std::make_unique<sort::SampleSortSorter>(hwmodel::kPentium4_3400);
      break;
    case Backend::kAuto: {
      // Candidate pool: the paper's GPU sort plus the two second-generation
      // host sorts and the paper's CPU baseline. Candidate order is the
      // deterministic tiebreak.
      device_ = std::make_unique<gpu::GpuDevice>();
      sort::PbsnOptions pbsn;
      pbsn.format = options.gpu_format;
      candidate_sorters_.push_back(std::make_unique<sort::PbsnGpuSorter>(
          device_.get(), hwmodel::kGeForce6800Ultra, hwmodel::kPentium4_3400,
          pbsn));
      candidate_sorters_.push_back(
          std::make_unique<sort::SampleSortSorter>(hwmodel::kPentium4_3400));
      candidate_sorters_.push_back(
          std::make_unique<sort::RadixMergeSorter>(hwmodel::kPentium4_3400));
      candidate_sorters_.push_back(
          std::make_unique<sort::QuicksortSorter>(hwmodel::kPentium4_3400));
      const std::vector<hwmodel::SortBackend> kinds = {
          hwmodel::SortBackend::kGpuPbsn, hwmodel::SortBackend::kSampleSort,
          hwmodel::SortBackend::kCpuRadixMerge,
          hwmodel::SortBackend::kCpuQuicksort};
      hwmodel::SortPlannerConfig config;
      config.memcpy_ns_per_byte = options.planner.memcpy_ns_per_byte;
      const hwmodel::PlanObjective objective =
          options.planner.objective == PlannerConfig::Objective::kSimulated2005
              ? hwmodel::PlanObjective::kSimulated2005
              : hwmodel::PlanObjective::kHostWall;
      planner_ =
          std::make_unique<hwmodel::SortPlanner>(config, objective, kinds);
      std::vector<sort::PlannedSorter::Candidate> candidates;
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        candidates.push_back({kinds[i], candidate_sorters_[i].get()});
      }
      sorter_ = std::make_unique<sort::PlannedSorter>(
          planner_.get(), std::move(candidates), options.obs, "sort.");
      // Keep the four-window RGBA batching so the PBSN candidate packs
      // channels when the planner picks it.
      batch_windows_ = gpu::kNumChannels;
      break;
    }
  }
  STREAMGPU_CHECK(sorter_ != nullptr);
}

std::vector<std::unique_ptr<SortEngine>> MakeWorkerEngines(const Options& options,
                                                           int count) {
  STREAMGPU_CHECK_MSG(count >= 1, "worker count must be >= 1");
  std::vector<std::unique_ptr<SortEngine>> engines;
  engines.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    engines.push_back(std::make_unique<SortEngine>(options));
  }
  return engines;
}

stream::PipelineConfig MakePipelineConfig(const Options& options,
                                          std::uint64_t window_size,
                                          int batch_windows,
                                          const char* trace_label) {
  stream::PipelineConfig config;
  config.window_size = window_size;
  config.trace = options.obs.trace;
  config.trace_label = trace_label;
  config.flight = options.obs.flight;
  if (options.max_windows_in_flight > 0) {
    config.max_batches_in_flight =
        (options.max_windows_in_flight + batch_windows - 1) / batch_windows;
    if (config.max_batches_in_flight < 1) config.max_batches_in_flight = 1;
  }
  config.drain_deadline_seconds = options.fault.drain_deadline_seconds;
  return config;
}

}  // namespace streamgpu::core
