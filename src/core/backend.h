// Backend factory: owns the simulated GPU device (for the GPU backends) and
// the Sorter instance the estimators drive.

#ifndef STREAMGPU_CORE_BACKEND_H_
#define STREAMGPU_CORE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/options.h"
#include "gpu/device.h"
#include "hwmodel/sort_planner.h"
#include "sort/sorter.h"
#include "stream/pipeline.h"

namespace streamgpu::core {

/// A ready-to-use sorting engine for one estimator.
class SortEngine {
 public:
  /// Builds the sorter (and, for GPU backends, the simulated device) for
  /// `options`. Hardware profiles are the paper's testbed (GeForce 6800
  /// Ultra / 3.4 GHz Pentium IV).
  explicit SortEngine(const Options& options);

  sort::Sorter& sorter() { return *sorter_; }
  const sort::Sorter& sorter() const { return *sorter_; }

  /// True for the GPU-backed configurations.
  bool is_gpu() const { return device_ != nullptr; }

  /// The simulated device (GPU backends only; nullptr otherwise).
  gpu::GpuDevice* device() { return device_.get(); }
  const gpu::GpuDevice* device() const { return device_.get(); }

  /// Number of windows worth buffering per sort batch: four for the PBSN
  /// backend (one per RGBA channel, §4.1), one otherwise.
  int batch_windows() const { return batch_windows_; }

  /// The cost-model planner (Backend::kAuto only; nullptr otherwise).
  const hwmodel::SortPlanner* planner() const { return planner_.get(); }

 private:
  std::unique_ptr<gpu::GpuDevice> device_;
  // kAuto only: the concrete candidates the planned sorter dispatches to,
  // and the immutable planner they share. Declared before sorter_ so the
  // dispatcher is destroyed before the sorters it borrows.
  std::vector<std::unique_ptr<sort::Sorter>> candidate_sorters_;
  std::unique_ptr<hwmodel::SortPlanner> planner_;
  std::unique_ptr<sort::Sorter> sorter_;
  int batch_windows_ = 1;
};

/// Builds one SortEngine per pipeline sort worker. Every worker gets its own
/// engine — and therefore, on the GPU backends, its own simulated device —
/// so GpuStats accounting never races across threads.
std::vector<std::unique_ptr<SortEngine>> MakeWorkerEngines(const Options& options,
                                                           int count);

/// Pipeline configuration derived from the estimator options:
/// Options::max_windows_in_flight (a window count) is rounded up to whole
/// sort batches of `batch_windows` windows; 0 keeps the pipeline default.
/// Options::obs.trace is forwarded so the pipeline threads appear in the
/// trace under `trace_label` ("freq"/"quant").
stream::PipelineConfig MakePipelineConfig(const Options& options,
                                          std::uint64_t window_size,
                                          int batch_windows,
                                          const char* trace_label);

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_BACKEND_H_
