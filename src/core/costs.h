// Per-operation cost accounting for a whole estimator pipeline: the
// sort / merge / compress split that Fig. 6 reports, in both host wall-clock
// and simulated 2005-hardware time.
//
// Two clocks coexist here — docs/COST_MODEL.md explains the split in full:
// * `*_wall_seconds` fields time the simulator itself on the host and depend
//   on load, worker count, and machine. They never feed the simulated model.
// * Operation counts (`histogram_elements`, `merged_entries`, ...) are exact
//   and deterministic; the Simulated*Seconds() helpers convert them into
//   2005-testbed time via hwmodel. Pipelined execution (Options::
//   num_sort_workers >= 2) changes the wall-clock fields but leaves every
//   count — and therefore every simulated figure — bit-identical to serial.

#ifndef STREAMGPU_CORE_COSTS_H_
#define STREAMGPU_CORE_COSTS_H_

#include <cstdint>

#include "hwmodel/cpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::core {

/// Accumulated cost record of one estimator.
struct PipelineCosts {
  /// Sorting work (GPU or CPU depending on backend), accumulated over every
  /// window.
  sort::SortRunInfo sort;

  /// Host wall-clock of the non-sort summary operations.
  double histogram_wall_seconds = 0;
  double merge_wall_seconds = 0;
  double compress_wall_seconds = 0;

  /// Operation counts feeding the P4 model for the non-sort operations
  /// (these always run on the CPU, in both backend configurations).
  std::uint64_t histogram_elements = 0;
  std::uint64_t merged_entries = 0;
  std::uint64_t compressed_entries = 0;

  /// Wall-clock overlap accounting of the parallel ingest pipeline (zero in
  /// serial mode). Mirrors stream::PipelineWaitStats; host wall-clock only,
  /// never part of the simulated totals.
  double ingest_stall_seconds = 0;       ///< Observe() blocked on backpressure
  double sort_queue_wait_seconds = 0;    ///< batches waited for a free worker
  double drain_queue_wait_seconds = 0;   ///< sorted batches waited for in-order drain
  double sort_wall_seconds = 0;          ///< summed worker time inside SortRuns
  double drain_wall_seconds = 0;         ///< summary-thread time merging windows
  std::uint64_t pipelined_batches = 0;   ///< batches that went through the pipeline

  /// Simulated P4 time of the histogram scan (linear pass over each sorted
  /// window).
  double SimulatedHistogramSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(histogram_elements, sizeof(float),
                                   /*cycles_per_element=*/3.0);
  }

  /// Simulated P4 time of summary merges (linear merge of sorted entry
  /// lists; an entry is ~16 bytes).
  double SimulatedMergeSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(merged_entries, 16, /*cycles_per_element=*/8.0);
  }

  /// Simulated P4 time of compress passes.
  double SimulatedCompressSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(compressed_entries, 16, /*cycles_per_element=*/4.0);
  }

  /// End-to-end simulated time: sort (backend hardware) + summary
  /// operations (always CPU).
  double SimulatedTotalSeconds(const hwmodel::CpuModel& model) const {
    return sort.simulated_seconds + SimulatedHistogramSeconds(model) +
           SimulatedMergeSeconds(model) + SimulatedCompressSeconds(model);
  }
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_COSTS_H_
