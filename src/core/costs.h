// Per-operation cost accounting for a whole estimator pipeline: the
// sort / merge / compress split that Fig. 6 reports, in both host wall-clock
// and simulated 2005-hardware time.

#ifndef STREAMGPU_CORE_COSTS_H_
#define STREAMGPU_CORE_COSTS_H_

#include <cstdint>

#include "hwmodel/cpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::core {

/// Accumulated cost record of one estimator.
struct PipelineCosts {
  /// Sorting work (GPU or CPU depending on backend), accumulated over every
  /// window.
  sort::SortRunInfo sort;

  /// Host wall-clock of the non-sort summary operations.
  double histogram_wall_seconds = 0;
  double merge_wall_seconds = 0;
  double compress_wall_seconds = 0;

  /// Operation counts feeding the P4 model for the non-sort operations
  /// (these always run on the CPU, in both backend configurations).
  std::uint64_t histogram_elements = 0;
  std::uint64_t merged_entries = 0;
  std::uint64_t compressed_entries = 0;

  /// Simulated P4 time of the histogram scan (linear pass over each sorted
  /// window).
  double SimulatedHistogramSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(histogram_elements, sizeof(float),
                                   /*cycles_per_element=*/3.0);
  }

  /// Simulated P4 time of summary merges (linear merge of sorted entry
  /// lists; an entry is ~16 bytes).
  double SimulatedMergeSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(merged_entries, 16, /*cycles_per_element=*/8.0);
  }

  /// Simulated P4 time of compress passes.
  double SimulatedCompressSeconds(const hwmodel::CpuModel& model) const {
    return model.LinearPassSeconds(compressed_entries, 16, /*cycles_per_element=*/4.0);
  }

  /// End-to-end simulated time: sort (backend hardware) + summary
  /// operations (always CPU).
  double SimulatedTotalSeconds(const hwmodel::CpuModel& model) const {
    return sort.simulated_seconds + SimulatedHistogramSeconds(model) +
           SimulatedMergeSeconds(model) + SimulatedCompressSeconds(model);
  }
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_COSTS_H_
