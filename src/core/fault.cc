#include "core/fault.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/flight_recorder.h"

namespace streamgpu::core {
namespace {

// splitmix64 finalizer: the only randomness source in the injector, so fault
// decisions depend on nothing but (seed, stream id, site, op index, rule).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

gpu::DeviceFault::Kind ToDeviceKind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return gpu::DeviceFault::Kind::kBitFlip;
    case FaultKind::kNan:
      return gpu::DeviceFault::Kind::kNan;
    case FaultKind::kTruncateHalf:
      return gpu::DeviceFault::Kind::kTruncateHalf;
    case FaultKind::kDeviceLost:
      return gpu::DeviceFault::Kind::kDeviceLost;
    case FaultKind::kStall:
      return gpu::DeviceFault::Kind::kStall;
  }
  return gpu::DeviceFault::Kind::kNone;
}

FaultSite FromDeviceSite(gpu::DeviceFaultSite site) {
  switch (site) {
    case gpu::DeviceFaultSite::kUpload:
      return FaultSite::kGpuUpload;
    case gpu::DeviceFaultSite::kPass:
      return FaultSite::kGpuPass;
    case gpu::DeviceFaultSite::kReadback:
      return FaultSite::kGpuReadback;
  }
  return FaultSite::kGpuPass;
}

Status ParseError(const std::string& rule, const std::string& why) {
  return Status::InvalidArgument("fault plan: bad rule '" + rule + "': " + why);
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || std::isnan(v)) return false;
  *out = v;
  return true;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kGpuUpload:
      return "upload";
    case FaultSite::kGpuPass:
      return "pass";
    case FaultSite::kGpuReadback:
      return "readback";
    case FaultSite::kQueue:
      return "queue";
  }
  return "?";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kNan:
      return "nan";
    case FaultKind::kTruncateHalf:
      return "half";
    case FaultKind::kDeviceLost:
      return "lost";
    case FaultKind::kStall:
      return "stall";
  }
  return "?";
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (spec.empty()) return plan;

  std::stringstream rules_in(spec);
  std::string rule_spec;
  while (std::getline(rules_in, rule_spec, ';')) {
    if (rule_spec.empty()) continue;
    FaultRule rule;

    // site : kind [: params]
    const std::size_t c1 = rule_spec.find(':');
    if (c1 == std::string::npos) return ParseError(rule_spec, "expected site:kind");
    const std::size_t c2 = rule_spec.find(':', c1 + 1);
    const std::string site = rule_spec.substr(0, c1);
    const std::string kind =
        rule_spec.substr(c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);

    if (site == "upload") {
      rule.site = FaultSite::kGpuUpload;
    } else if (site == "pass") {
      rule.site = FaultSite::kGpuPass;
    } else if (site == "readback") {
      rule.site = FaultSite::kGpuReadback;
    } else if (site == "queue") {
      rule.site = FaultSite::kQueue;
    } else {
      return ParseError(rule_spec, "unknown site '" + site +
                                       "' (want upload|pass|readback|queue)");
    }

    if (kind == "bitflip") {
      rule.kind = FaultKind::kBitFlip;
    } else if (kind == "nan") {
      rule.kind = FaultKind::kNan;
    } else if (kind == "half") {
      rule.kind = FaultKind::kTruncateHalf;
    } else if (kind == "lost") {
      rule.kind = FaultKind::kDeviceLost;
    } else if (kind == "stall") {
      rule.kind = FaultKind::kStall;
    } else {
      return ParseError(rule_spec,
                        "unknown kind '" + kind + "' (want bitflip|nan|half|lost|stall)");
    }

    bool have_trigger = false;
    if (c2 != std::string::npos) {
      std::stringstream params_in(rule_spec.substr(c2 + 1));
      std::string param;
      while (std::getline(params_in, param, ',')) {
        if (param.empty()) continue;
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos) return ParseError(rule_spec, "expected key=value, got '" + param + "'");
        const std::string key = param.substr(0, eq);
        const std::string value = param.substr(eq + 1);
        std::uint64_t u = 0;
        if (key == "every") {
          if (!ParseU64(value, &u) || u == 0)
            return ParseError(rule_spec, "every wants a positive integer");
          rule.every_n = u;
          have_trigger = true;
        } else if (key == "p") {
          double p = 0;
          if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0)
            return ParseError(rule_spec, "p wants a probability in [0, 1]");
          rule.probability = p;
          have_trigger = true;
        } else if (key == "after") {
          if (!ParseU64(value, &u)) return ParseError(rule_spec, "after wants an integer");
          rule.start_after = u;
        } else if (key == "max") {
          if (!ParseU64(value, &u)) return ParseError(rule_spec, "max wants an integer");
          rule.max_fires = u;
        } else if (key == "bit") {
          if (!ParseU64(value, &u) || u > 31)
            return ParseError(rule_spec, "bit wants an integer in [0, 31]");
          rule.bit = static_cast<int>(u);
        } else if (key == "stall_us") {
          if (!ParseU64(value, &u)) return ParseError(rule_spec, "stall_us wants an integer");
          rule.stall_us = static_cast<unsigned>(u);
        } else {
          return ParseError(rule_spec, "unknown key '" + key + "'");
        }
      }
    }
    if (!have_trigger) rule.every_n = 1;  // default: fire on every op
    if (rule.every_n > 0 && rule.probability > 0.0)
      return ParseError(rule_spec, "every and p are mutually exclusive");
    if (rule.site == FaultSite::kQueue && rule.kind != FaultKind::kStall)
      return ParseError(rule_spec, "queue site only supports stall faults");
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultRule& rule : rules) {
    if (!out.empty()) out += ';';
    out += FaultSiteName(rule.site);
    out += ':';
    out += FaultKindName(rule.kind);
    std::stringstream params;
    if (rule.every_n > 0) {
      params << ",every=" << rule.every_n;
    } else {
      params << ",p=" << rule.probability;
    }
    if (rule.start_after > 0) params << ",after=" << rule.start_after;
    if (rule.max_fires > 0) params << ",max=" << rule.max_fires;
    if (rule.kind == FaultKind::kBitFlip) params << ",bit=" << rule.bit;
    if (rule.kind == FaultKind::kStall) params << ",stall_us=" << rule.stall_us;
    std::string p = params.str();
    p[0] = ':';  // first ',' becomes the rule's params separator
    out += p;
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t stream_id)
    : plan_(plan), stream_id_(stream_id), rule_fires_(plan.rules.size(), 0) {}

gpu::DeviceFault FaultInjector::Evaluate(FaultSite site, std::uint64_t op_index) {
  gpu::DeviceFault fault;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.site != site) continue;
    if (op_index < rule.start_after) continue;
    if (rule.max_fires > 0 && rule_fires_[r] >= rule.max_fires) continue;

    bool fire = false;
    const std::uint64_t mixed =
        Mix(Mix(Mix(Mix(plan_.seed ^ stream_id_) ^ static_cast<std::uint64_t>(site)) ^
                op_index) ^
            r);
    if (rule.every_n > 0) {
      fire = (op_index - rule.start_after) % rule.every_n == 0;
    } else {
      // Map the high 53 bits to [0, 1): exact, branch-free, reproducible.
      const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
      fire = u < rule.probability;
    }
    if (!fire) continue;

    ++rule_fires_[r];
    ++fires_;
    fault.kind = ToDeviceKind(rule.kind);
    fault.target = Mix(mixed);  // decorrelate the target index from the trigger
    fault.bit = rule.bit;
    fault.stall_us = rule.stall_us;
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kFaultInjected, FaultSiteName(site),
                      FaultKindName(rule.kind), op_index,
                      static_cast<std::int64_t>(stream_id_),
                      static_cast<std::int64_t>(r));
    }
    return fault;  // first matching rule wins
  }
  return fault;
}

gpu::DeviceFault FaultInjector::OnDeviceOp(gpu::DeviceFaultSite site, std::uint64_t) {
  const FaultSite s = FromDeviceSite(site);
  const std::uint64_t op = op_counts_[static_cast<int>(s)]++;
  return Evaluate(s, op);
}

unsigned FaultInjector::PollQueueStall() {
  const std::uint64_t op = op_counts_[static_cast<int>(FaultSite::kQueue)]++;
  const gpu::DeviceFault fault = Evaluate(FaultSite::kQueue, op);
  return fault.kind == gpu::DeviceFault::Kind::kStall ? fault.stall_us : 0;
}

}  // namespace streamgpu::core
