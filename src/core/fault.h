// Deterministic fault injection: plans, the injector, and the tolerance knobs.
//
// A FaultPlan is a declarative list of rules, each binding a fault site
// (GPU upload / render pass / readback, or the pipeline's worker queue) to a
// fault kind and a trigger (every Nth op, or a seeded pseudo-random
// probability). A FaultInjector evaluates a plan against a per-stream op
// counter using only splitmix64 mixing of (seed, stream id, site, op index),
// so the same plan + seed + input stream fires the same faults on the same
// operations every run — faulty executions are exactly reproducible.
//
// Everything here is off by default: with an empty plan no hook is installed
// and the device/pipeline hot paths pay a single pointer compare. See
// docs/ROBUSTNESS.md for the full model.

#ifndef STREAMGPU_CORE_FAULT_H_
#define STREAMGPU_CORE_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "gpu/fault_hook.h"

namespace streamgpu::obs {
class FlightRecorder;
}

namespace streamgpu::core {

/// Where a fault strikes. The three GPU sites map 1:1 onto
/// gpu::DeviceFaultSite; kQueue is the ingest pipeline's worker dequeue seam.
enum class FaultSite : std::uint8_t {
  kGpuUpload,
  kGpuPass,
  kGpuReadback,
  kQueue,
};

/// What the fault does. Corruption kinds (kBitFlip/kNan/kTruncateHalf) damage
/// one value touched by the operation; kDeviceLost drops every data op until
/// the host recovers the device; kStall delays the operation (the only kind
/// valid at kQueue).
enum class FaultKind : std::uint8_t {
  kBitFlip,
  kNan,
  kTruncateHalf,
  kDeviceLost,
  kStall,
};

const char* FaultSiteName(FaultSite site);
const char* FaultKindName(FaultKind kind);

/// One site x trigger x kind binding. Trigger: if `every_n` > 0 the rule
/// fires on ops where (op_index - start_after) is a multiple of every_n;
/// otherwise it fires pseudo-randomly with `probability`. `start_after`
/// skips the first N ops at the site; `max_fires` caps total firings
/// (0 = unlimited).
struct FaultRule {
  FaultSite site = FaultSite::kGpuPass;
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t every_n = 0;   ///< 0 = use `probability` instead
  double probability = 0.0;    ///< in [0, 1]; used when every_n == 0
  std::uint64_t start_after = 0;
  std::uint64_t max_fires = 0;  ///< 0 = unlimited
  int bit = 12;                 ///< bit position for kBitFlip
  unsigned stall_us = 100;      ///< delay for kStall
};

/// A parsed, validated fault plan plus the seed that makes it deterministic.
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0;

  bool empty() const { return rules.empty(); }

  /// Parses `spec`, a ';'-separated rule list. Each rule is
  /// `site:kind[:key=value[,key=value]...]` with sites
  /// upload|pass|readback|queue, kinds bitflip|nan|half|lost|stall, and keys
  /// every=N, p=X, after=N, max=N, bit=B, stall_us=U. A rule with neither
  /// `every` nor `p` defaults to every=1 (fire on every op). An empty spec
  /// yields an empty (disabled) plan. Example:
  ///   "pass:lost:every=5,max=2;readback:bitflip:p=0.01,bit=20"
  static StatusOr<FaultPlan> Parse(const std::string& spec, std::uint64_t seed);

  /// Canonical round-trippable form of the plan (empty string when empty).
  std::string ToString() const;
};

/// Evaluates a FaultPlan deterministically. One injector per device (the
/// serial path's, or one per pipeline worker): `stream_id` decorrelates the
/// workers' fault sequences while keeping each reproducible. Implements the
/// device hook for the three GPU sites; the pipeline polls PollQueueStall()
/// for kQueue. Not thread-safe — each injector belongs to one thread, which
/// is how the pipeline uses its per-worker devices.
class FaultInjector final : public gpu::DeviceFaultHook {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t stream_id);

  /// gpu::DeviceFaultHook: decides the fault (if any) for one device op.
  gpu::DeviceFault OnDeviceOp(gpu::DeviceFaultSite site, std::uint64_t elements) override;

  /// Queue-site poll: returns the stall in microseconds to apply before the
  /// worker dequeues its next batch (0 = no fault).
  unsigned PollQueueStall();

  /// Total faults fired across all sites.
  std::uint64_t fires() const override { return fires_; }

  /// Mirrors every fired fault into `flight` as a kFaultInjected event
  /// (site as stage, kind as label, op index as seq). Borrowed; pass nullptr
  /// to unbind. Deterministic: the event sequence is a pure function of
  /// plan + seed + stream, like the faults themselves.
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

 private:
  /// Evaluates all rules for one op at `site`; first matching rule wins.
  gpu::DeviceFault Evaluate(FaultSite site, std::uint64_t op_index);

  const FaultPlan plan_;
  const std::uint64_t stream_id_;
  std::uint64_t op_counts_[4] = {0, 0, 0, 0};  ///< per-FaultSite op counters
  std::vector<std::uint64_t> rule_fires_;      ///< per-rule firing counts
  std::uint64_t fires_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
};

/// The fault-tolerance policy: the plan to inject (empty = disabled) and the
/// recovery knobs consumed by sort::ResilientSorter and the pipeline.
struct FaultTolerance {
  FaultPlan plan;

  /// Sort-level retries before a window is CPU-sorted or quarantined.
  int max_retries = 3;
  /// Device losses on one worker before it permanently degrades to the CPU
  /// fallback backend.
  int max_device_losses = 2;
  /// Degrade to CPU quicksort instead of quarantining when retries/losses
  /// are exhausted.
  bool cpu_fallback = true;
  /// Exponential backoff between retries: initial * 2^(attempt-1), capped.
  unsigned backoff_initial_us = 100;
  unsigned backoff_max_us = 10000;
  /// Observe()/Flush() return kDeadlineExceeded after blocking this long on
  /// the in-flight cap without progress (0 = wait forever).
  double drain_deadline_seconds = 0;

  bool enabled() const { return !plan.empty(); }
};

/// Aggregated fault/recovery accounting, surfaced by the estimators'
/// fault_stats() and the CLI summary.
struct FaultStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t sort_retries = 0;
  std::uint64_t cpu_fallbacks = 0;
  std::uint64_t windows_quarantined = 0;
  std::uint64_t elements_dropped = 0;

  FaultStats& operator+=(const FaultStats& o) {
    faults_injected += o.faults_injected;
    sort_retries += o.sort_retries;
    cpu_fallbacks += o.cpu_fallbacks;
    windows_quarantined += o.windows_quarantined;
    elements_dropped += o.elements_dropped;
    return *this;
  }
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_FAULT_H_
