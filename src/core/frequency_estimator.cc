#include "core/frequency_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"
#include "sketch/histogram.h"

namespace streamgpu::core {

namespace {

// Validates user-provided options at the API boundary.
const Options& ValidatedOptions(const Options& options) {
  STREAMGPU_CHECK_MSG(options.epsilon > 0.0 && options.epsilon < 1.0,
                      "epsilon must be in (0, 1)");
  STREAMGPU_CHECK_MSG(options.num_sort_workers <= 1024,
                      "num_sort_workers is unreasonably large");
  return options;
}

std::uint64_t NaturalWindow(const Options& options) {
  if (options.window_size != 0) return options.window_size;
  if (options.sliding_window != 0) {
    // Sliding mode chunks the stream into the block size of the
    // block-decomposition structure.
    return sketch::SlidingWindowFrequency(options.epsilon, options.sliding_window)
        .block_size();
  }
  // Whole-history mode: the Manku-Motwani bucket width ceil(1/epsilon).
  return static_cast<std::uint64_t>(std::ceil(1.0 / options.epsilon));
}

}  // namespace

FrequencyEstimator::FrequencyEstimator(const Options& options)
    : options_(ValidatedOptions(options)),
      engine_(options),
      // engine_ is declared (and therefore initialized) before batcher_.
      batcher_(NaturalWindow(options), engine_.batch_windows()),
      cpu_model_(hwmodel::kPentium4_3400) {
  if (options.sliding_window != 0) {
    sliding_.emplace(options.epsilon, options.sliding_window);
    STREAMGPU_CHECK_MSG(batcher_.window_size() <= sliding_->block_size(),
                        "window_size must not exceed the sliding block size");
  } else {
    whole_.emplace(options.epsilon);
    STREAMGPU_CHECK_MSG(batcher_.window_size() <= whole_->window_width(),
                        "window_size must not exceed ceil(1/epsilon)");
  }
  if (options.num_sort_workers >= 2) {
    worker_engines_ = MakeWorkerEngines(options, options.num_sort_workers);
    std::vector<sort::Sorter*> sorters;
    sorters.reserve(worker_engines_.size());
    for (auto& engine : worker_engines_) sorters.push_back(&engine->sorter());
    pipeline_ = std::make_unique<stream::SortPipeline>(
        MakePipelineConfig(options, batcher_.window_size(), engine_.batch_windows()),
        std::move(sorters),
        [this](std::vector<float>&& data, const sort::SortRunInfo& run) {
          DrainSortedBatch(std::move(data), run);
        });
  }
}

void FrequencyEstimator::Observe(float value) {
  ++observed_;
  if (engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    // The paper streams 16-bit floating point data (§5); the GPU pipeline
    // quantizes on ingestion so summaries and queries agree bit-exactly.
    value = gpu::QuantizeToHalf(value);
  }
  if (batcher_.Push(value)) {
    if (pipeline_ != nullptr) {
      pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
    } else {
      ProcessBuffered();
    }
  }
}

void FrequencyEstimator::ObserveBatch(std::span<const float> values) {
  for (float v : values) Observe(v);
}

void FrequencyEstimator::Flush() {
  if (pipeline_ != nullptr) {
    if (!batcher_.empty()) {
      pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
    }
    Sync();
    return;
  }
  if (!batcher_.empty()) ProcessBuffered();
}

void FrequencyEstimator::ProcessBuffered() {
  std::vector<std::span<float>> windows = batcher_.Windows();

  // Sort every buffered window with the configured backend (four at a time
  // through the RGBA channels on the PBSN path).
  engine_.sorter().SortRuns(windows);
  costs_.sort += engine_.sorter().last_run();

  for (std::span<float> window : windows) MergeSortedWindow(window);
  batcher_.Clear();
}

void FrequencyEstimator::DrainSortedBatch(std::vector<float>&& data,
                                          const sort::SortRunInfo& run) {
  // Runs on the pipeline's summary thread, in submission order — the same
  // accumulation order as serial execution, so the cost record (including
  // the floating-point simulated-seconds sums) stays bit-identical.
  costs_.sort += run;
  const std::uint64_t window_size = batcher_.window_size();
  for (std::size_t off = 0; off < data.size(); off += window_size) {
    const std::size_t len = std::min<std::size_t>(window_size, data.size() - off);
    MergeSortedWindow(std::span<float>(data.data() + off, len));
  }
}

void FrequencyEstimator::MergeSortedWindow(std::span<float> window) {
  Timer hist_timer;
  const std::vector<sketch::HistogramEntry> histogram = sketch::BuildHistogram(window);
  costs_.histogram_wall_seconds += hist_timer.ElapsedSeconds();
  costs_.histogram_elements += window.size();

  if (whole_.has_value()) {
    whole_->AddWindowHistogram(histogram, window.size());
  } else {
    sliding_->AddBlockHistogram(histogram, window.size());
  }
  processed_ += window.size();
}

void FrequencyEstimator::Sync() const {
  if (pipeline_ == nullptr) return;
  pipeline_->WaitIdle();
  const stream::PipelineWaitStats stats = pipeline_->stats();
  costs_.ingest_stall_seconds = stats.ingest_stall_seconds;
  costs_.sort_queue_wait_seconds = stats.sort_queue_wait_seconds;
  costs_.drain_queue_wait_seconds = stats.drain_queue_wait_seconds;
  costs_.sort_wall_seconds = stats.sort_wall_seconds;
  costs_.drain_wall_seconds = stats.drain_wall_seconds;
  costs_.pipelined_batches = stats.batches;
}

std::vector<std::pair<float, std::uint64_t>> FrequencyEstimator::HeavyHitters(
    double support, std::uint64_t window) const {
  Sync();
  if (whole_.has_value()) return whole_->HeavyHitters(support);
  return sliding_->HeavyHitters(support, window);
}

std::uint64_t FrequencyEstimator::EstimateCount(float value, std::uint64_t window) const {
  Sync();
  if (engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    // Queries live in the same quantized value universe as ingestion.
    value = gpu::QuantizeToHalf(value);
  }
  if (whole_.has_value()) return whole_->EstimateCount(value);
  return sliding_->EstimateCount(value, window);
}

std::vector<std::pair<float, std::uint64_t>> FrequencyEstimator::TopK(
    std::size_t k, std::uint64_t window) const {
  Sync();
  // HeavyHitters at support 0 returns every retained entry, sorted by
  // descending estimate; truncate to k.
  auto all = whole_.has_value() ? whole_->HeavyHitters(0.0)
                                : sliding_->HeavyHitters(0.0, window);
  if (all.size() > k) all.resize(k);
  return all;
}

std::uint64_t FrequencyEstimator::processed_length() const {
  Sync();
  return processed_;
}

std::size_t FrequencyEstimator::summary_size() const {
  Sync();
  return whole_.has_value() ? whole_->summary_size() : sliding_->summary_size();
}

gpu::GpuStats FrequencyEstimator::device_stats() const {
  Sync();
  gpu::GpuStats total;
  if (pipeline_ != nullptr) {
    for (const auto& engine : worker_engines_) {
      if (engine->device() != nullptr) total += engine->device()->stats();
    }
  } else if (engine_.device() != nullptr) {
    total += engine_.device()->stats();
  }
  return total;
}

const PipelineCosts& FrequencyEstimator::costs() const {
  Sync();
  if (whole_.has_value()) {
    // The Manku-Motwani summary tracks its own merge/compress costs;
    // mirror them into the pipeline record.
    const sketch::SummaryOpCosts& ops = whole_->op_costs();
    costs_.merge_wall_seconds = ops.merge_seconds;
    costs_.compress_wall_seconds = ops.compress_seconds;
    costs_.merged_entries = ops.merged_entries;
    costs_.compressed_entries = ops.compressed_entries;
  }
  return costs_;
}

double FrequencyEstimator::SimulatedSeconds() const {
  return costs().SimulatedTotalSeconds(cpu_model_);
}

}  // namespace streamgpu::core
