// Public API: epsilon-approximate frequency estimation over a data stream,
// GPU-accelerated per §5.1 — the stream is chunked into windows, each window
// is sorted by the configured backend, reduced to a histogram, and merged
// into a Manku-Motwani summary (whole history) or a block-decomposed
// sliding-window summary (§5.3).

#ifndef STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_
#define STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/backend.h"
#include "core/costs.h"
#include "core/options.h"
#include "gpu/stats.h"
#include "sketch/lossy_counting.h"
#include "sketch/sliding_window.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace streamgpu::core {

/// Streaming epsilon-approximate frequency estimator.
///
/// Usage:
///   Options opt;
///   opt.epsilon = 1e-4;
///   FrequencyEstimator fe(opt);
///   for (float v : stream) fe.Observe(v);
///   fe.Flush();
///   auto hitters = fe.HeavyHitters(0.01);
///
/// Queries reflect the windows processed so far; up to
/// batch-size * window-size recent elements may still be buffered until the
/// next batch boundary or Flush(). Flush() finalizes a partial window and is
/// intended for end-of-stream (whole-history mode's error guarantee assumes
/// full windows in the interior of the stream).
///
/// With Options::num_sort_workers >= 2 ingestion runs through the parallel
/// pipeline (stream::SortPipeline): window-batches are sorted concurrently
/// and drained into the summary in order on a dedicated thread. Queries
/// first wait for every in-flight batch, so answers — and all simulated-2005
/// cost figures — are identical to serial execution. Observe()/Flush() and
/// queries must come from one thread (the same contract as serial mode).
class FrequencyEstimator {
 public:
  explicit FrequencyEstimator(const Options& options);

  /// Processes one stream element.
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values);

  /// Processes any buffered windows, including a final partial one.
  void Flush();

  /// Heavy hitters at `support` over the whole history, or — in sliding
  /// mode — over the most recent `window` elements (0 = full sliding
  /// window). No false negatives among processed elements.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(
      double support, std::uint64_t window = 0) const;

  /// Estimated frequency of `value` (undercounts by at most epsilon * N).
  std::uint64_t EstimateCount(float value, std::uint64_t window = 0) const;

  /// The k values with the highest estimated frequencies (descending). With
  /// estimates within epsilon * N of truth, this is the true top-k whenever
  /// the k-th and (k+1)-th true frequencies are more than 2 * epsilon * N
  /// apart.
  std::vector<std::pair<float, std::uint64_t>> TopK(std::size_t k,
                                                    std::uint64_t window = 0) const;

  /// Elements already folded into the summary.
  std::uint64_t processed_length() const;

  /// Elements observed, including still-buffered ones.
  std::uint64_t observed_length() const { return observed_; }

  /// Current summary entries (space usage).
  std::size_t summary_size() const;

  /// Accumulated per-operation costs (Fig. 5/6 source data).
  const PipelineCosts& costs() const;

  /// Simulated end-to-end 2005-hardware seconds for everything processed.
  double SimulatedSeconds() const;

  /// Aggregated simulated-device counters (summed across pipeline workers;
  /// all-zero for the CPU backends).
  gpu::GpuStats device_stats() const;

  const Options& options() const { return options_; }
  bool sliding() const { return sliding_.has_value(); }
  bool pipelined() const { return pipeline_ != nullptr; }

 private:
  /// Serial path: sorts the buffered windows with the backend and merges
  /// each into the summary.
  void ProcessBuffered();

  /// Pipelined path: consumes one sorted batch on the summary thread, in
  /// submission order.
  void DrainSortedBatch(std::vector<float>&& data, const sort::SortRunInfo& run);

  /// Reduces one sorted window to a histogram and merges it into the
  /// summary (shared by both paths; runs on the summary thread when
  /// pipelined).
  void MergeSortedWindow(std::span<float> window);

  /// Pipelined mode: waits for in-flight batches and refreshes the pipeline
  /// wait-stats in costs_. No-op in serial mode.
  void Sync() const;

  Options options_;
  SortEngine engine_;
  stream::WindowBatcher batcher_;
  std::optional<sketch::LossyCounting> whole_;
  std::optional<sketch::SlidingWindowFrequency> sliding_;
  hwmodel::CpuModel cpu_model_;
  mutable PipelineCosts costs_;
  std::uint64_t observed_ = 0;
  std::uint64_t processed_ = 0;

  /// Pipelined mode only: one engine per sort worker, and the pipeline
  /// driving them. Declared last so threads stop before members they
  /// reference are destroyed.
  std::vector<std::unique_ptr<SortEngine>> worker_engines_;
  std::unique_ptr<stream::SortPipeline> pipeline_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_
