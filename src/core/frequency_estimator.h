// Public API: epsilon-approximate frequency estimation over a data stream,
// GPU-accelerated per §5.1 — the stream is chunked into windows, each window
// is sorted by the configured backend, reduced to a histogram, and merged
// into a Manku-Motwani summary (whole history) or a block-decomposed
// sliding-window summary (§5.3).

#ifndef STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_
#define STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/backend.h"
#include "core/costs.h"
#include "core/fault.h"
#include "core/instrumentation.h"
#include "core/options.h"
#include "core/report.h"
#include "core/status.h"
#include "core/summary_core.h"
#include "durable/checkpoint.h"
#include "gpu/stats.h"
#include "sort/radix_sort.h"
#include "sort/resilient.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace streamgpu::core {

/// Streaming epsilon-approximate frequency estimator.
///
/// Usage:
///   Options opt;
///   opt.epsilon = 1e-4;
///   auto fe = FrequencyEstimator::Create(opt);
///   if (!fe.ok()) { /* report fe.status() */ }
///   for (float v : stream) (*fe)->Observe(v);
///   (*fe)->Flush();
///   FrequencyReport hitters = (*fe)->HeavyHitters(0.01);
///
/// Queries reflect the windows processed so far; up to
/// batch-size * window-size recent elements may still be buffered until the
/// next batch boundary or Flush().
///
/// Lifecycle: Flush() finalizes the stream — it processes the remaining
/// partial window, is idempotent, and puts the estimator in a query-only
/// state. Observe()/ObserveBatch() after Flush() return a
/// kFailedPrecondition Status and change nothing (whole-history mode's error
/// guarantee assumes full windows in the interior of the stream, so elements
/// appended after a finalized partial window would silently void it).
///
/// With Options::num_sort_workers >= 2 ingestion runs through the parallel
/// pipeline (stream::SortPipeline): window-batches are sorted concurrently
/// and drained into the summary in order on a dedicated thread. Queries
/// first wait for every in-flight batch, so answers — and all simulated-2005
/// cost figures — are identical to serial execution. Observe()/Flush() and
/// queries must come from one thread (the same contract as serial mode).
///
/// Observability: when Options::obs wires a MetricsRegistry and/or a
/// TraceRecorder, the estimator records "freq."-prefixed counters, exports
/// cost gauges through ExportMetrics(), and emits per-stage spans (ingest /
/// sort + GPU passes / merge / drain). Both sinks default to null and the
/// disabled path costs one pointer compare per site. docs/OBSERVABILITY.md
/// documents the schema.
class FrequencyEstimator {
 public:
  /// Validated construction: returns the first configuration error (see
  /// Options::Validate(), plus the frequency-specific rule that a
  /// whole-history window_size must not exceed ceil(1/epsilon)) instead of
  /// aborting. The returned estimator is never null on ok().
  static StatusOr<std::unique_ptr<FrequencyEstimator>> Create(const Options& options);

  /// Direct construction CHECK-aborts on invalid options; prefer Create().
  explicit FrequencyEstimator(const Options& options);

  /// Processes one stream element. Fails (and ignores the element) once the
  /// estimator is finalized by Flush(), or — pipelined — once the pipeline
  /// has failed (the drain thread's sticky Status, or kDeadlineExceeded when
  /// Options::fault.drain_deadline_seconds elapses on backpressure).
  Status Observe(float value);

  /// Processes a batch of stream elements. Stops at the first failing
  /// element and returns its Status (earlier elements stay observed).
  Status ObserveBatch(std::span<const float> values);

  /// Finalizes the stream: processes buffered windows, including a final
  /// partial one, and puts the estimator in a query-only state. Idempotent —
  /// repeated calls return the same Status. Returns the pipeline's failure
  /// Status when the drain thread died or the drain deadline elapsed; the
  /// estimator stays queryable over whatever was processed.
  Status Flush();

  /// True once Flush() has finalized the estimator.
  bool finalized() const { return finalized_; }

  /// Heavy hitters at `support` over the whole history, or — in sliding
  /// mode — over the most recent `window` elements (0 = full sliding
  /// window). No false negatives among processed elements. The report
  /// carries the guaranteed error bound and the coverage the answer is
  /// stated over.
  FrequencyReport HeavyHitters(double support, std::uint64_t window = 0) const;

  /// Estimated frequency of `value` (undercounts by at most epsilon * N).
  std::uint64_t EstimateCount(float value, std::uint64_t window = 0) const;

  /// The k values with the highest estimated frequencies (descending). With
  /// estimates within epsilon * N of truth, this is the true top-k whenever
  /// the k-th and (k+1)-th true frequencies are more than 2 * epsilon * N
  /// apart. The report's support is 0 (no threshold was applied).
  FrequencyReport TopK(std::size_t k, std::uint64_t window = 0) const;

  /// Snapshots the estimator's full durable state — summary core (with its
  /// quarantine/shed accounting), staged partial window, and watermark —
  /// into Options::checkpoint_dir with the crash-consistent protocol of
  /// durable/checkpoint.h. Waits for in-flight pipeline batches first, so
  /// the snapshot is a consistent batch-boundary cut. kFailedPrecondition
  /// without a checkpoint_dir; pipeline failures propagate. Also runs
  /// automatically every Options::checkpoint_every_windows merged windows.
  /// See docs/DURABILITY.md.
  Status Checkpoint();

  /// Resumes from the newest usable snapshot in options.checkpoint_dir. The
  /// returned estimator answers exactly as the checkpointed one did;
  /// observed_length() tells the caller which input suffix to replay.
  /// kFailedPrecondition when the directory holds no usable checkpoint
  /// (callers typically start fresh); kInvalidArgument when the snapshot
  /// disagrees with `options` or is corrupt — never a crash.
  static StatusOr<std::unique_ptr<FrequencyEstimator>> Restore(const Options& options);

  /// Snapshots committed by this estimator (explicit + automatic).
  std::uint64_t checkpoints() const {
    return checkpoint_writer_ == nullptr ? 0 : checkpoint_writer_->commits();
  }

  /// Elements already folded into the summary.
  std::uint64_t processed_length() const;

  /// Elements observed, including still-buffered ones.
  std::uint64_t observed_length() const { return observed_; }

  /// Current summary entries (space usage).
  std::size_t summary_size() const;

  /// Accumulated per-operation costs (Fig. 5/6 source data).
  const PipelineCosts& costs() const;

  /// Serializes costs() and the stream/summary gauges into the wired
  /// MetricsRegistry (no-op without one). Counters are always live; this
  /// publishes the point-in-time values that have no incremental form.
  void ExportMetrics() const;

  /// Simulated end-to-end 2005-hardware seconds for everything processed.
  double SimulatedSeconds() const;

  /// Aggregated simulated-device counters (summed across pipeline workers;
  /// all-zero for the CPU backends).
  gpu::GpuStats device_stats() const;

  /// Aggregated fault-injection/recovery accounting across the serial path
  /// and every pipeline worker (all-zero when Options::fault is disabled).
  /// See docs/ROBUSTNESS.md.
  FaultStats fault_stats() const;

  const Options& options() const { return options_; }
  bool sliding() const { return core_.sliding(); }
  bool pipelined() const { return pipeline_ != nullptr; }

 private:
  /// Hot ingest path for Observe() after the lifecycle check.
  Status ObserveValue(float value);

  /// Hands the completed batch to the pipeline (or processes it inline) and
  /// latches any pipeline failure. Called exactly when the batcher fills.
  Status SubmitFullBatch();

  /// Cadence bookkeeping after a successful batch submit: checkpoints when
  /// checkpoint_every_windows merged windows have accumulated. Ok when no
  /// checkpoint is due.
  Status MaybeAutoCheckpoint();

  /// Installs a validated snapshot into this freshly constructed estimator
  /// (Restore()'s second half).
  Status InstallSnapshot(const durable::Snapshot& snapshot);

  /// Serial path: sorts the buffered windows with the backend and merges
  /// each into the summary.
  void ProcessBuffered();

  /// Pipelined path: consumes one sorted batch on the summary thread, in
  /// submission order. Quarantined windows (mask bit set) are skipped and
  /// accounted instead of merged.
  Status DrainSortedBatch(std::vector<float>&& data, const sort::SortRunInfo& run,
                          std::uint64_t quarantine_mask);

  /// Accounts one unrecoverable window (widens the reported error bound);
  /// delegates to the shared summary core.
  void QuarantineWindow(std::size_t elements);

  /// Reduces one sorted window to a histogram and merges it into the
  /// summary (shared by both paths; runs on the summary thread when
  /// pipelined).
  void MergeSortedWindow(std::span<float> window);

  /// Pipelined mode: waits for in-flight batches and refreshes the pipeline
  /// wait-stats in costs_. No-op in serial mode.
  void Sync() const;

  /// Closes the open ingest_batch span (tracing only).
  void EndIngestSpan(std::size_t elements);

  Options options_;
  obs::Observability obs_;
  SortEngine engine_;
  stream::WindowBatcher batcher_;
  /// Summary state + report construction, shared with service::StreamService
  /// (core/summary_core.h) — the single implementation both execution paths
  /// answer from.
  FrequencySummaryCore core_;
  hwmodel::CpuModel cpu_model_;
  mutable PipelineCosts costs_;
  std::uint64_t observed_ = 0;
  bool finalized_ = false;

  /// Durable checkpointing (null when Options::checkpoint_dir is empty).
  std::unique_ptr<durable::CheckpointWriter> checkpoint_writer_;
  std::uint64_t windows_since_checkpoint_ = 0;

  /// Fault injection and recovery (all null / zero when Options::fault is
  /// disabled — the hot path then never sees them).
  std::unique_ptr<FaultInjector> fault_injector_;            ///< serial-path injector
  std::unique_ptr<sort::RadixMergeSorter> fallback_sorter_;  ///< serial CPU fallback
  std::unique_ptr<sort::ResilientSorter> resilient_sorter_;  ///< wraps engine_'s sorter
  mutable Status pipeline_status_;  ///< first pipeline failure (sticky)

  /// Observability wiring (null ids / null decorators when disabled).
  EstimatorMetricIds ids_;
  std::unique_ptr<TracingSorter> traced_sorter_;  ///< wraps engine_ (serial path)
  sort::Sorter* sort_front_ = nullptr;            ///< engine sorter or its decorator(s)
  std::uint64_t window_seq_ = 0;                  ///< windows merged; trace sampling
  std::uint64_t ingest_seq_ = 0;                  ///< batches ingested; trace sampling
  std::uint64_t drain_seq_ = 0;                   ///< serial drain batches
  double ingest_start_us_ = -1;                   ///< open ingest span start

  /// Pipelined mode only: one engine per sort worker (plus its resilience /
  /// tracing decorators when wired), and the pipeline driving them.
  /// Declared last so threads stop before members they reference are
  /// destroyed.
  std::vector<std::unique_ptr<SortEngine>> worker_engines_;
  std::vector<std::unique_ptr<FaultInjector>> worker_injectors_;
  std::vector<std::unique_ptr<sort::RadixMergeSorter>> worker_fallbacks_;
  std::vector<std::unique_ptr<sort::ResilientSorter>> worker_resilient_;
  std::vector<std::unique_ptr<TracingSorter>> traced_workers_;
  std::unique_ptr<stream::SortPipeline> pipeline_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_FREQUENCY_ESTIMATOR_H_
