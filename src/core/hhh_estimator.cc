#include "core/hhh_estimator.h"

#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"

namespace streamgpu::core {

namespace {

// Validates user-provided options at the API boundary.
const Options& ValidatedOptions(const Options& options) {
  STREAMGPU_CHECK_MSG(options.epsilon > 0.0 && options.epsilon < 1.0,
                      "epsilon must be in (0, 1)");
  return options;
}

}  // namespace

HhhEstimator::HhhEstimator(const Options& options, int levels, double branch)
    : options_(ValidatedOptions(options)),
      engine_(options),
      // engine_ is declared (and therefore initialized) before batcher_.
      batcher_(options.window_size != 0
                   ? options.window_size
                   : static_cast<std::uint64_t>(std::ceil(1.0 / options.epsilon)),
               engine_.batch_windows()),
      hhh_(options.epsilon, levels, branch),
      cpu_model_(hwmodel::kPentium4_3400) {
  STREAMGPU_CHECK_MSG(options.sliding_window == 0,
                      "hierarchical heavy hitters support whole-history queries only");
  STREAMGPU_CHECK_MSG(batcher_.window_size() <= hhh_.window_width(),
                      "window_size must not exceed ceil(1/epsilon)");
}

void HhhEstimator::Observe(float value) {
  if (engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    value = gpu::QuantizeToHalf(value);
  }
  if (batcher_.Push(value)) ProcessBuffered();
}

void HhhEstimator::ObserveBatch(std::span<const float> values) {
  for (float v : values) Observe(v);
}

void HhhEstimator::Flush() {
  if (!batcher_.empty()) ProcessBuffered();
}

void HhhEstimator::ProcessBuffered() {
  std::vector<std::span<float>> windows = batcher_.Windows();
  engine_.sorter().SortRuns(windows);
  costs_.sort += engine_.sorter().last_run();

  for (std::span<float> window : windows) {
    Timer hist_timer;
    hhh_.AddSortedWindow(window);
    costs_.histogram_wall_seconds += hist_timer.ElapsedSeconds();
    // One linear histogram scan per hierarchy level, all off the same sort.
    costs_.histogram_elements +=
        window.size() * (static_cast<std::uint64_t>(hhh_.levels()) + 1);
  }
  batcher_.Clear();
}

std::uint64_t HhhEstimator::EstimateCount(float prefix, int level) const {
  if (level == 0 && engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    prefix = gpu::QuantizeToHalf(prefix);
  }
  return hhh_.EstimateCount(prefix, level);
}

}  // namespace streamgpu::core
