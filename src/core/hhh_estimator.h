// Public API: hierarchical heavy hitters over a stream (§1.2's extension
// query), with the per-window sort running on the configured backend. One
// sort serves every hierarchy level: generalization (integer division by the
// branching factor) is monotone, so each level's histogram is a linear scan
// of the same GPU-sorted window.

#ifndef STREAMGPU_CORE_HHH_ESTIMATOR_H_
#define STREAMGPU_CORE_HHH_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/backend.h"
#include "core/costs.h"
#include "core/options.h"
#include "sketch/hierarchical.h"
#include "stream/window_buffer.h"

namespace streamgpu::core {

/// Streaming hierarchical heavy-hitter estimator.
class HhhEstimator {
 public:
  /// `levels` hierarchy levels above the leaves, aggregated by `branch`
  /// per level (see sketch::HierarchicalHeavyHitters). Sliding windows are
  /// not supported for this query type; options.sliding_window must be 0.
  HhhEstimator(const Options& options, int levels, double branch = 2.0);

  /// Processes one stream element.
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values);

  /// Processes any buffered windows, including a final partial one.
  void Flush();

  /// Hierarchical heavy hitters at `support` over the processed prefix.
  std::vector<sketch::HhhResult> Query(double support) const {
    return hhh_.Query(support);
  }

  /// Estimated subtree frequency of `prefix` at `level`.
  std::uint64_t EstimateCount(float prefix, int level) const;

  std::uint64_t processed_length() const { return hhh_.stream_length(); }
  std::size_t summary_size() const { return hhh_.summary_size(); }

  /// Accumulated costs; the sort entry reflects the configured backend.
  const PipelineCosts& costs() const { return costs_; }

  /// Simulated end-to-end 2005-hardware seconds.
  double SimulatedSeconds() const { return costs_.SimulatedTotalSeconds(cpu_model_); }

  const Options& options() const { return options_; }

 private:
  void ProcessBuffered();

  Options options_;
  SortEngine engine_;
  stream::WindowBatcher batcher_;
  sketch::HierarchicalHeavyHitters hhh_;
  hwmodel::CpuModel cpu_model_;
  PipelineCosts costs_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_HHH_ESTIMATOR_H_
