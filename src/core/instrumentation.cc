#include "core/instrumentation.h"

#include <utility>

#include "common/timer.h"

namespace streamgpu::core {

EstimatorMetricIds EstimatorMetricIds::Register(obs::MetricsRegistry* metrics,
                                                const std::string& prefix,
                                                std::uint64_t window_size) {
  EstimatorMetricIds ids;
  if (metrics == nullptr) return ids;
  ids.elements_observed = metrics->Counter(prefix + ".observe.elements");
  ids.windows_merged = metrics->Counter(prefix + ".merge.windows");
  ids.elements_merged = metrics->Counter(prefix + ".merge.elements");
  ids.queries = metrics->Counter(prefix + ".query.count");
  const double w = static_cast<double>(window_size);
  ids.window_elements = metrics->Histogram(prefix + ".merge.window_elements",
                                           {w / 4.0, w / 2.0, w});
  ids.merge_latency = metrics->Summary(prefix + ".merge.latency_us");
  ids.drain_latency = metrics->Summary(prefix + ".drain.latency_us");
  return ids;
}

TracingSorter::TracingSorter(sort::Sorter* inner, const gpu::GpuDevice* device,
                             const obs::Observability& obs, const std::string& prefix)
    : inner_(inner),
      device_(device),
      metrics_(obs.metrics),
      trace_(obs.trace),
      flight_(obs.flight) {
  if (metrics_ != nullptr) {
    batches_ = metrics_->Counter(prefix + ".sort.batches");
    windows_ = metrics_->Counter(prefix + ".sort.windows");
    elements_ = metrics_->Counter(prefix + ".sort.elements");
    comparisons_ = metrics_->Counter(prefix + ".sort.comparisons");
    elements_by_backend_ = metrics_->Counter(prefix + ".sort.elements",
                                             {{"backend", inner_->name()}});
    latency_ = metrics_->Summary(prefix + ".sort.latency_us",
                                 {{"backend", inner_->name()}});
  }
}

void TracingSorter::Sort(std::span<float> data) {
  const bool traced = trace_ != nullptr && trace_->Sampled(seq_);
  const gpu::GpuStats before =
      (traced && device_ != nullptr) ? device_->stats() : gpu::GpuStats{};
  const double t0 = traced ? trace_->NowMicros() : 0;

  Timer batch_timer;
  inner_->Sort(data);
  FinishBatch(data.size(), 1, batch_timer, before, traced, t0);
}

void TracingSorter::SortRuns(std::span<std::span<float>> runs) {
  std::uint64_t elements = 0;
  for (const auto& run : runs) elements += run.size();

  const bool traced = trace_ != nullptr && trace_->Sampled(seq_);
  const gpu::GpuStats before =
      (traced && device_ != nullptr) ? device_->stats() : gpu::GpuStats{};
  const double t0 = traced ? trace_->NowMicros() : 0;

  Timer batch_timer;
  inner_->SortRuns(runs);
  FinishBatch(elements, runs.size(), batch_timer, before, traced, t0);
}

void TracingSorter::FinishBatch(std::uint64_t elements, std::size_t windows,
                                const Timer& batch_timer,
                                const gpu::GpuStats& before, bool traced,
                                double t0) {
  const sort::SortRunInfo& run = inner_->last_run();

  if (metrics_ != nullptr) {
    metrics_->Add(batches_);
    metrics_->Add(windows_, windows);
    metrics_->Add(elements_, elements);
    metrics_->Add(comparisons_, run.comparisons);
    metrics_->Add(elements_by_backend_, elements);
    metrics_->Observe(latency_, batch_timer.ElapsedSeconds() * 1e6);
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kBatchSorted, "sort", inner_->name(),
                    seq_, static_cast<std::int64_t>(elements),
                    static_cast<std::int64_t>(windows));
  }

  if (traced) {
    const double t1 = trace_->NowMicros();
    trace_->AddSpan("sort_batch", "sort", t0, t1 - t0,
                    {{"batch", static_cast<double>(seq_)},
                     {"windows", static_cast<double>(windows)},
                     {"elements", static_cast<double>(elements)},
                     {"comparisons", static_cast<double>(run.comparisons)},
                     {"simulated_ms", run.simulated_seconds * 1e3}});

    if (device_ != nullptr) {
      // Sub-spans: the simulator interleaves upload / render passes /
      // readback / CPU run-merge inside one call, so apportion the measured
      // wall interval by each stage's share of the simulated time. The args
      // carry the true simulated figures and the device-counter deltas.
      const gpu::GpuStats delta = device_->stats() - before;
      const double sim_total =
          run.sim_transfer_seconds + run.sim_device_seconds + run.sim_merge_seconds;
      if (sim_total > 0) {
        const double wall = t1 - t0;
        const double total_bytes =
            static_cast<double>(delta.bytes_uploaded + delta.bytes_readback);
        const double up_frac =
            total_bytes > 0 ? static_cast<double>(delta.bytes_uploaded) / total_bytes
                            : 0.5;
        double at = t0;
        const double up_us =
            wall * run.sim_transfer_seconds * up_frac / sim_total;
        trace_->AddSpan("gpu_upload", "gpu", at, up_us,
                        {{"bytes", static_cast<double>(delta.bytes_uploaded)},
                         {"simulated_ms", run.sim_transfer_seconds * up_frac * 1e3}});
        at += up_us;
        const double dev_us = wall * run.sim_device_seconds / sim_total;
        trace_->AddSpan("gpu_passes", "gpu", at, dev_us,
                        {{"draw_calls", static_cast<double>(delta.draw_calls)},
                         {"blend_fragments", static_cast<double>(delta.blend_fragments)},
                         {"bytes_vram", static_cast<double>(delta.bytes_vram)},
                         {"simulated_ms", run.sim_device_seconds * 1e3}});
        at += dev_us;
        const double down_us =
            wall * run.sim_transfer_seconds * (1.0 - up_frac) / sim_total;
        trace_->AddSpan("gpu_readback", "gpu", at, down_us,
                        {{"bytes", static_cast<double>(delta.bytes_readback)},
                         {"simulated_ms",
                          run.sim_transfer_seconds * (1.0 - up_frac) * 1e3}});
        at += down_us;
        if (run.sim_merge_seconds > 0) {
          trace_->AddSpan("cpu_merge_runs", "gpu", at,
                          wall * run.sim_merge_seconds / sim_total,
                          {{"simulated_ms", run.sim_merge_seconds * 1e3}});
        }
      }
    }
  }
  ++seq_;
}

void ExportPipelineCosts(obs::MetricsRegistry* metrics, const std::string& prefix,
                         const PipelineCosts& costs, const hwmodel::CpuModel& model) {
  if (metrics == nullptr) return;
  const auto set = [&](const char* name, double value) {
    metrics->Set(metrics->Gauge(prefix + name), value);
  };
  set(".cost.sort.wall_seconds", costs.sort.wall_seconds);
  set(".cost.sort.simulated_seconds", costs.sort.simulated_seconds);
  set(".cost.sort.sim_device_seconds", costs.sort.sim_device_seconds);
  set(".cost.sort.sim_transfer_seconds", costs.sort.sim_transfer_seconds);
  set(".cost.sort.sim_merge_seconds", costs.sort.sim_merge_seconds);
  set(".cost.sort.comparisons", static_cast<double>(costs.sort.comparisons));
  set(".cost.histogram.wall_seconds", costs.histogram_wall_seconds);
  set(".cost.histogram.elements", static_cast<double>(costs.histogram_elements));
  set(".cost.merge.wall_seconds", costs.merge_wall_seconds);
  set(".cost.merge.entries", static_cast<double>(costs.merged_entries));
  set(".cost.compress.wall_seconds", costs.compress_wall_seconds);
  set(".cost.compress.entries", static_cast<double>(costs.compressed_entries));
  set(".cost.pipeline.ingest_stall_seconds", costs.ingest_stall_seconds);
  set(".cost.pipeline.sort_queue_wait_seconds", costs.sort_queue_wait_seconds);
  set(".cost.pipeline.drain_queue_wait_seconds", costs.drain_queue_wait_seconds);
  set(".cost.pipeline.sort_wall_seconds", costs.sort_wall_seconds);
  set(".cost.pipeline.drain_wall_seconds", costs.drain_wall_seconds);
  set(".cost.pipeline.batches", static_cast<double>(costs.pipelined_batches));
  set(".cost.simulated.histogram_seconds", costs.SimulatedHistogramSeconds(model));
  set(".cost.simulated.merge_seconds", costs.SimulatedMergeSeconds(model));
  set(".cost.simulated.compress_seconds", costs.SimulatedCompressSeconds(model));
  set(".cost.simulated.total_seconds", costs.SimulatedTotalSeconds(model));
}

void ExportFrequencyReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                           const FrequencyReport& report) {
  if (metrics == nullptr) return;
  const auto set = [&](const char* name, double value) {
    metrics->Set(metrics->Gauge(prefix + name), value);
  };
  set(".query.frequency.items", static_cast<double>(report.items.size()));
  set(".query.frequency.support", report.support);
  set(".query.frequency.epsilon", report.epsilon);
  set(".query.frequency.error_bound", static_cast<double>(report.error_bound));
  set(".query.frequency.window_coverage",
      static_cast<double>(report.window_coverage));
  set(".query.frequency.stream_length", static_cast<double>(report.stream_length));
  set(".query.frequency.windows_quarantined",
      static_cast<double>(report.windows_quarantined));
  set(".query.frequency.elements_dropped",
      static_cast<double>(report.elements_dropped));
  set(".query.frequency.elements_shed",
      static_cast<double>(report.elements_shed));
}

void ExportQuantileReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                          const QuantileReport& report) {
  if (metrics == nullptr) return;
  const auto set = [&](const char* name, double value) {
    metrics->Set(metrics->Gauge(prefix + name), value);
  };
  set(".query.quantile.value", report.value);
  set(".query.quantile.phi", report.phi);
  set(".query.quantile.epsilon", report.epsilon);
  set(".query.quantile.rank_error_bound",
      static_cast<double>(report.rank_error_bound));
  set(".query.quantile.window_coverage",
      static_cast<double>(report.window_coverage));
  set(".query.quantile.stream_length", static_cast<double>(report.stream_length));
  set(".query.quantile.windows_quarantined",
      static_cast<double>(report.windows_quarantined));
  set(".query.quantile.elements_dropped",
      static_cast<double>(report.elements_dropped));
  set(".query.quantile.elements_shed",
      static_cast<double>(report.elements_shed));
}

}  // namespace streamgpu::core
