// Observability wiring for the estimators: the sorter decorator that emits
// sort spans + GPU pass sub-spans, the per-estimator metric-id bundle, and
// the gauge exporters that serialize PipelineCosts and query reports into a
// MetricsRegistry.
//
// Everything here is wired only when Options::obs carries a registry or a
// recorder, so the disabled-by-default configuration pays nothing beyond a
// null check (docs/OBSERVABILITY.md, "Overhead").

#ifndef STREAMGPU_CORE_INSTRUMENTATION_H_
#define STREAMGPU_CORE_INSTRUMENTATION_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/timer.h"
#include "core/costs.h"
#include "core/report.h"
#include "gpu/device.h"
#include "hwmodel/cpu_model.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "sort/sorter.h"

namespace streamgpu::core {

/// Counter/histogram ids one estimator records through. Registration is
/// idempotent by name, so the serial engine's and the pipeline workers'
/// TracingSorters share the same sort counters and their shard totals sum —
/// which is what keeps metric counts bit-identical across execution modes.
struct EstimatorMetricIds {
  obs::MetricId elements_observed = obs::kInvalidMetric;  ///< <p>.observe.elements
  obs::MetricId windows_merged = obs::kInvalidMetric;     ///< <p>.merge.windows
  obs::MetricId elements_merged = obs::kInvalidMetric;    ///< <p>.merge.elements
  obs::MetricId queries = obs::kInvalidMetric;            ///< <p>.query.count
  obs::MetricId window_elements = obs::kInvalidMetric;    ///< <p>.merge.window_elements
  obs::MetricId merge_latency = obs::kInvalidMetric;      ///< <p>.merge.latency_us
  obs::MetricId drain_latency = obs::kInvalidMetric;      ///< <p>.drain.latency_us

  /// Registers the bundle under `prefix` ("freq"/"quant"). The
  /// window-elements histogram is bucketed relative to `window_size` so a
  /// final partial window is visible at a glance. No-op bundle (all ids
  /// invalid) when `metrics` is null.
  static EstimatorMetricIds Register(obs::MetricsRegistry* metrics,
                                     const std::string& prefix,
                                     std::uint64_t window_size);
};

/// Sorter decorator: forwards every call to the wrapped backend, and — per
/// SortRuns batch, never per element — bumps the sort counters and emits one
/// "sort_batch" span with GPU sub-spans (upload / passes / readback / CPU
/// run-merge) reconstructed from the device's GpuStats delta and the run's
/// simulated time split. Works identically for the serial engine and for
/// each pipeline worker (each wraps its own sorter + device, so the stats
/// delta is race-free).
class TracingSorter : public sort::Sorter {
 public:
  /// `inner` and `device` (nullable, CPU backends) are borrowed and must
  /// outlive the decorator. `prefix` scopes the counter names.
  TracingSorter(sort::Sorter* inner, const gpu::GpuDevice* device,
                const obs::Observability& obs, const std::string& prefix);

  void Sort(std::span<float> data) override;
  void SortRuns(std::span<std::span<float>> runs) override;
  const sort::SortRunInfo& last_run() const override { return inner_->last_run(); }
  std::uint64_t last_quarantine_mask() const override {
    return inner_->last_quarantine_mask();
  }
  const char* name() const override { return inner_->name(); }

 protected:
  /// Never used: both Sort() and SortRuns() delegate wholesale, so the
  /// wrapped sorter's own record is always the authoritative one.
  void set_last_run(const sort::SortRunInfo&) override {}

 private:
  /// Shared post-call instrumentation: counters, labeled series, the latency
  /// summary, the flight event, and the trace span with GPU sub-spans. Both
  /// entry points call the inner sorter's OWN method first (Sort() must not
  /// be rerouted through SortRuns(): the PBSN backend's Sort() does the
  /// paper's four-channel split + merge, which a single-run SortRuns() call
  /// would bypass) and then report here.
  void FinishBatch(std::uint64_t elements, std::size_t windows,
                   const Timer& batch_timer, const gpu::GpuStats& before,
                   bool traced, double t0);

  sort::Sorter* inner_;
  const gpu::GpuDevice* device_;
  obs::MetricsRegistry* metrics_;
  obs::TraceRecorder* trace_;
  obs::FlightRecorder* flight_;

  obs::MetricId batches_ = obs::kInvalidMetric;      ///< <p>.sort.batches
  obs::MetricId windows_ = obs::kInvalidMetric;      ///< <p>.sort.windows
  obs::MetricId elements_ = obs::kInvalidMetric;     ///< <p>.sort.elements
  obs::MetricId comparisons_ = obs::kInvalidMetric;  ///< <p>.sort.comparisons
  /// <p>.sort.elements{backend=...}: the per-backend split of the element
  /// count. The label is the wrapped sorter's name — identical for the
  /// serial engine and every pipeline worker — so the labeled series merges
  /// bit-identically across execution modes like the flat counters do.
  obs::MetricId elements_by_backend_ = obs::kInvalidMetric;
  /// <p>.sort.latency_us{backend=...}: GK-backed wall-latency summary per
  /// SortRuns batch (wall-clock: exempt from the bit-identity contract).
  obs::MetricId latency_ = obs::kInvalidMetric;

  std::uint64_t seq_ = 0;  ///< batches seen; drives trace sampling
};

/// Serializes a PipelineCosts record (plus its simulated-seconds
/// derivations under `model`) as gauges named <prefix>.cost.*. No-op when
/// `metrics` is null.
void ExportPipelineCosts(obs::MetricsRegistry* metrics, const std::string& prefix,
                         const PipelineCosts& costs, const hwmodel::CpuModel& model);

/// Serializes the latest frequency answer as gauges named
/// <prefix>.query.frequency.*. No-op when `metrics` is null.
void ExportFrequencyReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                           const FrequencyReport& report);

/// Serializes the latest quantile answer as gauges named
/// <prefix>.query.quantile.*. No-op when `metrics` is null.
void ExportQuantileReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                          const QuantileReport& report);

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_INSTRUMENTATION_H_
