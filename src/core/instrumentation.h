// Observability wiring for the estimators: the sorter decorator that emits
// sort spans + GPU pass sub-spans, the per-estimator metric-id bundle, and
// the gauge exporters that serialize PipelineCosts and query reports into a
// MetricsRegistry.
//
// Everything here is wired only when Options::obs carries a registry or a
// recorder, so the disabled-by-default configuration pays nothing beyond a
// null check (docs/OBSERVABILITY.md, "Overhead").

#ifndef STREAMGPU_CORE_INSTRUMENTATION_H_
#define STREAMGPU_CORE_INSTRUMENTATION_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/costs.h"
#include "core/report.h"
#include "gpu/device.h"
#include "hwmodel/cpu_model.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "sort/sorter.h"

namespace streamgpu::core {

/// Counter/histogram ids one estimator records through. Registration is
/// idempotent by name, so the serial engine's and the pipeline workers'
/// TracingSorters share the same sort counters and their shard totals sum —
/// which is what keeps metric counts bit-identical across execution modes.
struct EstimatorMetricIds {
  obs::MetricId elements_observed = obs::kInvalidMetric;  ///< <p>.observe.elements
  obs::MetricId windows_merged = obs::kInvalidMetric;     ///< <p>.merge.windows
  obs::MetricId elements_merged = obs::kInvalidMetric;    ///< <p>.merge.elements
  obs::MetricId queries = obs::kInvalidMetric;            ///< <p>.query.count
  obs::MetricId window_elements = obs::kInvalidMetric;    ///< <p>.merge.window_elements

  /// Registers the bundle under `prefix` ("freq"/"quant"). The
  /// window-elements histogram is bucketed relative to `window_size` so a
  /// final partial window is visible at a glance. No-op bundle (all ids
  /// invalid) when `metrics` is null.
  static EstimatorMetricIds Register(obs::MetricsRegistry* metrics,
                                     const std::string& prefix,
                                     std::uint64_t window_size);
};

/// Sorter decorator: forwards every call to the wrapped backend, and — per
/// SortRuns batch, never per element — bumps the sort counters and emits one
/// "sort_batch" span with GPU sub-spans (upload / passes / readback / CPU
/// run-merge) reconstructed from the device's GpuStats delta and the run's
/// simulated time split. Works identically for the serial engine and for
/// each pipeline worker (each wraps its own sorter + device, so the stats
/// delta is race-free).
class TracingSorter : public sort::Sorter {
 public:
  /// `inner` and `device` (nullable, CPU backends) are borrowed and must
  /// outlive the decorator. `prefix` scopes the counter names.
  TracingSorter(sort::Sorter* inner, const gpu::GpuDevice* device,
                const obs::Observability& obs, const std::string& prefix);

  void Sort(std::span<float> data) override;
  void SortRuns(std::span<std::span<float>> runs) override;
  const sort::SortRunInfo& last_run() const override { return inner_->last_run(); }
  std::uint64_t last_quarantine_mask() const override {
    return inner_->last_quarantine_mask();
  }
  const char* name() const override { return inner_->name(); }

 protected:
  /// Never used: both Sort() and SortRuns() delegate wholesale, so the
  /// wrapped sorter's own record is always the authoritative one.
  void set_last_run(const sort::SortRunInfo&) override {}

 private:
  sort::Sorter* inner_;
  const gpu::GpuDevice* device_;
  obs::MetricsRegistry* metrics_;
  obs::TraceRecorder* trace_;

  obs::MetricId batches_ = obs::kInvalidMetric;      ///< <p>.sort.batches
  obs::MetricId windows_ = obs::kInvalidMetric;      ///< <p>.sort.windows
  obs::MetricId elements_ = obs::kInvalidMetric;     ///< <p>.sort.elements
  obs::MetricId comparisons_ = obs::kInvalidMetric;  ///< <p>.sort.comparisons

  std::uint64_t seq_ = 0;  ///< batches seen; drives trace sampling
};

/// Serializes a PipelineCosts record (plus its simulated-seconds
/// derivations under `model`) as gauges named <prefix>.cost.*. No-op when
/// `metrics` is null.
void ExportPipelineCosts(obs::MetricsRegistry* metrics, const std::string& prefix,
                         const PipelineCosts& costs, const hwmodel::CpuModel& model);

/// Serializes the latest frequency answer as gauges named
/// <prefix>.query.frequency.*. No-op when `metrics` is null.
void ExportFrequencyReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                           const FrequencyReport& report);

/// Serializes the latest quantile answer as gauges named
/// <prefix>.query.quantile.*. No-op when `metrics` is null.
void ExportQuantileReport(obs::MetricsRegistry* metrics, const std::string& prefix,
                          const QuantileReport& report);

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_INSTRUMENTATION_H_
