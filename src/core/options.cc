#include "core/options.h"

#include <cmath>
#include <string>

#include "sketch/sliding_window.h"

namespace streamgpu::core {

namespace {

/// Largest finite binary16 value; the 16-bit GPU surfaces saturate beyond it.
constexpr float kHalfMax = 65504.0f;

bool IsGpu(Backend b) {
  // kAuto owns a device and may route windows to its PBSN candidate, so it
  // quantizes at ingest exactly like the fixed GPU backends.
  return b == Backend::kGpuPbsn || b == Backend::kGpuBitonic ||
         b == Backend::kAuto;
}

}  // namespace

Status Options::Validate() const {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1), got " +
                                   std::to_string(epsilon));
  }
  if (num_sort_workers < 1) {
    return Status::InvalidArgument("num_sort_workers must be at least 1, got " +
                                   std::to_string(num_sort_workers));
  }
  if (num_sort_workers > 1024) {
    return Status::InvalidArgument("num_sort_workers is unreasonably large (" +
                                   std::to_string(num_sort_workers) + " > 1024)");
  }
  if (max_windows_in_flight < 0) {
    return Status::InvalidArgument("max_windows_in_flight must be >= 0, got " +
                                   std::to_string(max_windows_in_flight));
  }
  if (num_sort_workers >= 2 && max_windows_in_flight != 0 &&
      max_windows_in_flight < num_sort_workers) {
    // Fewer in-flight windows than workers starves the extra workers and, at
    // the extreme, deadlocks the pipeline (Observe() blocks on the cap while
    // no worker can make progress).
    return Status::InvalidArgument(
        "max_windows_in_flight (" + std::to_string(max_windows_in_flight) +
        ") is smaller than num_sort_workers (" + std::to_string(num_sort_workers) +
        "); the cap would starve workers and can deadlock the pipeline — use 0 "
        "(auto) or a value >= num_sort_workers");
  }

  if (sliding_window != 0 &&
      quantile_sketch != sketch::QuantileSketchKind::kGk) {
    // The sliding-window structure is a GK block decomposition
    // (sketch/sliding_window.h); the swappable backends cover whole-history
    // mode only.
    return Status::InvalidArgument(
        std::string("quantile_sketch \"") +
        sketch::QuantileSketchKindName(quantile_sketch) +
        "\" supports whole-history mode only; sliding-window queries use the "
        "dedicated GK block decomposition (pick \"gk\" or drop the sliding "
        "window)");
  }
  if (sliding_window != 0) {
    // The stream must be chunked no coarser than the block size of the
    // block-decomposition structure (epsilon*W/2), or per-block summaries
    // cannot honor the in-window error budget. sliding_window < window_size
    // is a special case of this.
    const std::uint64_t block =
        sketch::SlidingWindowFrequency(epsilon, sliding_window).block_size();
    if (window_size > block) {
      return Status::InvalidArgument(
          "window_size (" + std::to_string(window_size) +
          ") must not exceed the sliding block size epsilon*W/2 (= " +
          std::to_string(block) + " for epsilon=" + std::to_string(epsilon) +
          ", sliding_window=" + std::to_string(sliding_window) + ")");
    }
  }
  // Whole-history mode has no common window_size ceiling here: the quantile
  // summary admits any window width, while the frequency summary caps it at
  // its bucket width ceil(1/epsilon) — FrequencyEstimator::Create() enforces
  // that estimator-specific rule.

  if (checkpoint_every_windows != 0 && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every_windows requires checkpoint_dir to be set");
  }
  if (!checkpoint_dir.empty() && sliding_window != 0) {
    // The sliding-window block decomposition is position-dependent and not
    // checkpointable, mirroring the mergeable-export restriction.
    return Status::InvalidArgument(
        "checkpointing supports whole-history mode only; drop the sliding "
        "window or the checkpoint directory");
  }

  if (expected_min_value != 0 || expected_max_value != 0) {
    if (expected_min_value > expected_max_value) {
      return Status::InvalidArgument(
          "expected_min_value (" + std::to_string(expected_min_value) +
          ") must not exceed expected_max_value (" +
          std::to_string(expected_max_value) + ")");
    }
    if (IsGpu(backend) && gpu_format == gpu::Format::kFloat16 &&
        (std::abs(expected_min_value) > kHalfMax ||
         std::abs(expected_max_value) > kHalfMax)) {
      return Status::InvalidArgument(
          "expected value range [" + std::to_string(expected_min_value) + ", " +
          std::to_string(expected_max_value) +
          "] exceeds the finite binary16 range (+-65504) of the 16-bit GPU "
          "surfaces; use gpu::Format::kFloat32 or rescale the stream");
    }
  }

  if (!(planner.memcpy_ns_per_byte >= 0.0)) {
    return Status::InvalidArgument(
        "planner.memcpy_ns_per_byte must be >= 0 (0 = probe), got " +
        std::to_string(planner.memcpy_ns_per_byte));
  }

  for (std::size_t i = 0; i < fault.plan.rules.size(); ++i) {
    const FaultRule& rule = fault.plan.rules[i];
    const std::string where = "fault.plan rule #" + std::to_string(i) + ": ";
    if (rule.every_n == 0 && !(rule.probability > 0.0 && rule.probability <= 1.0)) {
      return Status::InvalidArgument(
          where + "needs a trigger: every_n > 0 or probability in (0, 1]");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return Status::InvalidArgument(where + "probability must be in [0, 1], got " +
                                     std::to_string(rule.probability));
    }
    if (rule.site == FaultSite::kQueue && rule.kind != FaultKind::kStall) {
      return Status::InvalidArgument(where +
                                     "the queue site only supports stall faults");
    }
    if (rule.bit < 0 || rule.bit > 31) {
      return Status::InvalidArgument(where + "bit must be in [0, 31], got " +
                                     std::to_string(rule.bit));
    }
  }
  if (fault.max_retries < 0) {
    return Status::InvalidArgument("fault.max_retries must be >= 0, got " +
                                   std::to_string(fault.max_retries));
  }
  if (fault.max_device_losses < 0) {
    return Status::InvalidArgument("fault.max_device_losses must be >= 0, got " +
                                   std::to_string(fault.max_device_losses));
  }
  if (fault.drain_deadline_seconds < 0) {
    return Status::InvalidArgument("fault.drain_deadline_seconds must be >= 0, got " +
                                   std::to_string(fault.drain_deadline_seconds));
  }
  if (fault.backoff_initial_us > fault.backoff_max_us) {
    return Status::InvalidArgument(
        "fault.backoff_initial_us (" + std::to_string(fault.backoff_initial_us) +
        ") must not exceed fault.backoff_max_us (" +
        std::to_string(fault.backoff_max_us) + ")");
  }

  return Status::Ok();
}

}  // namespace streamgpu::core
