#include "core/options.h"

#include <cmath>
#include <string>

#include "sketch/sliding_window.h"

namespace streamgpu::core {

namespace {

/// Largest finite binary16 value; the 16-bit GPU surfaces saturate beyond it.
constexpr float kHalfMax = 65504.0f;

bool IsGpu(Backend b) {
  return b == Backend::kGpuPbsn || b == Backend::kGpuBitonic;
}

}  // namespace

Status Options::Validate() const {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1), got " +
                                   std::to_string(epsilon));
  }
  if (num_sort_workers < 1) {
    return Status::InvalidArgument("num_sort_workers must be at least 1, got " +
                                   std::to_string(num_sort_workers));
  }
  if (num_sort_workers > 1024) {
    return Status::InvalidArgument("num_sort_workers is unreasonably large (" +
                                   std::to_string(num_sort_workers) + " > 1024)");
  }
  if (max_windows_in_flight < 0) {
    return Status::InvalidArgument("max_windows_in_flight must be >= 0, got " +
                                   std::to_string(max_windows_in_flight));
  }

  if (sliding_window != 0) {
    // The stream must be chunked no coarser than the block size of the
    // block-decomposition structure (epsilon*W/2), or per-block summaries
    // cannot honor the in-window error budget. sliding_window < window_size
    // is a special case of this.
    const std::uint64_t block =
        sketch::SlidingWindowFrequency(epsilon, sliding_window).block_size();
    if (window_size > block) {
      return Status::InvalidArgument(
          "window_size (" + std::to_string(window_size) +
          ") must not exceed the sliding block size epsilon*W/2 (= " +
          std::to_string(block) + " for epsilon=" + std::to_string(epsilon) +
          ", sliding_window=" + std::to_string(sliding_window) + ")");
    }
  }
  // Whole-history mode has no common window_size ceiling here: the quantile
  // summary admits any window width, while the frequency summary caps it at
  // its bucket width ceil(1/epsilon) — FrequencyEstimator::Create() enforces
  // that estimator-specific rule.

  if (expected_min_value != 0 || expected_max_value != 0) {
    if (expected_min_value > expected_max_value) {
      return Status::InvalidArgument(
          "expected_min_value (" + std::to_string(expected_min_value) +
          ") must not exceed expected_max_value (" +
          std::to_string(expected_max_value) + ")");
    }
    if (IsGpu(backend) && gpu_format == gpu::Format::kFloat16 &&
        (std::abs(expected_min_value) > kHalfMax ||
         std::abs(expected_max_value) > kHalfMax)) {
      return Status::InvalidArgument(
          "expected value range [" + std::to_string(expected_min_value) + ", " +
          std::to_string(expected_max_value) +
          "] exceeds the finite binary16 range (+-65504) of the 16-bit GPU "
          "surfaces; use gpu::Format::kFloat32 or rescale the stream");
    }
  }

  return Status::Ok();
}

}  // namespace streamgpu::core
