// Configuration of the public stream-mining estimators.

#ifndef STREAMGPU_CORE_OPTIONS_H_
#define STREAMGPU_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "core/fault.h"
#include "core/status.h"
#include "gpu/surface.h"
#include "obs/observability.h"
#include "sketch/quantile_sketch.h"

namespace streamgpu::core {

/// Sorting backend used for the per-window histogram computation — the
/// operation that dominates runtime (70-95%, §3.2) and that the paper
/// offloads to the GPU.
///
/// Every backend sorts each window into the same ascending permutation of
/// its input bit patterns, so estimator reports are bit-identical across
/// backends given identical ingested values (the GPU backends quantize at
/// ingest when gpu_format is kFloat16 — pick kFloat32 to compare against
/// the CPU backends). See docs/SORT_BACKENDS.md for the full catalog.
enum class Backend {
  kGpuPbsn,        ///< the paper's GPU PBSN sort (§4.4)
  kGpuBitonic,     ///< prior GPU bitonic sort baseline [40]
  kCpuQuicksort,   ///< instrumented CPU quicksort (Intel-compiler class)
  kCpuStdSort,     ///< std::sort (introsort)
  kCpuRadixMerge,  ///< cache-blocked LSD radix sort + loser-tree merge
  kSampleSort,     ///< deterministic splitter sample sort
  kAuto,           ///< cost-model planner picks per window (hwmodel::SortPlanner)
};

/// Human-readable backend name.
inline const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kGpuPbsn:
      return "gpu-pbsn";
    case Backend::kGpuBitonic:
      return "gpu-bitonic";
    case Backend::kCpuQuicksort:
      return "cpu-quicksort";
    case Backend::kCpuStdSort:
      return "cpu-std-sort";
    case Backend::kCpuRadixMerge:
      return "cpu-radix";
    case Backend::kSampleSort:
      return "sample-sort";
    case Backend::kAuto:
      return "auto";
  }
  return "?";
}

/// Cost-model planner configuration, consulted only by Backend::kAuto. The
/// planner's choice is a deterministic function of window size and these
/// inputs; see docs/COST_MODEL.md ("Planner formulas").
struct PlannerConfig {
  /// Which clock the planner minimizes. kHostWall (default) picks the
  /// backend predicted fastest on the actual machine; kSimulated2005
  /// re-enacts the paper's decision on the modeled 2005 testbed (the GPU
  /// overtakes CPU quicksort around 16K keys, §4.5).
  enum class Objective { kHostWall, kSimulated2005 };
  Objective objective = Objective::kHostWall;

  /// Pinned host calibration: the machine's large-memcpy speed in ns/byte.
  /// <= 0 (default) probes once per process (hwmodel::CachedMemcpyNsPerByte,
  /// overridable via STREAMGPU_MEMCPY_NS_PER_BYTE); pin a positive value for
  /// machine-independent planning in tests and reproducible runs.
  double memcpy_ns_per_byte = 0.0;
};

/// Estimator configuration.
struct Options {
  /// Approximation parameter: rank error (quantiles) or frequency error
  /// (heavy hitters) is at most epsilon * N.
  double epsilon = 0.001;

  /// Sorting backend for the histogram step.
  Backend backend = Backend::kGpuPbsn;

  /// Planner knobs for Backend::kAuto (ignored by the fixed backends).
  PlannerConfig planner;

  /// Texture/render-target precision for the GPU backends. The paper's
  /// optimized configuration streams 16-bit floating point data through
  /// 16-bit offscreen buffers (§4.5, §5); with kFloat16 every observed value
  /// is quantized through binary16 on ingestion.
  gpu::Format gpu_format = gpu::Format::kFloat16;

  /// Elements per processing window. 0 = the natural width ceil(1/epsilon)
  /// (whole-history mode) or the block size epsilon*W/2 (sliding mode).
  std::uint64_t window_size = 0;

  /// Width W of the sliding window; 0 = queries cover the entire past
  /// history (§3.1's two query manners).
  std::uint64_t sliding_window = 0;

  /// A-priori stream length N for the whole-history quantile structure
  /// (§5.2 assumes N known). 0 = provision generously (2^32 windows).
  std::uint64_t expected_stream_length = 0;

  /// Whole-history quantile backend (sketch/quantile_sketch.h): the paper's
  /// GK+EH structure (default), the single-element GK01 baseline, or a KLL
  /// compactor hierarchy. Sliding-window mode keeps its dedicated GK block
  /// decomposition, so Validate() rejects non-GK kinds combined with a
  /// non-zero sliding_window. Ignored by the frequency estimators.
  sketch::QuantileSketchKind quantile_sketch = sketch::QuantileSketchKind::kGk;

  /// Sort-worker threads per estimator. 1 = serial execution on the caller
  /// thread (the seed behavior). >= 2 enables the parallel ingest pipeline:
  /// workers sort window-batches concurrently (each owning its own backend
  /// instance / simulated device) while a single summary thread drains the
  /// sorted windows in submission order, so query answers and simulated-2005
  /// cost accounting are bit-identical to serial mode (see
  /// docs/ARCHITECTURE.md, "Execution modes").
  int num_sort_workers = 1;

  /// Backpressure cap for the pipelined mode: the maximum number of windows
  /// buffered inside the pipeline (rounded up to whole sort batches) before
  /// Observe() blocks. 0 = (num_sort_workers + 2) batches. Ignored in serial
  /// mode.
  int max_windows_in_flight = 0;

  /// Expected value range of the stream, when known a priori. Only consulted
  /// by Validate(): a GPU backend configured with 16-bit buffers (the
  /// default gpu_format) saturates values beyond binary16's finite range
  /// (|v| > 65504), so expectations outside it are rejected up front instead
  /// of silently quantizing every out-of-range element to +-65504. 0/0 =
  /// unknown range, not validated.
  float expected_min_value = 0;
  float expected_max_value = 0;

  /// Observability sinks (borrowed, not owned; all three null by default =
  /// observability fully disabled): a metrics registry, a trace recorder,
  /// and a fault flight recorder. Every pointed-to sink must outlive the
  /// estimator. See docs/OBSERVABILITY.md.
  obs::Observability obs;

  /// Fault injection and tolerance. Disabled by default (empty plan): no
  /// hooks are installed and the hot paths pay a single pointer compare.
  /// With a non-empty plan the estimator injects the planned faults into its
  /// simulated device(s)/pipeline and wraps every sort backend in
  /// sort::ResilientSorter with these recovery knobs. See
  /// docs/ROBUSTNESS.md.
  FaultTolerance fault;

  /// Durable checkpointing (docs/DURABILITY.md). Non-empty: the estimator
  /// snapshots its full state (summary core, staged partial window,
  /// watermark) into this directory with the crash-consistent protocol of
  /// durable/checkpoint.h, and *Estimator::Restore(options) resumes from the
  /// newest usable snapshot. Whole-history mode only — Validate() rejects
  /// the combination with a sliding window.
  std::string checkpoint_dir;

  /// Auto-checkpoint cadence: snapshot after every N merged windows (at
  /// batch boundaries, so a checkpoint never splits a sort batch). 0 =
  /// explicit Checkpoint() calls only. Requires checkpoint_dir.
  std::uint64_t checkpoint_every_windows = 0;

  /// Checks every estimator-agnostic configuration rule and returns the
  /// first violation: epsilon outside (0, 1), num_sort_workers outside
  /// [1, 1024], negative max_windows_in_flight (or, pipelined, a cap smaller
  /// than the worker count, which starves workers and can deadlock),
  /// window_size exceeding the sliding block size epsilon*W/2 (which also
  /// rejects sliding_window < window_size), an expected value range outside
  /// binary16 for a 16-bit GPU configuration, or an inconsistent fault
  /// plan / recovery policy. The Create() factories call this (adding
  /// estimator-specific rules) and propagate the Status; the constructors
  /// CHECK it, so invalid options still abort rather than silently
  /// misbehave when the factories are bypassed.
  Status Validate() const;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_OPTIONS_H_
