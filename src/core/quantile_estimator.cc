#include "core/quantile_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"

namespace streamgpu::core {

namespace {

// Validates user-provided options at the API boundary.
const Options& ValidatedOptions(const Options& options) {
  STREAMGPU_CHECK_MSG(options.epsilon > 0.0 && options.epsilon < 1.0,
                      "epsilon must be in (0, 1)");
  STREAMGPU_CHECK_MSG(options.num_sort_workers <= 1024,
                      "num_sort_workers is unreasonably large");
  return options;
}

std::uint64_t NaturalWindow(const Options& options) {
  if (options.window_size != 0) return options.window_size;
  if (options.sliding_window != 0) {
    return sketch::SlidingWindowQuantile(options.epsilon, options.sliding_window)
        .block_size();
  }
  // Whole-history mode: windows of ceil(1/epsilon) give (epsilon/2)-summaries
  // of about 1/epsilon tuples, mirroring the frequency path's bucket width.
  return static_cast<std::uint64_t>(std::ceil(1.0 / options.epsilon));
}

std::uint64_t ExpectedLength(const Options& options, std::uint64_t window) {
  if (options.expected_stream_length != 0) return options.expected_stream_length;
  // Provision generously: 2^32 windows cover any realistic session.
  return window << 32;
}

}  // namespace

QuantileEstimator::QuantileEstimator(const Options& options)
    : options_(ValidatedOptions(options)),
      engine_(options),
      // engine_ is declared (and therefore initialized) before batcher_.
      batcher_(NaturalWindow(options), engine_.batch_windows()),
      cpu_model_(hwmodel::kPentium4_3400) {
  if (options.sliding_window != 0) {
    sliding_.emplace(options.epsilon, options.sliding_window);
    STREAMGPU_CHECK_MSG(batcher_.window_size() <= sliding_->block_size(),
                        "window_size must not exceed the sliding block size");
  } else {
    whole_.emplace(options.epsilon, batcher_.window_size(),
                   ExpectedLength(options, batcher_.window_size()));
  }
  if (options.num_sort_workers >= 2) {
    worker_engines_ = MakeWorkerEngines(options, options.num_sort_workers);
    std::vector<sort::Sorter*> sorters;
    sorters.reserve(worker_engines_.size());
    for (auto& engine : worker_engines_) sorters.push_back(&engine->sorter());
    pipeline_ = std::make_unique<stream::SortPipeline>(
        MakePipelineConfig(options, batcher_.window_size(), engine_.batch_windows()),
        std::move(sorters),
        [this](std::vector<float>&& data, const sort::SortRunInfo& run) {
          DrainSortedBatch(std::move(data), run);
        });
  }
}

void QuantileEstimator::Observe(float value) {
  ++observed_;
  if (engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    value = gpu::QuantizeToHalf(value);
  }
  if (batcher_.Push(value)) {
    if (pipeline_ != nullptr) {
      pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
    } else {
      ProcessBuffered();
    }
  }
}

void QuantileEstimator::ObserveBatch(std::span<const float> values) {
  for (float v : values) Observe(v);
}

void QuantileEstimator::Flush() {
  if (pipeline_ != nullptr) {
    if (!batcher_.empty()) {
      pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
    }
    Sync();
    return;
  }
  if (!batcher_.empty()) ProcessBuffered();
}

void QuantileEstimator::ProcessBuffered() {
  std::vector<std::span<float>> windows = batcher_.Windows();

  engine_.sorter().SortRuns(windows);
  costs_.sort += engine_.sorter().last_run();

  for (std::span<float> window : windows) MergeSortedWindow(window);
  batcher_.Clear();
}

void QuantileEstimator::DrainSortedBatch(std::vector<float>&& data,
                                         const sort::SortRunInfo& run) {
  // Runs on the pipeline's summary thread, in submission order — the same
  // accumulation order as serial execution, so the cost record (including
  // the floating-point simulated-seconds sums) stays bit-identical.
  costs_.sort += run;
  const std::uint64_t window_size = batcher_.window_size();
  for (std::size_t off = 0; off < data.size(); off += window_size) {
    const std::size_t len = std::min<std::size_t>(window_size, data.size() - off);
    MergeSortedWindow(std::span<float>(data.data() + off, len));
  }
}

void QuantileEstimator::MergeSortedWindow(std::span<float> window) {
  // Rank-sample the sorted window into an (epsilon/2)-approximate summary
  // (the "histogram subset" of §3.2's quantile path).
  Timer hist_timer;
  const double target = whole_.has_value() ? options_.epsilon / 2.0
                                           : sliding_->block_epsilon();
  sketch::GkSummary summary = sketch::GkSummary::FromSorted(window, target);
  costs_.histogram_wall_seconds += hist_timer.ElapsedSeconds();
  costs_.histogram_elements += window.size();

  if (whole_.has_value()) {
    whole_->AddWindowSummary(std::move(summary));
  } else {
    sliding_->AddBlockSummary(std::move(summary));
  }
  processed_ += window.size();
}

void QuantileEstimator::Sync() const {
  if (pipeline_ == nullptr) return;
  pipeline_->WaitIdle();
  const stream::PipelineWaitStats stats = pipeline_->stats();
  costs_.ingest_stall_seconds = stats.ingest_stall_seconds;
  costs_.sort_queue_wait_seconds = stats.sort_queue_wait_seconds;
  costs_.drain_queue_wait_seconds = stats.drain_queue_wait_seconds;
  costs_.sort_wall_seconds = stats.sort_wall_seconds;
  costs_.drain_wall_seconds = stats.drain_wall_seconds;
  costs_.pipelined_batches = stats.batches;
}

float QuantileEstimator::Quantile(double phi, std::uint64_t window) const {
  Sync();
  if (whole_.has_value()) return whole_->Query(phi);
  return sliding_->Query(phi, window);
}

std::size_t QuantileEstimator::summary_size() const {
  Sync();
  return whole_.has_value() ? whole_->TotalTuples() : sliding_->summary_size();
}

gpu::GpuStats QuantileEstimator::device_stats() const {
  Sync();
  gpu::GpuStats total;
  if (pipeline_ != nullptr) {
    for (const auto& engine : worker_engines_) {
      if (engine->device() != nullptr) total += engine->device()->stats();
    }
  } else if (engine_.device() != nullptr) {
    total += engine_.device()->stats();
  }
  return total;
}

const PipelineCosts& QuantileEstimator::costs() const {
  Sync();
  if (whole_.has_value()) {
    costs_.merge_wall_seconds = whole_->merge_seconds();
    costs_.compress_wall_seconds = whole_->compress_seconds();
    costs_.merged_entries = whole_->merged_tuples();
    costs_.compressed_entries = whole_->pruned_tuples();
  }
  return costs_;
}

double QuantileEstimator::SimulatedSeconds() const {
  return costs().SimulatedTotalSeconds(cpu_model_);
}

}  // namespace streamgpu::core
