#include "core/quantile_estimator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/half.h"
#include "hwmodel/hardware_profiles.h"

namespace streamgpu::core {

namespace {

constexpr char kPrefix[] = "quant";

sort::ResilienceOptions MakeResilienceOptions(const FaultTolerance& fault) {
  sort::ResilienceOptions out;
  out.max_retries = fault.max_retries;
  out.max_device_losses = fault.max_device_losses;
  out.cpu_fallback = fault.cpu_fallback;
  out.backoff_initial_us = fault.backoff_initial_us;
  out.backoff_max_us = fault.backoff_max_us;
  return out;
}

// Validates user-provided options at the API boundary; constructor path, so
// violations abort (Create() returns them as Status instead).
const Options& ValidatedOptions(const Options& options) {
  const Status status = options.Validate();
  STREAMGPU_CHECK_MSG(status.ok(), status.ToString().c_str());
  return options;
}

std::uint64_t NaturalWindow(const Options& options) {
  return NaturalQuantileWindow(options.epsilon, options.window_size,
                               options.sliding_window);
}

}  // namespace

StatusOr<std::unique_ptr<QuantileEstimator>> QuantileEstimator::Create(
    const Options& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  return std::make_unique<QuantileEstimator>(options);
}

QuantileEstimator::QuantileEstimator(const Options& options)
    : options_(ValidatedOptions(options)),
      obs_(options.obs),
      engine_(options),
      // engine_ is declared (and therefore initialized) before batcher_.
      batcher_(NaturalWindow(options), engine_.batch_windows()),
      core_(options.epsilon, batcher_.window_size(), options.sliding_window,
            options.expected_stream_length, options.quantile_sketch),
      cpu_model_(hwmodel::kPentium4_3400) {
  ids_ = EstimatorMetricIds::Register(obs_.metrics, kPrefix, batcher_.window_size());
  if (obs_.trace != nullptr) obs_.trace->NameCurrentThread("ingest");
  if (obs_.trace != nullptr && obs_.metrics != nullptr) {
    // Span-cap overflow becomes visible as obs.trace.spans_dropped.
    obs_.trace->BindDropCounter(obs_.metrics);
  }
  if (!options.checkpoint_dir.empty()) {
    checkpoint_writer_ = std::make_unique<durable::CheckpointWriter>(options.checkpoint_dir);
    checkpoint_writer_->SetObservability(obs_);
  }
  sort_front_ = &engine_.sorter();
  if (options.fault.enabled()) {
    // Recovery wraps the raw backend; tracing (below) wraps recovery, so
    // retried sorts appear in the trace as the longer sort spans they are.
    fault_injector_ = std::make_unique<FaultInjector>(options.fault.plan, /*stream_id=*/0);
    fault_injector_->set_flight_recorder(obs_.flight);
    if (engine_.device() != nullptr) engine_.device()->set_fault_hook(fault_injector_.get());
    if (options.fault.cpu_fallback) {
      fallback_sorter_ = std::make_unique<sort::RadixMergeSorter>(hwmodel::kPentium4_3400);
    }
    resilient_sorter_ = std::make_unique<sort::ResilientSorter>(
        sort_front_, fallback_sorter_.get(), engine_.device(), fault_injector_.get(),
        obs_, std::string(kPrefix) + ".", MakeResilienceOptions(options.fault));
    sort_front_ = resilient_sorter_.get();
  }
  if (obs_.any()) {
    traced_sorter_ =
        std::make_unique<TracingSorter>(sort_front_, engine_.device(), obs_, kPrefix);
    sort_front_ = traced_sorter_.get();
  }

  if (options.num_sort_workers >= 2) {
    worker_engines_ = MakeWorkerEngines(options, options.num_sort_workers);
    std::vector<sort::Sorter*> sorters;
    sorters.reserve(worker_engines_.size());
    for (std::size_t i = 0; i < worker_engines_.size(); ++i) {
      SortEngine& engine = *worker_engines_[i];
      sort::Sorter* front = &engine.sorter();
      if (options.fault.enabled()) {
        // Worker i seeds its injector with stream id i+1 (the serial path is
        // 0): decorrelated fault sequences, each still reproducible.
        worker_injectors_.push_back(
            std::make_unique<FaultInjector>(options.fault.plan, i + 1));
        worker_injectors_.back()->set_flight_recorder(obs_.flight);
        if (engine.device() != nullptr) {
          engine.device()->set_fault_hook(worker_injectors_.back().get());
        }
        worker_fallbacks_.push_back(
            options.fault.cpu_fallback
                ? std::make_unique<sort::RadixMergeSorter>(hwmodel::kPentium4_3400)
                : nullptr);
        worker_resilient_.push_back(std::make_unique<sort::ResilientSorter>(
            front, worker_fallbacks_.back().get(), engine.device(),
            worker_injectors_.back().get(), obs_, std::string(kPrefix) + ".",
            MakeResilienceOptions(options.fault)));
        front = worker_resilient_.back().get();
      }
      if (obs_.any()) {
        traced_workers_.push_back(
            std::make_unique<TracingSorter>(front, engine.device(), obs_, kPrefix));
        front = traced_workers_.back().get();
      }
      sorters.push_back(front);
    }
    stream::PipelineConfig config = MakePipelineConfig(
        options, batcher_.window_size(), engine_.batch_windows(), kPrefix);
    if (options.fault.enabled()) {
      config.queue_stall_hook = [this](int worker_index) {
        return worker_injectors_[static_cast<std::size_t>(worker_index)]->PollQueueStall();
      };
    }
    pipeline_ = std::make_unique<stream::SortPipeline>(
        config, std::move(sorters),
        [this](std::vector<float>&& data, const sort::SortRunInfo& run,
               std::uint64_t quarantine_mask) {
          return DrainSortedBatch(std::move(data), run, quarantine_mask);
        });
  }
}

Status QuantileEstimator::Observe(float value) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "Observe() after Flush(): the estimator is finalized and query-only");
  }
  return ObserveValue(value);
}

Status QuantileEstimator::ObserveBatch(std::span<const float> values) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "ObserveBatch() after Flush(): the estimator is finalized and query-only");
  }
  // Bulk fast path: the lifecycle and backend checks above are hoisted out
  // of the loop, and whole spans are copied (or binary16-quantized) straight
  // into batch storage instead of pushing one element at a time. Batch
  // boundaries, counters, and trace spans land exactly as the per-element
  // path produces them.
  const bool quantize =
      engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16;
  std::size_t consumed = 0;
  while (consumed < values.size()) {
    if (obs_.trace != nullptr && ingest_start_us_ < 0) {
      ingest_start_us_ = obs_.trace->NowMicros();
    }
    const std::span<float> slot = batcher_.Claim(values.size() - consumed);
    if (quantize) {
      for (std::size_t i = 0; i < slot.size(); ++i) {
        slot[i] = gpu::QuantizeToHalf(values[consumed + i]);
      }
    } else {
      std::copy_n(values.begin() + static_cast<std::ptrdiff_t>(consumed),
                  slot.size(), slot.begin());
    }
    consumed += slot.size();
    observed_ += slot.size();
    if (obs_.metrics != nullptr) {
      obs_.metrics->Add(ids_.elements_observed, slot.size());
    }
    if (batcher_.full()) {
      const Status status = SubmitFullBatch();
      if (!status.ok()) return status;
      const Status checkpoint = MaybeAutoCheckpoint();
      if (!checkpoint.ok()) return checkpoint;
    }
  }
  return Status::Ok();
}

Status QuantileEstimator::ObserveValue(float value) {
  ++observed_;
  if (obs_.metrics != nullptr) obs_.metrics->Add(ids_.elements_observed);
  if (obs_.trace != nullptr && ingest_start_us_ < 0) {
    ingest_start_us_ = obs_.trace->NowMicros();
  }
  if (engine_.is_gpu() && options_.gpu_format == gpu::Format::kFloat16) {
    value = gpu::QuantizeToHalf(value);
  }
  if (batcher_.Push(value)) {
    const Status status = SubmitFullBatch();
    if (!status.ok()) return status;
    return MaybeAutoCheckpoint();
  }
  return Status::Ok();
}

Status QuantileEstimator::SubmitFullBatch() {
  EndIngestSpan(batcher_.window_size() * engine_.batch_windows());
  if (pipeline_ != nullptr) {
    const Status status =
        pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
    if (!status.ok()) {
      // The pipeline is wedged or its drain died; surface the Status to
      // the caller instead of blocking on a cap nobody will ever free
      // (satellite bugfix — see docs/ROBUSTNESS.md).
      if (pipeline_status_.ok()) pipeline_status_ = status;
      return status;
    }
  } else {
    ProcessBuffered();
  }
  return Status::Ok();
}

void QuantileEstimator::EndIngestSpan(std::size_t elements) {
  if (obs_.trace == nullptr) return;
  const std::uint64_t seq = ingest_seq_++;
  if (ingest_start_us_ >= 0 && obs_.trace->Sampled(seq)) {
    obs_.trace->AddSpan("ingest_batch", "ingest", ingest_start_us_,
                        obs_.trace->NowMicros() - ingest_start_us_,
                        {{"seq", static_cast<double>(seq)},
                         {"elements", static_cast<double>(elements)}});
  }
  ingest_start_us_ = -1;
}

Status QuantileEstimator::Flush() {
  if (finalized_) return pipeline_status_;
  finalized_ = true;
  if (!batcher_.empty()) EndIngestSpan(batcher_.buffered());
  if (pipeline_ != nullptr) {
    if (!batcher_.empty()) {
      const Status status =
          pipeline_->Submit(batcher_.TakeBuffer(pipeline_->AcquireBuffer()));
      if (!status.ok() && pipeline_status_.ok()) pipeline_status_ = status;
    }
    Sync();
    return pipeline_status_;
  }
  if (!batcher_.empty()) ProcessBuffered();
  return Status::Ok();
}

void QuantileEstimator::ProcessBuffered() {
  std::vector<std::span<float>> windows = batcher_.Windows();

  sort_front_->SortRuns(windows);
  costs_.sort += sort_front_->last_run();
  const std::uint64_t quarantine_mask = sort_front_->last_quarantine_mask();

  const std::uint64_t seq = drain_seq_++;
  const bool traced = obs_.trace != nullptr && obs_.trace->Sampled(seq);
  const double t0 = traced ? obs_.trace->NowMicros() : 0;
  Timer drain_timer;
  std::size_t elements = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if ((quarantine_mask >> i) & 1) {
      QuarantineWindow(windows[i].size());
      continue;
    }
    elements += windows[i].size();
    MergeSortedWindow(windows[i]);
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->Observe(ids_.drain_latency, drain_timer.ElapsedSeconds() * 1e6);
  }
  if (traced) {
    obs_.trace->AddSpan("drain_batch", "drain", t0, obs_.trace->NowMicros() - t0,
                        {{"seq", static_cast<double>(seq)},
                         {"elements", static_cast<double>(elements)}});
  }
  batcher_.Clear();
}

Status QuantileEstimator::DrainSortedBatch(std::vector<float>&& data,
                                           const sort::SortRunInfo& run,
                                           std::uint64_t quarantine_mask) {
  // Runs on the pipeline's summary thread, in submission order — the same
  // accumulation order as serial execution, so the cost record (including
  // the floating-point simulated-seconds sums) stays bit-identical.
  costs_.sort += run;
  Timer drain_timer;
  const std::uint64_t window_size = batcher_.window_size();
  std::size_t window_index = 0;
  for (std::size_t off = 0; off < data.size(); off += window_size, ++window_index) {
    const std::size_t len = std::min<std::size_t>(window_size, data.size() - off);
    if ((quarantine_mask >> window_index) & 1) {
      QuarantineWindow(len);
      continue;
    }
    MergeSortedWindow(std::span<float>(data.data() + off, len));
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->Observe(ids_.drain_latency, drain_timer.ElapsedSeconds() * 1e6);
  }
  return Status::Ok();
}

void QuantileEstimator::QuarantineWindow(std::size_t elements) {
  core_.QuarantineWindow(elements);
}

void QuantileEstimator::MergeSortedWindow(std::span<float> window) {
  const std::uint64_t seq = window_seq_++;
  const bool traced = obs_.trace != nullptr && obs_.trace->Sampled(seq);
  const double t0 = traced ? obs_.trace->NowMicros() : 0;

  Timer merge_timer;
  const std::size_t summary_tuples = core_.MergeSortedWindow(window);

  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(ids_.windows_merged);
    obs_.metrics->Add(ids_.elements_merged, window.size());
    obs_.metrics->Record(ids_.window_elements, static_cast<double>(window.size()));
    obs_.metrics->Observe(ids_.merge_latency, merge_timer.ElapsedSeconds() * 1e6);
  }
  if (traced) {
    obs_.trace->AddSpan("window_merge", "merge", t0, obs_.trace->NowMicros() - t0,
                        {{"window", static_cast<double>(seq)},
                         {"elements", static_cast<double>(window.size())},
                         {"summary_tuples", static_cast<double>(summary_tuples)}});
  }
}

void QuantileEstimator::Sync() const {
  if (pipeline_ == nullptr) return;
  const Status status = pipeline_->WaitIdle();
  if (!status.ok() && pipeline_status_.ok()) pipeline_status_ = status;
  const stream::PipelineWaitStats stats = pipeline_->stats();
  costs_.ingest_stall_seconds = stats.ingest_stall_seconds;
  costs_.sort_queue_wait_seconds = stats.sort_queue_wait_seconds;
  costs_.drain_queue_wait_seconds = stats.drain_queue_wait_seconds;
  costs_.sort_wall_seconds = stats.sort_wall_seconds;
  costs_.drain_wall_seconds = stats.drain_wall_seconds;
  costs_.pipelined_batches = stats.batches;
}

QuantileReport QuantileEstimator::Quantile(double phi, std::uint64_t window) const {
  Sync();
  const QuantileReport report = core_.Quantile(phi, window);
  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(ids_.queries);
    ExportQuantileReport(obs_.metrics, kPrefix, report);
  }
  return report;
}

Status QuantileEstimator::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every_windows == 0) return Status::Ok();
  windows_since_checkpoint_ += static_cast<std::uint64_t>(engine_.batch_windows());
  if (windows_since_checkpoint_ < options_.checkpoint_every_windows) {
    return Status::Ok();
  }
  return Checkpoint();
}

Status QuantileEstimator::Checkpoint() {
  if (checkpoint_writer_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint() requires Options::checkpoint_dir");
  }
  // A consistent cut: every submitted batch is merged before the snapshot,
  // so the summary core, the staged partial window, and observed_ agree.
  Sync();
  if (!pipeline_status_.ok()) return pipeline_status_;

  checkpoint_writer_->Begin();
  durable::SnapshotHeader header;
  header.mode = durable::kSnapshotModeQuantile;
  header.kind = static_cast<std::uint16_t>(core_.kind());
  header.epsilon = options_.epsilon;
  header.window_size = batcher_.window_size();
  header.aux = options_.expected_stream_length;
  std::vector<std::uint8_t> header_payload;
  durable::AppendSnapshotHeader(header, &header_payload);
  checkpoint_writer_->Add(durable::RecordType::kSnapshotHeader, header_payload);

  std::vector<std::uint8_t> state;
  if (Status s = core_.AppendCheckpointState(&state); !s.ok()) return s;
  checkpoint_writer_->Add(durable::RecordType::kQuantileState, state);

  if (!batcher_.empty()) {
    std::vector<std::uint8_t> staged;
    durable::AppendWindowBuffer(batcher_.contents(), &staged);
    checkpoint_writer_->Add(durable::RecordType::kWindowBuffer, staged);
  }
  const Status status = checkpoint_writer_->Commit(observed_);
  if (status.ok()) windows_since_checkpoint_ = 0;
  return status;
}

StatusOr<std::unique_ptr<QuantileEstimator>> QuantileEstimator::Restore(
    const Options& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("Restore() requires Options::checkpoint_dir");
  }
  StatusOr<durable::Snapshot> snapshot =
      durable::LoadLatestSnapshot(options.checkpoint_dir);
  if (!snapshot.ok()) return snapshot.status();
  auto estimator = std::make_unique<QuantileEstimator>(options);
  status = estimator->InstallSnapshot(snapshot.value());
  if (!status.ok()) return status;
  durable::RecordRestore(options.obs, snapshot.value());
  return estimator;
}

Status QuantileEstimator::InstallSnapshot(const durable::Snapshot& snapshot) {
  if (snapshot.records.empty()) {
    return Status::InvalidArgument("snapshot has no records");
  }
  durable::SnapshotHeader header;
  if (!durable::ReadSnapshotHeader(snapshot.records[0].payload, &header)) {
    return Status::InvalidArgument("malformed snapshot header");
  }
  if (header.mode != durable::kSnapshotModeQuantile) {
    return Status::InvalidArgument(
        "checkpoint was written by a different subsystem (header mode " +
        std::to_string(header.mode) + ")");
  }
  if (header.kind != static_cast<std::uint16_t>(core_.kind()) ||
      header.epsilon != options_.epsilon ||
      header.window_size != batcher_.window_size() ||
      header.aux != options_.expected_stream_length) {
    return Status::InvalidArgument(
        "checkpoint configuration does not match Options (epsilon, window "
        "size, sketch kind, and expected stream length must equal the "
        "writer's)");
  }

  const durable::OwnedRecord* state = nullptr;
  const durable::OwnedRecord* staged = nullptr;
  for (std::size_t i = 1; i < snapshot.records.size(); ++i) {
    const durable::OwnedRecord& record = snapshot.records[i];
    switch (record.type) {
      case durable::RecordType::kQuantileState:
        if (state != nullptr) {
          return Status::InvalidArgument("duplicate quantile-state record");
        }
        state = &record;
        break;
      case durable::RecordType::kWindowBuffer:
        if (staged != nullptr) {
          return Status::InvalidArgument("duplicate window-buffer record");
        }
        staged = &record;
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected ") + durable::RecordTypeName(record.type) +
            " record in a quantile-estimator snapshot");
    }
  }
  if (state == nullptr) {
    return Status::InvalidArgument("snapshot is missing its quantile-state record");
  }
  if (Status s = core_.RestoreCheckpointState(state->payload); !s.ok()) return s;

  if (staged != nullptr) {
    std::vector<float> buffered;
    if (!durable::ReadWindowBuffer(staged->payload, &buffered)) {
      return Status::InvalidArgument("malformed window-buffer record");
    }
    const std::size_t capacity =
        batcher_.window_size() * static_cast<std::size_t>(engine_.batch_windows());
    if (buffered.empty() || buffered.size() >= capacity) {
      return Status::InvalidArgument(
          "window-buffer record stages " + std::to_string(buffered.size()) +
          " elements; a checkpoint stages between 1 and " +
          std::to_string(capacity - 1));
    }
    // The staged elements were quantized at original ingest; copy them back
    // verbatim instead of re-quantizing.
    const std::span<float> slot = batcher_.Claim(buffered.size());
    std::copy(buffered.begin(), buffered.end(), slot.begin());
  }

  const std::uint64_t covered = core_.processed() + core_.elements_dropped() +
                                core_.elements_shed() + batcher_.buffered();
  if (snapshot.watermark != covered) {
    return Status::InvalidArgument(
        "snapshot watermark " + std::to_string(snapshot.watermark) +
        " does not cover the restored state (" + std::to_string(covered) + ")");
  }
  observed_ = snapshot.watermark;
  if (obs_.metrics != nullptr && observed_ > 0) {
    // Re-seed the live counter so exports stay continuous across restarts.
    obs_.metrics->Add(ids_.elements_observed, observed_);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> QuantileEstimator::SerializedSummary() const {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "shard summaries are exported from a finalized estimator; call "
        "Flush() first so buffered windows are covered");
  }
  std::vector<std::uint8_t> bytes;
  const Status status = core_.AppendWireSummary(&bytes);
  if (!status.ok()) return status;
  return bytes;
}

std::size_t QuantileEstimator::summary_size() const {
  Sync();
  return core_.summary_size();
}

gpu::GpuStats QuantileEstimator::device_stats() const {
  Sync();
  gpu::GpuStats total;
  if (pipeline_ != nullptr) {
    for (const auto& engine : worker_engines_) {
      if (engine->device() != nullptr) total += engine->device()->stats();
    }
  } else if (engine_.device() != nullptr) {
    total += engine_.device()->stats();
  }
  return total;
}

FaultStats QuantileEstimator::fault_stats() const {
  Sync();
  FaultStats stats;
  if (fault_injector_ != nullptr) stats.faults_injected += fault_injector_->fires();
  for (const auto& injector : worker_injectors_) stats.faults_injected += injector->fires();
  const auto add = [&stats](const sort::ResilientSorter* sorter) {
    if (sorter == nullptr) return;
    stats.sort_retries += sorter->stats().sort_retries;
    stats.cpu_fallbacks += sorter->stats().cpu_fallbacks;
  };
  add(resilient_sorter_.get());
  for (const auto& sorter : worker_resilient_) add(sorter.get());
  // Quarantine is taken from the summary core's drain-side counters — the
  // same numbers the reports state — rather than the sorters' totals.
  stats.windows_quarantined = core_.windows_quarantined();
  stats.elements_dropped = core_.elements_dropped();
  return stats;
}

const PipelineCosts& QuantileEstimator::costs() const {
  Sync();
  costs_.histogram_wall_seconds = core_.histogram_wall_seconds();
  costs_.histogram_elements = core_.histogram_elements();
  if (!core_.sliding()) {
    costs_.merge_wall_seconds = core_.merge_seconds();
    costs_.compress_wall_seconds = core_.compress_seconds();
    costs_.merged_entries = core_.merged_tuples();
    costs_.compressed_entries = core_.pruned_tuples();
  }
  return costs_;
}

void QuantileEstimator::ExportMetrics() const {
  if (obs_.metrics == nullptr) return;
  ExportPipelineCosts(obs_.metrics, kPrefix, costs(), cpu_model_);
  const auto set = [&](const char* name, double value) {
    obs_.metrics->Set(obs_.metrics->Gauge(std::string(kPrefix) + name), value);
  };
  set(".stream.observed", static_cast<double>(observed_));
  set(".stream.processed", static_cast<double>(processed_length()));
  set(".summary.entries", static_cast<double>(summary_size()));
}

double QuantileEstimator::SimulatedSeconds() const {
  return costs().SimulatedTotalSeconds(cpu_model_);
}

}  // namespace streamgpu::core
