// Public API: epsilon-approximate quantile estimation over a data stream,
// GPU-accelerated per §5.2 — each window is sorted by the configured
// backend, rank-sampled into a Greenwald-Khanna summary, and maintained in
// an exponential histogram (whole history) or a block-decomposed
// sliding-window structure (§5.3).

#ifndef STREAMGPU_CORE_QUANTILE_ESTIMATOR_H_
#define STREAMGPU_CORE_QUANTILE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/backend.h"
#include "core/costs.h"
#include "core/options.h"
#include "gpu/stats.h"
#include "sketch/exponential_histogram.h"
#include "sketch/sliding_window.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace streamgpu::core {

/// Streaming epsilon-approximate quantile estimator.
///
/// Usage:
///   Options opt;
///   opt.epsilon = 1e-3;
///   QuantileEstimator qe(opt);
///   for (float v : stream) qe.Observe(v);
///   qe.Flush();
///   float median = qe.Quantile(0.5);
///
/// The returned element's rank among the processed elements is within
/// epsilon * N of phi * N.
///
/// With Options::num_sort_workers >= 2 ingestion runs through the parallel
/// pipeline (stream::SortPipeline); see FrequencyEstimator for the identical
/// execution-mode and threading contract.
class QuantileEstimator {
 public:
  explicit QuantileEstimator(const Options& options);

  /// Processes one stream element.
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values);

  /// Processes any buffered windows, including a final partial one.
  void Flush();

  /// The phi-quantile (phi in (0, 1]) over the whole history, or — in
  /// sliding mode — over the most recent `window` elements (0 = full
  /// sliding window).
  float Quantile(double phi, std::uint64_t window = 0) const;

  /// Elements already folded into the summary.
  std::uint64_t processed_length() const {
    Sync();
    return processed_;
  }

  /// Elements observed, including still-buffered ones.
  std::uint64_t observed_length() const { return observed_; }

  /// Current summary tuples (space usage).
  std::size_t summary_size() const;

  /// Accumulated per-operation costs (Fig. 7 source data).
  const PipelineCosts& costs() const;

  /// Simulated end-to-end 2005-hardware seconds for everything processed.
  double SimulatedSeconds() const;

  /// Aggregated simulated-device counters (summed across pipeline workers;
  /// all-zero for the CPU backends).
  gpu::GpuStats device_stats() const;

  const Options& options() const { return options_; }
  bool sliding() const { return sliding_.has_value(); }
  bool pipelined() const { return pipeline_ != nullptr; }

 private:
  void ProcessBuffered();

  /// Pipelined path: consumes one sorted batch on the summary thread, in
  /// submission order.
  void DrainSortedBatch(std::vector<float>&& data, const sort::SortRunInfo& run);

  /// Rank-samples one sorted window into a GK summary and merges it (shared
  /// by both paths; runs on the summary thread when pipelined).
  void MergeSortedWindow(std::span<float> window);

  /// Pipelined mode: waits for in-flight batches and refreshes the pipeline
  /// wait-stats in costs_. No-op in serial mode.
  void Sync() const;

  Options options_;
  SortEngine engine_;
  stream::WindowBatcher batcher_;
  std::optional<sketch::EhQuantileSummary> whole_;
  std::optional<sketch::SlidingWindowQuantile> sliding_;
  hwmodel::CpuModel cpu_model_;
  mutable PipelineCosts costs_;
  std::uint64_t observed_ = 0;
  std::uint64_t processed_ = 0;

  /// Pipelined mode only: one engine per sort worker, and the pipeline
  /// driving them. Declared last so threads stop before members they
  /// reference are destroyed.
  std::vector<std::unique_ptr<SortEngine>> worker_engines_;
  std::unique_ptr<stream::SortPipeline> pipeline_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_QUANTILE_ESTIMATOR_H_
