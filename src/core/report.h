// Query result snapshots for the public API.
//
// HeavyHitters()/TopK() and Quantile() answer with these structs instead of
// bare pairs/floats, so every answer carries its provenance: the guaranteed
// error bound it was computed under, how many elements it covers, and the
// parameters it answers for. The metrics exporter serializes the same structs
// (see docs/OBSERVABILITY.md), so what a dashboard shows is exactly what a
// caller got.

#ifndef STREAMGPU_CORE_REPORT_H_
#define STREAMGPU_CORE_REPORT_H_

#include <cstdint>
#include <vector>

namespace streamgpu::core {

/// One heavy-hitter / top-k answer set.
struct FrequencyReport {
  struct Item {
    /// The item (in the estimator's value universe: binary16-quantized when
    /// the GPU f16 path is configured).
    float value = 0;
    /// Estimated in-window frequency. Undercounts truth by at most
    /// `error_bound`, never overcounts.
    std::uint64_t estimate = 0;

    friend bool operator==(const Item&, const Item&) = default;
  };

  /// Matching items, by descending estimate.
  std::vector<Item> items;

  /// The support threshold the query ran at (0 for TopK()).
  double support = 0;
  /// The epsilon the guarantee is stated under.
  double epsilon = 0;
  /// ceil(epsilon * window_coverage): the uniform undercount bound on every
  /// item's estimate, and the margin below support*coverage down to which
  /// items are included (no false negatives).
  std::uint64_t error_bound = 0;
  /// Elements the answer covers: everything processed in whole-history mode;
  /// the queried window (capped by what has been processed) in sliding mode.
  std::uint64_t window_coverage = 0;
  /// Elements folded into the summary over the stream's lifetime.
  std::uint64_t stream_length = 0;
  /// Windows the resilience layer could not recover (Options::fault with CPU
  /// fallback disabled): their elements are excluded from coverage and
  /// `error_bound` is widened by `elements_dropped` so the guarantee stays
  /// honest. Zero whenever fault injection is off. See docs/ROBUSTNESS.md.
  std::uint64_t windows_quarantined = 0;
  std::uint64_t elements_dropped = 0;
  /// Elements dropped by admission control before they reached a window
  /// (service::StreamService load shedding; always zero for a dedicated
  /// estimator). Like `elements_dropped`, already folded into `error_bound`
  /// so the stated guarantee stays honest. See docs/SERVICE.md.
  std::uint64_t elements_shed = 0;

  friend bool operator==(const FrequencyReport&, const FrequencyReport&) = default;
};

/// One quantile answer.
struct QuantileReport {
  /// The answering element.
  float value = 0;

  /// The phi the query ran at.
  double phi = 0;
  /// The epsilon the guarantee is stated under.
  double epsilon = 0;
  /// ceil(epsilon * window_coverage): `value`'s rank among the covered
  /// elements is within this many positions of phi * window_coverage.
  std::uint64_t rank_error_bound = 0;
  /// Elements the answer covers (see FrequencyReport::window_coverage).
  std::uint64_t window_coverage = 0;
  /// Elements folded into the summary over the stream's lifetime.
  std::uint64_t stream_length = 0;
  /// Unrecoverable-window accounting, mirroring
  /// FrequencyReport::windows_quarantined: `rank_error_bound` already
  /// includes the `elements_dropped` widening. See docs/ROBUSTNESS.md.
  std::uint64_t windows_quarantined = 0;
  std::uint64_t elements_dropped = 0;
  /// Load-shed accounting, mirroring FrequencyReport::elements_shed:
  /// `rank_error_bound` already includes the widening. See docs/SERVICE.md.
  std::uint64_t elements_shed = 0;

  friend bool operator==(const QuantileReport&, const QuantileReport&) = default;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_REPORT_H_
