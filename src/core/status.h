// Error reporting for the public API.
//
// The library is exception-free: recoverable configuration and lifecycle
// errors travel as Status values (Arrow/Abseil style), while programming
// errors remain STREAMGPU_CHECK aborts. The factory path —
// Options::Validate(), StreamMiner::Create(), *Estimator::Create() — returns
// Status/StatusOr for invalid configs instead of CHECK-aborting, so callers
// (e.g. streamgpu_cli) can print the message and exit cleanly.

#ifndef STREAMGPU_CORE_STATUS_H_
#define STREAMGPU_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace streamgpu::core {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,     ///< a configuration value is out of range
    kFailedPrecondition,  ///< the call is illegal in the object's current state
    kDeadlineExceeded,    ///< the pipeline made no progress within the drain deadline
    kInternal,            ///< a worker or drain stage failed unrecoverably
  };

  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(Code::kInternal, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
      case Code::kFailedPrecondition:
        return "FailedPrecondition: " + message_;
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded: " + message_;
      case Code::kInternal:
        return "Internal: " + message_;
    }
    return "UnknownCode: " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A Status or a value. Converting-constructed from either; value() CHECKs
/// on access when the StatusOr holds an error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    STREAMGPU_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    STREAMGPU_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  const T& value() const& {
    STREAMGPU_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  T&& value() && {
    STREAMGPU_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_STATUS_H_
