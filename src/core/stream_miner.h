// Public API facade: one object that maintains both the frequency and the
// quantile summary over a single stream — the "numerical statistics
// co-processor" configuration of the paper's abstract.

#ifndef STREAMGPU_CORE_STREAM_MINER_H_
#define STREAMGPU_CORE_STREAM_MINER_H_

#include <memory>

#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"
#include "core/status.h"

namespace streamgpu::core {

/// Maintains frequency and quantile summaries side by side. Each estimator
/// owns its own backend engine (and, for GPU backends, its own simulated
/// device), so their cost records stay separable.
///
/// With Options::num_sort_workers >= 2 each estimator runs its own parallel
/// ingest pipeline (num_sort_workers sort threads + one summary thread, see
/// docs/ARCHITECTURE.md), so a pipelined StreamMiner overlaps the two
/// summaries' sorting as well. Answers and simulated-2005 costs are
/// identical to serial mode in either configuration.
///
/// When Options::obs wires metrics/tracing sinks, both estimators share them:
/// the frequency side records under "freq.", the quantile side under
/// "quant." (docs/OBSERVABILITY.md).
class StreamMiner {
 public:
  /// Validated construction: returns configuration errors — the union of
  /// both estimators' rules — instead of aborting. Never null on ok().
  static StatusOr<std::unique_ptr<StreamMiner>> Create(const Options& options) {
    // FrequencyEstimator::Create applies Options::Validate() plus the
    // frequency-specific whole-history window cap; the quantile rules are a
    // subset, so one factory call covers the miner.
    auto fe = FrequencyEstimator::Create(options);
    if (!fe.ok()) return fe.status();
    return std::unique_ptr<StreamMiner>(new StreamMiner(std::move(*fe), options));
  }

  /// Direct construction CHECK-aborts on invalid options; prefer Create().
  explicit StreamMiner(const Options& options)
      : frequencies_(std::make_unique<FrequencyEstimator>(options)),
        quantiles_(options) {}

  /// Processes one stream element through both summaries. Fails once
  /// Flush() has finalized the miner.
  Status Observe(float value) {
    Status status = frequencies_->Observe(value);
    if (!status.ok()) return status;
    return quantiles_.Observe(value);
  }

  /// Processes a batch of stream elements.
  Status ObserveBatch(std::span<const float> values) {
    Status status = frequencies_->ObserveBatch(values);
    if (!status.ok()) return status;
    return quantiles_.ObserveBatch(values);
  }

  /// Finalizes buffered windows in both summaries (end of stream).
  /// Idempotent; afterwards the miner is query-only. Returns the first
  /// estimator failure (e.g. a dead pipeline drain); both estimators are
  /// finalized regardless.
  Status Flush() {
    Status status = frequencies_->Flush();
    const Status quantile_status = quantiles_.Flush();
    if (status.ok()) status = quantile_status;
    return status;
  }

  /// True once Flush() has finalized both estimators.
  bool finalized() const { return frequencies_->finalized() && quantiles_.finalized(); }

  /// Serializes both estimators' costs and gauges into the wired
  /// MetricsRegistry (no-op without one).
  void ExportMetrics() const {
    frequencies_->ExportMetrics();
    quantiles_.ExportMetrics();
  }

  FrequencyEstimator& frequencies() { return *frequencies_; }
  const FrequencyEstimator& frequencies() const { return *frequencies_; }

  QuantileEstimator& quantiles() { return quantiles_; }
  const QuantileEstimator& quantiles() const { return quantiles_; }

 private:
  StreamMiner(std::unique_ptr<FrequencyEstimator> frequencies, const Options& options)
      : frequencies_(std::move(frequencies)), quantiles_(options) {}

  // unique_ptr so the Create() path reuses the already-validated frequency
  // estimator instead of constructing (and CHECK-validating) twice.
  std::unique_ptr<FrequencyEstimator> frequencies_;
  QuantileEstimator quantiles_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_STREAM_MINER_H_
