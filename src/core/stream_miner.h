// Public API facade: one object that maintains both the frequency and the
// quantile summary over a single stream — the "numerical statistics
// co-processor" configuration of the paper's abstract.

#ifndef STREAMGPU_CORE_STREAM_MINER_H_
#define STREAMGPU_CORE_STREAM_MINER_H_

#include "core/frequency_estimator.h"
#include "core/quantile_estimator.h"

namespace streamgpu::core {

/// Maintains frequency and quantile summaries side by side. Each estimator
/// owns its own backend engine (and, for GPU backends, its own simulated
/// device), so their cost records stay separable.
///
/// With Options::num_sort_workers >= 2 each estimator runs its own parallel
/// ingest pipeline (num_sort_workers sort threads + one summary thread, see
/// docs/ARCHITECTURE.md), so a pipelined StreamMiner overlaps the two
/// summaries' sorting as well. Answers and simulated-2005 costs are
/// identical to serial mode in either configuration.
class StreamMiner {
 public:
  explicit StreamMiner(const Options& options)
      : frequencies_(options), quantiles_(options) {}

  /// Processes one stream element through both summaries.
  void Observe(float value) {
    frequencies_.Observe(value);
    quantiles_.Observe(value);
  }

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values) {
    frequencies_.ObserveBatch(values);
    quantiles_.ObserveBatch(values);
  }

  /// Finalizes buffered windows in both summaries (end of stream).
  void Flush() {
    frequencies_.Flush();
    quantiles_.Flush();
  }

  FrequencyEstimator& frequencies() { return frequencies_; }
  const FrequencyEstimator& frequencies() const { return frequencies_; }

  QuantileEstimator& quantiles() { return quantiles_; }
  const QuantileEstimator& quantiles() const { return quantiles_; }

 private:
  FrequencyEstimator frequencies_;
  QuantileEstimator quantiles_;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_STREAM_MINER_H_
