#include "core/summary_core.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "sketch/gk_summary.h"
#include "sketch/histogram.h"
#include "sketch/wire.h"

namespace streamgpu::core {

std::uint64_t NaturalQuantileWindow(double epsilon, std::uint64_t window_size,
                                    std::uint64_t sliding_window) {
  if (window_size != 0) return window_size;
  if (sliding_window != 0) {
    return sketch::SlidingWindowQuantile(epsilon, sliding_window).block_size();
  }
  return static_cast<std::uint64_t>(std::ceil(1.0 / epsilon));
}

std::uint64_t NaturalFrequencyWindow(double epsilon, std::uint64_t window_size,
                                     std::uint64_t sliding_window) {
  if (window_size != 0) return window_size;
  if (sliding_window != 0) {
    return sketch::SlidingWindowFrequency(epsilon, sliding_window).block_size();
  }
  return static_cast<std::uint64_t>(std::ceil(1.0 / epsilon));
}

namespace {

std::uint64_t ExpectedLength(std::uint64_t expected_stream_length,
                             std::uint64_t window) {
  if (expected_stream_length != 0) return expected_stream_length;
  // Provision generously: 2^32 windows cover any realistic session.
  return window << 32;
}

}  // namespace

QuantileSummaryCore::QuantileSummaryCore(double epsilon,
                                         std::uint64_t window_size,
                                         std::uint64_t sliding_window,
                                         std::uint64_t expected_stream_length,
                                         sketch::QuantileSketchKind kind)
    : epsilon_(epsilon),
      sliding_window_(sliding_window),
      window_size_(window_size),
      expected_length_(ExpectedLength(expected_stream_length, window_size)),
      kind_(kind) {
  if (sliding_window != 0) {
    STREAMGPU_CHECK_MSG(kind == sketch::QuantileSketchKind::kGk,
                        "sliding-window mode supports the GK backend only");
    sliding_.emplace(epsilon, sliding_window);
    STREAMGPU_CHECK_MSG(window_size <= sliding_->block_size(),
                        "window_size must not exceed the sliding block size");
  } else {
    auto sketch = sketch::QuantileSketch::Create(
        kind, epsilon, window_size,
        ExpectedLength(expected_stream_length, window_size));
    STREAMGPU_CHECK_MSG(sketch.ok(), "invalid quantile sketch configuration");
    whole_ = std::move(sketch).value();
  }
}

std::size_t QuantileSummaryCore::MergeSortedWindow(std::span<const float> window) {
  std::size_t summary_tuples;
  if (whole_ != nullptr) {
    // The backend condenses the sorted window itself (GK rank-sampling — the
    // "histogram subset" of §3.2's quantile path — or direct KLL inserts)
    // and times the step into its summarize_seconds() mirror.
    summary_tuples = whole_->AddSortedWindow(window);
  } else {
    Timer hist_timer;
    sketch::GkSummary summary =
        sketch::GkSummary::FromSorted(window, sliding_->block_epsilon());
    histogram_wall_seconds_ += hist_timer.ElapsedSeconds();
    summary_tuples = summary.size();
    sliding_->AddBlockSummary(std::move(summary));
  }
  histogram_elements_ += window.size();
  processed_ += window.size();
  return summary_tuples;
}

void QuantileSummaryCore::QuarantineWindow(std::size_t elements) {
  // An unrecoverable window: its (restored, unsorted) data never reaches the
  // summary. The answer stays correct over what *was* merged; ErrorBound()
  // widens by the dropped elements so reported guarantees stay honest.
  ++windows_quarantined_;
  elements_dropped_ += elements;
}

void QuantileSummaryCore::ShedElements(std::uint64_t elements) {
  elements_shed_ += elements;
}

std::uint64_t QuantileSummaryCore::Coverage(std::uint64_t window) const {
  if (whole_ != nullptr) return processed_;
  const std::uint64_t effective =
      window == 0 ? sliding_window_ : std::min(window, sliding_window_);
  return std::min(effective, processed_);
}

std::uint64_t QuantileSummaryCore::ErrorBound() const {
  // Whole-history: the backend's honest bound at the current count (GK:
  // epsilon * N; KLL: min of its tracked worst case and the stated bound).
  // Sliding: epsilon * W over the full window width regardless of the
  // queried sub-window (sketch/sliding_window.h). Every quarantined or shed
  // element can shift any rank by one, so lost coverage widens the bound
  // additively rather than silently vanishing.
  const std::uint64_t base =
      whole_ != nullptr
          ? whole_->rank_error_bound()
          : static_cast<std::uint64_t>(
                std::ceil(epsilon_ * static_cast<double>(sliding_window_)));
  return base + elements_dropped_ + elements_shed_;
}

QuantileReport QuantileSummaryCore::Quantile(double phi,
                                             std::uint64_t window) const {
  QuantileReport report;
  report.phi = phi;
  report.epsilon = epsilon_;
  report.stream_length = processed_;
  report.window_coverage = Coverage(window);
  report.rank_error_bound = ErrorBound();
  report.windows_quarantined = windows_quarantined_;
  report.elements_dropped = elements_dropped_;
  report.elements_shed = elements_shed_;
  // An empty summary answers value 0 over coverage 0 (a registered-but-idle
  // service stream is queryable) instead of tripping the sketches' empty-
  // query CHECKs.
  if (processed_ != 0) {
    report.value =
        whole_ != nullptr ? whole_->Query(phi) : sliding_->Query(phi, window);
  }
  return report;
}

Status QuantileSummaryCore::AppendWireSummary(std::vector<std::uint8_t>* out) const {
  if (whole_ == nullptr) {
    return Status::FailedPrecondition(
        "sliding-window quantile summaries are not mergeable (the block "
        "decomposition is position-dependent); shard exports require "
        "whole-history mode");
  }
  return whole_->AppendWireSummary(out);
}

namespace {

namespace wire = sketch::wire;

/// Shared counter block leading both cores' checkpoint payloads.
void AppendCounters(std::uint64_t processed, std::uint64_t quarantined,
                    std::uint64_t dropped, std::uint64_t shed,
                    std::vector<std::uint8_t>* out) {
  wire::Append<std::uint64_t>(out, processed);
  wire::Append<std::uint64_t>(out, quarantined);
  wire::Append<std::uint64_t>(out, dropped);
  wire::Append<std::uint64_t>(out, shed);
}

bool ReadCounters(std::span<const std::uint8_t>* in, std::uint64_t* processed,
                  std::uint64_t* quarantined, std::uint64_t* dropped,
                  std::uint64_t* shed) {
  return wire::Read(in, processed) && wire::Read(in, quarantined) &&
         wire::Read(in, dropped) && wire::Read(in, shed);
}

}  // namespace

Status QuantileSummaryCore::AppendCheckpointState(
    std::vector<std::uint8_t>* out) const {
  if (whole_ == nullptr) {
    return Status::FailedPrecondition(
        "sliding-window quantile summaries are not checkpointable (the block "
        "decomposition is position-dependent); durability requires "
        "whole-history mode");
  }
  AppendCounters(processed_, windows_quarantined_, elements_dropped_,
                 elements_shed_, out);
  return whole_->AppendCheckpointState(out);
}

Status QuantileSummaryCore::RestoreCheckpointState(
    std::span<const std::uint8_t> payload) {
  if (whole_ == nullptr) {
    return Status::FailedPrecondition(
        "sliding-window quantile summaries are not restorable");
  }
  if (processed_ != 0 || elements_dropped_ != 0 || elements_shed_ != 0) {
    return Status::FailedPrecondition(
        "RestoreCheckpointState on a core that already observed data");
  }
  std::uint64_t processed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  if (!ReadCounters(&payload, &processed, &quarantined, &dropped, &shed)) {
    return Status::InvalidArgument("truncated quantile-core checkpoint counters");
  }
  auto sketch = sketch::QuantileSketch::RestoreCheckpointState(
      kind_, epsilon_, window_size_, expected_length_, payload);
  if (!sketch.ok()) return sketch.status();
  if (sketch.value()->count() != processed) {
    return Status::InvalidArgument(
        "quantile checkpoint sketch count disagrees with the processed counter");
  }
  whole_ = std::move(sketch).value();
  processed_ = processed;
  windows_quarantined_ = quarantined;
  elements_dropped_ = dropped;
  elements_shed_ = shed;
  // The rank-sampling element mirror tracks processed elements exactly; the
  // wall-clock mirrors restart at zero (they feed '#'-style cost lines only).
  histogram_elements_ = processed;
  return Status::Ok();
}

std::size_t QuantileSummaryCore::summary_size() const {
  return whole_ != nullptr ? whole_->summary_size() : sliding_->summary_size();
}

double QuantileSummaryCore::merge_seconds() const {
  return whole_ != nullptr ? whole_->merge_seconds() : 0;
}

double QuantileSummaryCore::compress_seconds() const {
  return whole_ != nullptr ? whole_->compress_seconds() : 0;
}

std::uint64_t QuantileSummaryCore::merged_tuples() const {
  return whole_ != nullptr ? whole_->merged_tuples() : 0;
}

std::uint64_t QuantileSummaryCore::pruned_tuples() const {
  return whole_ != nullptr ? whole_->pruned_tuples() : 0;
}

double QuantileSummaryCore::histogram_wall_seconds() const {
  return whole_ != nullptr ? whole_->summarize_seconds()
                           : histogram_wall_seconds_;
}

FrequencySummaryCore::FrequencySummaryCore(double epsilon,
                                           std::uint64_t window_size,
                                           std::uint64_t sliding_window)
    : epsilon_(epsilon), sliding_window_(sliding_window) {
  if (sliding_window != 0) {
    sliding_.emplace(epsilon, sliding_window);
    STREAMGPU_CHECK_MSG(window_size <= sliding_->block_size(),
                        "window_size must not exceed the sliding block size");
  } else {
    whole_.emplace(epsilon);
    STREAMGPU_CHECK_MSG(window_size <= whole_->window_width(),
                        "window_size must not exceed ceil(1/epsilon)");
  }
}

std::size_t FrequencySummaryCore::MergeSortedWindow(std::span<const float> window) {
  Timer hist_timer;
  const std::vector<sketch::HistogramEntry> histogram =
      sketch::BuildHistogram(window);
  histogram_wall_seconds_ += hist_timer.ElapsedSeconds();
  histogram_elements_ += window.size();

  if (whole_.has_value()) {
    whole_->AddWindowHistogram(histogram, window.size());
  } else {
    sliding_->AddBlockHistogram(histogram, window.size());
  }
  processed_ += window.size();
  return histogram.size();
}

void FrequencySummaryCore::QuarantineWindow(std::size_t elements) {
  ++windows_quarantined_;
  elements_dropped_ += elements;
}

void FrequencySummaryCore::ShedElements(std::uint64_t elements) {
  elements_shed_ += elements;
}

Status FrequencySummaryCore::AppendCheckpointState(
    std::vector<std::uint8_t>* out) const {
  if (!whole_.has_value()) {
    return Status::FailedPrecondition(
        "sliding-window frequency summaries are not checkpointable; "
        "durability requires whole-history mode");
  }
  AppendCounters(processed_, windows_quarantined_, elements_dropped_,
                 elements_shed_, out);
  wire::Append<std::uint64_t>(out, whole_->stream_length());
  wire::Append<std::uint64_t>(out, whole_->bucket_id());
  wire::Append<std::uint64_t>(out, whole_->entries().size());
  for (const sketch::LossyCounting::Entry& e : whole_->entries()) {
    wire::Append<float>(out, e.value);
    wire::Append<std::uint64_t>(out, e.frequency);
    wire::Append<std::uint64_t>(out, e.delta);
  }
  return Status::Ok();
}

Status FrequencySummaryCore::RestoreCheckpointState(
    std::span<const std::uint8_t> payload) {
  if (!whole_.has_value()) {
    return Status::FailedPrecondition(
        "sliding-window frequency summaries are not restorable");
  }
  if (processed_ != 0 || elements_dropped_ != 0 || elements_shed_ != 0) {
    return Status::FailedPrecondition(
        "RestoreCheckpointState on a core that already observed data");
  }
  std::uint64_t processed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  if (!ReadCounters(&payload, &processed, &quarantined, &dropped, &shed)) {
    return Status::InvalidArgument("truncated frequency-core checkpoint counters");
  }
  std::uint64_t n = 0;
  std::uint64_t bucket_id = 0;
  std::uint64_t entry_count = 0;
  if (!wire::Read(&payload, &n) || !wire::Read(&payload, &bucket_id) ||
      !wire::Read(&payload, &entry_count)) {
    return Status::InvalidArgument("truncated frequency checkpoint state");
  }
  constexpr std::size_t kEntryBytes = sizeof(float) + 2 * sizeof(std::uint64_t);
  if (payload.size() % kEntryBytes != 0 ||
      payload.size() / kEntryBytes != entry_count) {
    return Status::InvalidArgument(
        "frequency checkpoint entry count inconsistent with payload size");
  }
  if (n != processed) {
    return Status::InvalidArgument(
        "frequency checkpoint n disagrees with the processed counter");
  }
  std::vector<sketch::LossyCounting::Entry> entries;
  entries.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    sketch::LossyCounting::Entry e;
    wire::Read(&payload, &e.value);
    wire::Read(&payload, &e.frequency);
    wire::Read(&payload, &e.delta);
    entries.push_back(e);
  }
  sketch::LossyCounting restored(epsilon_);
  if (!sketch::LossyCounting::FromParts(epsilon_, n, bucket_id,
                                        std::move(entries), &restored)) {
    return Status::InvalidArgument(
        "frequency checkpoint state violates the lossy-counting invariants");
  }
  whole_ = std::move(restored);
  processed_ = processed;
  windows_quarantined_ = quarantined;
  elements_dropped_ = dropped;
  elements_shed_ = shed;
  histogram_elements_ = processed;
  return Status::Ok();
}

std::uint64_t FrequencySummaryCore::Coverage(std::uint64_t window) const {
  if (whole_.has_value()) return processed_;
  const std::uint64_t effective =
      window == 0 ? sliding_window_ : std::min(window, sliding_window_);
  return std::min(effective, processed_);
}

std::uint64_t FrequencySummaryCore::ErrorBound() const {
  // Whole-history: at most epsilon * N undercount. Sliding: the block
  // decomposition guarantees epsilon * W over the full window width
  // (sketch/sliding_window.h). Quarantined or shed elements can each hide
  // one occurrence of any item, so lost coverage widens the bound.
  const double n = whole_.has_value() ? static_cast<double>(processed_)
                                      : static_cast<double>(sliding_window_);
  return static_cast<std::uint64_t>(std::ceil(epsilon_ * n)) +
         elements_dropped_ + elements_shed_;
}

FrequencyReport FrequencySummaryCore::HeavyHitters(double support,
                                                   std::uint64_t window) const {
  FrequencyReport report;
  report.support = support;
  report.epsilon = epsilon_;
  report.stream_length = processed_;
  report.window_coverage = Coverage(window);
  report.error_bound = ErrorBound();
  report.windows_quarantined = windows_quarantined_;
  report.elements_dropped = elements_dropped_;
  report.elements_shed = elements_shed_;
  if (processed_ == 0) return report;  // empty summary: no items (see Quantile)
  const auto pairs = whole_.has_value() ? whole_->HeavyHitters(support)
                                        : sliding_->HeavyHitters(support, window);
  report.items.reserve(pairs.size());
  for (const auto& [value, estimate] : pairs) {
    report.items.push_back({value, estimate});
  }
  return report;
}

std::uint64_t FrequencySummaryCore::EstimateCount(float value,
                                                  std::uint64_t window) const {
  if (processed_ == 0) return 0;  // empty summary (see Quantile)
  if (whole_.has_value()) return whole_->EstimateCount(value);
  return sliding_->EstimateCount(value, window);
}

std::size_t FrequencySummaryCore::summary_size() const {
  return whole_.has_value() ? whole_->summary_size() : sliding_->summary_size();
}

const sketch::SummaryOpCosts* FrequencySummaryCore::op_costs() const {
  return whole_.has_value() ? &whole_->op_costs() : nullptr;
}

}  // namespace streamgpu::core
