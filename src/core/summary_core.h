// Per-stream summary state shared by the dedicated estimators and the
// multi-tenant StreamService.
//
// FrequencyEstimator/QuantileEstimator and service::StreamService answer the
// same queries over the same sorted-window stream; this file holds the one
// implementation of the merge/quarantine/shed accounting and report
// construction both sides delegate to, so a stream multiplexed through the
// service is bit-identical to a dedicated pipeline by construction rather
// than by parallel maintenance of two copies of the logic
// (docs/SERVICE.md, "Bit-identity").
//
// The cores are single-threaded value types: the owner serializes merges,
// sheds, and queries (the estimators via the pipeline's ordered drain
// thread, the service via its per-shard summary lock).

#ifndef STREAMGPU_CORE_SUMMARY_CORE_H_
#define STREAMGPU_CORE_SUMMARY_CORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/report.h"
#include "core/status.h"
#include "sketch/lossy_counting.h"
#include "sketch/quantile_sketch.h"
#include "sketch/sliding_window.h"

namespace streamgpu::core {

/// The processing-window width a quantile stream uses when Options::
/// window_size is 0: the sliding block size in sliding mode, else
/// ceil(1/epsilon) (windows of that width give (epsilon/2)-summaries of
/// about 1/epsilon tuples). A non-zero `window_size` is returned unchanged.
std::uint64_t NaturalQuantileWindow(double epsilon, std::uint64_t window_size,
                                    std::uint64_t sliding_window);

/// The frequency path's counterpart: the sliding block size in sliding
/// mode, else the Manku-Motwani bucket width ceil(1/epsilon).
std::uint64_t NaturalFrequencyWindow(double epsilon, std::uint64_t window_size,
                                     std::uint64_t sliding_window);

/// Whole-history / sliding-window quantile summary with quarantine and
/// load-shed accounting. One instance per stream; merges take sorted
/// windows (ascending bit-pattern order, any backend).
class QuantileSummaryCore {
 public:
  /// `window_size` is the resolved processing window (see
  /// NaturalQuantileWindow); `sliding_window` 0 selects whole-history mode;
  /// `expected_stream_length` 0 provisions generously (2^32 windows);
  /// `kind` picks the whole-history backend (ignored in sliding mode, which
  /// keeps its dedicated GK block decomposition — Options::Validate()
  /// rejects the combination upstream).
  QuantileSummaryCore(double epsilon, std::uint64_t window_size,
                      std::uint64_t sliding_window,
                      std::uint64_t expected_stream_length,
                      sketch::QuantileSketchKind kind =
                          sketch::QuantileSketchKind::kGk);

  /// Folds one sorted window into the backend sketch. Returns the condensed
  /// per-window summary's tuple count (trace metadata).
  std::size_t MergeSortedWindow(std::span<const float> window);

  /// Accounts one unrecoverable window: not merged, not counted as
  /// processed; widens the error bound by its element count.
  void QuarantineWindow(std::size_t elements);

  /// Accounts elements dropped by admission control before they reached a
  /// window: the bound widens exactly as it does for quarantined elements,
  /// so the answer's stated guarantee stays honest under load shedding.
  void ShedElements(std::uint64_t elements);

  /// The phi-quantile report over everything merged so far (sliding mode:
  /// over the most recent `window` elements; 0 = full sliding window).
  QuantileReport Quantile(double phi, std::uint64_t window) const;

  /// Serializes the whole-history backend's mergeable summary as one wire
  /// envelope (sketch/serialize.h) appended to `out` — the shard export the
  /// combiner and `streamgpu_cli merge` consume. Sliding mode is not
  /// mergeable (the block decomposition is position-dependent) and fails
  /// with kFailedPrecondition.
  Status AppendWireSummary(std::vector<std::uint8_t>* out) const;

  /// Serializes the core's FULL durable state — the merge/quarantine/shed
  /// counters plus the backend sketch's complete internal state (not the
  /// condensed mergeable export) — as the payload of one kQuantileState
  /// checkpoint record (docs/DURABILITY.md). Sliding mode is not
  /// checkpointable (mirroring AppendWireSummary) and fails with
  /// kFailedPrecondition.
  Status AppendCheckpointState(std::vector<std::uint8_t>* out) const;

  /// Inverse of AppendCheckpointState: installs the checkpointed state into
  /// this freshly constructed core (processed() must still be 0). The
  /// configuration must match the one that wrote the checkpoint. Returns
  /// kInvalidArgument on corrupt payloads — never aborts.
  Status RestoreCheckpointState(std::span<const std::uint8_t> payload);

  std::uint64_t processed() const { return processed_; }
  std::size_t summary_size() const;
  std::uint64_t windows_quarantined() const { return windows_quarantined_; }
  std::uint64_t elements_dropped() const { return elements_dropped_; }
  std::uint64_t elements_shed() const { return elements_shed_; }
  bool sliding() const { return sliding_.has_value(); }
  sketch::QuantileSketchKind kind() const { return kind_; }

  /// Summary-maintenance cost mirrors (whole-history mode; zero in sliding
  /// mode), plus the wall time and element count of the per-window
  /// rank-sampling step — the estimators fold these into PipelineCosts.
  double merge_seconds() const;
  double compress_seconds() const;
  std::uint64_t merged_tuples() const;
  std::uint64_t pruned_tuples() const;
  double histogram_wall_seconds() const;
  std::uint64_t histogram_elements() const { return histogram_elements_; }

 private:
  std::uint64_t Coverage(std::uint64_t window) const;
  std::uint64_t ErrorBound() const;

  double epsilon_;
  std::uint64_t sliding_window_;
  std::uint64_t window_size_;      ///< resolved processing window (restore)
  std::uint64_t expected_length_;  ///< resolved a-priori N (restore)
  sketch::QuantileSketchKind kind_;
  std::unique_ptr<sketch::QuantileSketch> whole_;
  std::optional<sketch::SlidingWindowQuantile> sliding_;
  std::uint64_t processed_ = 0;
  std::uint64_t windows_quarantined_ = 0;
  std::uint64_t elements_dropped_ = 0;
  std::uint64_t elements_shed_ = 0;
  double histogram_wall_seconds_ = 0;
  std::uint64_t histogram_elements_ = 0;
};

/// Whole-history / sliding-window heavy-hitter summary, mirroring
/// QuantileSummaryCore's lifecycle and accounting.
class FrequencySummaryCore {
 public:
  FrequencySummaryCore(double epsilon, std::uint64_t window_size,
                       std::uint64_t sliding_window);

  /// Reduces one sorted window to a histogram and merges it. Returns the
  /// histogram's entry count (trace metadata).
  std::size_t MergeSortedWindow(std::span<const float> window);

  void QuarantineWindow(std::size_t elements);
  void ShedElements(std::uint64_t elements);

  /// Checkpoint state, mirroring QuantileSummaryCore: the accounting
  /// counters plus the exact Manku-Motwani summary (n, bucket id, entries)
  /// as the payload of one kFrequencyState record. Sliding mode fails with
  /// kFailedPrecondition.
  Status AppendCheckpointState(std::vector<std::uint8_t>* out) const;

  /// Installs checkpointed state into this fresh core (processed() == 0).
  Status RestoreCheckpointState(std::span<const std::uint8_t> payload);

  /// Heavy hitters above `support` (sliding mode: over the most recent
  /// `window` elements). Support 0 returns every retained entry (top-k).
  FrequencyReport HeavyHitters(double support, std::uint64_t window) const;

  /// Estimated frequency of `value` — the caller quantizes `value` into the
  /// stream's ingest universe first (binary16 on the GPU f16 path).
  std::uint64_t EstimateCount(float value, std::uint64_t window) const;

  std::uint64_t processed() const { return processed_; }
  std::size_t summary_size() const;
  std::uint64_t windows_quarantined() const { return windows_quarantined_; }
  std::uint64_t elements_dropped() const { return elements_dropped_; }
  std::uint64_t elements_shed() const { return elements_shed_; }
  bool sliding() const { return sliding_.has_value(); }

  /// Whole-history mode: the Manku-Motwani summary's own op costs.
  const sketch::SummaryOpCosts* op_costs() const;
  double histogram_wall_seconds() const { return histogram_wall_seconds_; }
  std::uint64_t histogram_elements() const { return histogram_elements_; }

 private:
  std::uint64_t Coverage(std::uint64_t window) const;
  std::uint64_t ErrorBound() const;

  double epsilon_;
  std::uint64_t sliding_window_;
  std::optional<sketch::LossyCounting> whole_;
  std::optional<sketch::SlidingWindowFrequency> sliding_;
  std::uint64_t processed_ = 0;
  std::uint64_t windows_quarantined_ = 0;
  std::uint64_t elements_dropped_ = 0;
  std::uint64_t elements_shed_ = 0;
  double histogram_wall_seconds_ = 0;
  std::uint64_t histogram_elements_ = 0;
};

}  // namespace streamgpu::core

#endif  // STREAMGPU_CORE_SUMMARY_CORE_H_
