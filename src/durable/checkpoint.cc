#include "durable/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sketch/serialize.h"
#include "sketch/wire.h"

namespace streamgpu::durable {

namespace {

namespace wire = sketch::wire;

constexpr std::size_t kManifestPayloadSize = 8 + 8 + 4 + 8;

std::string SnapshotFileName(std::uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "snap-%llu.ckpt",
                static_cast<unsigned long long>(epoch));
  return name;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Writes `bytes` (or its first `limit` bytes) to `path`, fsync'ing before
/// close. O_TRUNC when `append` is false.
core::Status WriteFileSynced(const std::string& path,
                             std::span<const std::uint8_t> bytes, bool append) {
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return core::Status::Internal(ErrnoMessage("open", path));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const core::Status status = core::Status::Internal(ErrnoMessage("write", path));
      ::close(fd);
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const core::Status status = core::Status::Internal(ErrnoMessage("fsync", path));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return core::Status::Ok();
}

core::Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return core::Status::Internal(ErrnoMessage("open dir", dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return core::Status::Internal(ErrnoMessage("fsync dir", dir));
  return core::Status::Ok();
}

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<std::size_t>(size));
  const std::size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  return read == out->size();
}

/// Deterministic crash injection for the kill-matrix harness: the point
/// name and the 0-based Commit() ordinal it fires on.
struct CrashPoint {
  bool armed = false;
  std::string point;
  std::uint64_t ordinal = 0;
};

CrashPoint ParseCrashPoint() {
  CrashPoint crash;
  const char* env = std::getenv("STREAMGPU_DURABLE_CRASH_AT");
  if (env == nullptr || *env == '\0') return crash;
  const std::string spec(env);
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return crash;
  crash.point = spec.substr(0, colon);
  crash.ordinal = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  crash.armed = true;
  return crash;
}

/// Exit code the harness recognizes as a deliberate injected crash.
[[noreturn]] void CrashNow() { std::_Exit(42); }

}  // namespace

CheckpointWriter::CheckpointWriter(std::string dir) : dir_(std::move(dir)) {
  STREAMGPU_CHECK_MSG(!dir_.empty(), "checkpoint directory must be non-empty");
}

void CheckpointWriter::Begin() {
  buffer_.clear();
  pending_records_ = 0;
}

void CheckpointWriter::Add(RecordType type, std::span<const std::uint8_t> payload) {
  STREAMGPU_CHECK_MSG(pending_records_ > 0 || type == RecordType::kSnapshotHeader,
                      "snapshot must start with a header record");
  AppendRecord(type, payload, &buffer_);
  ++pending_records_;
}

core::Status CheckpointWriter::Init() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return core::Status::Internal("create checkpoint dir " + dir_ + ": " +
                                  ec.message());
  }
  // Make the reader's truncate-at-first-bad-CRC durable: a crash mid-append
  // leaves a torn record at the manifest's tail, and entries appended after
  // it would be invisible to every reader (which stops at the first bad
  // record). Cut the file back to its valid prefix before appending again.
  {
    const std::string manifest_path = dir_ + "/" + kManifestName;
    std::vector<std::uint8_t> bytes;
    if (ReadFileBytes(manifest_path, &bytes)) {
      std::span<const std::uint8_t> cursor(bytes);
      std::size_t valid_bytes = 0;
      while (!cursor.empty()) {
        const std::size_t before = cursor.size();
        auto record = ReadRecord(&cursor);
        if (!record.ok() || record->type != RecordType::kManifestEntry ||
            record->payload.size() != kManifestPayloadSize) {
          break;
        }
        valid_bytes += before - cursor.size();
      }
      if (valid_bytes < bytes.size() &&
          ::truncate(manifest_path.c_str(),
                     static_cast<off_t>(valid_bytes)) != 0) {
        return core::Status::Internal(ErrnoMessage("truncate", manifest_path));
      }
    }
  }
  // Resume the epoch sequence past anything a previous process committed.
  for (const ManifestEntry& entry : ReadManifest(dir_)) {
    next_epoch_ = std::max(next_epoch_, entry.epoch + 1);
  }
  // A crash between write and rename can leave stray .tmp files behind.
  for (const auto& dirent : std::filesystem::directory_iterator(dir_, ec)) {
    if (dirent.path().extension() == ".tmp") {
      std::filesystem::remove(dirent.path(), ec);
    }
  }
  if (obs_.metrics != nullptr) {
    m_checkpoints_ = obs_.metrics->Counter("durable.checkpoints");
    m_bytes_ = obs_.metrics->Counter("durable.checkpoint_bytes");
    m_seconds_ = obs_.metrics->Summary("durable.checkpoint_seconds");
  }
  initialized_ = true;
  return core::Status::Ok();
}

core::Status CheckpointWriter::Commit(std::uint64_t watermark) {
  if (pending_records_ == 0) {
    return core::Status::FailedPrecondition("Commit without a pending snapshot");
  }
  Timer timer;
  if (!initialized_) {
    if (core::Status s = Init(); !s.ok()) return s;
  }
  // Footer: body record count + watermark, so the reader can verify the
  // snapshot is complete, not merely prefix-valid.
  std::vector<std::uint8_t> footer;
  wire::Append<std::uint64_t>(&footer, pending_records_);
  wire::Append<std::uint64_t>(&footer, watermark);
  AppendRecord(RecordType::kSnapshotFooter, footer, &buffer_);

  const CrashPoint crash = ParseCrashPoint();
  const bool crash_now = crash.armed && commits_ == crash.ordinal;

  const std::uint64_t epoch = next_epoch_;
  const std::string snap_path = dir_ + "/" + SnapshotFileName(epoch);
  const std::string tmp_path = snap_path + ".tmp";

  if (crash_now && crash.point == "snapshot-partial") {
    (void)WriteFileSynced(tmp_path,
                          std::span(buffer_).first(buffer_.size() / 2), false);
    CrashNow();
  }
  if (core::Status s = WriteFileSynced(tmp_path, buffer_, false); !s.ok()) return s;
  if (crash_now && crash.point == "pre-rename") CrashNow();
  if (::rename(tmp_path.c_str(), snap_path.c_str()) != 0) {
    return core::Status::Internal(ErrnoMessage("rename", snap_path));
  }
  if (core::Status s = FsyncDir(dir_); !s.ok()) return s;
  if (crash_now && crash.point == "pre-manifest") CrashNow();

  std::vector<std::uint8_t> manifest_payload;
  wire::Append<std::uint64_t>(&manifest_payload, epoch);
  wire::Append<std::uint64_t>(&manifest_payload, buffer_.size());
  wire::Append<std::uint32_t>(&manifest_payload, sketch::Crc32(buffer_));
  wire::Append<std::uint64_t>(&manifest_payload, watermark);
  std::vector<std::uint8_t> manifest_record;
  AppendRecord(RecordType::kManifestEntry, manifest_payload, &manifest_record);
  const std::string manifest_path = dir_ + "/" + kManifestName;
  if (crash_now && crash.point == "manifest-partial") {
    (void)WriteFileSynced(
        manifest_path, std::span(manifest_record).first(manifest_record.size() / 2),
        true);
    CrashNow();
  }
  if (core::Status s = WriteFileSynced(manifest_path, manifest_record, true);
      !s.ok()) {
    return s;
  }

  // Keep the previous epoch as the torn-write fallback; prune older ones.
  if (epoch > 2) {
    std::error_code ec;
    for (std::uint64_t old = 1; old + 2 <= epoch; ++old) {
      std::filesystem::remove(dir_ + "/" + SnapshotFileName(old), ec);
    }
  }

  last_bytes_ = buffer_.size();
  next_epoch_ = epoch + 1;
  ++commits_;
  Begin();

  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(m_checkpoints_);
    obs_.metrics->Add(m_bytes_, last_bytes_);
    obs_.metrics->Observe(m_seconds_, timer.ElapsedSeconds());
  }
  if (obs_.flight != nullptr) {
    obs_.flight->Record(obs::FlightEventKind::kCheckpointWritten, "durable",
                        "commit", epoch, static_cast<std::int64_t>(last_bytes_),
                        static_cast<std::int64_t>(watermark));
  }
  return core::Status::Ok();
}

core::StatusOr<Snapshot> ParseSnapshot(std::span<const std::uint8_t> bytes) {
  Snapshot snapshot;
  bool footer_seen = false;
  std::uint64_t body_records = 0;
  while (!bytes.empty()) {
    if (footer_seen) {
      return core::Status::InvalidArgument("bytes after the snapshot footer");
    }
    auto record = ReadRecord(&bytes);
    if (!record.ok()) return record.status();
    switch (record->type) {
      case RecordType::kManifestEntry:
        return core::Status::InvalidArgument("manifest entry inside a snapshot");
      case RecordType::kSnapshotHeader:
        if (body_records > 0) {
          return core::Status::InvalidArgument("duplicate snapshot header");
        }
        break;
      case RecordType::kSnapshotFooter: {
        std::span<const std::uint8_t> payload = record->payload;
        std::uint64_t record_count = 0;
        if (!wire::Read(&payload, &record_count) ||
            !wire::Read(&payload, &snapshot.watermark) || !payload.empty()) {
          return core::Status::InvalidArgument("malformed snapshot footer");
        }
        if (record_count != body_records) {
          return core::Status::InvalidArgument(
              "snapshot footer record count mismatch");
        }
        footer_seen = true;
        continue;
      }
      default:
        if (body_records == 0) {
          return core::Status::InvalidArgument(
              "snapshot does not start with a header record");
        }
        break;
    }
    snapshot.records.push_back(OwnedRecord{
        record->type,
        std::vector<std::uint8_t>(record->payload.begin(), record->payload.end())});
    ++body_records;
  }
  if (!footer_seen) {
    return core::Status::InvalidArgument("snapshot missing its footer record");
  }
  return snapshot;
}

std::vector<ManifestEntry> ReadManifest(const std::string& dir) {
  std::vector<ManifestEntry> entries;
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(dir + "/" + kManifestName, &bytes)) return entries;
  std::span<const std::uint8_t> cursor(bytes);
  while (!cursor.empty()) {
    auto record = ReadRecord(&cursor);
    // Truncate-at-first-bad-CRC: a torn tail (or any later corruption)
    // invalidates everything after it, never what came before.
    if (!record.ok() || record->type != RecordType::kManifestEntry ||
        record->payload.size() != kManifestPayloadSize) {
      break;
    }
    std::span<const std::uint8_t> payload = record->payload;
    ManifestEntry entry;
    wire::Read(&payload, &entry.epoch);
    wire::Read(&payload, &entry.snapshot_size);
    wire::Read(&payload, &entry.snapshot_crc);
    wire::Read(&payload, &entry.watermark);
    entries.push_back(entry);
  }
  return entries;
}

core::StatusOr<Snapshot> LoadLatestSnapshot(const std::string& dir) {
  const std::vector<ManifestEntry> entries = ReadManifest(dir);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    std::vector<std::uint8_t> bytes;
    if (!ReadFileBytes(dir + "/" + SnapshotFileName(it->epoch), &bytes)) continue;
    if (bytes.size() != it->snapshot_size) continue;
    if (sketch::Crc32(bytes) != it->snapshot_crc) continue;
    auto snapshot = ParseSnapshot(bytes);
    if (!snapshot.ok()) continue;
    if (snapshot->watermark != it->watermark) continue;
    snapshot->epoch = it->epoch;
    return std::move(snapshot).value();
  }
  return core::Status::FailedPrecondition("no usable checkpoint in " + dir);
}

void AppendSnapshotHeader(const SnapshotHeader& header, std::vector<std::uint8_t>* out) {
  wire::Append<std::uint16_t>(out, header.mode);
  wire::Append<std::uint16_t>(out, header.kind);
  wire::Append<double>(out, header.epsilon);
  wire::Append<std::uint64_t>(out, header.window_size);
  wire::Append<std::uint64_t>(out, header.aux);
}

bool ReadSnapshotHeader(std::span<const std::uint8_t> payload, SnapshotHeader* out) {
  return wire::Read(&payload, &out->mode) && wire::Read(&payload, &out->kind) &&
         wire::Read(&payload, &out->epsilon) &&
         wire::Read(&payload, &out->window_size) &&
         wire::Read(&payload, &out->aux) && payload.empty();
}

void AppendWindowBuffer(std::span<const float> staged, std::vector<std::uint8_t>* out) {
  wire::Append<std::uint64_t>(out, staged.size());
  for (const float value : staged) wire::Append<float>(out, value);
}

bool ReadWindowBuffer(std::span<const std::uint8_t> payload, std::vector<float>* out) {
  std::uint64_t count = 0;
  if (!wire::Read(&payload, &count)) return false;
  if (count != payload.size() / sizeof(float) ||
      payload.size() % sizeof(float) != 0) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    float value = 0;
    wire::Read(&payload, &value);
    out->push_back(value);
  }
  return payload.empty();
}

void RecordRestore(const obs::Observability& obs, const Snapshot& snapshot) {
  if (obs.metrics != nullptr) {
    obs.metrics->Add(obs.metrics->Counter("durable.restores"));
  }
  if (obs.flight != nullptr) {
    obs.flight->Record(obs::FlightEventKind::kRestored, "durable", "restore",
                       snapshot.epoch,
                       static_cast<std::int64_t>(snapshot.records.size()),
                       static_cast<std::int64_t>(snapshot.watermark));
  }
}

}  // namespace streamgpu::durable
