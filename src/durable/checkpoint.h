// Crash-consistent checkpoint container (docs/DURABILITY.md).
//
// On-disk layout inside a checkpoint directory:
//
//   snap-<epoch>.ckpt   one full snapshot: kSnapshotHeader, typed state
//                       records, kSnapshotFooter — written to a .tmp file,
//                       fsync'd, then atomically renamed into place
//   MANIFEST.log        append-only log of kManifestEntry records, one per
//                       committed snapshot (epoch, snapshot size + CRC,
//                       watermark), each appended with a single write and
//                       fsync'd
//
// Torn-write tolerance: a crash anywhere inside Commit() leaves either (a)
// a stray .tmp file no manifest entry references, (b) a renamed snapshot
// without its manifest entry, or (c) a partially appended manifest record.
// The reader truncates the manifest at the first bad CRC and walks entries
// newest to oldest, taking the first snapshot whose size, CRC, and record
// structure all validate — so a kill inside the checkpoint write falls back
// to the previous epoch instead of failing. The last two snapshots are
// retained; older ones are pruned after each commit.
//
// Deterministic crash injection for the kill-matrix harness
// (tools/crash_harness.py): when STREAMGPU_DURABLE_CRASH_AT is set to
// "<point>:<ordinal>", the writer's ordinal-th Commit() aborts the process
// (exit code 42) at the named point — "snapshot-partial" (half the .tmp
// bytes written), "pre-rename" (.tmp complete, not renamed), "pre-manifest"
// (snapshot renamed, no manifest entry), "manifest-partial" (half the
// manifest record appended).

#ifndef STREAMGPU_DURABLE_CHECKPOINT_H_
#define STREAMGPU_DURABLE_CHECKPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "durable/record_log.h"
#include "obs/metrics.h"
#include "obs/observability.h"

namespace streamgpu::durable {

/// Manifest file name inside a checkpoint directory.
inline constexpr const char* kManifestName = "MANIFEST.log";

/// One parsed manifest entry.
struct ManifestEntry {
  std::uint64_t epoch = 0;
  std::uint64_t snapshot_size = 0;
  std::uint32_t snapshot_crc = 0;
  std::uint64_t watermark = 0;
};

/// A record with owned payload storage (outlives the file buffer).
struct OwnedRecord {
  RecordType type = RecordType::kSnapshotHeader;
  std::vector<std::uint8_t> payload;
};

/// One fully validated snapshot: the header and state records, in file
/// order, with the footer's accounting hoisted out.
struct Snapshot {
  std::uint64_t epoch = 0;      ///< from the manifest entry
  std::uint64_t watermark = 0;  ///< elements covered (from the footer)
  std::vector<OwnedRecord> records;  ///< kSnapshotHeader first; no footer
};

/// Builds snapshots in memory and commits them with the torn-write
/// protocol above. Single-threaded: the owner serializes Begin/Add/Commit
/// (estimators checkpoint from the ingest thread at batch boundaries, the
/// service under its registration lock after WaitIdle()).
class CheckpointWriter {
 public:
  /// `dir` is created on the first Commit() if missing.
  explicit CheckpointWriter(std::string dir);

  /// Optional metrics/flight sinks (durable.* metrics, checkpoint events).
  void SetObservability(obs::Observability obs) { obs_ = obs; }

  /// Starts a new snapshot, discarding any uncommitted records.
  void Begin();

  /// Appends one state record to the pending snapshot. The first record
  /// must be kSnapshotHeader (Commit validates).
  void Add(RecordType type, std::span<const std::uint8_t> payload);

  /// Finalizes the pending snapshot (appends the footer), writes it
  /// durably, appends the manifest entry, and prunes snapshots older than
  /// the previous epoch. `watermark` is the element count the snapshot
  /// covers; it is echoed into the footer and the manifest.
  core::Status Commit(std::uint64_t watermark);

  const std::string& dir() const { return dir_; }

  /// Commits performed by this writer.
  std::uint64_t commits() const { return commits_; }

  /// Size in bytes of the most recently committed snapshot.
  std::uint64_t last_snapshot_bytes() const { return last_bytes_; }

 private:
  core::Status Init();  ///< creates the directory, resumes the epoch counter

  std::string dir_;
  obs::Observability obs_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t pending_records_ = 0;
  bool initialized_ = false;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t commits_ = 0;
  std::uint64_t last_bytes_ = 0;
  obs::MetricId m_checkpoints_ = obs::kInvalidMetric;
  obs::MetricId m_bytes_ = obs::kInvalidMetric;
  obs::MetricId m_seconds_ = obs::kInvalidMetric;
};

/// Parses and validates one snapshot buffer: every record frame intact, a
/// kSnapshotHeader first, a kSnapshotFooter last whose record count and
/// byte coverage match. Returns kInvalidArgument otherwise — corrupted
/// checkpoints surface as Status, never as a crash.
core::StatusOr<Snapshot> ParseSnapshot(std::span<const std::uint8_t> bytes);

/// Reads the manifest, truncating at the first bad record (torn tail).
/// Missing or empty manifests yield an empty vector.
std::vector<ManifestEntry> ReadManifest(const std::string& dir);

/// Loads the newest snapshot that fully validates, walking manifest entries
/// newest to oldest. Returns kFailedPrecondition when the directory holds
/// no usable checkpoint (callers treat that as "start fresh").
core::StatusOr<Snapshot> LoadLatestSnapshot(const std::string& dir);

/// Emits the restore-side telemetry: the durable.restores counter and one
/// kRestored flight event for `snapshot`.
void RecordRestore(const obs::Observability& obs, const Snapshot& snapshot);

/// Which subsystem wrote a snapshot (SnapshotHeader::mode).
inline constexpr std::uint16_t kSnapshotModeQuantile = 1;
inline constexpr std::uint16_t kSnapshotModeFrequency = 2;
inline constexpr std::uint16_t kSnapshotModeService = 3;

/// Payload of the kSnapshotHeader record: the writing subsystem plus the
/// configuration echo restore validates against, so a snapshot is never
/// silently installed into a differently configured estimator/service.
struct SnapshotHeader {
  std::uint16_t mode = 0;         ///< kSnapshotMode*
  std::uint16_t kind = 0;         ///< quantile sketch kind (mode 1); else 0
  double epsilon = 0.0;           ///< exact bit pattern must match
  std::uint64_t window_size = 0;  ///< resolved processing window
  std::uint64_t aux = 0;          ///< expected stream length / stream count
};

/// Serializes `header` as a kSnapshotHeader payload appended to `out`.
void AppendSnapshotHeader(const SnapshotHeader& header, std::vector<std::uint8_t>* out);

/// Inverse of AppendSnapshotHeader; false on any size mismatch.
bool ReadSnapshotHeader(std::span<const std::uint8_t> payload, SnapshotHeader* out);

/// Serializes a staged partial window (already-quantized floats) as a
/// kWindowBuffer payload appended to `out`.
void AppendWindowBuffer(std::span<const float> staged, std::vector<std::uint8_t>* out);

/// Inverse of AppendWindowBuffer; false on truncation or trailing bytes.
bool ReadWindowBuffer(std::span<const std::uint8_t> payload, std::vector<float>* out);

}  // namespace streamgpu::durable

#endif  // STREAMGPU_DURABLE_CHECKPOINT_H_
