#include "durable/record_log.h"

#include <string>

#include "sketch/serialize.h"
#include "sketch/wire.h"

namespace streamgpu::durable {

namespace wire = sketch::wire;

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kSnapshotHeader: return "snapshot_header";
    case RecordType::kStreamBegin: return "stream_begin";
    case RecordType::kQuantileState: return "quantile_state";
    case RecordType::kFrequencyState: return "frequency_state";
    case RecordType::kWindowBuffer: return "window_buffer";
    case RecordType::kAdmissionState: return "admission_state";
    case RecordType::kServiceStats: return "service_stats";
    case RecordType::kSnapshotFooter: return "snapshot_footer";
    case RecordType::kManifestEntry: return "manifest_entry";
  }
  return "?";
}

void AppendRecord(RecordType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>* out) {
  wire::Append<std::uint32_t>(out, kRecordMagic);
  wire::Append<std::uint16_t>(out, kRecordVersion);
  wire::Append<std::uint16_t>(out, static_cast<std::uint16_t>(type));
  wire::Append<std::uint64_t>(out, payload.size());
  wire::Append<std::uint32_t>(out, sketch::Crc32(payload));
  out->insert(out->end(), payload.begin(), payload.end());
}

core::StatusOr<Record> ReadRecord(std::span<const std::uint8_t>* bytes) {
  std::span<const std::uint8_t> cursor = *bytes;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t raw_type = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  if (!wire::Read(&cursor, &magic) || !wire::Read(&cursor, &version) ||
      !wire::Read(&cursor, &raw_type) || !wire::Read(&cursor, &payload_len) ||
      !wire::Read(&cursor, &crc)) {
    return core::Status::InvalidArgument("truncated durable record header");
  }
  if (magic != kRecordMagic) {
    return core::Status::InvalidArgument("bad durable record magic");
  }
  if (version == 0 || version > kRecordVersion) {
    return core::Status::InvalidArgument("unsupported durable record version " +
                                         std::to_string(version));
  }
  const auto type = static_cast<RecordType>(raw_type);
  if (RecordTypeName(type)[0] == '?') {
    return core::Status::InvalidArgument("unknown durable record type " +
                                         std::to_string(raw_type));
  }
  if (payload_len > cursor.size()) {
    return core::Status::InvalidArgument(
        "durable record payload length exceeds the buffer");
  }
  const std::span<const std::uint8_t> payload = cursor.first(payload_len);
  if (sketch::Crc32(payload) != crc) {
    return core::Status::InvalidArgument("durable record checksum mismatch");
  }
  *bytes = cursor.subspan(payload_len);
  return Record{type, payload};
}

}  // namespace streamgpu::durable
