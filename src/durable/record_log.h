// CRC-framed, length-prefixed typed records — the unit of the durability
// subsystem's on-disk formats (docs/DURABILITY.md). A snapshot file is a
// back-to-back sequence of records bracketed by kSnapshotHeader and
// kSnapshotFooter; the manifest log is a sequence of kManifestEntry records.
//
// Record framing (little-endian, fixed-width fields, mirroring the SGMS
// mergeable-summary envelope of sketch/serialize.h):
//
//   offset  size  field
//   0       4     magic 0x52444753 ("SGDR")
//   4       2     format version (currently 1)
//   6       2     record type (RecordType)
//   8       8     payload length in bytes
//   16      4     CRC-32 (IEEE, reflected) of the payload bytes
//   20      -     payload (per-type layout, docs/DURABILITY.md)
//
// ReadRecord returns Status on malformed input — truncation, a bad magic or
// type, a version from the future, a corrupted checksum, or a length the
// buffer cannot hold — and never aborts: checkpoint files are untrusted
// input after a crash.

#ifndef STREAMGPU_DURABLE_RECORD_LOG_H_
#define STREAMGPU_DURABLE_RECORD_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"

namespace streamgpu::durable {

/// Record magic ("SGDR": StreamGpu Durable Record).
inline constexpr std::uint32_t kRecordMagic = 0x52444753;

/// Current record-format version. Readers reject anything newer.
inline constexpr std::uint16_t kRecordVersion = 1;

/// Bytes before the payload.
inline constexpr std::size_t kRecordHeaderSize = 20;

/// Typed payload carried by one record. Payload layouts: docs/DURABILITY.md.
enum class RecordType : std::uint16_t {
  kSnapshotHeader = 1,  ///< mode, config digest, stream count, epoch
  kStreamBegin = 2,     ///< per-stream config + watermark (service snapshots)
  kQuantileState = 3,   ///< summary-core counters + full quantile-sketch state
  kFrequencyState = 4,  ///< summary-core counters + lossy-counting entries
  kWindowBuffer = 5,    ///< staged partial-window elements
  kAdmissionState = 6,  ///< per-shard shed counts (satellite: honest bounds)
  kServiceStats = 7,    ///< service-level merged/window accounting
  kSnapshotFooter = 8,  ///< record count + watermark; terminates a snapshot
  kManifestEntry = 9,   ///< epoch, snapshot size + CRC, watermark
};

/// Record-type name for diagnostics; "?" for an unknown value.
const char* RecordTypeName(RecordType type);

/// One parsed record. `payload` views into the caller's buffer.
struct Record {
  RecordType type = RecordType::kSnapshotHeader;
  std::span<const std::uint8_t> payload;
};

/// Appends one framed record to `out`.
void AppendRecord(RecordType type, std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>* out);

/// Parses one record from the front of `bytes`, advancing the span past it
/// on success. On error the span is left untouched.
core::StatusOr<Record> ReadRecord(std::span<const std::uint8_t>* bytes);

}  // namespace streamgpu::durable

#endif  // STREAMGPU_DURABLE_RECORD_LOG_H_
