// Framebuffer blend equations.
//
// The paper's sorting networks use exactly the fixed-function blending path:
// "We use the blending operation to compare the pixel color against the
// fragment color" (§4.3), with the blend function set to MIN or MAX
// (OpenGL's GL_MIN / GL_MAX blend equations). REPLACE models blending
// disabled (plain writes, used by Routine 4.1 `Copy`).

#ifndef STREAMGPU_GPU_BLEND_H_
#define STREAMGPU_GPU_BLEND_H_

#include <algorithm>

namespace streamgpu::gpu {

/// Blend equation applied per channel between the incoming fragment color
/// (source) and the color already in the framebuffer (destination).
enum class BlendOp {
  kReplace,  ///< dst = src (blending disabled)
  kMin,      ///< dst = min(dst, src) — GL_MIN
  kMax,      ///< dst = max(dst, src) — GL_MAX
};

/// Applies `op` to one channel value pair.
inline float ApplyBlend(BlendOp op, float dst, float src) {
  switch (op) {
    case BlendOp::kReplace:
      return src;
    case BlendOp::kMin:
      return std::min(dst, src);
    case BlendOp::kMax:
      return std::max(dst, src);
  }
  return src;  // unreachable
}

/// Human-readable name, for logging and test failure messages.
inline const char* BlendOpName(BlendOp op) {
  switch (op) {
    case BlendOp::kReplace:
      return "REPLACE";
    case BlendOp::kMin:
      return "MIN";
    case BlendOp::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_BLEND_H_
