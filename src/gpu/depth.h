// Depth testing state.
//
// The companion work the paper builds on (§2.2, Govindaraju et al. [20])
// implements database predicates, range queries and k-th largest selection
// with the depth-test hardware: attribute values are loaded into the depth
// buffer, screen-aligned quads are rendered at a test depth, and occlusion
// queries count the fragments that pass. The simulator models exactly that
// fixed-function path.

#ifndef STREAMGPU_GPU_DEPTH_H_
#define STREAMGPU_GPU_DEPTH_H_

namespace streamgpu::gpu {

/// Depth comparison function (glDepthFunc).
enum class DepthFunc {
  kNever,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqual,
  kNotEqual,
  kAlways,
};

/// Applies the depth comparison: true when the incoming fragment depth
/// passes against the stored depth.
inline bool DepthTestPasses(DepthFunc func, float incoming, float stored) {
  switch (func) {
    case DepthFunc::kNever:
      return false;
    case DepthFunc::kLess:
      return incoming < stored;
    case DepthFunc::kLessEqual:
      return incoming <= stored;
    case DepthFunc::kGreater:
      return incoming > stored;
    case DepthFunc::kGreaterEqual:
      return incoming >= stored;
    case DepthFunc::kEqual:
      return incoming == stored;
    case DepthFunc::kNotEqual:
      return incoming != stored;
    case DepthFunc::kAlways:
      return true;
  }
  return false;
}

/// Human-readable name, for logs and test failures.
inline const char* DepthFuncName(DepthFunc func) {
  switch (func) {
    case DepthFunc::kNever:
      return "NEVER";
    case DepthFunc::kLess:
      return "LESS";
    case DepthFunc::kLessEqual:
      return "LEQUAL";
    case DepthFunc::kGreater:
      return "GREATER";
    case DepthFunc::kGreaterEqual:
      return "GEQUAL";
    case DepthFunc::kEqual:
      return "EQUAL";
    case DepthFunc::kNotEqual:
      return "NOTEQUAL";
    case DepthFunc::kAlways:
      return "ALWAYS";
  }
  return "?";
}

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_DEPTH_H_
