#include "gpu/device.h"

#include <cstring>

namespace streamgpu::gpu {

TextureHandle GpuDevice::CreateTexture(int width, int height, Format format) {
  textures_.push_back(std::make_unique<Surface>(width, height, format));
  return static_cast<TextureHandle>(textures_.size()) - 1;
}

const Surface& GpuDevice::Texture(TextureHandle tex) const {
  STREAMGPU_CHECK(tex >= 0 && static_cast<std::size_t>(tex) < textures_.size());
  return *textures_[tex];
}

Surface& GpuDevice::MutableTexture(TextureHandle tex) {
  STREAMGPU_CHECK(tex >= 0 && static_cast<std::size_t>(tex) < textures_.size());
  return *textures_[tex];
}

void GpuDevice::UploadChannel(TextureHandle tex, int channel, std::span<const float> data) {
  Surface& t = MutableTexture(tex);
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(data.size() == t.num_texels(),
                      "UploadChannel size must match texture dimensions");
  float* dst = t.ChannelData(channel);
  if (t.format() == Format::kFloat16) {
    for (std::size_t i = 0; i < data.size(); ++i) dst[i] = QuantizeToHalf(data[i]);
  } else {
    std::memcpy(dst, data.data(), data.size() * sizeof(float));
  }
  stats_.bytes_uploaded += t.num_texels() * BytesPerChannel(t.format());
  // Uploads also land in video memory.
  stats_.bytes_vram += t.num_texels() * BytesPerChannel(t.format());
}

void GpuDevice::ReadbackChannel(int channel, std::span<float> out) {
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(out.size() == framebuffer_.num_texels(),
                      "ReadbackChannel size must match framebuffer dimensions");
  std::memcpy(out.data(), framebuffer_.ChannelData(channel), out.size() * sizeof(float));
  stats_.bytes_readback += framebuffer_.num_texels() * BytesPerChannel(framebuffer_.format());
  stats_.bytes_vram += framebuffer_.num_texels() * BytesPerChannel(framebuffer_.format());
}

void GpuDevice::BindFramebuffer(int width, int height, Format format) {
  framebuffer_.Reset(width, height, format);
  stats_.framebuffer_binds += 1;
}

void GpuDevice::DrawQuad(TextureHandle tex, const Quad& quad) {
  Rasterizer::DrawQuad(Texture(tex), quad, blend_op_, &framebuffer_, &stats_);
}

void GpuDevice::BindDepthBuffer(int width, int height, float clear_value) {
  STREAMGPU_CHECK(width > 0 && height > 0);
  depth_width_ = width;
  depth_height_ = height;
  depth_buffer_.assign(static_cast<std::size_t>(width) * height, clear_value);
  stats_.framebuffer_binds += 1;
}

void GpuDevice::LoadDepthFromTexture(TextureHandle tex, int channel) {
  const Surface& t = Texture(tex);
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(t.width() == depth_width_ && t.height() == depth_height_,
                      "LoadDepthFromTexture requires matching dimensions");
  const float* src = t.ChannelData(channel);
  const std::size_t n = t.num_texels();
  for (std::size_t i = 0; i < n; ++i) depth_buffer_[i] = src[i];
  stats_.draw_calls += 1;
  stats_.fragments_shaded += n;
  stats_.texture_fetches += n;
  stats_.depth_test_fragments += n;
  // One texel fetch plus one depth write per fragment.
  stats_.bytes_vram += n * (BytesPerTexel(t.format()) + sizeof(float));
}

void GpuDevice::LoadDepthFromFramebuffer(int channel) {
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(
      framebuffer_.width() == depth_width_ && framebuffer_.height() == depth_height_,
      "LoadDepthFromFramebuffer requires matching dimensions");
  const float* src = framebuffer_.ChannelData(channel);
  const std::size_t n = framebuffer_.num_texels();
  for (std::size_t i = 0; i < n; ++i) depth_buffer_[i] = src[i];
  stats_.draw_calls += 1;
  stats_.fragments_shaded += n;
  stats_.depth_test_fragments += n;
  stats_.bytes_vram += n * (BytesPerChannel(framebuffer_.format()) + sizeof(float));
}

void GpuDevice::SetDepthTest(DepthFunc func, bool write_depth) {
  depth_func_ = func;
  depth_write_ = write_depth;
}

void GpuDevice::BeginOcclusionQuery() {
  STREAMGPU_CHECK_MSG(!occlusion_active_, "occlusion query already active");
  occlusion_active_ = true;
  occlusion_passed_ = 0;
}

std::uint64_t GpuDevice::EndOcclusionQuery() {
  STREAMGPU_CHECK_MSG(occlusion_active_, "no occlusion query active");
  occlusion_active_ = false;
  stats_.occlusion_queries += 1;
  stats_.bytes_readback += sizeof(std::uint64_t);
  return occlusion_passed_;
}

void GpuDevice::BindStencilBuffer(int width, int height, std::uint8_t clear_value) {
  STREAMGPU_CHECK(width > 0 && height > 0);
  stencil_width_ = width;
  stencil_height_ = height;
  stencil_buffer_.assign(static_cast<std::size_t>(width) * height, clear_value);
}

void GpuDevice::SetStencilTest(bool enabled, StencilFunc func, std::uint8_t reference,
                               StencilOp on_pass) {
  stencil_enabled_ = enabled;
  stencil_func_ = func;
  stencil_ref_ = reference;
  stencil_on_pass_ = on_pass;
}

std::uint8_t GpuDevice::StencilAt(int x, int y) const {
  STREAMGPU_CHECK(x >= 0 && x < stencil_width_ && y >= 0 && y < stencil_height_);
  return stencil_buffer_[static_cast<std::size_t>(y) * stencil_width_ + x];
}

void GpuDevice::DrawDepthOnlyQuad(float x0, float y0, float x1, float y1, float depth) {
  STREAMGPU_CHECK_MSG(depth_width_ > 0, "no depth buffer bound");
  if (stencil_enabled_) {
    STREAMGPU_CHECK_MSG(
        stencil_width_ == depth_width_ && stencil_height_ == depth_height_,
        "stencil and depth buffers must match");
  }
  const int px0 = std::max(0, static_cast<int>(std::ceil(x0 - 0.5f)));
  const int py0 = std::max(0, static_cast<int>(std::ceil(y0 - 0.5f)));
  const int px1 = std::min(depth_width_, static_cast<int>(std::ceil(x1 - 0.5f)));
  const int py1 = std::min(depth_height_, static_cast<int>(std::ceil(y1 - 0.5f)));
  stats_.draw_calls += 1;
  if (px0 >= px1 || py0 >= py1) return;

  std::uint64_t passed = 0;
  for (int y = py0; y < py1; ++y) {
    float* row = depth_buffer_.data() + static_cast<std::size_t>(y) * depth_width_;
    std::uint8_t* srow =
        stencil_enabled_
            ? stencil_buffer_.data() + static_cast<std::size_t>(y) * stencil_width_
            : nullptr;
    for (int x = px0; x < px1; ++x) {
      if (stencil_enabled_ && stencil_func_ == StencilFunc::kEqual &&
          srow[x] != stencil_ref_) {
        continue;  // stencil-fail: fragment discarded before the depth test
      }
      if (DepthTestPasses(depth_func_, depth, row[x])) {
        ++passed;
        if (depth_write_) row[x] = depth;
        if (stencil_enabled_) {
          switch (stencil_on_pass_) {
            case StencilOp::kKeep:
              break;
            case StencilOp::kIncrement:
              if (srow[x] != 0xFF) ++srow[x];
              break;
            case StencilOp::kZero:
              srow[x] = 0;
              break;
          }
        }
      }
    }
  }
  const std::uint64_t fragments =
      static_cast<std::uint64_t>(px1 - px0) * static_cast<std::uint64_t>(py1 - py0);
  stats_.fragments_shaded += fragments;
  stats_.depth_test_fragments += fragments;
  // One depth read per fragment; one write per passing fragment with depth
  // writes enabled; stencil reads/writes ride the same ROP path (1 B each).
  stats_.bytes_vram += fragments * sizeof(float) +
                       (depth_write_ ? passed * sizeof(float) : 0) +
                       (stencil_enabled_ ? fragments + passed : 0);
  if (occlusion_active_) occlusion_passed_ += passed;
}

float GpuDevice::DepthAt(int x, int y) const {
  STREAMGPU_CHECK(x >= 0 && x < depth_width_ && y >= 0 && y < depth_height_);
  return depth_buffer_[static_cast<std::size_t>(y) * depth_width_ + x];
}

void GpuDevice::CopyFramebufferToTexture(TextureHandle tex) {
  Surface& t = MutableTexture(tex);
  STREAMGPU_CHECK_MSG(
      t.width() == framebuffer_.width() && t.height() == framebuffer_.height(),
      "CopyFramebufferToTexture requires matching dimensions");
  for (int c = 0; c < kNumChannels; ++c) {
    const float* src = framebuffer_.ChannelData(c);
    float* dst = t.ChannelData(c);
    if (t.format() == Format::kFloat16 && framebuffer_.format() != Format::kFloat16) {
      for (std::size_t i = 0; i < t.num_texels(); ++i) dst[i] = QuantizeToHalf(src[i]);
    } else {
      std::memcpy(dst, src, t.num_texels() * sizeof(float));
    }
  }
  // Read the framebuffer once, write the texture once.
  stats_.bytes_vram += framebuffer_.SizeBytes() + t.SizeBytes();
  stats_.fb_to_texture_copies += 1;
}

}  // namespace streamgpu::gpu
