#include "gpu/device.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace streamgpu::gpu {

DeviceFault GpuDevice::PollFaultSlow(DeviceFaultSite site, std::uint64_t elements) {
  DeviceFault fault;
  if (lost_) return fault;
  fault = fault_hook_->OnDeviceOp(site, elements);
  switch (fault.kind) {
    case DeviceFault::Kind::kStall:
      // A transient hiccup: the op completes after the delay. Wall-clock
      // only; the simulated-2005 accounting is unaffected.
      std::this_thread::sleep_for(std::chrono::microseconds(fault.stall_us));
      fault.kind = DeviceFault::Kind::kNone;
      break;
    case DeviceFault::Kind::kDeviceLost:
      lost_ = true;
      fault.kind = DeviceFault::Kind::kNone;
      break;
    default:
      break;  // corruption kinds: the caller applies them after the op
  }
  return fault;
}

void GpuDevice::ApplyFramebufferCorruption(const DeviceFault& fault) {
  Surface& fb = ReadableFramebuffer();
  const std::uint64_t slots =
      static_cast<std::uint64_t>(fb.num_texels()) * kNumChannels;
  if (slots == 0) return;
  const std::uint64_t slot = fault.target % slots;
  const int channel = static_cast<int>(slot % kNumChannels);
  const std::uint64_t texel = slot / kNumChannels;
  const int x = static_cast<int>(texel % static_cast<std::uint64_t>(fb.width()));
  const int y = static_cast<int>(texel / static_cast<std::uint64_t>(fb.width()));
  float* p = fb.TexelData() + fb.Index(x, y) * kNumChannels + channel;
  *p = CorruptValue(*p, fault.kind, fault.bit);
}

TextureHandle GpuDevice::CreateTexture(int width, int height, Format format) {
  if (!texture_arena_.empty()) {
    std::unique_ptr<Surface> recycled = std::move(texture_arena_.back());
    texture_arena_.pop_back();
    recycled->Reset(width, height, format);
    textures_.push_back(std::move(recycled));
  } else {
    textures_.push_back(std::make_unique<Surface>(width, height, format));
  }
  return static_cast<TextureHandle>(textures_.size()) - 1;
}

void GpuDevice::DestroyAllTextures() {
  if (fb_alias_ >= 0) {
    // The framebuffer's logical content lives (partly) in the aliased
    // texture, which is about to retire. Reclaim it: when nothing was drawn
    // since the swap a plain storage swap suffices (the retiring texture's
    // content is irrelevant), otherwise materialize.
    if (fb_written_.empty()) {
      std::swap(framebuffer_, *textures_[static_cast<std::size_t>(fb_alias_)]);
      fb_alias_ = -1;
    } else {
      MaterializeFramebuffer();
    }
  }
  for (auto& texture : textures_) texture_arena_.push_back(std::move(texture));
  textures_.clear();
}

void GpuDevice::NoteFramebufferWrite(int x0, int y0, int x1, int y1) {
  if (fb_alias_ < 0) return;
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, framebuffer_.width());
  y1 = std::min(y1, framebuffer_.height());
  if (x0 >= x1 || y0 >= y1) return;
  for (const auto& r : fb_written_) {
    if (x0 < r[2] && r[0] < x1 && y0 < r[3] && r[1] < y1) {
      // Overlap: the overlapped texels' current values are in the
      // framebuffer, not the aliased texture, so the alias can no longer
      // stand in for pre-blend reads.
      MaterializeFramebuffer();
      return;
    }
  }
  fb_written_.push_back({x0, y0, x1, y1});
  fb_written_area_ +=
      static_cast<std::uint64_t>(x1 - x0) * static_cast<std::uint64_t>(y1 - y0);
}

void GpuDevice::MaterializeFramebuffer() {
  if (fb_alias_ < 0) return;
  const Surface& t = *textures_[static_cast<std::size_t>(fb_alias_)];
  if (fb_written_.empty()) {
    // Same dimensions and format, hence the same strides: copy the padded
    // storage wholesale.
    std::memcpy(framebuffer_.TexelData(), t.TexelData(),
                t.row_stride() * t.height() * kNumChannels * sizeof(float));
  } else {
    // Copy only the texels not yet rewritten since the swap (cold path; the
    // sort loops always tile the framebuffer completely between copies).
    const int w = framebuffer_.width();
    const int h = framebuffer_.height();
    fb_mask_.assign(static_cast<std::size_t>(w) * h, 0);
    for (const auto& r : fb_written_) {
      for (int y = r[1]; y < r[3]; ++y) {
        std::memset(fb_mask_.data() + static_cast<std::size_t>(y) * w + r[0], 1,
                    static_cast<std::size_t>(r[2] - r[0]));
      }
    }
    for (int y = 0; y < h; ++y) {
      const float* src = t.TexelData() + t.Index(0, y) * kNumChannels;
      float* dst = framebuffer_.TexelData() + framebuffer_.Index(0, y) * kNumChannels;
      const std::uint8_t* mask = fb_mask_.data() + static_cast<std::size_t>(y) * w;
      for (int x = 0; x < w; ++x) {
        if (mask[x] == 0) {
          for (int c = 0; c < kNumChannels; ++c) {
            dst[x * kNumChannels + c] = src[x * kNumChannels + c];
          }
        }
      }
    }
  }
  fb_alias_ = -1;
  fb_written_.clear();
  fb_written_area_ = 0;
}

Surface& GpuDevice::ReadableFramebuffer() {
  if (fb_alias_ >= 0 && fb_written_.empty()) {
    return *textures_[static_cast<std::size_t>(fb_alias_)];
  }
  MaterializeFramebuffer();
  return framebuffer_;
}

const Surface& GpuDevice::Texture(TextureHandle tex) const {
  STREAMGPU_CHECK(tex >= 0 && static_cast<std::size_t>(tex) < textures_.size());
  return *textures_[tex];
}

Surface& GpuDevice::MutableTexture(TextureHandle tex) {
  STREAMGPU_CHECK(tex >= 0 && static_cast<std::size_t>(tex) < textures_.size());
  return *textures_[tex];
}

void GpuDevice::UploadChannel(TextureHandle tex, int channel, std::span<const float> data) {
  const DeviceFault fault = PollFault(DeviceFaultSite::kUpload, data.size());
  if (lost_) return;
  // Uploading into the aliased texture would corrupt the framebuffer's
  // logical content; reclaim it first.
  if (tex == fb_alias_) MaterializeFramebuffer();
  Surface& t = MutableTexture(tex);
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(data.size() == t.num_texels(),
                      "UploadChannel size must match texture dimensions");
  const float* src = data.data();
  const bool half = t.format() == Format::kFloat16;
  for (int y = 0; y < t.height(); ++y) {
    float* dst = t.TexelData() + t.Index(0, y) * kNumChannels + channel;
    if (half) {
      for (int x = 0; x < t.width(); ++x) {
        dst[x * kNumChannels] = QuantizeToHalf(src[x]);
      }
    } else {
      for (int x = 0; x < t.width(); ++x) dst[x * kNumChannels] = src[x];
    }
    src += t.width();
  }
  stats_.bytes_uploaded += t.num_texels() * BytesPerChannel(t.format());
  // Uploads also land in video memory.
  stats_.bytes_vram += t.num_texels() * BytesPerChannel(t.format());

  if (fault.kind != DeviceFault::Kind::kNone && t.num_texels() > 0) {
    // A transfer error: one stored value of the just-written channel.
    const std::uint64_t texel = fault.target % t.num_texels();
    const int fx = static_cast<int>(texel % static_cast<std::uint64_t>(t.width()));
    const int fy = static_cast<int>(texel / static_cast<std::uint64_t>(t.width()));
    float* p = t.TexelData() + t.Index(fx, fy) * kNumChannels + channel;
    *p = CorruptValue(*p, fault.kind, fault.bit);
  }
}

void GpuDevice::ReadbackChannel(int channel, std::span<float> out) {
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(out.size() == framebuffer_.num_texels(),
                      "ReadbackChannel size must match framebuffer dimensions");
  const DeviceFault fault = PollFault(DeviceFaultSite::kReadback, out.size());
  if (lost_) return;  // dropped: the host buffer keeps its stale contents
  const Surface& fb = ReadableFramebuffer();
  float* dst = out.data();
  for (int y = 0; y < fb.height(); ++y) {
    const float* src = fb.TexelData() + fb.Index(0, y) * kNumChannels + channel;
    for (int x = 0; x < fb.width(); ++x) dst[x] = src[x * kNumChannels];
    dst += fb.width();
  }
  stats_.bytes_readback += framebuffer_.num_texels() * BytesPerChannel(framebuffer_.format());
  stats_.bytes_vram += framebuffer_.num_texels() * BytesPerChannel(framebuffer_.format());

  if (fault.kind != DeviceFault::Kind::kNone && !out.empty()) {
    // A bus error on the way back: device memory stays intact, the host
    // copy takes the hit.
    float& v = out[fault.target % out.size()];
    v = CorruptValue(v, fault.kind, fault.bit);
  }
}

void GpuDevice::BindFramebuffer(int width, int height, Format format) {
  // Rebinding defines the framebuffer's contents afresh; drop any alias.
  fb_alias_ = -1;
  fb_written_.clear();
  fb_written_area_ = 0;
  framebuffer_.Reset(width, height, format);
  stats_.framebuffer_binds += 1;
}

void GpuDevice::DrawQuad(TextureHandle tex, const Quad& quad) {
  DeviceFault fault;
  if (fault_hook_ != nullptr) {
    // Behind the hook check: the texel-count lookup is wasted work on the
    // (default) disabled path.
    fault = PollFault(DeviceFaultSite::kPass, Texture(tex).num_texels());
  }
  if (lost_) return;
  if (fb_alias_ >= 0) {
    int px0 = 0, py0 = 0, px1 = 0, py1 = 0;
    if (Rasterizer::ClippedPixelRect(quad, framebuffer_.width(), framebuffer_.height(),
                                     &px0, &py0, &px1, &py1)) {
      NoteFramebufferWrite(px0, py0, px1, py1);
    }
  }
  const Surface* dst_read =
      fb_alias_ >= 0 ? textures_[static_cast<std::size_t>(fb_alias_)].get() : nullptr;
  Rasterizer::DrawQuad(Texture(tex), quad, blend_op_, &framebuffer_, &stats_, dst_read);
  if (fault.kind != DeviceFault::Kind::kNone) ApplyFramebufferCorruption(fault);
}

void GpuDevice::BindDepthBuffer(int width, int height, float clear_value) {
  STREAMGPU_CHECK(width > 0 && height > 0);
  depth_width_ = width;
  depth_height_ = height;
  depth_buffer_.assign(static_cast<std::size_t>(width) * height, clear_value);
  stats_.framebuffer_binds += 1;
}

void GpuDevice::LoadDepthFromTexture(TextureHandle tex, int channel) {
  const Surface& t = Texture(tex);
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(t.width() == depth_width_ && t.height() == depth_height_,
                      "LoadDepthFromTexture requires matching dimensions");
  const std::size_t n = t.num_texels();
  for (int y = 0; y < t.height(); ++y) {
    const float* src = t.TexelData() + t.Index(0, y) * kNumChannels + channel;
    float* dst = depth_buffer_.data() + static_cast<std::size_t>(y) * t.width();
    for (int x = 0; x < t.width(); ++x) dst[x] = src[x * kNumChannels];
  }
  stats_.draw_calls += 1;
  stats_.fragments_shaded += n;
  stats_.texture_fetches += n;
  stats_.depth_test_fragments += n;
  // One texel fetch plus one depth write per fragment.
  stats_.bytes_vram += n * (BytesPerTexel(t.format()) + sizeof(float));
}

void GpuDevice::LoadDepthFromFramebuffer(int channel) {
  STREAMGPU_CHECK(channel >= 0 && channel < kNumChannels);
  STREAMGPU_CHECK_MSG(
      framebuffer_.width() == depth_width_ && framebuffer_.height() == depth_height_,
      "LoadDepthFromFramebuffer requires matching dimensions");
  const Surface& fb = ReadableFramebuffer();
  const std::size_t n = framebuffer_.num_texels();
  for (int y = 0; y < fb.height(); ++y) {
    const float* src = fb.TexelData() + fb.Index(0, y) * kNumChannels + channel;
    float* dst = depth_buffer_.data() + static_cast<std::size_t>(y) * fb.width();
    for (int x = 0; x < fb.width(); ++x) dst[x] = src[x * kNumChannels];
  }
  stats_.draw_calls += 1;
  stats_.fragments_shaded += n;
  stats_.depth_test_fragments += n;
  stats_.bytes_vram += n * (BytesPerChannel(framebuffer_.format()) + sizeof(float));
}

void GpuDevice::SetDepthTest(DepthFunc func, bool write_depth) {
  depth_func_ = func;
  depth_write_ = write_depth;
}

void GpuDevice::BeginOcclusionQuery() {
  STREAMGPU_CHECK_MSG(!occlusion_active_, "occlusion query already active");
  occlusion_active_ = true;
  occlusion_passed_ = 0;
}

std::uint64_t GpuDevice::EndOcclusionQuery() {
  STREAMGPU_CHECK_MSG(occlusion_active_, "no occlusion query active");
  occlusion_active_ = false;
  stats_.occlusion_queries += 1;
  stats_.bytes_readback += sizeof(std::uint64_t);
  return occlusion_passed_;
}

void GpuDevice::BindStencilBuffer(int width, int height, std::uint8_t clear_value) {
  STREAMGPU_CHECK(width > 0 && height > 0);
  stencil_width_ = width;
  stencil_height_ = height;
  stencil_buffer_.assign(static_cast<std::size_t>(width) * height, clear_value);
}

void GpuDevice::SetStencilTest(bool enabled, StencilFunc func, std::uint8_t reference,
                               StencilOp on_pass) {
  stencil_enabled_ = enabled;
  stencil_func_ = func;
  stencil_ref_ = reference;
  stencil_on_pass_ = on_pass;
}

std::uint8_t GpuDevice::StencilAt(int x, int y) const {
  STREAMGPU_CHECK(x >= 0 && x < stencil_width_ && y >= 0 && y < stencil_height_);
  return stencil_buffer_[static_cast<std::size_t>(y) * stencil_width_ + x];
}

void GpuDevice::DrawDepthOnlyQuad(float x0, float y0, float x1, float y1, float depth) {
  STREAMGPU_CHECK_MSG(depth_width_ > 0, "no depth buffer bound");
  if (stencil_enabled_) {
    STREAMGPU_CHECK_MSG(
        stencil_width_ == depth_width_ && stencil_height_ == depth_height_,
        "stencil and depth buffers must match");
  }
  const int px0 = std::max(0, static_cast<int>(std::ceil(x0 - 0.5f)));
  const int py0 = std::max(0, static_cast<int>(std::ceil(y0 - 0.5f)));
  const int px1 = std::min(depth_width_, static_cast<int>(std::ceil(x1 - 0.5f)));
  const int py1 = std::min(depth_height_, static_cast<int>(std::ceil(y1 - 0.5f)));
  stats_.draw_calls += 1;
  if (px0 >= px1 || py0 >= py1) return;

  std::uint64_t passed = 0;
  for (int y = py0; y < py1; ++y) {
    float* row = depth_buffer_.data() + static_cast<std::size_t>(y) * depth_width_;
    std::uint8_t* srow =
        stencil_enabled_
            ? stencil_buffer_.data() + static_cast<std::size_t>(y) * stencil_width_
            : nullptr;
    for (int x = px0; x < px1; ++x) {
      if (stencil_enabled_ && stencil_func_ == StencilFunc::kEqual &&
          srow[x] != stencil_ref_) {
        continue;  // stencil-fail: fragment discarded before the depth test
      }
      if (DepthTestPasses(depth_func_, depth, row[x])) {
        ++passed;
        if (depth_write_) row[x] = depth;
        if (stencil_enabled_) {
          switch (stencil_on_pass_) {
            case StencilOp::kKeep:
              break;
            case StencilOp::kIncrement:
              if (srow[x] != 0xFF) ++srow[x];
              break;
            case StencilOp::kZero:
              srow[x] = 0;
              break;
          }
        }
      }
    }
  }
  const std::uint64_t fragments =
      static_cast<std::uint64_t>(px1 - px0) * static_cast<std::uint64_t>(py1 - py0);
  stats_.fragments_shaded += fragments;
  stats_.depth_test_fragments += fragments;
  // One depth read per fragment; one write per passing fragment with depth
  // writes enabled; stencil reads/writes ride the same ROP path (1 B each).
  stats_.bytes_vram += fragments * sizeof(float) +
                       (depth_write_ ? passed * sizeof(float) : 0) +
                       (stencil_enabled_ ? fragments + passed : 0);
  if (occlusion_active_) occlusion_passed_ += passed;
}

float GpuDevice::DepthAt(int x, int y) const {
  STREAMGPU_CHECK(x >= 0 && x < depth_width_ && y >= 0 && y < depth_height_);
  return depth_buffer_[static_cast<std::size_t>(y) * depth_width_ + x];
}

void GpuDevice::CopyFramebufferToTexture(TextureHandle tex) {
  if (lost_) return;  // video-memory traffic is down with the device
  Surface& t = MutableTexture(tex);
  STREAMGPU_CHECK_MSG(
      t.width() == framebuffer_.width() && t.height() == framebuffer_.height(),
      "CopyFramebufferToTexture requires matching dimensions");
  // The charged traffic models the physical copy regardless of how it is
  // executed below: read the framebuffer once, write the texture once.
  stats_.bytes_vram += framebuffer_.SizeBytes() + t.SizeBytes();
  stats_.fb_to_texture_copies += 1;

  if (t.format() == framebuffer_.format()) {
    if (fb_alias_ == tex && fb_written_.empty()) {
      // The texture already holds the framebuffer's logical content; the
      // copy is a no-op.
      return;
    }
    if (fb_alias_ >= 0) {
      const bool tiled = fb_written_area_ ==
                         static_cast<std::uint64_t>(framebuffer_.width()) *
                             static_cast<std::uint64_t>(framebuffer_.height());
      if (fb_alias_ != tex || !tiled) {
        // Copying to a different texture, or the draws since the last swap
        // left part of the logical content in the aliased texture: restore
        // the physical framebuffer first.
        MaterializeFramebuffer();
      }
      // When tiled, the framebuffer is fully physical again (every texel was
      // rewritten since the swap) and the alias can simply move on.
    }
    std::swap(framebuffer_, t);
    fb_alias_ = tex;
    fb_written_.clear();
    fb_written_area_ = 0;
    return;
  }

  // Cross-precision copy (quantizing f32 framebuffer into an f16 texture):
  // no aliasing, physical copy from the logical content.
  if (tex == fb_alias_) MaterializeFramebuffer();
  const Surface& fb = ReadableFramebuffer();
  const bool quantize = t.format() == Format::kFloat16 && fb.format() != Format::kFloat16;
  for (int y = 0; y < t.height(); ++y) {
    const float* src = fb.TexelData() + fb.Index(0, y) * kNumChannels;
    float* dst = t.TexelData() + t.Index(0, y) * kNumChannels;
    const std::size_t n = static_cast<std::size_t>(t.width()) * kNumChannels;
    if (quantize) {
      QuantizeToHalfN(src, dst, n);
    } else {
      std::memcpy(dst, src, n * sizeof(float));
    }
  }
}

}  // namespace streamgpu::gpu
