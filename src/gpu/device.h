// The simulated graphics device: texture objects, a framebuffer, render
// state, host<->device transfers with bus-byte accounting, and cumulative
// work counters.
//
// This class is the substitution for the paper's NVIDIA GeForce FX 6800
// Ultra + OpenGL stack. It executes exactly the operations the paper's
// routines issue (texture upload, Copy, blended quads, framebuffer-to-texture
// copies, readback) and records how much of each a physical device would have
// performed; src/hwmodel converts the counters to simulated milliseconds.

#ifndef STREAMGPU_GPU_DEVICE_H_
#define STREAMGPU_GPU_DEVICE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gpu/blend.h"
#include "gpu/depth.h"
#include "gpu/fault_hook.h"
#include "gpu/rasterizer.h"
#include "gpu/stats.h"
#include "gpu/surface.h"
#include "gpu/vertex.h"

namespace streamgpu::gpu {

/// Opaque texture object handle.
using TextureHandle = int;

/// A simulated GPU with video memory, a rasterizer, and a bus to the host.
class GpuDevice {
 public:
  GpuDevice() = default;

  // Not copyable (owns device memory); movable.
  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;
  GpuDevice(GpuDevice&&) = default;
  GpuDevice& operator=(GpuDevice&&) = default;

  /// Allocates a width x height RGBA texture and returns its handle. Storage
  /// comes from the device's texture arena: surfaces retired by
  /// DestroyAllTextures() are recycled, so steady-state sort loops that
  /// create same-sized textures every window never touch the heap.
  TextureHandle CreateTexture(int width, int height, Format format);

  /// Retires all textures into the arena (handles become invalid; the
  /// storage is reused by subsequent CreateTexture calls).
  void DestroyAllTextures();

  /// Uploads one channel of a texture from host memory over the bus. `data`
  /// is row-major and must contain exactly width*height values. Bus bytes
  /// are charged at the texture's storage precision.
  void UploadChannel(TextureHandle tex, int channel, std::span<const float> data);

  /// Reads one framebuffer channel back to host memory over the bus.
  void ReadbackChannel(int channel, std::span<float> out);

  /// Binds the framebuffer, resizing in place (the allocation is reused
  /// across binds). Contents are undefined (zeroed in the simulator).
  void BindFramebuffer(int width, int height, Format format);

  /// Sets the blend equation for subsequent DrawQuad calls. kReplace models
  /// glDisable(GL_BLEND).
  void SetBlend(BlendOp op) { blend_op_ = op; }

  /// Rasterizes a textured quad into the framebuffer with the current blend
  /// equation (the paper's DrawQuad(v, t)).
  void DrawQuad(TextureHandle tex, const Quad& quad);

  /// Copies the framebuffer contents into a texture of identical dimensions
  /// (glCopyTexSubImage2D). Pure video-memory traffic; no bus transfer.
  ///
  /// Implementation note: when the formats match, the device executes the
  /// copy as a storage swap and remembers that the framebuffer's logical
  /// content now lives in `tex` (ping-pong aliasing). Subsequent draws read
  /// their pre-blend destination values from `tex` and write the framebuffer;
  /// once the draws since the swap tile the framebuffer (every PBSN/bitonic
  /// step does), the next copy is again a pure swap, so the render loop's
  /// per-step copy costs nothing. Draws that overlap an already-written
  /// region, partial coverage, and direct framebuffer reads materialize the
  /// logical content first, so observable behavior — outputs, stats, and the
  /// values seen by Texture()/framebuffer()/ReadbackChannel() — is identical
  /// to a physical copy.
  void CopyFramebufferToTexture(TextureHandle tex);

  /// Runs a user fragment program over a framebuffer rectangle (see
  /// Rasterizer::RunFragmentProgram). Used by the bitonic-sort baseline.
  template <typename Program>
  void RunFragmentProgram(TextureHandle tex, int x0, int y0, int x1, int y1,
                          std::uint64_t instructions_per_fragment,
                          std::uint64_t fetches_per_fragment, Program&& program) {
    const DeviceFault fault =
        PollFault(DeviceFaultSite::kPass, static_cast<std::uint64_t>(x1 - x0) *
                                              static_cast<std::uint64_t>(y1 - y0));
    if (lost_) return;
    NoteFramebufferWrite(x0, y0, x1, y1);
    Rasterizer::RunFragmentProgram(Texture(tex), x0, y0, x1, y1, instructions_per_fragment,
                                   fetches_per_fragment, std::forward<Program>(program),
                                   &framebuffer_, &stats_);
    if (fault.kind != DeviceFault::Kind::kNone) ApplyFramebufferCorruption(fault);
  }

  // --- Fault injection and recovery (docs/ROBUSTNESS.md). ---

  /// Installs a fault hook polled at every upload / render-pass / readback
  /// operation (null, the default, disables injection; each poll then costs
  /// one pointer compare). Borrowed; must outlive the device or be unset.
  void set_fault_hook(DeviceFaultHook* hook) { fault_hook_ = hook; }

  /// True while the simulated device is lost: data operations (uploads,
  /// draws, fragment programs, copies, readbacks) are dropped — no work, no
  /// stats — until Recover(). Host-side state ops (CreateTexture,
  /// BindFramebuffer, DestroyAllTextures) still execute, so dimension
  /// invariants hold across the outage.
  bool lost() const { return lost_; }

  /// Clears the lost state (the host "reset the context and retry" path).
  void Recover() { lost_ = false; }

  // --- Depth-test path (the database-predicate machinery of [20], §2.2). ---

  /// Binds a depth buffer (storage reused across binds), cleared to
  /// `clear_value`.
  void BindDepthBuffer(int width, int height, float clear_value = 1.0f);

  /// Loads one texture channel into the depth buffer: a render pass in which
  /// each fragment's depth is the corresponding texel value (depth writes
  /// on, depth func ALWAYS). Dimensions must match the depth buffer.
  void LoadDepthFromTexture(TextureHandle tex, int channel);

  /// Loads one framebuffer channel into the depth buffer (a depth-replace
  /// pass over a previously rendered result — how computed attributes such
  /// as linear combinations reach the depth-test path, [20]).
  void LoadDepthFromFramebuffer(int channel);

  /// Sets the depth comparison and whether passing fragments update the
  /// stored depth.
  void SetDepthTest(DepthFunc func, bool write_depth);

  /// Starts counting fragments that pass the depth test.
  void BeginOcclusionQuery();

  /// Stops counting and returns the number of passing fragments (a
  /// pipeline-stalling readback on real hardware; charged per query by the
  /// timing model).
  std::uint64_t EndOcclusionQuery();

  // --- Stencil path (boolean predicate combinations, [20]). ---

  /// Stencil comparison for subsequent depth-only quads.
  enum class StencilFunc { kAlways, kEqual };

  /// Stencil update applied to fragments that pass BOTH the stencil and the
  /// depth test (a subset of GL's op table sufficient for multi-pass
  /// conjunction counting).
  enum class StencilOp { kKeep, kIncrement, kZero };

  /// Binds an 8-bit stencil buffer (storage reused across binds) cleared to
  /// `clear_value`. Dimensions must match the depth buffer when both are
  /// used.
  void BindStencilBuffer(int width, int height, std::uint8_t clear_value = 0);

  /// Enables/disables the stencil test for depth-only quads.
  void SetStencilTest(bool enabled, StencilFunc func = StencilFunc::kAlways,
                      std::uint8_t reference = 0, StencilOp on_pass = StencilOp::kKeep);

  /// Stored stencil value at a pixel (host-side inspection in tests).
  std::uint8_t StencilAt(int x, int y) const;

  /// Renders a depth-only screen-aligned quad at constant `depth` covering
  /// pixel rectangle [x0, x1) x [y0, y1); no color output. When the stencil
  /// test is enabled, fragments failing it are discarded before the depth
  /// test, and `on_pass` updates the stencil of fully passing fragments.
  void DrawDepthOnlyQuad(float x0, float y0, float x1, float y1, float depth);

  /// Stored depth at a pixel (host-side inspection in tests).
  float DepthAt(int x, int y) const;

  /// Direct access to a texture object (host-side inspection in tests).
  const Surface& Texture(TextureHandle tex) const;
  Surface& MutableTexture(TextureHandle tex);

  /// Direct access to the framebuffer's logical contents (host-side
  /// inspection in tests). Materializes any pending ping-pong alias first.
  const Surface& framebuffer() const {
    return const_cast<GpuDevice*>(this)->ReadableFramebuffer();
  }

  /// Cumulative work counters since construction or the last ResetStats().
  const GpuStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GpuStats{}; }

 private:
  /// Polls the fault hook at the start of a data operation: applies stall
  /// faults inline, latches kDeviceLost into lost_, and returns any
  /// corruption fault for the caller to apply to its operand after the op.
  /// Returns kNone when no hook is installed or the device is already lost.
  /// The no-hook fast path is inline so the disabled configuration pays one
  /// pointer compare per op (the fig3 overhead budget).
  DeviceFault PollFault(DeviceFaultSite site, std::uint64_t elements) {
    if (fault_hook_ == nullptr) return DeviceFault{};
    return PollFaultSlow(site, elements);
  }
  DeviceFault PollFaultSlow(DeviceFaultSite site, std::uint64_t elements);

  /// Applies a corruption fault to one value of the framebuffer's logical
  /// contents (render-pass fault site).
  void ApplyFramebufferCorruption(const DeviceFault& fault);

  // --- Ping-pong framebuffer aliasing (see CopyFramebufferToTexture). ---

  /// Records an upcoming write to framebuffer pixels [x0, x1) x [y0, y1).
  /// While an alias is active, an overlap with an already-written rectangle
  /// forces materialization (the overlapped texels' pre-blend values live in
  /// the framebuffer itself, not the aliased texture).
  void NoteFramebufferWrite(int x0, int y0, int x1, int y1);

  /// Restores the framebuffer's physical storage to its logical contents and
  /// deactivates the alias. No-op when no alias is active.
  void MaterializeFramebuffer();

  /// The surface holding the framebuffer's logical contents: the aliased
  /// texture when untouched since the swap, otherwise the (materialized)
  /// framebuffer.
  Surface& ReadableFramebuffer();

  std::vector<std::unique_ptr<Surface>> textures_;
  // Retired texture storage, recycled by CreateTexture (Surface::Reset reuses
  // the underlying block when its capacity suffices).
  std::vector<std::unique_ptr<Surface>> texture_arena_;
  Surface framebuffer_;
  BlendOp blend_op_ = BlendOp::kReplace;

  // Active ping-pong alias: the texture whose storage holds the framebuffer's
  // logical content (-1 when none), the disjoint pixel rectangles
  // {x0, y0, x1, y1} written since the swap, and their total area.
  TextureHandle fb_alias_ = -1;
  std::vector<std::array<int, 4>> fb_written_;
  std::uint64_t fb_written_area_ = 0;
  // Scratch coverage mask for partial materialization (cold path).
  std::vector<std::uint8_t> fb_mask_;

  std::vector<float> depth_buffer_;
  int depth_width_ = 0;
  int depth_height_ = 0;
  DepthFunc depth_func_ = DepthFunc::kAlways;
  bool depth_write_ = true;
  bool occlusion_active_ = false;
  std::uint64_t occlusion_passed_ = 0;

  std::vector<std::uint8_t> stencil_buffer_;
  int stencil_width_ = 0;
  int stencil_height_ = 0;
  bool stencil_enabled_ = false;
  StencilFunc stencil_func_ = StencilFunc::kAlways;
  std::uint8_t stencil_ref_ = 0;
  StencilOp stencil_on_pass_ = StencilOp::kKeep;

  GpuStats stats_;

  DeviceFaultHook* fault_hook_ = nullptr;
  bool lost_ = false;
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_DEVICE_H_
