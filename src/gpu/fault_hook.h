// Device-side fault-injection interface.
//
// The simulated device knows nothing about fault plans, seeds, or recovery
// policy: it polls an installed DeviceFaultHook once per data operation
// (texture upload, render pass, framebuffer readback) and applies whatever
// fault the hook returns to that one operation. The deterministic,
// plan-driven implementation lives in core::FaultInjector; keeping the
// interface here lets gpu/ (the injection sites) and sort/ (the
// ResilientSorter recovery wrapper) cooperate without either depending on
// core/. See docs/ROBUSTNESS.md.

#ifndef STREAMGPU_GPU_FAULT_HOOK_H_
#define STREAMGPU_GPU_FAULT_HOOK_H_

#include <cstdint>
#include <cstring>
#include <limits>

#include "gpu/half.h"

namespace streamgpu::gpu {

/// The host<->device seam a data operation crosses.
enum class DeviceFaultSite {
  kUpload,    ///< host -> device texture upload
  kPass,      ///< render pass (blended quad / fragment program)
  kReadback,  ///< framebuffer -> host readback
};

/// One fault decision, returned by the hook for one device operation.
struct DeviceFault {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kBitFlip,       ///< flip one bit of one value touched by the operation
    kNan,           ///< overwrite one touched value with quiet NaN
    kTruncateHalf,  ///< re-quantize one touched value through binary16
    kDeviceLost,    ///< drop this and every following data op until Recover()
    kStall,         ///< sleep stall_us, then execute the op normally
  };

  Kind kind = Kind::kNone;
  std::uint64_t target = 0;  ///< pseudo-random index, reduced modulo the operand size
  int bit = 0;               ///< bit position for kBitFlip (taken mod 32)
  unsigned stall_us = 0;     ///< sleep duration for kStall
};

/// Polled by GpuDevice once per data operation. Implementations must decide
/// deterministically (seeded plans), so a faulty run is reproducible.
class DeviceFaultHook {
 public:
  virtual ~DeviceFaultHook() = default;

  /// Called at the start of a device operation moving/producing `elements`
  /// values across `site`. The returned fault is applied to this operation
  /// only.
  virtual DeviceFault OnDeviceOp(DeviceFaultSite site, std::uint64_t elements) = 0;

  /// Total faults this hook has fired so far (recovery/observability
  /// accounting).
  virtual std::uint64_t fires() const { return 0; }
};

/// The corruption primitive behind every data-corrupting fault kind.
/// Exposed so the guard property tests exercise exactly what the device
/// applies (tests/fault_test.cc).
inline float CorruptValue(float value, DeviceFault::Kind kind, int bit) {
  switch (kind) {
    case DeviceFault::Kind::kBitFlip: {
      std::uint32_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      bits ^= 1u << (static_cast<unsigned>(bit) & 31u);
      float out;
      std::memcpy(&out, &bits, sizeof(out));
      return out;
    }
    case DeviceFault::Kind::kNan:
      return std::numeric_limits<float>::quiet_NaN();
    case DeviceFault::Kind::kTruncateHalf:
      return QuantizeToHalf(value);
    default:
      return value;
  }
}

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_FAULT_HOOK_H_
