#include "gpu/gl.h"

#include "common/check.h"

namespace streamgpu::gpu {

GlContext::GlContext(GpuDevice* device) : device_(device) {
  STREAMGPU_CHECK(device != nullptr);
}

void GlContext::Enable(Capability cap) {
  if (cap == kTexture2D) texturing_ = true;
  if (cap == kBlend) blending_ = true;
}

void GlContext::Disable(Capability cap) {
  if (cap == kTexture2D) texturing_ = false;
  if (cap == kBlend) blending_ = false;
}

void GlContext::BlendEquation(BlendEquationMode mode) { blend_mode_ = mode; }

void GlContext::BindTexture(TextureHandle tex) { bound_texture_ = tex; }

void GlContext::Begin(PrimitiveMode mode) {
  STREAMGPU_CHECK(mode == kQuads);
  STREAMGPU_CHECK_MSG(!in_begin_, "nested glBegin");
  in_begin_ = true;
  pending_vertices_ = 0;
}

void GlContext::TexCoord2f(float u, float v) {
  current_u_ = u;
  current_v_ = v;
}

void GlContext::Vertex2f(float x, float y) {
  STREAMGPU_CHECK_MSG(in_begin_, "glVertex outside glBegin/glEnd");
  quad_[static_cast<std::size_t>(pending_vertices_)] = {x, y, current_u_, current_v_};
  if (++pending_vertices_ == 4) {
    STREAMGPU_CHECK_MSG(texturing_, "drawing requires GL_TEXTURE_2D enabled");
    STREAMGPU_CHECK_MSG(bound_texture_ >= 0, "no texture bound");
    device_->SetBlend(blending_ ? (blend_mode_ == kFuncMin ? BlendOp::kMin : BlendOp::kMax)
                                : BlendOp::kReplace);
    device_->DrawQuad(bound_texture_, Quad{quad_});
    pending_vertices_ = 0;
  }
}

void GlContext::End() {
  STREAMGPU_CHECK_MSG(in_begin_, "glEnd without glBegin");
  STREAMGPU_CHECK_MSG(pending_vertices_ == 0, "incomplete quad at glEnd");
  in_begin_ = false;
}

void GlContext::CopyTexSubImage2D() {
  STREAMGPU_CHECK_MSG(bound_texture_ >= 0, "no texture bound");
  device_->CopyFramebufferToTexture(bound_texture_);
}

}  // namespace streamgpu::gpu
