// A minimal OpenGL-1.x-style immediate-mode shim over GpuDevice, provided so
// the paper's pseudocode (Routines 4.1-4.4: "Enable Texturing and set tex as
// active texture", "set blend function to compute the minimum",
// "DrawQuad(v, t)") can be transcribed verbatim — see
// sort/paper_routines.h, which is tested to produce bit-identical results to
// the optimized implementation in sort/pbsn_gpu.h.
//
// The subset mirrors what the paper's implementation used: 2-D texturing,
// MIN/MAX blend equations, quads with per-vertex texture coordinates, and
// glCopyTexSubImage2D-style framebuffer-to-texture copies.

#ifndef STREAMGPU_GPU_GL_H_
#define STREAMGPU_GPU_GL_H_

#include <array>

#include "gpu/device.h"

namespace streamgpu::gpu {

/// Immediate-mode GL-flavored context.
class GlContext {
 public:
  enum Capability { kTexture2D, kBlend };
  enum BlendEquationMode { kFuncMin, kFuncMax };
  enum PrimitiveMode { kQuads };

  /// The device is borrowed and must outlive the context.
  explicit GlContext(GpuDevice* device);

  // glEnable / glDisable.
  void Enable(Capability cap);
  void Disable(Capability cap);

  // glBlendEquation(GL_MIN / GL_MAX).
  void BlendEquation(BlendEquationMode mode);

  // glBindTexture(GL_TEXTURE_2D, tex).
  void BindTexture(TextureHandle tex);

  // glBegin(GL_QUADS) ... glEnd(). Vertices arrive as
  // glTexCoord2f(u, v); glVertex2f(x, y); four per quad; glEnd() (or every
  // fourth vertex) submits the quad to the rasterizer.
  void Begin(PrimitiveMode mode);
  void TexCoord2f(float u, float v);
  void Vertex2f(float x, float y);
  void End();

  // glCopyTexSubImage2D: copies the framebuffer into the bound texture.
  void CopyTexSubImage2D();

  GpuDevice& device() { return *device_; }

 private:
  GpuDevice* device_;
  bool texturing_ = false;
  bool blending_ = false;
  BlendEquationMode blend_mode_ = kFuncMin;
  TextureHandle bound_texture_ = -1;

  bool in_begin_ = false;
  float current_u_ = 0;
  float current_v_ = 0;
  int pending_vertices_ = 0;
  std::array<Vertex, 4> quad_{};
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_GL_H_
