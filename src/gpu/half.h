// Software IEEE 754 binary16 ("half") conversion.
//
// The paper renders into 16-bit floating-point offscreen buffers ("optimized
// them using double buffered 16-bit offscreen buffers", §4.5) and streams
// 16-bit floating-point data (§5). The simulator reproduces that precision by
// quantizing texture/framebuffer contents through this type, and reproduces
// the bandwidth by accounting 2 bytes per stored channel.

#ifndef STREAMGPU_GPU_HALF_H_
#define STREAMGPU_GPU_HALF_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace streamgpu::gpu {

/// Converts a single-precision float to IEEE 754 binary16 bits, using
/// round-to-nearest-even, with correct handling of NaN, infinities,
/// subnormals, and overflow (overflow rounds to infinity).
inline std::uint16_t FloatToHalfBits(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));

  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness (quiet bit set); keep payload nonzero.
    if (abs > 0x7F800000u) return static_cast<std::uint16_t>(sign | 0x7E00u);
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x477FF000u) {
    // Rounds to or past half infinity (65520 and above).
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero). Shift the implicit bit into place.
    if (abs < 0x33000000u) {
      // Smaller than half of the smallest subnormal: rounds to zero.
      return static_cast<std::uint16_t>(sign);
    }
    // The 24-bit significand shifted down so the result counts units of
    // 2^-24 (the subnormal half quantum): shift = 126 - exponent, in 14..24
    // for the inputs reaching this path.
    const std::uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
    const int shift = 126 - static_cast<int>(abs >> 23);
    std::uint32_t sub = mant >> shift;
    // Round to nearest even on the bits shifted out.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++sub;
    return static_cast<std::uint16_t>(sign | sub);
  }

  // Normalized half.
  std::uint32_t bits = sign | ((abs + 0xC8000000u) >> 13);
  const std::uint32_t rem = abs & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (bits & 1u))) ++bits;
  return static_cast<std::uint16_t>(bits);
}

/// Converts IEEE 754 binary16 bits to a single-precision float (exact).
inline float HalfBitsToFloat(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;

  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      std::uint32_t m = mant;
      int e = -1;
      do {
        m <<= 1;
        ++e;
      } while ((m & 0x400u) == 0);
      f = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    f = sign | 0x7F800000u | (mant << 13);  // inf or NaN
  } else {
    f = sign | ((exp + 127 - 15) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

/// Rounds a float through binary16 precision: the value a 16-bit floating
/// point render target would actually hold.
inline float QuantizeToHalf(float value) { return HalfBitsToFloat(FloatToHalfBits(value)); }

/// Bulk round-trip: quantizes `n` values from `src` into `dst` (which may
/// alias). Used by the upload and copy paths of the simulated device.
inline void QuantizeToHalfN(const float* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = QuantizeToHalf(src[i]);
}

/// Largest finite binary16 value (65504).
inline constexpr float kHalfMax = 65504.0f;

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_HALF_H_
