#include "gpu/rasterizer.h"

#include <algorithm>
#include <vector>

namespace streamgpu::gpu {

namespace {

// Clamps a texel coordinate to the valid range (GL_CLAMP_TO_EDGE).
inline int ClampTexel(float coord, int extent) {
  int t = static_cast<int>(std::floor(coord));
  if (t < 0) t = 0;
  if (t >= extent) t = extent - 1;
  return t;
}

// Blends one channel row with precomputed source texel indices.
template <BlendOp kOp>
void BlendRow(const float* src_row, const int* cols, int count, float* dst_row,
              bool quantize_half) {
  if (quantize_half) {
    for (int i = 0; i < count; ++i) {
      dst_row[i] = QuantizeToHalf(ApplyBlend(kOp, dst_row[i], src_row[cols[i]]));
    }
  } else {
    for (int i = 0; i < count; ++i) {
      dst_row[i] = ApplyBlend(kOp, dst_row[i], src_row[cols[i]]);
    }
  }
}

void BlendRowDispatch(BlendOp op, const float* src_row, const int* cols, int count,
                      float* dst_row, bool quantize_half) {
  switch (op) {
    case BlendOp::kReplace:
      BlendRow<BlendOp::kReplace>(src_row, cols, count, dst_row, quantize_half);
      break;
    case BlendOp::kMin:
      BlendRow<BlendOp::kMin>(src_row, cols, count, dst_row, quantize_half);
      break;
    case BlendOp::kMax:
      BlendRow<BlendOp::kMax>(src_row, cols, count, dst_row, quantize_half);
      break;
  }
}

}  // namespace

void Rasterizer::DrawQuad(const Surface& tex, const Quad& quad, BlendOp op, Surface* target,
                          GpuStats* stats) {
  const Vertex& v0 = quad.vertices[0];
  const Vertex& v1 = quad.vertices[1];
  const Vertex& v2 = quad.vertices[2];
  const Vertex& v3 = quad.vertices[3];

  // The quad must be an axis-aligned rectangle: (x0,y0),(x1,y0),(x1,y1),(x0,y1).
  const float x0 = v0.x, y0 = v0.y, x1 = v2.x, y1 = v2.y;
  STREAMGPU_CHECK_MSG(v1.x == x1 && v1.y == y0 && v3.x == x0 && v3.y == y1,
                      "DrawQuad requires an axis-aligned rectangle");
  STREAMGPU_CHECK(x1 > x0 && y1 > y0);

  // Pixels whose centers fall inside [x0, x1) x [y0, y1).
  const int px0 = std::max(0, static_cast<int>(std::ceil(x0 - 0.5f)));
  const int py0 = std::max(0, static_cast<int>(std::ceil(y0 - 0.5f)));
  const int px1 = std::min(target->width(), static_cast<int>(std::ceil(x1 - 0.5f)));
  const int py1 = std::min(target->height(), static_cast<int>(std::ceil(y1 - 0.5f)));
  if (px0 >= px1 || py0 >= py1) {
    stats->draw_calls += 1;
    return;
  }

  const float inv_w = 1.0f / (x1 - x0);
  const float inv_h = 1.0f / (y1 - y0);
  const int tw = tex.width();
  const int th = tex.height();
  const bool quantize_half = target->format() == Format::kFloat16;

  // Texture coordinates are interpolated bilinearly from the corners. Every
  // comparator mapping in the paper is separable — u depends only on x and v
  // only on y — which admits a fast planar path; arbitrary corner
  // assignments fall back to full bilinear interpolation.
  const bool separable = v0.u == v3.u && v1.u == v2.u && v0.v == v1.v && v3.v == v2.v;

  const std::uint64_t width_px = static_cast<std::uint64_t>(px1 - px0);
  const std::uint64_t fragments = width_px * static_cast<std::uint64_t>(py1 - py0);

  if (separable) {
    // Precompute the source texel column for every destination column and
    // the source texel row for every destination row.
    std::vector<int> cols(px1 - px0);
    for (int x = px0; x < px1; ++x) {
      const float sx = (static_cast<float>(x) + 0.5f - x0) * inv_w;
      const float u = v0.u + (v1.u - v0.u) * sx;
      cols[x - px0] = ClampTexel(u, tw);
    }
    for (int y = py0; y < py1; ++y) {
      const float sy = (static_cast<float>(y) + 0.5f - y0) * inv_h;
      const float tv = v0.v + (v3.v - v0.v) * sy;
      const int ty = ClampTexel(tv, th);
      for (int c = 0; c < kNumChannels; ++c) {
        const float* src_row = tex.ChannelData(c) + tex.Index(0, ty);
        float* dst_row = target->ChannelData(c) + target->Index(px0, y);
        BlendRowDispatch(op, src_row, cols.data(), px1 - px0, dst_row, quantize_half);
      }
    }
  } else {
    for (int y = py0; y < py1; ++y) {
      const float sy = (static_cast<float>(y) + 0.5f - y0) * inv_h;
      for (int x = px0; x < px1; ++x) {
        const float sx = (static_cast<float>(x) + 0.5f - x0) * inv_w;
        const float w00 = (1.0f - sx) * (1.0f - sy);
        const float w10 = sx * (1.0f - sy);
        const float w11 = sx * sy;
        const float w01 = (1.0f - sx) * sy;
        const float u = w00 * v0.u + w10 * v1.u + w11 * v2.u + w01 * v3.u;
        const float tv = w00 * v0.v + w10 * v1.v + w11 * v2.v + w01 * v3.v;
        const int txl = ClampTexel(u, tw);
        const int tyl = ClampTexel(tv, th);
        for (int c = 0; c < kNumChannels; ++c) {
          const float src = tex.Get(c, txl, tyl);
          target->Set(c, x, y, ApplyBlend(op, target->Get(c, x, y), src));
        }
      }
    }
  }

  stats->draw_calls += 1;
  stats->fragments_shaded += fragments;
  stats->texture_fetches += fragments;
  if (op != BlendOp::kReplace) stats->blend_fragments += fragments;
  // VRAM traffic: one texel fetch, one framebuffer write, and — when blending
  // — one framebuffer read per fragment.
  const std::uint64_t per_fragment =
      BytesPerTexel(tex.format()) + BytesPerTexel(target->format()) +
      (op != BlendOp::kReplace ? BytesPerTexel(target->format()) : 0);
  stats->bytes_vram += fragments * per_fragment;
}

}  // namespace streamgpu::gpu
