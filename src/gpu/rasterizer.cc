#include "gpu/rasterizer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace streamgpu::gpu {

namespace {

std::atomic<RasterPath> g_raster_path = [] {
  const char* raw = std::getenv("STREAMGPU_RASTER_PATH");
  if (raw != nullptr) {
    const std::string v(raw);
    if (v == "generic") return RasterPath::kGeneric;
    if (v == "check") return RasterPath::kCheck;
  }
  return RasterPath::kFast;
}();

// Clamps a texel coordinate to the valid range (GL_CLAMP_TO_EDGE).
inline int ClampTexel(float coord, int extent) {
  int t = static_cast<int>(std::floor(coord));
  if (t < 0) t = 0;
  if (t >= extent) t = extent - 1;
  return t;
}

// The rasterized pixel rectangle and interpolation setup shared by every
// execution path.
struct QuadSetup {
  float x0, y0, x1, y1;  // screen rectangle
  int px0, py0, px1, py1;
  float inv_w, inv_h;
};

QuadSetup SetUpQuad(const Quad& quad, int width, int height) {
  const Vertex& v0 = quad.vertices[0];
  const Vertex& v1 = quad.vertices[1];
  const Vertex& v3 = quad.vertices[3];
  QuadSetup s;
  s.x0 = v0.x;
  s.y0 = v0.y;
  s.x1 = quad.vertices[2].x;
  s.y1 = quad.vertices[2].y;
  STREAMGPU_CHECK_MSG(v1.x == s.x1 && v1.y == s.y0 && v3.x == s.x0 && v3.y == s.y1,
                      "DrawQuad requires an axis-aligned rectangle");
  STREAMGPU_CHECK(s.x1 > s.x0 && s.y1 > s.y0);
  // Pixels whose centers fall inside [x0, x1) x [y0, y1).
  s.px0 = std::max(0, static_cast<int>(std::ceil(s.x0 - 0.5f)));
  s.py0 = std::max(0, static_cast<int>(std::ceil(s.y0 - 0.5f)));
  s.px1 = std::min(width, static_cast<int>(std::ceil(s.x1 - 0.5f)));
  s.py1 = std::min(height, static_cast<int>(std::ceil(s.y1 - 0.5f)));
  s.inv_w = 1.0f / (s.x1 - s.x0);
  s.inv_h = 1.0f / (s.y1 - s.y0);
  return s;
}

// ---------------------------------------------------------------------------
// Row kernels.
//
// The paper's Routines 4.1–4.4 only ever emit separable quads whose column
// mapping steps one texel per pixel — the identity (Copy) or a block mirror
// (comparators). Those run here, directly on the interleaved RGBA storage:
// the blend equation is the same for every channel, so an ascending row is
// one contiguous loop over 4*count floats that GCC/Clang auto-vectorize into
// packed MIN/MAX, and a descending row steps one 4-float texel group at a
// time. `kStep` is +1 (ascending) or -1 (descending); `src` points at the
// first float of the first fetched texel of the row.
//
// kQuantize folds the kFloat16 render-target rounding into the kernel. It is
// only needed when the *texture* is not binary16: MIN/MAX/REPLACE select one
// of the two operands, the destination is quantized by construction (every
// write path rounds), so a binary16 source operand makes re-quantization the
// identity and the kernel skips it (see the Surface invariant).
// ---------------------------------------------------------------------------

// `dread` supplies the pre-blend destination values. It equals `dst` except
// when GpuDevice aliases the framebuffer onto the last-copied texture (the
// swap-based CopyFramebufferToTexture), in which case it points at the
// value-identical texel of that texture.
template <BlendOp kOp, bool kQuantize, int kStep>
void BlendRowUnit(const float* src, const float* dread, int count, float* dst) {
  if constexpr (kOp == BlendOp::kReplace && !kQuantize && kStep == 1) {
    std::memcpy(dst, src,
                static_cast<std::size_t>(count) * kNumChannels * sizeof(float));
  } else if constexpr (kStep == 1) {
    const int n = count * kNumChannels;
    for (int j = 0; j < n; ++j) {
      float r = ApplyBlend(kOp, dread[j], src[j]);
      if constexpr (kQuantize) r = QuantizeToHalf(r);
      dst[j] = r;
    }
  } else if constexpr (!kQuantize) {
    // Descending rows (every comparator quad mirrors u) defeat loop
    // auto-vectorization — the texel groups walk backwards while the channels
    // walk forwards — so select the 4-wide MIN/MAX explicitly. The vector
    // ternary is bit-identical to std::min/std::max in ApplyBlend: on a false
    // compare (including NaN in either lane) both return the destination
    // operand, and on equal values (including ±0) both return it too.
    using V4 = float __attribute__((vector_size(4 * sizeof(float))));
    for (int i = 0; i < count; ++i) {
      const float* st = src + static_cast<std::ptrdiff_t>(kStep) * i * kNumChannels;
      V4 sv, rv;
      std::memcpy(&sv, st, sizeof(V4));
      std::memcpy(&rv, dread + i * kNumChannels, sizeof(V4));
      V4 out;
      if constexpr (kOp == BlendOp::kMin) {
        out = sv < rv ? sv : rv;  // std::min(dread, src)
      } else if constexpr (kOp == BlendOp::kMax) {
        out = rv < sv ? sv : rv;  // std::max(dread, src)
      } else {
        out = sv;
      }
      std::memcpy(dst + i * kNumChannels, &out, sizeof(V4));
    }
  } else {
    for (int i = 0; i < count; ++i) {
      const float* st = src + static_cast<std::ptrdiff_t>(kStep) * i * kNumChannels;
      for (int c = 0; c < kNumChannels; ++c) {
        float r = ApplyBlend(kOp, dread[i * kNumChannels + c], st[c]);
        if constexpr (kQuantize) r = QuantizeToHalf(r);
        dst[i * kNumChannels + c] = r;
      }
    }
  }
}

// Whole-quad kernel for the dominant shape: separable, unit-step columns AND
// identity row mapping (every row-block comparator and Copy quad of Routines
// 4.1/4.4). One dispatch covers all rows, amortizing quad setup over the
// whole rectangle; with the interleaved layout each covered row of a narrow
// comparator quad is a handful of contiguous floats, i.e. one cache line per
// surface per row. Strides are in floats; `src` points at the first float of
// the first fetched texel of the first covered row, `dst`/`dread` likewise
// (both use the destination stride).
template <BlendOp kOp, bool kQuantize, int kStep>
void BlendRectUnit(const float* src, std::size_t src_stride, const float* dread,
                   float* dst, std::size_t dst_stride, int rows, int count) {
  const float* s = src;
  const float* r = dread;
  float* d = dst;
  for (int y = 0; y < rows; ++y) {
    BlendRowUnit<kOp, kQuantize, kStep>(s, r, count, d);
    s += src_stride;
    r += dst_stride;
    d += dst_stride;
  }
}

// Gather fallback for separable quads whose column mapping is not unit-step
// (no paper routine emits these, but arbitrary quads are legal). Matches the
// seed implementation exactly, including its always-quantize-on-half rule.
// `src_row`/`dread_row`/`dst_row` point at the first float of texel column 0
// of the respective rows.
template <BlendOp kOp>
void BlendRowGather(const float* src_row, const int* cols, const float* dread_row,
                    int count, float* dst_row, bool quantize_half) {
  for (int i = 0; i < count; ++i) {
    const float* st = src_row + static_cast<std::size_t>(cols[i]) * kNumChannels;
    for (int c = 0; c < kNumChannels; ++c) {
      float r = ApplyBlend(kOp, dread_row[i * kNumChannels + c], st[c]);
      if (quantize_half) r = QuantizeToHalf(r);
      dst_row[i * kNumChannels + c] = r;
    }
  }
}

template <bool kQuantize, int kStep>
void BlendRowUnitDispatch(BlendOp op, const float* src, const float* dread, int count,
                          float* dst) {
  switch (op) {
    case BlendOp::kReplace:
      BlendRowUnit<BlendOp::kReplace, kQuantize, kStep>(src, dread, count, dst);
      break;
    case BlendOp::kMin:
      BlendRowUnit<BlendOp::kMin, kQuantize, kStep>(src, dread, count, dst);
      break;
    case BlendOp::kMax:
      BlendRowUnit<BlendOp::kMax, kQuantize, kStep>(src, dread, count, dst);
      break;
  }
}

template <bool kQuantize, int kStep>
void BlendRectUnitDispatch(BlendOp op, const float* src, std::size_t src_stride,
                           const float* dread, float* dst, std::size_t dst_stride,
                           int rows, int count) {
  switch (op) {
    case BlendOp::kReplace:
      BlendRectUnit<BlendOp::kReplace, kQuantize, kStep>(src, src_stride, dread, dst,
                                                         dst_stride, rows, count);
      break;
    case BlendOp::kMin:
      BlendRectUnit<BlendOp::kMin, kQuantize, kStep>(src, src_stride, dread, dst,
                                                     dst_stride, rows, count);
      break;
    case BlendOp::kMax:
      BlendRectUnit<BlendOp::kMax, kQuantize, kStep>(src, src_stride, dread, dst,
                                                     dst_stride, rows, count);
      break;
  }
}

void BlendRowGatherDispatch(BlendOp op, const float* src_row, const int* cols,
                            const float* dread_row, int count, float* dst_row,
                            bool quantize_half) {
  switch (op) {
    case BlendOp::kReplace:
      BlendRowGather<BlendOp::kReplace>(src_row, cols, dread_row, count, dst_row,
                                        quantize_half);
      break;
    case BlendOp::kMin:
      BlendRowGather<BlendOp::kMin>(src_row, cols, dread_row, count, dst_row, quantize_half);
      break;
    case BlendOp::kMax:
      BlendRowGather<BlendOp::kMax>(src_row, cols, dread_row, count, dst_row, quantize_half);
      break;
  }
}

// Reference semantics: full per-pixel bilinear interpolation.
void ExecuteGeneric(const Surface& tex, const Quad& quad, const QuadSetup& s, BlendOp op,
                    const Surface& dsrc, Surface* target) {
  const Vertex& v0 = quad.vertices[0];
  const Vertex& v1 = quad.vertices[1];
  const Vertex& v2 = quad.vertices[2];
  const Vertex& v3 = quad.vertices[3];
  const int tw = tex.width();
  const int th = tex.height();
  for (int y = s.py0; y < s.py1; ++y) {
    const float sy = (static_cast<float>(y) + 0.5f - s.y0) * s.inv_h;
    for (int x = s.px0; x < s.px1; ++x) {
      const float sx = (static_cast<float>(x) + 0.5f - s.x0) * s.inv_w;
      const float w00 = (1.0f - sx) * (1.0f - sy);
      const float w10 = sx * (1.0f - sy);
      const float w11 = sx * sy;
      const float w01 = (1.0f - sx) * sy;
      const float u = w00 * v0.u + w10 * v1.u + w11 * v2.u + w01 * v3.u;
      const float tv = w00 * v0.v + w10 * v1.v + w11 * v2.v + w01 * v3.v;
      const int txl = ClampTexel(u, tw);
      const int tyl = ClampTexel(tv, th);
      for (int c = 0; c < kNumChannels; ++c) {
        const float src = tex.Get(c, txl, tyl);
        target->Set(c, x, y, ApplyBlend(op, dsrc.Get(c, x, y), src));
      }
    }
  }
}

void ExecuteFast(const Surface& tex, const Quad& quad, const QuadSetup& s, BlendOp op,
                 const Surface& dsrc, Surface* target) {
  const Vertex& v0 = quad.vertices[0];
  const Vertex& v1 = quad.vertices[1];
  const Vertex& v2 = quad.vertices[2];
  const Vertex& v3 = quad.vertices[3];

  // Every comparator mapping in the paper is separable — u depends only on x
  // and v only on y — which admits the interleaved row kernels; arbitrary
  // corner assignments fall back to full bilinear interpolation.
  const bool separable = v0.u == v3.u && v1.u == v2.u && v0.v == v1.v && v3.v == v2.v;
  if (!separable) {
    ExecuteGeneric(tex, quad, s, op, dsrc, target);
    return;
  }

  const int tw = tex.width();
  const int th = tex.height();
  const int count = s.px1 - s.px0;

  // Source texel column for every destination column, computed once per quad
  // and amortized over the covered rows. The scratch is thread-local so
  // concurrent sort workers never contend and the steady state allocates
  // nothing.
  static thread_local std::vector<int> cols_scratch;
  cols_scratch.resize(static_cast<std::size_t>(count));
  int* cols = cols_scratch.data();
  for (int x = s.px0; x < s.px1; ++x) {
    const float sx = (static_cast<float>(x) + 0.5f - s.x0) * s.inv_w;
    const float u = v0.u + (v1.u - v0.u) * sx;
    cols[x - s.px0] = ClampTexel(u, tw);
  }

  // Classify the column mapping. The scan is exact — the unit kernels run
  // only when they index precisely the texels the gather would have — so
  // fast-path output is bit-identical by construction.
  bool unit_asc = true;
  bool unit_desc = true;
  for (int i = 1; i < count; ++i) {
    unit_asc = unit_asc && cols[i] == cols[0] + i;
    unit_desc = unit_desc && cols[i] == cols[0] - i;
  }

  const bool target_half = target->format() == Format::kFloat16;
  // Unit kernels skip rounding when the source is already binary16 (operand
  // selection preserves quantization; see kernel comment above).
  const bool quantize_unit = target_half && tex.format() != Format::kFloat16;

  if (unit_asc || unit_desc) {
    // Row-block comparators and Copy quads map rows to themselves. When every
    // covered row does (verified with the exact per-row formula below, so the
    // fused path indexes precisely the texels the row loop would), the whole
    // quad collapses to one rectangle kernel — the per-row dispatch below
    // would otherwise dominate narrow comparator quads.
    //
    // The scan depends only on the v-mapping, the quad's vertical extent, and
    // the texture height — all shared by every comparator quad of a PBSN
    // step — so a one-entry memo amortizes it across the step's quads (a
    // block-2 step issues 512 quads with identical row mappings).
    struct RowsIdentityMemo {
      float v0v, v3v, y0, y1;
      int py0, py1, th;
      bool result;
      bool valid = false;
    };
    static thread_local RowsIdentityMemo memo;
    bool rows_identity;
    if (memo.valid && memo.v0v == v0.v && memo.v3v == v3.v && memo.y0 == s.y0 &&
        memo.y1 == s.y1 && memo.py0 == s.py0 && memo.py1 == s.py1 && memo.th == th) {
      rows_identity = memo.result;
    } else {
      rows_identity = true;
      for (int y = s.py0; y < s.py1; ++y) {
        const float sy = (static_cast<float>(y) + 0.5f - s.y0) * s.inv_h;
        const float tv = v0.v + (v3.v - v0.v) * sy;
        if (ClampTexel(tv, th) != y) {
          rows_identity = false;
          break;
        }
      }
      memo = {v0.v, v3.v, s.y0, s.y1, s.py0, s.py1, th, rows_identity, true};
    }
    if (rows_identity) {
      const float* src = tex.TexelData() + tex.Index(cols[0], s.py0) * kNumChannels;
      const float* dread =
          dsrc.TexelData() + dsrc.Index(s.px0, s.py0) * kNumChannels;
      float* dst = target->TexelData() + target->Index(s.px0, s.py0) * kNumChannels;
      const std::size_t ss = tex.row_stride() * kNumChannels;
      const std::size_t ds = target->row_stride() * kNumChannels;
      const int rows = s.py1 - s.py0;
      if (unit_asc) {
        if (quantize_unit) {
          BlendRectUnitDispatch<true, 1>(op, src, ss, dread, dst, ds, rows, count);
        } else {
          BlendRectUnitDispatch<false, 1>(op, src, ss, dread, dst, ds, rows, count);
        }
      } else {
        if (quantize_unit) {
          BlendRectUnitDispatch<true, -1>(op, src, ss, dread, dst, ds, rows, count);
        } else {
          BlendRectUnitDispatch<false, -1>(op, src, ss, dread, dst, ds, rows, count);
        }
      }
      return;
    }
  }

  for (int y = s.py0; y < s.py1; ++y) {
    const float sy = (static_cast<float>(y) + 0.5f - s.y0) * s.inv_h;
    const float tv = v0.v + (v3.v - v0.v) * sy;
    const int ty = ClampTexel(tv, th);
    const float* src_row = tex.TexelData() + tex.Index(0, ty) * kNumChannels;
    const float* dread_row =
        dsrc.TexelData() + dsrc.Index(s.px0, y) * kNumChannels;
    float* dst_row = target->TexelData() + target->Index(s.px0, y) * kNumChannels;
    const float* src_first = src_row + static_cast<std::size_t>(cols[0]) * kNumChannels;
    if (unit_asc) {
      if (quantize_unit) {
        BlendRowUnitDispatch<true, 1>(op, src_first, dread_row, count, dst_row);
      } else {
        BlendRowUnitDispatch<false, 1>(op, src_first, dread_row, count, dst_row);
      }
    } else if (unit_desc) {
      if (quantize_unit) {
        BlendRowUnitDispatch<true, -1>(op, src_first, dread_row, count, dst_row);
      } else {
        BlendRowUnitDispatch<false, -1>(op, src_first, dread_row, count, dst_row);
      }
    } else {
      BlendRowGatherDispatch(op, src_row, cols, dread_row, count, dst_row, target_half);
    }
  }
}

}  // namespace

void Rasterizer::SetPath(RasterPath path) {
  g_raster_path.store(path, std::memory_order_relaxed);
}

RasterPath Rasterizer::path() { return g_raster_path.load(std::memory_order_relaxed); }

bool Rasterizer::ClippedPixelRect(const Quad& quad, int width, int height, int* px0,
                                  int* py0, int* px1, int* py1) {
  const QuadSetup s = SetUpQuad(quad, width, height);
  *px0 = s.px0;
  *py0 = s.py0;
  *px1 = s.px1;
  *py1 = s.py1;
  return s.px0 < s.px1 && s.py0 < s.py1;
}

void Rasterizer::DrawQuad(const Surface& tex, const Quad& quad, BlendOp op, Surface* target,
                          GpuStats* stats, const Surface* dst_read) {
  const QuadSetup s = SetUpQuad(quad, target->width(), target->height());
  if (s.px0 >= s.px1 || s.py0 >= s.py1) {
    stats->draw_calls += 1;
    return;
  }
  const Surface& dsrc = dst_read != nullptr ? *dst_read : *target;
  STREAMGPU_CHECK_MSG(dsrc.width() == target->width() && dsrc.height() == target->height() &&
                          dsrc.format() == target->format(),
                      "dst_read must match the target's dimensions and format");

  switch (path()) {
    case RasterPath::kFast:
      ExecuteFast(tex, quad, s, op, dsrc, target);
      break;
    case RasterPath::kGeneric:
      ExecuteGeneric(tex, quad, s, op, dsrc, target);
      break;
    case RasterPath::kCheck: {
      Surface reference = *target;
      ExecuteGeneric(tex, quad, s, op, dsrc, &reference);
      ExecuteFast(tex, quad, s, op, dsrc, target);
      for (int c = 0; c < kNumChannels; ++c) {
        for (int y = s.py0; y < s.py1; ++y) {
          for (int x = s.px0; x < s.px1; ++x) {
            STREAMGPU_CHECK_MSG(
                target->Get(c, x, y) == reference.Get(c, x, y) ||
                    (target->Get(c, x, y) != target->Get(c, x, y) &&
                     reference.Get(c, x, y) != reference.Get(c, x, y)),
                "RasterPath::kCheck: fast kernel output diverged from the generic path");
          }
        }
      }
      break;
    }
  }

  const std::uint64_t width_px = static_cast<std::uint64_t>(s.px1 - s.px0);
  const std::uint64_t fragments = width_px * static_cast<std::uint64_t>(s.py1 - s.py0);
  stats->draw_calls += 1;
  stats->fragments_shaded += fragments;
  stats->texture_fetches += fragments;
  if (op != BlendOp::kReplace) stats->blend_fragments += fragments;
  // VRAM traffic: one texel fetch, one framebuffer write, and — when blending
  // — one framebuffer read per fragment.
  const std::uint64_t per_fragment =
      BytesPerTexel(tex.format()) + BytesPerTexel(target->format()) +
      (op != BlendOp::kReplace ? BytesPerTexel(target->format()) : 0);
  stats->bytes_vram += fragments * per_fragment;
}

}  // namespace streamgpu::gpu
