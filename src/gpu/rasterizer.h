// Quad rasterization with interpolated texture coordinates and framebuffer
// blending — the complete fixed-function path the paper's algorithms use
// (§4.2), plus a programmable-fragment entry point used only by the bitonic
// sort baseline (§4.5, [40]).
//
// Execution paths (docs/ARCHITECTURE.md, "Pass-execution engine"):
//   kFast    — the default. Separable quads classify their column mapping;
//              the axis-aligned unit-step mappings the paper's Routines
//              4.1–4.4 emit run through contiguous, auto-vectorized
//              min/max/copy row kernels. Other mappings fall back to a
//              gather row loop, non-separable quads to per-pixel bilinear.
//   kGeneric — per-pixel bilinear interpolation for every fragment (the
//              reference semantics). Slow; used for equivalence testing.
//   kCheck   — runs both paths and CHECK-fails on any output mismatch.
//              Debug aid; assumes quads with dyadic extents (the only family
//              the paper's routines emit), where the two paths agree
//              bit-exactly.
// The startup default can be overridden with STREAMGPU_RASTER_PATH =
// fast | generic | check.

#ifndef STREAMGPU_GPU_RASTERIZER_H_
#define STREAMGPU_GPU_RASTERIZER_H_

#include <cmath>

#include "gpu/blend.h"
#include "gpu/stats.h"
#include "gpu/surface.h"
#include "gpu/vertex.h"

namespace streamgpu::gpu {

/// Which DrawQuad execution path runs (see file comment).
enum class RasterPath {
  kFast,     ///< vectorized row kernels with generic fallback (default)
  kGeneric,  ///< reference per-pixel bilinear path
  kCheck,    ///< run both, CHECK outputs are identical
};

/// Executes render passes against a target surface.
class Rasterizer {
 public:
  /// Rasterizes an axis-aligned quad. For every covered pixel (centers at
  /// +0.5), the texture coordinate is interpolated bilinearly from the quad's
  /// vertices, the nearest texel of `tex` is fetched, and the fragment is
  /// combined into `target` with blend equation `op`. Work counters are
  /// accumulated into `stats`. All execution paths produce bit-identical
  /// output and identical counters for the quad families the paper's
  /// routines emit.
  ///
  /// `dst_read`, when non-null, supplies the pre-blend destination values
  /// instead of `target` (same dimensions and format required). GpuDevice
  /// uses this to alias the framebuffer onto the last-copied texture, which
  /// turns framebuffer-to-texture copies into storage swaps; passing a
  /// surface whose covered region is value-identical to `target` leaves the
  /// output unchanged.
  static void DrawQuad(const Surface& tex, const Quad& quad, BlendOp op, Surface* target,
                       GpuStats* stats, const Surface* dst_read = nullptr);

  /// The pixel rectangle [*px0, *px1) x [*py0, *py1) DrawQuad would fill for
  /// this quad (pixel centers at +0.5, clipped to a width x height target).
  /// Returns false when the rectangle is empty.
  static bool ClippedPixelRect(const Quad& quad, int width, int height, int* px0, int* py0,
                               int* px1, int* py1);

  /// Selects the DrawQuad execution path. Initialized from the
  /// STREAMGPU_RASTER_PATH environment variable at startup; tests switch it
  /// before spawning sort workers. Thread-safe to read concurrently.
  static void SetPath(RasterPath path);
  static RasterPath path();

  /// Runs a user fragment program over the pixel rectangle
  /// [x0, x1) x [y0, y1) of `target`. The program receives the pixel
  /// coordinates and the bound texture and returns the output color; no
  /// blending is applied (programs write their result directly, as in [40]).
  /// `instructions_per_fragment` is charged to the program-instruction
  /// counter; `fetches_per_fragment` to the texture-fetch counter.
  ///
  /// The callable has signature:
  ///   void program(int x, int y, const Surface& tex, float out[kNumChannels])
  template <typename Program>
  static void RunFragmentProgram(const Surface& tex, int x0, int y0, int x1, int y1,
                                 std::uint64_t instructions_per_fragment,
                                 std::uint64_t fetches_per_fragment, Program&& program,
                                 Surface* target, GpuStats* stats);
};

template <typename Program>
void Rasterizer::RunFragmentProgram(const Surface& tex, int x0, int y0, int x1, int y1,
                                    std::uint64_t instructions_per_fragment,
                                    std::uint64_t fetches_per_fragment, Program&& program,
                                    Surface* target, GpuStats* stats) {
  STREAMGPU_CHECK(x0 >= 0 && y0 >= 0 && x1 <= target->width() && y1 <= target->height());
  float out[kNumChannels];
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      program(x, y, tex, out);
      for (int c = 0; c < kNumChannels; ++c) target->Set(c, x, y, out[c]);
    }
  }
  const std::uint64_t fragments =
      static_cast<std::uint64_t>(x1 - x0) * static_cast<std::uint64_t>(y1 - y0);
  stats->draw_calls += 1;
  stats->fragments_shaded += fragments;
  stats->texture_fetches += fragments * fetches_per_fragment;
  stats->program_fragments += fragments;
  stats->program_instructions += fragments * instructions_per_fragment;
  stats->bytes_vram += fragments * (fetches_per_fragment * BytesPerTexel(tex.format()) +
                                    BytesPerTexel(target->format()));
}

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_RASTERIZER_H_
