// Quad rasterization with interpolated texture coordinates and framebuffer
// blending — the complete fixed-function path the paper's algorithms use
// (§4.2), plus a programmable-fragment entry point used only by the bitonic
// sort baseline (§4.5, [40]).

#ifndef STREAMGPU_GPU_RASTERIZER_H_
#define STREAMGPU_GPU_RASTERIZER_H_

#include <cmath>

#include "gpu/blend.h"
#include "gpu/stats.h"
#include "gpu/surface.h"
#include "gpu/vertex.h"

namespace streamgpu::gpu {

/// Executes render passes against a target surface.
class Rasterizer {
 public:
  /// Rasterizes an axis-aligned quad. For every covered pixel (centers at
  /// +0.5), the texture coordinate is interpolated bilinearly from the quad's
  /// vertices, the nearest texel of `tex` is fetched, and the fragment is
  /// combined into `target` with blend equation `op`. Work counters are
  /// accumulated into `stats`.
  static void DrawQuad(const Surface& tex, const Quad& quad, BlendOp op, Surface* target,
                       GpuStats* stats);

  /// Runs a user fragment program over the pixel rectangle
  /// [x0, x1) x [y0, y1) of `target`. The program receives the pixel
  /// coordinates and the bound texture and returns the output color; no
  /// blending is applied (programs write their result directly, as in [40]).
  /// `instructions_per_fragment` is charged to the program-instruction
  /// counter; `fetches_per_fragment` to the texture-fetch counter.
  ///
  /// The callable has signature:
  ///   void program(int x, int y, const Surface& tex, float out[kNumChannels])
  template <typename Program>
  static void RunFragmentProgram(const Surface& tex, int x0, int y0, int x1, int y1,
                                 std::uint64_t instructions_per_fragment,
                                 std::uint64_t fetches_per_fragment, Program&& program,
                                 Surface* target, GpuStats* stats);
};

template <typename Program>
void Rasterizer::RunFragmentProgram(const Surface& tex, int x0, int y0, int x1, int y1,
                                    std::uint64_t instructions_per_fragment,
                                    std::uint64_t fetches_per_fragment, Program&& program,
                                    Surface* target, GpuStats* stats) {
  STREAMGPU_CHECK(x0 >= 0 && y0 >= 0 && x1 <= target->width() && y1 <= target->height());
  float out[kNumChannels];
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      program(x, y, tex, out);
      for (int c = 0; c < kNumChannels; ++c) target->Set(c, x, y, out[c]);
    }
  }
  const std::uint64_t fragments =
      static_cast<std::uint64_t>(x1 - x0) * static_cast<std::uint64_t>(y1 - y0);
  stats->draw_calls += 1;
  stats->fragments_shaded += fragments;
  stats->texture_fetches += fragments * fetches_per_fragment;
  stats->program_fragments += fragments;
  stats->program_instructions += fragments * instructions_per_fragment;
  stats->bytes_vram += fragments * (fetches_per_fragment * BytesPerTexel(tex.format()) +
                                    BytesPerTexel(target->format()));
}

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_RASTERIZER_H_
