// Per-device operation counters.
//
// The simulator executes the paper's render passes bit-exactly; the counters
// below record exactly how much work a real GPU would have performed, and the
// hardware model (src/hwmodel) converts them into simulated NV40
// milliseconds. Keeping counting here (rather than in the timing model) makes
// the counts unit-testable against the paper's analytic claims, e.g. the
// "(n + n log^2(n/4)) comparisons" total of §4.5.
//
// docs/COST_MODEL.md documents every counter, the hwmodel conversion rules,
// and how the counters stay deterministic under pipelined execution (one
// device per sort worker; see docs/ARCHITECTURE.md).

#ifndef STREAMGPU_GPU_STATS_H_
#define STREAMGPU_GPU_STATS_H_

#include <cstdint>

namespace streamgpu::gpu {

/// Cumulative operation counts for one GpuDevice.
struct GpuStats {
  /// Number of DrawQuad / fragment-program dispatches (render passes issue one
  /// or more draws; setup cost is charged per draw).
  std::uint64_t draw_calls = 0;

  /// Fragments rasterized, over all draws.
  std::uint64_t fragments_shaded = 0;

  /// Fragments written with MIN/MAX blending enabled. Each such fragment is
  /// one 4-wide vector comparison (4 scalar comparisons, §4.5).
  std::uint64_t blend_fragments = 0;

  /// Texel fetches performed by the texture units.
  std::uint64_t texture_fetches = 0;

  /// Fragments produced by user fragment programs (subset of
  /// fragments_shaded). The remainder went through the fixed-function
  /// blending path.
  std::uint64_t program_fragments = 0;

  /// Instructions executed by user fragment programs (zero on the
  /// fixed-function blending path; used by the bitonic-sort baseline, which
  /// runs >= 53 instructions per pixel per stage, §4.5).
  std::uint64_t program_instructions = 0;

  /// Bytes moved from host to device over the AGP/PCI bus (texture uploads).
  std::uint64_t bytes_uploaded = 0;

  /// Bytes moved from device to host over the bus (framebuffer readbacks).
  std::uint64_t bytes_readback = 0;

  /// Bytes of video-memory traffic: framebuffer reads/writes, texture
  /// fetches, and framebuffer-to-texture copies.
  std::uint64_t bytes_vram = 0;

  /// Framebuffer-to-texture copy operations (one per sorting-network step).
  std::uint64_t fb_to_texture_copies = 0;

  /// Framebuffer (re)binds — one per sort invocation; carries the fixed
  /// render-target setup cost that §4.5 identifies as the reason small sorts
  /// run ~3x slower on the GPU.
  std::uint64_t framebuffer_binds = 0;

  /// Fragments that went through the depth-test unit (the database-predicate
  /// path of [20], §2.2).
  std::uint64_t depth_test_fragments = 0;

  /// Occlusion-query result readbacks; each stalls the pipeline for a
  /// round-trip.
  std::uint64_t occlusion_queries = 0;

  GpuStats& operator+=(const GpuStats& other) {
    draw_calls += other.draw_calls;
    fragments_shaded += other.fragments_shaded;
    blend_fragments += other.blend_fragments;
    texture_fetches += other.texture_fetches;
    program_fragments += other.program_fragments;
    program_instructions += other.program_instructions;
    bytes_uploaded += other.bytes_uploaded;
    bytes_readback += other.bytes_readback;
    bytes_vram += other.bytes_vram;
    fb_to_texture_copies += other.fb_to_texture_copies;
    framebuffer_binds += other.framebuffer_binds;
    depth_test_fragments += other.depth_test_fragments;
    occlusion_queries += other.occlusion_queries;
    return *this;
  }

  friend GpuStats operator-(GpuStats a, const GpuStats& b) {
    a.draw_calls -= b.draw_calls;
    a.fragments_shaded -= b.fragments_shaded;
    a.blend_fragments -= b.blend_fragments;
    a.texture_fetches -= b.texture_fetches;
    a.program_fragments -= b.program_fragments;
    a.program_instructions -= b.program_instructions;
    a.bytes_uploaded -= b.bytes_uploaded;
    a.bytes_readback -= b.bytes_readback;
    a.bytes_vram -= b.bytes_vram;
    a.fb_to_texture_copies -= b.fb_to_texture_copies;
    a.framebuffer_binds -= b.framebuffer_binds;
    a.depth_test_fragments -= b.depth_test_fragments;
    a.occlusion_queries -= b.occlusion_queries;
    return a;
  }

  /// Scalar comparisons implied by the blended fragments: each blend is a
  /// 4-wide vector MIN/MAX over the RGBA channels (§4.2.2).
  std::uint64_t ScalarComparisons() const { return blend_fragments * 4; }

  friend bool operator==(const GpuStats&, const GpuStats&) = default;
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_STATS_H_
