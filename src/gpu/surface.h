// 2-D RGBA image storage shared by textures and the framebuffer.
//
// Data is stored planar (one array per channel) in row-major texel order.
// Values are always held as float; the kFloat16 format models the paper's
// 16-bit offscreen buffers by (a) quantizing every stored value through IEEE
// binary16 and (b) accounting 2 bytes per stored channel in the bandwidth
// counters.

#ifndef STREAMGPU_GPU_SURFACE_H_
#define STREAMGPU_GPU_SURFACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "gpu/half.h"

namespace streamgpu::gpu {

/// Texel storage precision of a surface.
enum class Format {
  kFloat32,  ///< 32-bit IEEE single precision per channel (16 B/texel RGBA)
  kFloat16,  ///< 16-bit IEEE half precision per channel (8 B/texel RGBA)
};

/// Number of color channels per texel (RGBA).
inline constexpr int kNumChannels = 4;

/// Bytes per channel for a format.
inline constexpr std::size_t BytesPerChannel(Format f) {
  return f == Format::kFloat32 ? 4 : 2;
}

/// Bytes per full RGBA texel for a format.
inline constexpr std::size_t BytesPerTexel(Format f) {
  return BytesPerChannel(f) * kNumChannels;
}

/// A width x height RGBA image. Used both as a texture (sampled by the
/// rasterizer) and as the framebuffer (blend destination).
class Surface {
 public:
  Surface() = default;
  Surface(int width, int height, Format format) { Reset(width, height, format); }

  /// Reallocates to the given size and zero-fills all channels.
  void Reset(int width, int height, Format format) {
    STREAMGPU_CHECK(width > 0 && height > 0);
    width_ = width;
    height_ = height;
    format_ = format;
    for (auto& ch : channels_) ch.assign(static_cast<std::size_t>(width) * height, 0.0f);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  Format format() const { return format_; }
  std::size_t num_texels() const { return static_cast<std::size_t>(width_) * height_; }
  std::size_t SizeBytes() const { return num_texels() * BytesPerTexel(format_); }

  /// Rounds `value` through this surface's storage precision.
  float Quantize(float value) const {
    return format_ == Format::kFloat16 ? QuantizeToHalf(value) : value;
  }

  /// Stores `value` (quantized to the surface format) at channel `c`,
  /// texel (x, y).
  void Set(int c, int x, int y, float value) {
    STREAMGPU_DCHECK(InBounds(c, x, y));
    channels_[c][Index(x, y)] = Quantize(value);
  }

  /// Returns the value at channel `c`, texel (x, y).
  float Get(int c, int x, int y) const {
    STREAMGPU_DCHECK(InBounds(c, x, y));
    return channels_[c][Index(x, y)];
  }

  /// Fills every texel of channel `c` with `value` (quantized).
  void FillChannel(int c, float value) {
    STREAMGPU_CHECK(c >= 0 && c < kNumChannels);
    const float q = Quantize(value);
    for (float& v : channels_[c]) v = q;
  }

  /// Raw row-major storage of channel `c`.
  float* ChannelData(int c) {
    STREAMGPU_DCHECK(c >= 0 && c < kNumChannels);
    return channels_[c].data();
  }
  const float* ChannelData(int c) const {
    STREAMGPU_DCHECK(c >= 0 && c < kNumChannels);
    return channels_[c].data();
  }

  /// Linear index of texel (x, y).
  std::size_t Index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

 private:
  bool InBounds(int c, int x, int y) const {
    return c >= 0 && c < kNumChannels && x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  int width_ = 0;
  int height_ = 0;
  Format format_ = Format::kFloat32;
  std::array<std::vector<float>, kNumChannels> channels_;
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_SURFACE_H_
