// 2-D RGBA image storage shared by textures and the framebuffer.
//
// Storage is texel-interleaved (RGBA RGBA ...), row-major, one contiguous
// block. The blend equations are channel-independent and identical across
// channels, so a comparator pass over a row block is one contiguous (and
// auto-vectorizable) loop over 4*count floats — and, critically, a narrow
// comparator quad touches one cache line per covered row instead of the four
// (one per channel plane) a planar layout costs; the small comparator blocks
// of a PBSN stage are bound by exactly those line transactions. Re-using a
// Surface of the same or smaller size never reallocates — Reset() recycles
// the block's capacity, which is what lets GpuDevice pool texture storage
// across sort windows.
//
// Rows are stored at a stride of width + kRowPadTexels texels. The paper's
// textures are powers of two, so an unpadded narrow comparator pass (a
// vertical walk at a power-of-two byte stride) would land every access on
// the same handful of L1/L2 cache sets and thrash; the pad spreads
// consecutive rows across sets. Padding texels are dead storage: never read,
// never part of num_texels()/SizeBytes() accounting.
//
// Values are always held as float; the kFloat16 format models the paper's
// 16-bit offscreen buffers by (a) quantizing every stored value through IEEE
// binary16 and (b) accounting 2 bytes per stored channel in the bandwidth
// counters. Invariant: a kFloat16 surface only ever holds values that are
// exactly representable in binary16 — every mutation path (Set, FillChannel,
// device uploads, rasterizer writes) quantizes, and callers writing through
// the raw ChannelData() pointer must do the same. The rasterizer's fast
// kernels rely on this invariant to skip redundant re-quantization.

#ifndef STREAMGPU_GPU_SURFACE_H_
#define STREAMGPU_GPU_SURFACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "gpu/half.h"

namespace streamgpu::gpu {

/// Texel storage precision of a surface.
enum class Format {
  kFloat32,  ///< 32-bit IEEE single precision per channel (16 B/texel RGBA)
  kFloat16,  ///< 16-bit IEEE half precision per channel (8 B/texel RGBA)
};

/// Number of color channels per texel (RGBA).
inline constexpr int kNumChannels = 4;

/// Dead texels appended to every stored row (see file comment). 4 texels =
/// 64 bytes = one cache line, so consecutive rows land 1 set apart instead
/// of aliasing onto the same set when the width is a power of two.
inline constexpr int kRowPadTexels = 4;

/// Bytes per channel for a format.
inline constexpr std::size_t BytesPerChannel(Format f) {
  return f == Format::kFloat32 ? 4 : 2;
}

/// Bytes per full RGBA texel for a format.
inline constexpr std::size_t BytesPerTexel(Format f) {
  return BytesPerChannel(f) * kNumChannels;
}

/// A width x height RGBA image. Used both as a texture (sampled by the
/// rasterizer) and as the framebuffer (blend destination).
class Surface {
 public:
  Surface() = default;
  Surface(int width, int height, Format format) { Reset(width, height, format); }

  /// Resizes to the given size and zero-fills all channels. Reuses the
  /// existing allocation whenever its capacity suffices (no per-window heap
  /// traffic when surfaces are pooled across same-sized sorts).
  void Reset(int width, int height, Format format) {
    STREAMGPU_CHECK(width > 0 && height > 0);
    width_ = width;
    height_ = height;
    format_ = format;
    row_stride_ = static_cast<std::size_t>(width) + kRowPadTexels;
    data_.assign(row_stride_ * height * kNumChannels, 0.0f);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  Format format() const { return format_; }
  std::size_t num_texels() const {
    return static_cast<std::size_t>(width_) * height_;
  }
  std::size_t SizeBytes() const { return num_texels() * BytesPerTexel(format_); }

  /// Storage texels between the starts of consecutive rows
  /// (width() + kRowPadTexels). Multiply by kNumChannels for floats.
  std::size_t row_stride() const { return row_stride_; }

  /// Rounds `value` through this surface's storage precision.
  float Quantize(float value) const {
    return format_ == Format::kFloat16 ? QuantizeToHalf(value) : value;
  }

  /// Stores `value` (quantized to the surface format) at channel `c`,
  /// texel (x, y).
  void Set(int c, int x, int y, float value) {
    STREAMGPU_DCHECK(InBounds(c, x, y));
    data_[Index(x, y) * kNumChannels + c] = Quantize(value);
  }

  /// Returns the value at channel `c`, texel (x, y).
  float Get(int c, int x, int y) const {
    STREAMGPU_DCHECK(InBounds(c, x, y));
    return data_[Index(x, y) * kNumChannels + c];
  }

  /// Fills every texel of channel `c` with `value` (quantized). Padding
  /// texels are filled too (keeps the storage uniform; they are never read).
  void FillChannel(int c, float value) {
    STREAMGPU_CHECK(c >= 0 && c < kNumChannels);
    const float q = Quantize(value);
    float* p = data_.data() + c;
    const std::size_t texels = row_stride_ * height_;
    for (std::size_t i = 0; i < texels; ++i) p[i * kNumChannels] = q;
  }

  /// Raw interleaved storage: texel (x, y) occupies the kNumChannels floats
  /// starting at Index(x, y) * kNumChannels. Writers must store
  /// format-quantized values (see the header invariant).
  float* TexelData() { return data_.data(); }
  const float* TexelData() const { return data_.data(); }

  /// Storage texel index of (x, y) (row-padded; see
  /// row_stride()).
  std::size_t Index(int x, int y) const {
    return static_cast<std::size_t>(y) * row_stride_ + x;
  }

 private:
  bool InBounds(int c, int x, int y) const {
    return c >= 0 && c < kNumChannels && x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  int width_ = 0;
  int height_ = 0;
  Format format_ = Format::kFloat32;
  std::size_t row_stride_ = 0;
  std::vector<float> data_;
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_SURFACE_H_
