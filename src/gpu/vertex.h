// Screen-space quad geometry with per-vertex texture coordinates.
//
// All of the paper's render passes draw axis-aligned quadrilaterals whose
// texture coordinates encode the comparator mapping of the current sorting
// network step (§4.2.1). Vertices follow the paper's winding: v[0] and v[2]
// are opposite corners.

#ifndef STREAMGPU_GPU_VERTEX_H_
#define STREAMGPU_GPU_VERTEX_H_

#include <array>

namespace streamgpu::gpu {

/// One quad vertex: screen position (x, y) in pixels and texture coordinate
/// (u, v) in texels.
struct Vertex {
  float x = 0.0f;
  float y = 0.0f;
  float u = 0.0f;
  float v = 0.0f;
};

/// An axis-aligned quad, specified by four vertices in the order used
/// throughout the paper's routines: (x0,y0), (x1,y0), (x1,y1), (x0,y1).
struct Quad {
  std::array<Vertex, 4> vertices;

  /// Convenience constructor mirroring the paper's DrawQuad(v, t) calls:
  /// screen rectangle [x0,x1) x [y0,y1) with texture coordinates given per
  /// corner in the same order.
  static Quad Make(float x0, float y0, float x1, float y1,  //
                   float u0, float v0, float u1, float v1,  //
                   float u2, float v2, float u3, float v3) {
    Quad q;
    q.vertices[0] = {x0, y0, u0, v0};
    q.vertices[1] = {x1, y0, u1, v1};
    q.vertices[2] = {x1, y1, u2, v2};
    q.vertices[3] = {x0, y1, u3, v3};
    return q;
  }

  /// A quad whose texture coordinates equal its screen coordinates
  /// (Routine 4.1 `Copy`).
  static Quad Identity(float x0, float y0, float x1, float y1) {
    return Make(x0, y0, x1, y1, x0, y0, x1, y0, x1, y1, x0, y1);
  }
};

}  // namespace streamgpu::gpu

#endif  // STREAMGPU_GPU_VERTEX_H_
