#include "gpudb/gpu_relation.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "sort/pbsn_network.h"

namespace streamgpu::gpudb {

namespace {

// Padding texels beyond the column use +inf; CountLoaded() corrects for
// them via the tracked sentinel value.
constexpr float kPad = std::numeric_limits<float>::infinity();

void TextureDims(std::int64_t padded, int* width, int* height) {
  const int levels = sort::CeilLog2(static_cast<std::uint64_t>(padded));
  *width = 1 << ((levels + 1) / 2);
  *height = 1 << (levels / 2);
}

// The incoming fragment carries the query constant and the depth buffer the
// attribute, so the attribute-side predicate flips: a < c passes when the
// incoming c is GREATER than the stored a.
gpu::DepthFunc ToDepthFunc(Predicate pred) {
  switch (pred) {
    case Predicate::kLess:
      return gpu::DepthFunc::kGreater;
    case Predicate::kLessEqual:
      return gpu::DepthFunc::kGreaterEqual;
    case Predicate::kGreater:
      return gpu::DepthFunc::kLess;
    case Predicate::kGreaterEqual:
      return gpu::DepthFunc::kLessEqual;
    case Predicate::kEqual:
      return gpu::DepthFunc::kEqual;
    case Predicate::kNotEqual:
      return gpu::DepthFunc::kNotEqual;
  }
  return gpu::DepthFunc::kNever;
}

// Order-preserving mapping between floats and unsigned keys (sign-magnitude
// flip), for the binary search of KthLargest.
std::uint32_t OrderedKey(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

float FromOrderedKey(std::uint32_t key) {
  const std::uint32_t bits = (key & 0x80000000u) != 0 ? key & 0x7FFFFFFFu : ~key;
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

GpuRelation::GpuRelation(gpu::GpuDevice* device,
                         const hwmodel::GpuHardwareProfile& profile,
                         std::vector<std::span<const float>> columns)
    : device_(device), model_(profile) {
  STREAMGPU_CHECK(device != nullptr);
  STREAMGPU_CHECK_MSG(!columns.empty(), "GpuRelation requires at least one column");
  count_ = columns.front().size();
  STREAMGPU_CHECK_MSG(count_ > 0, "GpuRelation requires non-empty columns");
  for (const auto& column : columns) {
    STREAMGPU_CHECK_MSG(column.size() == count_, "columns must have equal length");
  }
  start_stats_ = device_->stats();

  const auto padded = static_cast<std::int64_t>(
      sort::NextPowerOfTwo(static_cast<std::uint64_t>(count_)));
  TextureDims(padded, &width_, &height_);
  padding_ = static_cast<std::uint64_t>(padded) - count_;

  std::vector<float> staging(static_cast<std::size_t>(padded));
  for (const auto& column : columns) {
    const auto tex = device_->CreateTexture(width_, height_, gpu::Format::kFloat32);
    std::copy(column.begin(), column.end(), staging.begin());
    std::fill(staging.begin() + static_cast<std::ptrdiff_t>(count_), staging.end(),
              kPad);
    device_->UploadChannel(tex, 0, staging);
    textures_.push_back(tex);
  }
  device_->BindDepthBuffer(width_, height_);
  LoadColumn(0);
}

void GpuRelation::LoadColumn(std::size_t attribute) {
  STREAMGPU_CHECK(attribute < textures_.size());
  if (loaded_attribute_ == static_cast<std::ptrdiff_t>(attribute)) return;
  device_->LoadDepthFromTexture(textures_[attribute], 0);
  loaded_attribute_ = static_cast<std::ptrdiff_t>(attribute);
  sentinel_ = kPad;
}

void GpuRelation::LoadLinear(std::span<const float> coeffs) {
  STREAMGPU_CHECK_MSG(coeffs.size() == textures_.size(),
                      "one coefficient per column required");
  // Pass 1: a fragment program evaluates the linear combination into the
  // framebuffer (one MAD and one fetch per column per fragment).
  device_->BindFramebuffer(width_, height_, gpu::Format::kFloat32);
  gpu::GpuDevice& dev = *device_;
  const auto& textures = textures_;
  device_->RunFragmentProgram(
      textures_[0], 0, 0, width_, height_,
      /*instructions_per_fragment=*/2 * static_cast<std::uint64_t>(coeffs.size()),
      /*fetches_per_fragment=*/coeffs.size(),
      [&dev, &textures, coeffs](int x, int y, const gpu::Surface&,
                                float out[gpu::kNumChannels]) {
        float acc = 0;
        for (std::size_t c = 0; c < coeffs.size(); ++c) {
          acc += coeffs[c] * dev.Texture(textures[c]).Get(0, x, y);
        }
        for (int ch = 0; ch < gpu::kNumChannels; ++ch) out[ch] = acc;
      });
  // Pass 2: depth-replace the computed attribute into the depth buffer.
  device_->LoadDepthFromFramebuffer(0);
  loaded_attribute_ = -1;
  // The padding texels hold +inf in every column, so their combination is
  // sum(coeff_i) * inf — +/-inf or NaN for mixed signs; either way the
  // sentinel correction below handles it.
  float sentinel = 0;
  for (float c : coeffs) sentinel += c * kPad;
  sentinel_ = sentinel;
}

std::uint64_t GpuRelation::CountLoaded(Predicate pred, float constant) {
  // Counting passes leave depth writes off, so the loaded attribute survives
  // arbitrarily many queries.
  device_->SetDepthTest(ToDepthFunc(pred), /*write_depth=*/false);
  device_->BeginOcclusionQuery();
  device_->DrawDepthOnlyQuad(0, 0, static_cast<float>(width_),
                             static_cast<float>(height_), constant);
  std::uint64_t passed = device_->EndOcclusionQuery();
  if (gpu::DepthTestPasses(ToDepthFunc(pred), constant, sentinel_)) {
    STREAMGPU_DCHECK(passed >= padding_);
    passed -= padding_;
  }
  return passed;
}

std::uint64_t GpuRelation::Count(Predicate pred, float constant, std::size_t attribute) {
  LoadColumn(attribute);
  return CountLoaded(pred, constant);
}

std::uint64_t GpuRelation::CountRange(float lo, float hi, std::size_t attribute) {
  STREAMGPU_CHECK(lo <= hi);
  const std::uint64_t at_most_hi = Count(Predicate::kLessEqual, hi, attribute);
  const std::uint64_t below_lo = Count(Predicate::kLess, lo, attribute);
  return at_most_hi - below_lo;
}

std::uint64_t GpuRelation::CountLinear(std::span<const float> coeffs, Predicate pred,
                                       float constant) {
  LoadLinear(coeffs);
  return CountLoaded(pred, constant);
}

std::uint64_t GpuRelation::CountConjunction(std::span<const Clause> clauses) {
  STREAMGPU_CHECK(!clauses.empty());
  device_->BindStencilBuffer(width_, height_, 0);

  // Mark passes: after pass i, records satisfying the first i+1 clauses
  // hold stencil value i+1. Padding texels can pass individual clauses, so
  // they are tracked alongside and corrected at the end.
  bool padding_satisfies_all = true;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    const Clause& clause = clauses[i];
    LoadColumn(clause.attribute);
    device_->SetDepthTest(ToDepthFunc(clause.pred), /*write_depth=*/false);
    device_->SetStencilTest(true, gpu::GpuDevice::StencilFunc::kEqual,
                            static_cast<std::uint8_t>(i),
                            gpu::GpuDevice::StencilOp::kIncrement);
    device_->DrawDepthOnlyQuad(0, 0, static_cast<float>(width_),
                               static_cast<float>(height_), clause.constant);
    padding_satisfies_all =
        padding_satisfies_all &&
        gpu::DepthTestPasses(ToDepthFunc(clause.pred), clause.constant, sentinel_);
  }

  // Final counted pass: stencil == #clauses, depth test ALWAYS.
  device_->SetDepthTest(gpu::DepthFunc::kAlways, /*write_depth=*/false);
  device_->SetStencilTest(true, gpu::GpuDevice::StencilFunc::kEqual,
                          static_cast<std::uint8_t>(clauses.size()),
                          gpu::GpuDevice::StencilOp::kKeep);
  device_->BeginOcclusionQuery();
  device_->DrawDepthOnlyQuad(0, 0, static_cast<float>(width_),
                             static_cast<float>(height_), 0.0f);
  std::uint64_t passed = device_->EndOcclusionQuery();
  device_->SetStencilTest(false);

  if (padding_satisfies_all) {
    STREAMGPU_DCHECK(passed >= padding_);
    passed -= padding_;
  }
  return passed;
}

std::uint64_t GpuRelation::CountDisjunction(const Clause& a, const Clause& b) {
  const std::uint64_t count_a = Count(a.pred, a.constant, a.attribute);
  const std::uint64_t count_b = Count(b.pred, b.constant, b.attribute);
  const Clause both[] = {a, b};
  return count_a + count_b - CountConjunction(both);
}

float GpuRelation::KthLargest(std::uint64_t k, std::size_t attribute) {
  STREAMGPU_CHECK(k >= 1 && k <= count_);
  LoadColumn(attribute);
  // g(v) = COUNT(a > v) is nonincreasing; the k-th largest is the smallest
  // v with g(v) <= k - 1. Binary search over the ordered float keys, one
  // occlusion-counted pass per step ([20]).
  std::uint32_t lo = OrderedKey(-std::numeric_limits<float>::infinity());
  std::uint32_t hi = OrderedKey(std::numeric_limits<float>::infinity());
  while (lo + 1 < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (CountLoaded(Predicate::kGreater, FromOrderedKey(mid)) <= k - 1) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return FromOrderedKey(hi);
}

hwmodel::GpuTimeBreakdown GpuRelation::SimulatedCosts() const {
  return model_.Simulate(device_->stats() - start_stats_);
}

}  // namespace streamgpu::gpudb
