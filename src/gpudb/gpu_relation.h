// GPU database operations via the depth-test path — the companion machinery
// of §2.2 ([20], Govindaraju et al., "predicates, boolean combinations and
// aggregates on commodity GPUs ... multi-attribute comparisons, semi-linear
// queries, range queries and kth largest numbers"), which this paper's
// stream-mining layer builds upon. Used here for selection-style queries
// over resident columns: COUNT with comparison, range, and semi-linear
// predicates, and k-th largest selection by binary search over
// occlusion-query counts.

#ifndef STREAMGPU_GPUDB_GPU_RELATION_H_
#define STREAMGPU_GPUDB_GPU_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.h"
#include "hwmodel/gpu_model.h"

namespace streamgpu::gpudb {

/// Comparison predicates over an attribute (or computed attribute).
enum class Predicate {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqual,
  kNotEqual,
};

/// One or more float columns resident in GPU memory as textures, queried
/// through depth tests and occlusion queries.
class GpuRelation {
 public:
  /// Uploads the columns to the device (one texture and one bus transfer
  /// each); all columns must have the same length. The device is borrowed
  /// and must outlive the relation.
  GpuRelation(gpu::GpuDevice* device, const hwmodel::GpuHardwareProfile& profile,
              std::vector<std::span<const float>> columns);

  /// Single-column convenience constructor.
  GpuRelation(gpu::GpuDevice* device, const hwmodel::GpuHardwareProfile& profile,
              std::span<const float> column)
      : GpuRelation(device, profile,
                    std::vector<std::span<const float>>{column}) {}

  /// Number of records.
  std::uint64_t size() const { return count_; }

  /// Number of columns.
  std::size_t num_columns() const { return textures_.size(); }

  /// COUNT(*) WHERE column[attribute] <pred> constant — one depth-only pass
  /// with an occlusion query (plus a depth load on attribute switches).
  std::uint64_t Count(Predicate pred, float constant, std::size_t attribute = 0);

  /// COUNT(*) WHERE lo <= column[attribute] <= hi — two passes.
  std::uint64_t CountRange(float lo, float hi, std::size_t attribute = 0);

  /// COUNT(*) WHERE sum_i coeffs[i] * column[i] <pred> constant — the
  /// semi-linear predicate of [20]: a fragment program evaluates the linear
  /// combination, a depth-replace pass moves it into the depth buffer, and
  /// the count proceeds as usual. coeffs.size() must equal num_columns().
  std::uint64_t CountLinear(std::span<const float> coeffs, Predicate pred,
                            float constant);

  /// One atomic comparison in a boolean combination.
  struct Clause {
    std::size_t attribute = 0;
    Predicate pred = Predicate::kLess;
    float constant = 0;
  };

  /// COUNT(*) WHERE clause_0 AND clause_1 AND ... — [20]'s boolean
  /// combinations via the stencil buffer: pass i increments the stencil of
  /// records whose stencil equals i and whose attribute passes clause i, so
  /// after all passes the stencil counts satisfied clauses; a final counted
  /// pass selects stencil == #clauses.
  std::uint64_t CountConjunction(std::span<const Clause> clauses);

  /// COUNT(*) WHERE a OR b, by inclusion-exclusion over CountConjunction.
  std::uint64_t CountDisjunction(const Clause& a, const Clause& b);

  /// The k-th largest value of column[attribute] (k in [1, size()]), by
  /// binary search over the value's float bits with one occlusion-counted
  /// pass per step — the [20] selection algorithm.
  float KthLargest(std::uint64_t k, std::size_t attribute = 0);

  /// Simulated device time spent on uploads and queries since construction.
  hwmodel::GpuTimeBreakdown SimulatedCosts() const;

 private:
  /// Ensures the depth buffer holds `attribute`'s values.
  void LoadColumn(std::size_t attribute);

  /// Ensures the depth buffer holds the linear combination.
  void LoadLinear(std::span<const float> coeffs);

  /// One occlusion-counted depth-only pass against the currently loaded
  /// depth contents, with padding correction via the tracked sentinel.
  std::uint64_t CountLoaded(Predicate pred, float constant);

  gpu::GpuDevice* device_;
  hwmodel::GpuModel model_;
  std::vector<gpu::TextureHandle> textures_;
  int width_ = 0;
  int height_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t padding_ = 0;

  /// Which attribute the depth buffer currently holds (-1: none/linear).
  std::ptrdiff_t loaded_attribute_ = -1;

  /// The value padding texels carry under the current depth contents.
  float sentinel_ = 0;

  gpu::GpuStats start_stats_;
};

}  // namespace streamgpu::gpudb

#endif  // STREAMGPU_GPUDB_GPU_RELATION_H_
