#include "hwmodel/calibration.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "common/timer.h"

namespace streamgpu::hwmodel {

double MeasureMemcpyNsPerByte(std::size_t bytes, int samples) {
  std::vector<char> src(bytes, 1);
  std::vector<char> dst(bytes, 0);
  std::vector<double> ns_per_byte;
  ns_per_byte.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    Timer timer;
    std::memcpy(dst.data(), src.data(), bytes);
    const double ns = timer.ElapsedSeconds() * 1e9;
    ns_per_byte.push_back(ns / static_cast<double>(bytes));
    // Keep the optimizer from eliding the copy.
    src[static_cast<std::size_t>(s) % bytes] =
        static_cast<char>(dst[bytes / 2] + 1);
  }
  std::sort(ns_per_byte.begin(), ns_per_byte.end());
  return ns_per_byte[ns_per_byte.size() / 2];
}

double CachedMemcpyNsPerByte() {
  static std::once_flag once;
  static double cached = kDefaultMemcpyNsPerByte;
  std::call_once(once, [] {
    const double pinned = GetEnvDouble("STREAMGPU_MEMCPY_NS_PER_BYTE", 0.0);
    cached = pinned > 0.0 ? pinned : MeasureMemcpyNsPerByte();
  });
  return cached;
}

}  // namespace streamgpu::hwmodel
