// Live host calibration for the sort planner.
//
// The planner's host-throughput formulas are expressed in rel_memcpy units —
// nanoseconds normalized by the machine's large-block memcpy speed — the same
// normalization the benchmark regression gate uses (BENCH_sort.json,
// tools/check_bench_regression.py). One probe of the actual machine turns
// those machine-independent ratios back into predicted nanoseconds.
//
// Determinism note: the probe measures the real host, so its value — and any
// planner decision derived from it — is machine-dependent. Everything
// downstream of the *choice* stays deterministic (every backend produces the
// identical sorted output), and the probe is taken once per process so all
// pipeline workers plan against the same number. Tests and reproducible runs
// pin the value via Options/STREAMGPU_MEMCPY_NS_PER_BYTE instead of probing.
//
// Thread safety: both functions are safe to call concurrently;
// CachedMemcpyNsPerByte memoizes under std::call_once.

#ifndef STREAMGPU_HWMODEL_CALIBRATION_H_
#define STREAMGPU_HWMODEL_CALIBRATION_H_

#include <cstddef>

namespace streamgpu::hwmodel {

/// Fallback when probing is disabled and no override is given: the blessed
/// baseline machine's measured large-memcpy speed (BENCH_sort.json).
inline constexpr double kDefaultMemcpyNsPerByte = 0.078;

/// Measures streaming-copy speed: median of `samples` timed memcpys of
/// `bytes` (default 16 MB, far beyond any cache). Returns ns per byte.
double MeasureMemcpyNsPerByte(std::size_t bytes = std::size_t{16} << 20,
                              int samples = 5);

/// Process-wide memoized probe. Honors the STREAMGPU_MEMCPY_NS_PER_BYTE
/// environment variable (parsed once; > 0 skips measurement entirely), so CI
/// and tests can pin planner inputs.
double CachedMemcpyNsPerByte();

}  // namespace streamgpu::hwmodel

#endif  // STREAMGPU_HWMODEL_CALIBRATION_H_
