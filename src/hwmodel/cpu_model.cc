#include "hwmodel/cpu_model.h"

#include <algorithm>
#include <cmath>

namespace streamgpu::hwmodel {

double CpuModel::QuicksortCacheMisses(std::uint64_t n, std::size_t element_bytes) const {
  const double bytes = static_cast<double>(n) * static_cast<double>(element_bytes);
  const double lines = bytes / profile_.cache_line_bytes;
  if (bytes <= static_cast<double>(profile_.l2_bytes)) {
    // "quicksort incurs one cache miss per block when the input sequence
    // fits within the cache" (§3.2): compulsory misses only.
    return lines;
  }
  // Each partitioning level whose subproblems exceed L2 streams the whole
  // array through memory once (reads + writes of moved elements; the factor
  // 2 covers the write-back traffic).
  const double levels_above_cache =
      std::log2(bytes / static_cast<double>(profile_.l2_bytes));
  return lines * (1.0 + 2.0 * std::max(0.0, levels_above_cache));
}

double CpuModel::ComparisonSortSeconds(std::uint64_t comparisons, std::uint64_t n,
                                       std::size_t element_bytes) const {
  const double cmp = static_cast<double>(comparisons);
  const double instr_cycles = cmp * profile_.base_cycles_per_comparison;
  const double branch_cycles = cmp * profile_.sort_branch_mispredict_rate *
                               profile_.branch_mispredict_penalty_cycles;
  const double miss_cycles =
      QuicksortCacheMisses(n, element_bytes) * profile_.l2_miss_penalty_cycles;
  return (instr_cycles + branch_cycles + miss_cycles) / profile_.clock_hz;
}

double CpuModel::QuicksortSeconds(std::uint64_t n, std::size_t element_bytes) const {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const auto comparisons = static_cast<std::uint64_t>(1.39 * dn * std::log2(dn));
  return ComparisonSortSeconds(comparisons, n, element_bytes);
}

double CpuModel::LinearPassSeconds(std::uint64_t n, std::size_t element_bytes,
                                   double cycles_per_element) const {
  const double dn = static_cast<double>(n);
  const double bytes = dn * static_cast<double>(element_bytes);
  const double instr_cycles = dn * cycles_per_element;
  // Streaming reads: one compulsory miss per line when the data exceeds L2.
  const double miss_cycles = bytes > static_cast<double>(profile_.l2_bytes)
                                 ? bytes / profile_.cache_line_bytes *
                                       profile_.l2_miss_penalty_cycles
                                 : 0.0;
  return (instr_cycles + miss_cycles) / profile_.clock_hz;
}

double CpuModel::RadixSortSeconds(std::uint64_t n, std::size_t element_bytes) const {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double bytes = dn * static_cast<double>(element_bytes);
  const double lines = bytes / profile_.cache_line_bytes;
  // 2 transform + 1 histogram + 4 counting-scatter passes at ~4 ALU cycles
  // per element each; the loops are branch-predictable, so no mispredict
  // charge (that is the backend's reason to exist on the P4).
  const double instr_cycles = dn * 4.0 * 7.0;
  // Compulsory misses once; when the working set exceeds L2 the histogram
  // pass re-streams its read and each scatter pass re-streams both its read
  // plane and its scattered write plane.
  double miss_lines = lines;
  if (bytes > static_cast<double>(profile_.l2_bytes)) {
    miss_lines += (1.0 + 4.0 * 2.0) * lines;
  }
  return (instr_cycles + miss_lines * profile_.l2_miss_penalty_cycles) /
         profile_.clock_hz;
}

double CpuModel::SampleSortSeconds(std::uint64_t n, int buckets,
                                   std::size_t element_bytes) const {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double bytes = dn * static_cast<double>(element_bytes);
  const double lines = bytes / profile_.cache_line_bytes;
  const double depth = std::max(1.0, std::log2(static_cast<double>(buckets)));
  // Classification: a binary search over the splitters — log2(buckets)
  // comparisons per element, each mispredicting at the sort rate (splitter
  // outcomes are data-dependent coin flips).
  const double classify_cycles =
      dn * depth *
      (profile_.base_cycles_per_comparison +
       profile_.sort_branch_mispredict_rate *
           profile_.branch_mispredict_penalty_cycles);
  // Scatter: one streamed read plus one write into `buckets` destination
  // streams; above L2 both planes miss per line.
  const double scatter_cycles =
      dn * 4.0 + (bytes > static_cast<double>(profile_.l2_bytes)
                      ? 2.0 * lines * profile_.l2_miss_penalty_cycles
                      : 0.0);
  // Bucket sorts: radix passes over cache-resident buckets — ALU cost of
  // the seven radix passes plus compulsory misses only.
  const double bucket_cycles =
      dn * 4.0 * 7.0 + lines * profile_.l2_miss_penalty_cycles;
  return (classify_cycles + scatter_cycles + bucket_cycles) / profile_.clock_hz;
}

double CpuModel::MergeSeconds(std::uint64_t n, int ways, std::size_t element_bytes) const {
  const double cmp_per_element = std::max(1.0, std::log2(static_cast<double>(ways)));
  const double cycles =
      cmp_per_element * (profile_.base_cycles_per_comparison +
                         profile_.sort_branch_mispredict_rate *
                             profile_.branch_mispredict_penalty_cycles);
  return LinearPassSeconds(n, element_bytes, cycles);
}

}  // namespace streamgpu::hwmodel
