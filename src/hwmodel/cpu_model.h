// Converts instrumented CPU-algorithm work counts into simulated Pentium IV
// wall-clock.
//
// §3.2 identifies the two costs that govern CPU sorting: cache misses
// (LaMarca & Ladner's analysis of quicksort [30]) and branch mispredictions
// (17+ cycle penalty on the P4 [45]). The model charges a base instruction
// cost per comparison, a mispredict penalty on a fraction of comparisons, and
// an analytic quicksort cache-miss count.

#ifndef STREAMGPU_HWMODEL_CPU_MODEL_H_
#define STREAMGPU_HWMODEL_CPU_MODEL_H_

#include <cstdint>

#include "hwmodel/hardware_profiles.h"

namespace streamgpu::hwmodel {

/// Analytic P4-class timing model for comparison sorts and linear passes.
class CpuModel {
 public:
  explicit CpuModel(const CpuHardwareProfile& profile) : profile_(profile) {}

  /// Simulated seconds for a comparison sort that performed `comparisons`
  /// comparisons over `n` elements of `element_bytes` each, with
  /// quicksort-like (divide-and-conquer, sequential-partition) access
  /// patterns.
  double ComparisonSortSeconds(std::uint64_t comparisons, std::uint64_t n,
                               std::size_t element_bytes) const;

  /// Analytic quicksort estimate when no instrumented comparison count is
  /// available: ~1.39 n log2 n expected comparisons for random input.
  double QuicksortSeconds(std::uint64_t n, std::size_t element_bytes) const;

  /// LaMarca-Ladner-style quicksort cache-miss estimate: one compulsory miss
  /// per line while a partition fits in cache, plus a full re-read of the
  /// data on every partitioning level above cache capacity (§3.2, [30]).
  double QuicksortCacheMisses(std::uint64_t n, std::size_t element_bytes) const;

  /// Simulated seconds for a sequential pass over `n` elements of
  /// `element_bytes` each, spending `cycles_per_element` non-memory cycles
  /// per element (merges, histogram scans, summary compress passes).
  double LinearPassSeconds(std::uint64_t n, std::size_t element_bytes,
                           double cycles_per_element) const;

  /// Simulated seconds for a k-way merge of `n` total elements: log2(k)
  /// comparisons per element plus streaming memory traffic.
  double MergeSeconds(std::uint64_t n, int ways, std::size_t element_bytes) const;

  /// Simulated seconds for a byte-wise LSD radix sort of `n` elements: two
  /// key-transform passes, one combined histogram pass, and four
  /// counting-scatter passes. No data-dependent branches (radix sorts trade
  /// the P4's mispredict stalls for extra memory traffic); above L2 each
  /// scatter pass re-streams its read and write planes.
  double RadixSortSeconds(std::uint64_t n, std::size_t element_bytes) const;

  /// Simulated seconds for a splitter-based sample sort of `n` elements into
  /// `buckets` cache-resident buckets: a classification pass of
  /// log2(buckets) mispredicting comparisons per element, one scatter pass,
  /// then in-cache radix sorts of the buckets (charged compulsory misses
  /// only, which is the point of the bucketing).
  double SampleSortSeconds(std::uint64_t n, int buckets,
                           std::size_t element_bytes) const;

  const CpuHardwareProfile& profile() const { return profile_; }

 private:
  CpuHardwareProfile profile_;
};

}  // namespace streamgpu::hwmodel

#endif  // STREAMGPU_HWMODEL_CPU_MODEL_H_
