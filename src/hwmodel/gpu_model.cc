#include "hwmodel/gpu_model.h"

namespace streamgpu::hwmodel {

GpuTimeBreakdown GpuModel::Simulate(const gpu::GpuStats& stats) const {
  GpuTimeBreakdown out;

  // Fixed-function color fragments ride the blending path; program fragments
  // are charged per instruction (>= 53 per pixel for the bitonic baseline,
  // each taking at least one cycle, §4.5); depth-only fragments cost a
  // couple of ROP cycles. All pipes run in parallel.
  const double color_fragments = static_cast<double>(
      stats.fragments_shaded - stats.program_fragments - stats.depth_test_fragments);
  const double pipe_cycles =
      color_fragments * profile_.blend_cycles_per_fragment +
      static_cast<double>(stats.depth_test_fragments) * profile_.depth_cycles_per_fragment +
      static_cast<double>(stats.program_instructions) * profile_.cycles_per_program_instruction;
  out.compute_s = pipe_cycles / profile_.fragment_pipes / profile_.core_clock_hz;

  out.memory_s = static_cast<double>(stats.bytes_vram) / profile_.memory_bandwidth_bps;

  out.setup_s = static_cast<double>(stats.draw_calls) * profile_.per_draw_overhead_s +
                static_cast<double>(stats.fb_to_texture_copies) * profile_.per_pass_overhead_s +
                static_cast<double>(stats.framebuffer_binds) * profile_.per_bind_overhead_s +
                static_cast<double>(stats.occlusion_queries) * profile_.per_occlusion_query_s;

  out.transfer_s = static_cast<double>(stats.bytes_uploaded + stats.bytes_readback) /
                   profile_.bus_bandwidth_bps;

  return out;
}

}  // namespace streamgpu::hwmodel
