// Converts simulator operation counts into simulated GPU wall-clock.
//
// The model mirrors §3.3's throughput discussion: compute time is bounded by
// the fragment pipes (blend_cycles per fragment, §4.5's measured 6-7 cycles),
// memory time by video-memory bandwidth, and the two overlap (the memory
// clock is provisioned so neither starves, so total pass time is their max).
// Host transfers ride the AGP bus and do not overlap in the paper's
// implementation (upload -> sort -> readback, §4.1).

#ifndef STREAMGPU_HWMODEL_GPU_MODEL_H_
#define STREAMGPU_HWMODEL_GPU_MODEL_H_

#include "gpu/stats.h"
#include "hwmodel/hardware_profiles.h"

namespace streamgpu::hwmodel {

/// Simulated time breakdown for a batch of GPU work.
struct GpuTimeBreakdown {
  double compute_s = 0;   ///< fragment-pipe time
  double memory_s = 0;    ///< video-memory traffic time
  double setup_s = 0;     ///< per-draw / per-pass fixed overhead
  double transfer_s = 0;  ///< host<->device bus time

  /// On-device time (Fig. 4's "sorting" portion): compute and memory
  /// overlap; setup does not.
  double DeviceSeconds() const {
    return (compute_s > memory_s ? compute_s : memory_s) + setup_s;
  }

  /// End-to-end time including bus transfers (what Figs. 3, 5, 7 report for
  /// the GPU: "timings ... also include the time to transfer and readback").
  double TotalSeconds() const { return DeviceSeconds() + transfer_s; }
};

/// Analytic NV40-class timing model over GpuStats counters.
class GpuModel {
 public:
  explicit GpuModel(const GpuHardwareProfile& profile) : profile_(profile) {}

  /// Simulated time for the operations recorded in `stats`.
  GpuTimeBreakdown Simulate(const gpu::GpuStats& stats) const;

  const GpuHardwareProfile& profile() const { return profile_; }

 private:
  GpuHardwareProfile profile_;
};

}  // namespace streamgpu::hwmodel

#endif  // STREAMGPU_HWMODEL_GPU_MODEL_H_
