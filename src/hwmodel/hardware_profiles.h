// Parameter sets describing the paper's 2005 evaluation hardware.
//
// The simulator executes the algorithms bit-exactly and counts operations;
// these profiles convert operation counts into simulated wall-clock on the
// paper's testbed — an NVIDIA GeForce FX 6800 Ultra GPU and a 3.4 GHz Intel
// Pentium IV CPU (§1.2, §3.3, §4.5). Every constant below is either quoted
// from the paper or calibrated once against a figure and documented as such.

#ifndef STREAMGPU_HWMODEL_HARDWARE_PROFILES_H_
#define STREAMGPU_HWMODEL_HARDWARE_PROFILES_H_

#include <cstdint>

namespace streamgpu::hwmodel {

/// Throughput-relevant parameters of a rasterization GPU.
struct GpuHardwareProfile {
  const char* name = "unnamed";

  /// Computational (core) clock, Hz.
  double core_clock_hz = 0;

  /// Number of parallel fragment processors.
  int fragment_pipes = 0;

  /// Vector width of each fragment processor (RGBA = 4).
  int vector_width = 4;

  /// Core cycles one fragment pipe spends per fixed-function blended
  /// fragment (fetch + compare + write). The paper measures 6-7 (§4.5).
  double blend_cycles_per_fragment = 6.5;

  /// Core cycles per fragment-program instruction per pipe (>= 1, §4.5).
  double cycles_per_program_instruction = 1.0;

  /// Core cycles per depth-only fragment (ROP depth test, no color work).
  double depth_cycles_per_fragment = 2.0;

  /// Peak video memory bandwidth, bytes/second.
  double memory_bandwidth_bps = 0;

  /// Effective host<->device bus bandwidth, bytes/second. Theoretical AGP 8X
  /// peak is ~2.1 GB/s; the paper observes ~800 MB/s in practice (§4.1).
  double bus_bandwidth_bps = 0;

  /// Driver/command-processing cost per draw call.
  double per_draw_overhead_s = 0;

  /// Fixed cost per framebuffer-to-texture copy pass.
  double per_pass_overhead_s = 0;

  /// Fixed render-target/context setup cost per framebuffer bind (one per
  /// sort). Calibrated so small sorts (n < 16K) run ~3x slower than the
  /// modeled CPU quicksort, matching §4.5's observation.
  double per_bind_overhead_s = 0;

  /// Pipeline-stall latency of one occlusion-query result readback (the
  /// predicate/selection path of [20], §2.2).
  double per_occlusion_query_s = 0;
};

/// NVIDIA GeForce FX 6800 Ultra (NV40), per §1.1/§3.3: 16 fragment pipes with
/// 4-wide vector units, 400 MHz core, 35.2 GB/s video memory, 45 GFLOPS peak.
inline constexpr GpuHardwareProfile kGeForce6800Ultra{
    .name = "NVIDIA GeForce FX 6800 Ultra (simulated)",
    .core_clock_hz = 400e6,
    .fragment_pipes = 16,
    .vector_width = 4,
    .blend_cycles_per_fragment = 6.5,
    .cycles_per_program_instruction = 1.0,
    .memory_bandwidth_bps = 35.2e9,
    .bus_bandwidth_bps = 800e6,
    .per_draw_overhead_s = 0.2e-6,
    .per_pass_overhead_s = 3.0e-6,
    .per_bind_overhead_s = 1.0e-3,
    .per_occlusion_query_s = 1.0e-4,
};

/// Latency/throughput-relevant parameters of a scalar CPU.
struct CpuHardwareProfile {
  const char* name = "unnamed";

  /// Core clock, Hz.
  double clock_hz = 0;

  /// L1 data cache and L2 cache capacities, bytes (§3.2: 16 KB L1 data /
  /// 1 MB L2 on the 3.4 GHz Pentium IV; the paper's text lists "L1 cache of
  /// size 16KB" for data).
  std::uint64_t l1_bytes = 0;
  std::uint64_t l2_bytes = 0;

  /// Cache line size, bytes.
  int cache_line_bytes = 64;

  /// Main-memory access penalty on an L2 miss, core cycles (§3.2: "in the
  /// order of ... 100 clock cycles"; ~200 on a 3.4 GHz P4 in wall terms).
  double l2_miss_penalty_cycles = 200;

  /// Branch mispredict penalty, core cycles (§3.2: minimum 17 on P4).
  double branch_mispredict_penalty_cycles = 17;

  /// Fraction of sort comparisons whose branch mispredicts. Quicksort's
  /// partition branches are essentially coin flips on random data
  /// (~35% taken-rate surprise), and §3.2/[45] singles the resulting stalls
  /// out as a principal cost.
  double sort_branch_mispredict_rate = 0.35;

  /// Non-branch, non-memory instruction cost per sort comparison (float
  /// compare, swap bookkeeping, loop overhead — the P4's comiss+branch
  /// sequences are long; the P4's IPC on branchy float code is well below
  /// 1). Calibrated so 8M random floats sort in ~1.6 s,
  /// the paper's Fig. 3 ballpark for the Intel-compiler quicksort, which
  /// also reproduces Fig. 3's small-n behavior (GPU ~3x slower below 16K)
  /// and Fig. 5's large-window GPU advantage.
  double base_cycles_per_comparison = 13.0;
};

/// 3.4 GHz Intel Pentium IV (Prescott-class) per §3.2/§3.3, running the
/// Intel compiler's optimized (hyper-threaded) quicksort of Fig. 3.
inline constexpr CpuHardwareProfile kPentium4_3400{
    .name = "Intel Pentium IV 3.4 GHz (simulated)",
    .clock_hz = 3.4e9,
    .l1_bytes = 16 * 1024,
    .l2_bytes = 1024 * 1024,
    .cache_line_bytes = 64,
    .l2_miss_penalty_cycles = 200,
    .branch_mispredict_penalty_cycles = 17,
    .sort_branch_mispredict_rate = 0.35,
    .base_cycles_per_comparison = 13.0,
};

/// The same Pentium IV running the MSVC stdlib qsort() of Fig. 3, whose
/// function-pointer comparator and byte-wise swaps cost substantially more
/// instructions per comparison (calibrated ~2x the Intel build, Fig. 3's
/// gap between the two compiler series).
inline constexpr CpuHardwareProfile kPentium4_3400Msvc{
    .name = "Intel Pentium IV 3.4 GHz, MSVC qsort (simulated)",
    .clock_hz = 3.4e9,
    .l1_bytes = 16 * 1024,
    .l2_bytes = 1024 * 1024,
    .cache_line_bytes = 64,
    .l2_miss_penalty_cycles = 200,
    .branch_mispredict_penalty_cycles = 17,
    .sort_branch_mispredict_rate = 0.35,
    .base_cycles_per_comparison = 32.0,
};

}  // namespace streamgpu::hwmodel

#endif  // STREAMGPU_HWMODEL_HARDWARE_PROFILES_H_
