#include "hwmodel/sort_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hwmodel/calibration.h"
#include "hwmodel/cpu_model.h"

namespace streamgpu::hwmodel {

namespace {

double Log2AtLeast1(double x) { return std::log2(std::max(2.0, x)); }

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Smallest power of two >= n/bucket_keys, clamped to [2, 256]; mirrors
// SampleSortSorter::NumBuckets.
int SampleBuckets(std::uint64_t n, std::uint64_t bucket_keys) {
  int k = 2;
  while (k < 256 && n > bucket_keys * static_cast<std::uint64_t>(k)) k <<= 1;
  return k;
}

}  // namespace

const char* SortBackendName(SortBackend backend) {
  switch (backend) {
    case SortBackend::kGpuPbsn:
      return "pbsn";
    case SortBackend::kGpuBitonic:
      return "bitonic";
    case SortBackend::kCpuQuicksort:
      return "cpu";
    case SortBackend::kCpuStdSort:
      return "stdsort";
    case SortBackend::kCpuRadixMerge:
      return "cpu-radix";
    case SortBackend::kSampleSort:
      return "sample";
  }
  return "unknown";
}

SortPlanner::SortPlanner(const SortPlannerConfig& config,
                         PlanObjective objective,
                         std::vector<SortBackend> candidates)
    : config_(config),
      objective_(objective),
      candidates_(std::move(candidates)) {
  if (candidates_.empty()) {
    candidates_.push_back(SortBackend::kCpuStdSort);
  }
  if (config_.memcpy_ns_per_byte <= 0.0) {
    config_.memcpy_ns_per_byte = CachedMemcpyNsPerByte();
  }
}

double SortPlanner::PredictHostNsPerKey(SortBackend backend,
                                        std::uint64_t n) const {
  const double mem = config_.memcpy_ns_per_byte;
  const double dn = static_cast<double>(std::max<std::uint64_t>(n, 2));
  double rel = 0.0;
  switch (backend) {
    case SortBackend::kGpuPbsn: {
      const double steps = Log2AtLeast1(dn / 4.0);
      rel = config_.pbsn_rel_per_step * steps * steps;
      break;
    }
    case SortBackend::kGpuBitonic: {
      const double steps = Log2AtLeast1(dn);
      rel = config_.bitonic_rel_per_step * steps * steps;
      break;
    }
    case SortBackend::kCpuQuicksort:
      rel = config_.quicksort_rel_per_log * Log2AtLeast1(dn);
      break;
    case SortBackend::kCpuStdSort:
      rel = config_.stdsort_rel_per_log * Log2AtLeast1(dn);
      break;
    case SortBackend::kCpuRadixMerge: {
      const std::uint64_t ways = CeilDiv(n, config_.radix_chunk_keys);
      rel = config_.radix_rel_base;
      if (ways > 1) {
        rel += config_.radix_rel_spill +
               config_.radix_rel_per_merge_level *
                   std::ceil(Log2AtLeast1(static_cast<double>(ways)));
      }
      break;
    }
    case SortBackend::kSampleSort: {
      const int k = SampleBuckets(n, config_.sample_bucket_keys);
      rel = config_.sample_rel_base +
            config_.sample_rel_per_depth * Log2AtLeast1(k);
      break;
    }
  }
  return rel * mem;
}

double SortPlanner::PredictSimulatedSeconds(SortBackend backend,
                                            std::uint64_t n) const {
  if (n < 2) return 0.0;
  const CpuModel cpu(config_.cpu);
  const GpuHardwareProfile& gpu = config_.gpu;
  const double dn = static_cast<double>(n);
  // Closed-form GPU network estimate: `fragments` blended fragments across
  // steps(K) = K(K+1)/2 network steps, where the compute rate is pipes *
  // clock / blend_cycles, plus upload+readback on the bus and one
  // framebuffer bind. Approximates the instrumented simulator within a few
  // percent — good enough to rank backends, not a substitute for GpuModel.
  const auto network_seconds = [&](double fragments_per_step, double levels) {
    const double steps = levels * (levels + 1.0) / 2.0;
    const double fragments = fragments_per_step * steps;
    const double compute = fragments * gpu.blend_cycles_per_fragment /
                           (static_cast<double>(gpu.fragment_pipes) *
                            gpu.core_clock_hz);
    const double transfer = 2.0 * dn * 4.0 / gpu.bus_bandwidth_bps;
    return compute + transfer + gpu.per_bind_overhead_s;
  };
  switch (backend) {
    case SortBackend::kGpuPbsn:
      // Four keys per RGBA fragment; the network runs over n/4 fragments.
      return network_seconds(dn / 4.0, Log2AtLeast1(dn / 4.0));
    case SortBackend::kGpuBitonic:
      return network_seconds(dn, Log2AtLeast1(dn));
    case SortBackend::kCpuQuicksort:
      return cpu.QuicksortSeconds(n, 4);
    case SortBackend::kCpuStdSort:
      return cpu.QuicksortSeconds(n, 4);
    case SortBackend::kCpuRadixMerge: {
      const std::uint64_t ways = CeilDiv(n, config_.radix_chunk_keys);
      double s = cpu.RadixSortSeconds(n, 4);
      if (ways > 1) s += cpu.MergeSeconds(n, static_cast<int>(ways), 4);
      return s;
    }
    case SortBackend::kSampleSort:
      if (n < config_.sample_min_keys) return cpu.RadixSortSeconds(n, 4);
      return cpu.SampleSortSeconds(
          n, SampleBuckets(n, config_.sample_bucket_keys), 4);
  }
  return 0.0;
}

SortBackend SortPlanner::Choose(std::uint64_t n) const {
  SortBackend best = candidates_.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (const SortBackend candidate : candidates_) {
    if (candidate == SortBackend::kSampleSort && n < config_.sample_min_keys) {
      continue;
    }
    const double score = objective_ == PlanObjective::kHostWall
                             ? PredictHostNsPerKey(candidate, n)
                             : PredictSimulatedSeconds(candidate, n);
    if (score < best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

}  // namespace streamgpu::hwmodel
