// Cost-model-driven sort-backend selection.
//
// The planner answers one question per stream window: given n keys and this
// machine's measured memory speed, which backend finishes first? It holds
// closed-form cost formulas for every backend on two clocks:
//
//  - Host wall-clock (the default objective): formulas in rel_memcpy units
//    (ns normalized by large-memcpy ns/byte — the normalization the bench
//    regression gate uses), with constants calibrated once against the
//    blessed BENCH_sort.json baseline and documented in docs/COST_MODEL.md.
//    Multiplying by the live calibration probe (hwmodel/calibration.h)
//    yields predicted ns/key on the current machine.
//
//  - Simulated 2005 hardware (opt-in): the paper's own cost models
//    (CpuModel formulas, an analytic NV40 PBSN estimate), reproducing the
//    paper's crossover where the GPU overtakes CPU quicksort around 16K
//    keys (§4.5). Under this objective the planner re-enacts the 2005
//    decision; under the host objective the second-generation backends win
//    everywhere, which is precisely the ROADMAP's "as fast as the hardware
//    allows" point — see docs/SORT_BACKENDS.md.
//
// Determinism contract: Choose() is a pure function of (n, config,
// objective, candidate order) — no RNG, no clocks, no per-call measurement.
// With a pinned memcpy_ns_per_byte the choice is machine-independent; with
// the live probe, the probe is taken once per process, so every worker in a
// pipeline plans identically and reports stay bit-identical across worker
// counts (every candidate backend produces the same sorted permutation).
//
// Thread safety: SortPlanner is immutable after construction; all methods
// are const and safe to call concurrently from any number of workers.
//
// Layering: hwmodel sits below sort/, so the planner names backends with its
// own enum; sort::PlannedSorter and core::SortEngine map it onto concrete
// Sorter instances.

#ifndef STREAMGPU_HWMODEL_SORT_PLANNER_H_
#define STREAMGPU_HWMODEL_SORT_PLANNER_H_

#include <cstdint>
#include <vector>

#include "hwmodel/hardware_profiles.h"

namespace streamgpu::hwmodel {

/// Backend kinds the planner can cost. Names (SortBackendName) match the
/// CLI's --sort-backend values and the obs counter labels.
enum class SortBackend {
  kGpuPbsn,       ///< simulated-GPU periodic balanced sorting network (§4.4)
  kGpuBitonic,    ///< simulated-GPU bitonic network baseline (§4.5)
  kCpuQuicksort,  ///< instrumented host quicksort (paper's CPU baseline)
  kCpuStdSort,    ///< host std::sort (introsort)
  kCpuRadixMerge, ///< cache-blocked LSD radix + loser-tree merge
  kSampleSort,    ///< deterministic splitter sample sort
};

/// Stable lowercase name: "pbsn", "bitonic", "cpu", "stdsort", "cpu-radix",
/// "sample".
const char* SortBackendName(SortBackend backend);

/// Which clock the planner minimizes.
enum class PlanObjective {
  kHostWall,       ///< minimize predicted host ns/key (default)
  kSimulated2005,  ///< minimize predicted simulated-2005 seconds
};

/// Planner inputs. Every constant is overridable so tests can force any
/// choice; defaults are calibrated against the committed BENCH_sort.json
/// (see docs/COST_MODEL.md "Planner formulas" for the derivations).
struct SortPlannerConfig {
  /// Live calibration: measured large-memcpy ns/byte of THIS machine.
  /// <= 0 means "probe once via CachedMemcpyNsPerByte()".
  double memcpy_ns_per_byte = 0.0;

  // --- host-objective constants, rel_memcpy units -------------------------
  /// PBSN host cost per key per network step: rel = pbsn_rel_per_step *
  /// log2^2(n/4). Fit: blessed baseline gives 101.4 ns/key at 16K and
  /// 230.0 ns/key at 1M with memcpy 0.0776 ns/B -> 9.07 and 9.15 per step.
  double pbsn_rel_per_step = 9.1;
  /// Bitonic per step; the full-width network reblends every key each step
  /// and its steps grow as log2^2(n) (~2.8x the PBSN exponent base at 1M).
  double bitonic_rel_per_step = 25.0;
  /// Comparison sorts: rel = c * log2(n) (branchy, cache-unfriendly).
  double quicksort_rel_per_log = 45.0;
  double stdsort_rel_per_log = 28.0;
  /// Radix/merge: flat base for the seven radix passes, plus a merge term
  /// per loser-tree level and one spill constant for the merge's extra
  /// full-array streams once the window is chunked.
  double radix_rel_base = 120.0;
  double radix_rel_spill = 80.0;
  double radix_rel_per_merge_level = 30.0;
  /// Sample sort: flat base (transform + scatter + in-cache bucket radix)
  /// plus a classification term per splitter-search level.
  double sample_rel_base = 140.0;
  double sample_rel_per_depth = 9.0;

  // --- structure constants (mirror the backends' actual blocking) --------
  /// Keys per radix/merge chunk (RadixMergeSorter::kChunkKeys).
  std::uint64_t radix_chunk_keys = std::uint64_t{1} << 18;
  /// Below this n sample sort degenerates to plain radix
  /// (SampleSortSorter::kMinPartitionKeys) and is never worth choosing.
  std::uint64_t sample_min_keys = std::uint64_t{1} << 16;
  /// Target keys per sample-sort bucket (kTargetBucketBytes / 4).
  std::uint64_t sample_bucket_keys = std::uint64_t{1} << 17;

  // --- simulated-2005 objective inputs ------------------------------------
  CpuHardwareProfile cpu = kPentium4_3400;
  GpuHardwareProfile gpu = kGeForce6800Ultra;
};

/// Immutable per-window backend chooser. Construct once per SortEngine with
/// the candidate list actually instantiated; Choose(n) returns the candidate
/// minimizing the objective (ties break toward the earlier candidate, which
/// keeps the choice deterministic).
class SortPlanner {
 public:
  SortPlanner(const SortPlannerConfig& config, PlanObjective objective,
              std::vector<SortBackend> candidates);

  /// Predicted host ns/key for sorting one window of n keys. Pure function
  /// of (backend, n, config).
  double PredictHostNsPerKey(SortBackend backend, std::uint64_t n) const;

  /// Predicted simulated-2005 seconds for one window of n keys (GPU numbers
  /// include bus transfers, as the paper's figures do). Closed-form
  /// approximation of the instrumented simulator; pure function.
  double PredictSimulatedSeconds(SortBackend backend, std::uint64_t n) const;

  /// The candidate minimizing the configured objective for a window of n
  /// keys. Candidates structurally unfit for n (sample sort below
  /// sample_min_keys) are skipped. n == 0 returns the first candidate.
  SortBackend Choose(std::uint64_t n) const;

  const SortPlannerConfig& config() const { return config_; }
  PlanObjective objective() const { return objective_; }
  const std::vector<SortBackend>& candidates() const { return candidates_; }

 private:
  SortPlannerConfig config_;
  PlanObjective objective_;
  std::vector<SortBackend> candidates_;
};

}  // namespace streamgpu::hwmodel

#endif  // STREAMGPU_HWMODEL_SORT_PLANNER_H_
