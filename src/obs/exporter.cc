#include "obs/exporter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "obs/prometheus.h"

namespace streamgpu::obs {

MetricsExporter::MetricsExporter(const MetricsRegistry* registry,
                                 MetricsExporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  STREAMGPU_CHECK_MSG(registry_ != nullptr, "exporter needs a registry");
  STREAMGPU_CHECK_MSG(!options_.path.empty(), "exporter needs an output path");
  thread_ = std::thread([this] { Loop(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final export after the thread is gone: the published artifact reflects
  // everything recorded before Stop() returned.
  ExportOnce();
}

bool MetricsExporter::ExportOnce() {
  const MetricsSnapshot snapshot = registry_->Snapshot();
  const std::string tmp = options_.path + ".tmp";
  bool ok = false;
  if (std::FILE* f = std::fopen(tmp.c_str(), "w"); f != nullptr) {
    if (options_.format == MetricsFormat::kProm) {
      WritePrometheus(snapshot, f);
    } else {
      snapshot.WriteJson(f);
    }
    std::fclose(f);
    ok = std::rename(tmp.c_str(), options_.path.c_str()) == 0;
    if (!ok) std::remove(tmp.c_str());
  }
  (ok ? exports_ : failures_).fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void MetricsExporter::Loop() {
  const auto period = std::chrono::duration<double>(
      std::max(options_.period_seconds, 1e-3));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) break;
    lock.unlock();
    ExportOnce();
    lock.lock();
  }
}

}  // namespace streamgpu::obs
