// MetricsExporter: continuous background export of MetricsRegistry snapshots.
//
// A single background thread wakes every `period_seconds`, takes a snapshot
// (safe concurrent with recording), serializes it in the configured format
// (JSON schema or Prometheus text exposition), and publishes it with a
// write-to-temp + atomic rename so scrapers never observe a torn file. The
// export path is entirely off the recording hot path — workers never block
// on the exporter.
//
// Lifecycle: the thread starts in the constructor and is joined by Stop()
// (idempotent; also called from the destructor). Stop() performs one final
// export, so the published file always reflects the registry's final state.

#ifndef STREAMGPU_OBS_EXPORTER_H_
#define STREAMGPU_OBS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace streamgpu::obs {

/// On-disk serialization of an exported snapshot.
enum class MetricsFormat {
  kJson,  ///< the schema in docs/OBSERVABILITY.md (MetricsSnapshot::WriteJson)
  kProm,  ///< Prometheus text exposition (obs/prometheus.h)
};

struct MetricsExporterOptions {
  std::string path;              ///< required; final artifact location
  double period_seconds = 10.0;  ///< export period; clamped to >= 1 ms
  MetricsFormat format = MetricsFormat::kJson;
};

/// Periodic snapshot exporter. The registry must outlive the exporter.
class MetricsExporter {
 public:
  MetricsExporter(const MetricsRegistry* registry, MetricsExporterOptions options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Joins the background thread and writes one final export. Idempotent.
  void Stop();

  /// Snapshots and publishes immediately (also used by the periodic thread).
  /// Returns false when the temp file cannot be written or renamed.
  bool ExportOnce();

  /// Successful / failed export counts (tests, shutdown summary).
  std::uint64_t exports() const { return exports_.load(std::memory_order_relaxed); }
  std::uint64_t failures() const { return failures_.load(std::memory_order_relaxed); }

  const std::string& path() const { return options_.path; }

 private:
  void Loop();

  const MetricsRegistry* const registry_;
  const MetricsExporterOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> exports_{0};
  std::atomic<std::uint64_t> failures_{0};

  std::thread thread_;  // last member: starts in the constructor
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_EXPORTER_H_
