#include "obs/flight_recorder.h"

#include <cstdio>
#include <utility>

#include "common/check.h"

namespace streamgpu::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kBackendChosen: return "backend_chosen";
    case FlightEventKind::kBatchSubmitted: return "batch_submitted";
    case FlightEventKind::kBatchSorted: return "batch_sorted";
    case FlightEventKind::kBatchDrained: return "batch_drained";
    case FlightEventKind::kQueueStall: return "queue_stall";
    case FlightEventKind::kFaultInjected: return "fault_injected";
    case FlightEventKind::kSortRetry: return "sort_retry";
    case FlightEventKind::kDeviceLost: return "device_lost";
    case FlightEventKind::kCpuFallback: return "cpu_fallback";
    case FlightEventKind::kDegraded: return "degraded";
    case FlightEventKind::kWindowQuarantined: return "window_quarantined";
    case FlightEventKind::kDrainFailed: return "drain_failed";
    case FlightEventKind::kLoadShed: return "load_shed";
    case FlightEventKind::kSummaryMerged: return "summary_merged";
    case FlightEventKind::kCheckpointWritten: return "checkpoint_written";
    case FlightEventKind::kRestored: return "restored";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  STREAMGPU_CHECK_MSG(capacity > 0, "flight recorder capacity must be positive");
  ring_.resize(capacity);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_path_ = std::move(path);
}

void FlightRecorder::Record(FlightEventKind kind, const char* stage,
                            const char* label, std::uint64_t seq, std::int64_t a,
                            std::int64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent& slot = ring_[next_index_ % ring_.size()];
  slot.index = next_index_++;
  slot.kind = kind;
  slot.stage = stage != nullptr ? stage : "";
  slot.label = label != nullptr ? label : "";
  slot.seq = seq;
  slot.a = a;
  slot.b = b;
}

void FlightRecorder::WriteJsonLocked(std::FILE* f, const char* reason) const {
  std::fprintf(f,
               "{\n  \"schema\": 1,\n  \"reason\": \"%s\",\n"
               "  \"capacity\": %zu,\n  \"total_events\": %llu,\n"
               "  \"events\": [",
               reason != nullptr ? reason : "", ring_.size(),
               static_cast<unsigned long long>(next_index_));
  const std::uint64_t retained =
      next_index_ < ring_.size() ? next_index_ : ring_.size();
  for (std::uint64_t i = 0; i < retained; ++i) {
    // Oldest first: the slot holding event (next_index_ - retained + i).
    const std::uint64_t number = next_index_ - retained + i;
    const FlightEvent& e = ring_[number % ring_.size()];
    std::fprintf(f,
                 "%s\n    {\"i\": %llu, \"kind\": \"%s\", \"stage\": \"%s\", "
                 "\"label\": \"%s\", \"seq\": %llu, \"a\": %lld, \"b\": %lld}",
                 i != 0 ? "," : "", static_cast<unsigned long long>(e.index),
                 FlightEventKindName(e.kind), e.stage, e.label,
                 static_cast<unsigned long long>(e.seq),
                 static_cast<long long>(e.a), static_cast<long long>(e.b));
  }
  std::fputs(retained == 0 ? "]\n}\n" : "\n  ]\n}\n", f);
}

void FlightRecorder::WriteJson(std::FILE* f, const char* reason) const {
  std::lock_guard<std::mutex> lock(mu_);
  WriteJsonLocked(f, reason);
}

bool FlightRecorder::Dump(const char* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dump_path_.empty()) return false;
  const std::string tmp = dump_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  WriteJsonLocked(f, reason);
  std::fclose(f);
  if (std::rename(tmp.c_str(), dump_path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FlightRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_;
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t retained =
      next_index_ < ring_.size() ? next_index_ : ring_.size();
  std::vector<FlightEvent> out;
  out.reserve(retained);
  for (std::uint64_t i = 0; i < retained; ++i) {
    const std::uint64_t number = next_index_ - retained + i;
    out.push_back(ring_[number % ring_.size()]);
  }
  return out;
}

}  // namespace streamgpu::obs
