// FlightRecorder: an always-on, fixed-size ring of recent structured events
// from the sort/pipeline path — which backend the planner chose, batch
// submit/sort/drain progress, queue depths, injected faults, and every
// retry/fallback/quarantine decision. When something goes terminally wrong
// (ResilientSorter quarantines a window, the pipeline drain latches its
// sticky failure), the recorder dumps the ring to a JSON artifact so the
// failure is diagnosable from one file instead of re-run under a debugger.
//
// Recording is deliberately cheap and allocation-free: an event is six
// plain fields written into a preallocated ring under a leaf mutex. `stage`
// and `label` MUST point at static-storage strings (backend names,
// FaultSiteName()/FaultKindName() results, string literals) — the recorder
// stores the pointers, not copies.
//
// Determinism: events carry no wall-clock timestamps, only logical sequence
// numbers supplied by the caller (window index, fault op index), so a fixed
// seed in serial mode produces a byte-identical dump (tests/telemetry_test.cc
// pins this).

#ifndef STREAMGPU_OBS_FLIGHT_RECORDER_H_
#define STREAMGPU_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace streamgpu::obs {

/// What happened. Names (FlightEventKindName) appear verbatim in dumps.
enum class FlightEventKind : std::uint8_t {
  kBackendChosen,      ///< planner dispatched a run group; a = runs in group
  kBatchSubmitted,     ///< pipeline accepted a batch; a = queue depth after
  kBatchSorted,        ///< a sorter finished a batch; a = elements, b = runs
  kBatchDrained,       ///< drain consumed a batch; a = batches drained so far
  kQueueStall,         ///< injected queue stall fired; a = stall micros
  kFaultInjected,      ///< FaultInjector fired a rule; seq = site op index
  kSortRetry,          ///< ResilientSorter retrying; a = attempt, b = pending
  kDeviceLost,         ///< device-lost latched; a = consecutive losses
  kCpuFallback,        ///< batch re-sorted on the CPU; a = pending windows
  kDegraded,           ///< permanent CPU degrade after repeated device loss
  kWindowQuarantined,  ///< window dropped; a = window index, b = elements
  kDrainFailed,        ///< pipeline drain latched its sticky failure
  kLoadShed,           ///< service admission dropped arrivals; a = elements, b = backlog
  kSummaryMerged,      ///< cross-shard summary merge answered; a = shards, b = coverage
  kCheckpointWritten,  ///< durable snapshot committed; a = bytes, b = watermark
  kRestored,           ///< state restored from a checkpoint; a = records, b = watermark
};

const char* FlightEventKindName(FlightEventKind kind);

/// One ring entry. POD; `stage`/`label` are borrowed static strings.
struct FlightEvent {
  std::uint64_t index = 0;  ///< monotone global event number (survives wrap)
  FlightEventKind kind = FlightEventKind::kBatchSubmitted;
  const char* stage = "";  ///< where: "sort", "plan", "pipeline", fault site
  const char* label = "";  ///< who: backend name, fault kind, ...
  std::uint64_t seq = 0;   ///< logical sequence (window / batch / op index)
  std::int64_t a = 0;      ///< kind-specific payload (see enum comments)
  std::int64_t b = 0;
};

/// Thread-safe fixed-capacity event ring with JSON dump-on-demand.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Where Dump() writes. Empty (the default) turns Dump() into a counted
  /// no-op, so instrumentation can call it unconditionally.
  void set_dump_path(std::string path);
  const std::string& dump_path() const { return dump_path_; }

  /// Appends one event, overwriting the oldest once the ring is full.
  void Record(FlightEventKind kind, const char* stage, const char* label,
              std::uint64_t seq = 0, std::int64_t a = 0, std::int64_t b = 0);

  /// Writes the ring (oldest event first) as JSON to the dump path via
  /// write-to-temp + atomic rename. `reason` is recorded in the artifact.
  /// Returns false when no path is set or the write fails.
  bool Dump(const char* reason);

  /// Dump() to an explicit stream (tests, CLI shutdown dump).
  void WriteJson(std::FILE* f, const char* reason) const;

  /// Events recorded since construction (monotone; >= events retained).
  std::uint64_t total_events() const;

  /// Successful Dump() calls so far.
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Oldest-first copy of the retained events (tests).
  std::vector<FlightEvent> Events() const;

  std::size_t capacity() const { return ring_.size(); }

 private:
  void WriteJsonLocked(std::FILE* f, const char* reason) const;

  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::uint64_t next_index_ = 0;  // total events ever recorded
  std::string dump_path_;
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_FLIGHT_RECORDER_H_
