#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "obs/summary.h"

namespace streamgpu::obs {

namespace {

std::uint64_t NextRegistryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// fetch_add for atomic<double> via CAS (portable without C++20 FP fetch_add
// support in every libstdc++).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

MetricId RegisterIn(std::map<std::string, MetricId>& ids, const std::string& name,
                    int capacity, const char* kind) {
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  STREAMGPU_CHECK_MSG(static_cast<int>(ids.size()) < capacity,
                      "metrics registry capacity exhausted for this metric kind");
  (void)kind;
  const MetricId id = static_cast<MetricId>(ids.size());
  ids.emplace(name, id);
  return id;
}

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  return name.find_first_of("{}\"\n") == std::string::npos;
}

bool ValidLabelKey(const std::string& key) {
  if (key.empty()) return false;
  return key.find_first_of("={},\"\n") == std::string::npos;
}

void AppendEscapedLabelValue(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// JSON string escape for rendered metric keys (label values may contain
// backslashes and double quotes once rendered).
void FputsJsonEscaped(const std::string& s, std::FILE* f) {
  for (char c : s) {
    switch (c) {
      case '\\': std::fputs("\\\\", f); break;
      case '"': std::fputs("\\\"", f); break;
      case '\n': std::fputs("\\n", f); break;
      default: std::fputc(c, f);
    }
  }
}

}  // namespace

std::string RenderMetricKey(const std::string& name, const MetricLabels& labels) {
  STREAMGPU_CHECK_MSG(ValidName(name),
                      "metric name must be non-empty and free of {}\"\\n");
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    STREAMGPU_CHECK_MSG(ValidLabelKey(sorted[i].first),
                        "metric label key must be non-empty and free of ={},\"\\n");
    STREAMGPU_CHECK_MSG(i == 0 || sorted[i].first != sorted[i - 1].first,
                        "duplicate metric label key");
    if (i != 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    AppendEscapedLabelValue(key, sorted[i].second);
    key += '"';
  }
  key += '}';
  return key;
}

// Slot definition lives here so metrics.h only forward-declares
// StreamingSummary.
struct MetricsRegistry::SummarySlot {
  explicit SummarySlot(double epsilon) : summary(epsilon) {}
  std::mutex mu;
  StreamingSummary summary;
};

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(counter_ids_, RenderMetricKey(name, {}), kMaxCounters,
                    "counter");
}

MetricId MetricsRegistry::Counter(const std::string& name,
                                  const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(counter_ids_, RenderMetricKey(name, labels), kMaxCounters,
                    "counter");
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(gauge_ids_, RenderMetricKey(name, {}), kMaxGauges, "gauge");
}

MetricId MetricsRegistry::Gauge(const std::string& name,
                                const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(gauge_ids_, RenderMetricKey(name, labels), kMaxGauges,
                    "gauge");
}

MetricId MetricsRegistry::Histogram(const std::string& name,
                                    std::vector<double> upper_bounds) {
  return Histogram(name, {}, std::move(upper_bounds));
}

MetricId MetricsRegistry::Histogram(const std::string& name,
                                    const MetricLabels& labels,
                                    std::vector<double> upper_bounds) {
  STREAMGPU_CHECK_MSG(static_cast<int>(upper_bounds.size()) <= kMaxBuckets,
                      "histogram has too many buckets");
  STREAMGPU_CHECK_MSG(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
                      "histogram bucket bounds must be ascending");
  std::lock_guard<std::mutex> lock(mu_);
  const auto before = histogram_ids_.size();
  const MetricId id = RegisterIn(histogram_ids_, RenderMetricKey(name, labels),
                                 kMaxHistograms, "histogram");
  if (histogram_ids_.size() != before) histogram_bounds_.push_back(std::move(upper_bounds));
  return id;
}

MetricId MetricsRegistry::Summary(const std::string& name,
                                  const MetricLabels& labels, double epsilon) {
  STREAMGPU_CHECK_MSG(epsilon > 0 && epsilon < 1,
                      "summary epsilon must be in (0, 1)");
  std::lock_guard<std::mutex> lock(mu_);
  const auto before = summary_ids_.size();
  const MetricId id = RegisterIn(summary_ids_, RenderMetricKey(name, labels),
                                 kMaxSummaries, "summary");
  if (summary_ids_.size() != before) {
    summary_slots_.push_back(std::make_unique<SummarySlot>(epsilon));
    summary_ptrs_[static_cast<std::size_t>(id)].store(
        summary_slots_.back().get(), std::memory_order_release);
  }
  return id;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  // Fast path: one thread almost always talks to one registry; cache the
  // (registry id -> shard) resolution in two thread-locals.
  thread_local std::uint64_t cached_id = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_id == id_) return *cached_shard;

  // Slow path (first record from this thread, or the thread alternates
  // between registries): a per-thread map keyed by the process-unique
  // registry id. Stale entries for dead registries are never looked up again
  // because ids are never reused.
  thread_local std::unordered_map<std::uint64_t, Shard*> shards_by_registry;
  auto [it, inserted] = shards_by_registry.try_emplace(id_, nullptr);
  if (inserted) {
    auto shard = std::make_unique<Shard>();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
    it->second = shards_.back().get();
  }
  cached_id = id_;
  cached_shard = it->second;
  return *cached_shard;
}

void MetricsRegistry::Add(MetricId counter, std::uint64_t delta) {
  if (counter < 0 || !enabled()) return;
  STREAMGPU_DCHECK(counter < kMaxCounters);
  LocalShard().counters[static_cast<std::size_t>(counter)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(MetricId gauge, double value) {
  if (gauge < 0 || !enabled()) return;
  STREAMGPU_DCHECK(gauge < kMaxGauges);
  gauges_[static_cast<std::size_t>(gauge)].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Record(MetricId histogram, double value) {
  if (histogram < 0 || !enabled()) return;
  STREAMGPU_DCHECK(histogram < kMaxHistograms);
  std::size_t bucket;
  {
    // Bounds are immutable once registered; the id being valid implies the
    // bounds entry exists, so this read needs no lock after registration.
    // (Take the lock anyway: registration from another thread may be
    // resizing histogram_bounds_. Recording is per-window, not per-element,
    // so the lock is off the hot path.)
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<double>& bounds =
        histogram_bounds_[static_cast<std::size_t>(histogram)];
    // lower_bound keeps the bounds le-inclusive (a value equal to a bound
    // belongs to that bound's bucket), matching the Prometheus `le` mapping.
    bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  }
  Shard& shard = LocalShard();
  shard.hist_counts[static_cast<std::size_t>(histogram) * (kMaxBuckets + 1) + bucket]
      .fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(shard.hist_sums[static_cast<std::size_t>(histogram)], value);
}

void MetricsRegistry::Observe(MetricId summary, double value) {
  if (summary < 0 || !enabled()) return;
  STREAMGPU_DCHECK(summary < kMaxSummaries);
  // The slot pointer is published with release on registration; once set it
  // never changes, so Observe never takes the registry mutex.
  SummarySlot* slot = summary_ptrs_[static_cast<std::size_t>(summary)].load(
      std::memory_order_acquire);
  if (slot == nullptr) return;
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->summary.Observe(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);

  snap.counters.reserve(counter_ids_.size());
  for (const auto& [name, id] : counter_ids_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[static_cast<std::size_t>(id)].load(
          std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }

  snap.gauges.reserve(gauge_ids_.size());
  for (const auto& [name, id] : gauge_ids_) {
    snap.gauges.emplace_back(
        name, gauges_[static_cast<std::size_t>(id)].load(std::memory_order_relaxed));
  }

  snap.histograms.reserve(histogram_ids_.size());
  for (const auto& [name, id] : histogram_ids_) {
    MetricsSnapshot::Histogram h;
    h.name = name;
    h.upper_bounds = histogram_bounds_[static_cast<std::size_t>(id)];
    h.counts.assign(h.upper_bounds.size() + 1, 0);
    for (const auto& shard : shards_) {
      const std::size_t base = static_cast<std::size_t>(id) * (kMaxBuckets + 1);
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard->hist_counts[base + b].load(std::memory_order_relaxed);
      }
      h.sum += shard->hist_sums[static_cast<std::size_t>(id)].load(
          std::memory_order_relaxed);
    }
    for (std::uint64_t c : h.counts) h.count += c;
    snap.histograms.push_back(std::move(h));
  }

  snap.summaries.reserve(summary_ids_.size());
  for (const auto& [name, id] : summary_ids_) {
    SummarySlot* slot = summary_slots_[static_cast<std::size_t>(id)].get();
    MetricsSnapshot::Summary s;
    s.name = name;
    std::lock_guard<std::mutex> slot_lock(slot->mu);
    s.count = slot->summary.count();
    s.sum = slot->summary.sum();
    s.epsilon = slot->summary.epsilon();
    if (s.count > 0) {
      s.quantiles.reserve(kSummaryQuantiles.size());
      for (double phi : kSummaryQuantiles) {
        s.quantiles.emplace_back(phi, slot->summary.Quantile(phi));
      }
    }
    snap.summaries.push_back(std::move(s));
  }
  return snap;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

void MetricsSnapshot::WriteJson(std::FILE* f) const {
  std::fputs("{\n  \"schema\": 2,\n  \"counters\": {", f);
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::fputs(i != 0 ? ",\n    \"" : "\n    \"", f);
    FputsJsonEscaped(counters[i].first, f);
    std::fprintf(f, "\": %llu",
                 static_cast<unsigned long long>(counters[i].second));
  }
  std::fputs(counters.empty() ? "},\n" : "\n  },\n", f);

  std::fputs("  \"gauges\": {", f);
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    std::fputs(i != 0 ? ",\n    \"" : "\n    \"", f);
    FputsJsonEscaped(gauges[i].first, f);
    std::fprintf(f, "\": %.9g", gauges[i].second);
  }
  std::fputs(gauges.empty() ? "},\n" : "\n  },\n", f);

  std::fputs("  \"histograms\": {", f);
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram& h = histograms[i];
    std::fputs(i != 0 ? ",\n    \"" : "\n    \"", f);
    FputsJsonEscaped(h.name, f);
    std::fprintf(f, "\": {\n      \"count\": %llu,\n      \"sum\": %.9g,\n"
                    "      \"buckets\": [",
                 static_cast<unsigned long long>(h.count), h.sum);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) std::fputs(",", f);
      std::fputs("\n        {\"le\": ", f);
      if (b < h.upper_bounds.size()) {
        std::fprintf(f, "%.9g", h.upper_bounds[b]);
      } else {
        std::fputs("\"inf\"", f);
      }
      std::fprintf(f, ", \"count\": %llu}",
                   static_cast<unsigned long long>(h.counts[b]));
    }
    std::fputs("\n      ]\n    }", f);
  }
  std::fputs(histograms.empty() ? "},\n" : "\n  },\n", f);

  std::fputs("  \"summaries\": {", f);
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const Summary& s = summaries[i];
    std::fputs(i != 0 ? ",\n    \"" : "\n    \"", f);
    FputsJsonEscaped(s.name, f);
    std::fprintf(f, "\": {\n      \"count\": %llu,\n      \"sum\": %.9g,\n"
                    "      \"epsilon\": %.9g,\n      \"quantiles\": [",
                 static_cast<unsigned long long>(s.count), s.sum, s.epsilon);
    for (std::size_t q = 0; q < s.quantiles.size(); ++q) {
      if (q != 0) std::fputs(",", f);
      std::fprintf(f, "\n        {\"phi\": %.9g, \"value\": %.9g}",
                   s.quantiles[q].first, s.quantiles[q].second);
    }
    std::fputs(s.quantiles.empty() ? "]\n    }" : "\n      ]\n    }", f);
  }
  std::fputs(summaries.empty() ? "}\n}\n" : "\n  }\n}\n", f);
}

void MetricsRegistry::WriteJson(std::FILE* f) const { Snapshot().WriteJson(f); }

bool MetricsRegistry::WriteJsonFile(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  WriteJson(f);
  std::fclose(f);
  return true;
}

}  // namespace streamgpu::obs
