#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace streamgpu::obs {

namespace {

std::uint64_t NextRegistryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// fetch_add for atomic<double> via CAS (portable without C++20 FP fetch_add
// support in every libstdc++).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

MetricId RegisterIn(std::map<std::string, MetricId>& ids, const std::string& name,
                    int capacity, const char* kind) {
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  STREAMGPU_CHECK_MSG(static_cast<int>(ids.size()) < capacity,
                      "metrics registry capacity exhausted for this metric kind");
  (void)kind;
  const MetricId id = static_cast<MetricId>(ids.size());
  ids.emplace(name, id);
  return id;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(NextRegistryId()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(counter_ids_, name, kMaxCounters, "counter");
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterIn(gauge_ids_, name, kMaxGauges, "gauge");
}

MetricId MetricsRegistry::Histogram(const std::string& name,
                                    std::vector<double> upper_bounds) {
  STREAMGPU_CHECK_MSG(static_cast<int>(upper_bounds.size()) <= kMaxBuckets,
                      "histogram has too many buckets");
  STREAMGPU_CHECK_MSG(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
                      "histogram bucket bounds must be ascending");
  std::lock_guard<std::mutex> lock(mu_);
  const auto before = histogram_ids_.size();
  const MetricId id = RegisterIn(histogram_ids_, name, kMaxHistograms, "histogram");
  if (histogram_ids_.size() != before) histogram_bounds_.push_back(std::move(upper_bounds));
  return id;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  // Fast path: one thread almost always talks to one registry; cache the
  // (registry id -> shard) resolution in two thread-locals.
  thread_local std::uint64_t cached_id = 0;
  thread_local Shard* cached_shard = nullptr;
  if (cached_id == id_) return *cached_shard;

  // Slow path (first record from this thread, or the thread alternates
  // between registries): a per-thread map keyed by the process-unique
  // registry id. Stale entries for dead registries are never looked up again
  // because ids are never reused.
  thread_local std::unordered_map<std::uint64_t, Shard*> shards_by_registry;
  auto [it, inserted] = shards_by_registry.try_emplace(id_, nullptr);
  if (inserted) {
    auto shard = std::make_unique<Shard>();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(shard));
    it->second = shards_.back().get();
  }
  cached_id = id_;
  cached_shard = it->second;
  return *cached_shard;
}

void MetricsRegistry::Add(MetricId counter, std::uint64_t delta) {
  if (counter < 0 || !enabled()) return;
  STREAMGPU_DCHECK(counter < kMaxCounters);
  LocalShard().counters[static_cast<std::size_t>(counter)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(MetricId gauge, double value) {
  if (gauge < 0 || !enabled()) return;
  STREAMGPU_DCHECK(gauge < kMaxGauges);
  gauges_[static_cast<std::size_t>(gauge)].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Record(MetricId histogram, double value) {
  if (histogram < 0 || !enabled()) return;
  STREAMGPU_DCHECK(histogram < kMaxHistograms);
  std::size_t bucket;
  {
    // Bounds are immutable once registered; the id being valid implies the
    // bounds entry exists, so this read needs no lock after registration.
    // (Take the lock anyway: registration from another thread may be
    // resizing histogram_bounds_. Recording is per-window, not per-element,
    // so the lock is off the hot path.)
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<double>& bounds =
        histogram_bounds_[static_cast<std::size_t>(histogram)];
    bucket = static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  }
  Shard& shard = LocalShard();
  shard.hist_counts[static_cast<std::size_t>(histogram) * (kMaxBuckets + 1) + bucket]
      .fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(shard.hist_sums[static_cast<std::size_t>(histogram)], value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);

  snap.counters.reserve(counter_ids_.size());
  for (const auto& [name, id] : counter_ids_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[static_cast<std::size_t>(id)].load(
          std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }

  snap.gauges.reserve(gauge_ids_.size());
  for (const auto& [name, id] : gauge_ids_) {
    snap.gauges.emplace_back(
        name, gauges_[static_cast<std::size_t>(id)].load(std::memory_order_relaxed));
  }

  snap.histograms.reserve(histogram_ids_.size());
  for (const auto& [name, id] : histogram_ids_) {
    MetricsSnapshot::Histogram h;
    h.name = name;
    h.upper_bounds = histogram_bounds_[static_cast<std::size_t>(id)];
    h.counts.assign(h.upper_bounds.size() + 1, 0);
    for (const auto& shard : shards_) {
      const std::size_t base = static_cast<std::size_t>(id) * (kMaxBuckets + 1);
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard->hist_counts[base + b].load(std::memory_order_relaxed);
      }
      h.sum += shard->hist_sums[static_cast<std::size_t>(id)].load(
          std::memory_order_relaxed);
    }
    for (std::uint64_t c : h.counts) h.count += c;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

void MetricsSnapshot::WriteJson(std::FILE* f) const {
  std::fputs("{\n  \"schema\": 1,\n  \"counters\": {", f);
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %llu", i != 0 ? "," : "",
                 counters[i].first.c_str(),
                 static_cast<unsigned long long>(counters[i].second));
  }
  std::fputs(counters.empty() ? "},\n" : "\n  },\n", f);

  std::fputs("  \"gauges\": {", f);
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.9g", i != 0 ? "," : "",
                 gauges[i].first.c_str(), gauges[i].second);
  }
  std::fputs(gauges.empty() ? "},\n" : "\n  },\n", f);

  std::fputs("  \"histograms\": {", f);
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram& h = histograms[i];
    std::fprintf(f, "%s\n    \"%s\": {\n      \"count\": %llu,\n      \"sum\": %.9g,\n"
                    "      \"buckets\": [",
                 i != 0 ? "," : "", h.name.c_str(),
                 static_cast<unsigned long long>(h.count), h.sum);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) std::fputs(",", f);
      std::fputs("\n        {\"le\": ", f);
      if (b < h.upper_bounds.size()) {
        std::fprintf(f, "%.9g", h.upper_bounds[b]);
      } else {
        std::fputs("\"inf\"", f);
      }
      std::fprintf(f, ", \"count\": %llu}",
                   static_cast<unsigned long long>(h.counts[b]));
    }
    std::fputs("\n      ]\n    }", f);
  }
  std::fputs(histograms.empty() ? "}\n}\n" : "\n  }\n}\n", f);
}

void MetricsRegistry::WriteJson(std::FILE* f) const { Snapshot().WriteJson(f); }

bool MetricsRegistry::WriteJsonFile(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  WriteJson(f);
  std::fclose(f);
  return true;
}

}  // namespace streamgpu::obs
