// MetricsRegistry: counters, gauges, bounded histograms, and streaming
// quantile summaries with sharded per-thread storage.
//
// Pipeline sort workers, the summary (drain) thread, and the ingest thread
// all record into the same registry; each thread writes its own shard
// (relaxed atomics on thread-private cache lines), so recording never
// contends. Snapshot() merges the shards.
//
// Labels: every instrument kind can carry a low-cardinality label set
// ({backend="radix"}). Labels are interned at registration time — the
// (name, labels) pair is rendered to one canonical key string and mapped to
// a dense id — so the hot path stays a single array index; a labeled Add()
// costs exactly what an unlabeled one does. Snapshots expose the rendered
// key (`name{k="v",...}`, keys sorted); ParseMetricKey in obs/prometheus.h
// splits it back apart.
//
// Determinism contract: counters and histograms record *operation counts and
// operand sizes* — deterministic quantities — so their merged totals are
// bit-identical between serial and pipelined execution, like every other
// count in the system (see docs/COST_MODEL.md). Label values must likewise
// be execution-mode-agnostic (a backend name, never a worker index). Gauges
// and summaries hold point-in-time or wall-clock values and carry no such
// guarantee.
//
// The registry is disabled-by-default at the wiring level (a null
// obs::Observability::metrics pointer costs one compare per site); a wired
// registry can additionally be muted at runtime with set_enabled(false),
// which turns Add/Set/Record/Observe into a relaxed load + branch.

#ifndef STREAMGPU_OBS_METRICS_H_
#define STREAMGPU_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace streamgpu::obs {

/// Index of a registered metric within its kind (counter / gauge /
/// histogram / summary). Negative = invalid (records are dropped).
using MetricId = int;
inline constexpr MetricId kInvalidMetric = -1;

/// Label set attached to a metric at registration. Order is irrelevant:
/// RenderMetricKey sorts by key. Keep cardinality low — every distinct
/// (name, labels) pair is a separate time series occupying a registry slot.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Renders (name, labels) to the canonical key `name{k="v",...}` (labels
/// sorted by key, values escaped: backslash, double quote, newline). A metric
/// with no labels renders to its bare name. Aborts on malformed input: empty
/// name, name containing `{`/`}`/`"`/newline, empty or duplicate label keys,
/// or label keys containing `=`/`,`/`{`/`}`/`"`/newline.
std::string RenderMetricKey(const std::string& name, const MetricLabels& labels);

/// Quantiles every summary exports, in ascending order.
inline constexpr std::array<double, 3> kSummaryQuantiles = {0.5, 0.9, 0.99};

/// Merged point-in-time view of a registry, ordered by rendered metric key so
/// the serialized form is schema-stable (tests/golden/metrics_schema.golden).
struct MetricsSnapshot {
  struct Histogram {
    std::string name;
    std::vector<double> upper_bounds;   ///< ascending; implicit +inf last bucket
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries
    std::uint64_t count = 0;            ///< total samples
    double sum = 0;                     ///< sum of recorded values
  };

  /// GK-sketch-backed quantile summary (obs/summary.h). `epsilon` is the
  /// honest rank-error bound of the sketch at snapshot time: each reported
  /// quantile value has exact rank within epsilon * count of its target.
  struct Summary {
    std::string name;
    std::uint64_t count = 0;  ///< total observations
    double sum = 0;           ///< sum of observed values
    double epsilon = 0;       ///< current rank-error bound
    /// (phi, value) per kSummaryQuantiles entry; empty when count == 0.
    std::vector<std::pair<double, double>> quantiles;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Histogram> histograms;
  std::vector<Summary> summaries;

  /// Serializes the snapshot as pretty-printed JSON, one key per line
  /// (docs/OBSERVABILITY.md documents the schema).
  void WriteJson(std::FILE* f) const;
};

class StreamingSummary;

/// Thread-safe metrics registry. Registration (by name + labels, idempotent)
/// is mutex-guarded and expected at setup time; recording is wait-free for
/// counters and lock-bounded (one leaf mutex) for histograms and summaries.
class MetricsRegistry {
 public:
  /// Fixed per-kind capacities: shards preallocate full-capacity atomic
  /// arrays, so registration never resizes storage other threads are
  /// writing through.
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 256;
  static constexpr int kMaxHistograms = 64;
  static constexpr int kMaxBuckets = 32;
  static constexpr int kMaxSummaries = 64;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Runtime guard: while disabled, Add/Set/Record/Observe are no-ops.
  /// Registration still works, so a registry can be wired first and enabled
  /// later.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers (or looks up) a counter. Monotone uint64, sharded per thread.
  MetricId Counter(const std::string& name);
  MetricId Counter(const std::string& name, const MetricLabels& labels);

  /// Registers (or looks up) a gauge. Last-written double, registry-level.
  MetricId Gauge(const std::string& name);
  MetricId Gauge(const std::string& name, const MetricLabels& labels);

  /// Registers (or looks up) a bounded histogram with the given ascending
  /// bucket upper bounds (at most kMaxBuckets); values above the last bound
  /// land in an implicit +inf bucket. Re-registration ignores `upper_bounds`.
  MetricId Histogram(const std::string& name, std::vector<double> upper_bounds);
  MetricId Histogram(const std::string& name, const MetricLabels& labels,
                     std::vector<double> upper_bounds);

  /// Registers (or looks up) a streaming quantile summary with rank-error
  /// target `epsilon` (obs/summary.h). Re-registration ignores `epsilon`.
  MetricId Summary(const std::string& name, const MetricLabels& labels = {},
                   double epsilon = 0.01);

  /// Adds `delta` to a counter on the calling thread's shard.
  void Add(MetricId counter, std::uint64_t delta = 1);

  /// Sets a gauge.
  void Set(MetricId gauge, double value);

  /// Records one sample into a histogram on the calling thread's shard.
  void Record(MetricId histogram, double value);

  /// Feeds one observation into a summary (per-summary leaf mutex; intended
  /// for per-batch/per-window latency samples, not per-element data).
  void Observe(MetricId summary, double value);

  /// Merges all shards into a key-ordered snapshot. Safe to call while
  /// other threads record (counts are merged with relaxed loads; a snapshot
  /// concurrent with recording sees each delta either included or not).
  MetricsSnapshot Snapshot() const;

  /// Snapshot() serialized to `f` as JSON.
  void WriteJson(std::FILE* f) const;

  /// Snapshot() serialized to a new file at `path`. Returns false when the
  /// file cannot be opened.
  bool WriteJsonFile(const char* path) const;

  /// Number of per-thread shards created so far (tests).
  std::size_t shard_count() const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    // Histogram h owns the slice [h * (kMaxBuckets + 1), (h + 1) * ...).
    std::vector<std::atomic<std::uint64_t>> hist_counts;
    std::array<std::atomic<double>, kMaxHistograms> hist_sums{};

    Shard() : hist_counts(kMaxHistograms * (kMaxBuckets + 1)) {}
  };

  // A summary slot pairs the sketch with its own leaf mutex so Observe()
  // never contends with registration or snapshotting of other instruments.
  struct SummarySlot;

  Shard& LocalShard();

  const std::uint64_t id_;  // process-unique; keys the thread-local shard cache

  mutable std::mutex mu_;
  std::map<std::string, MetricId> counter_ids_;
  std::map<std::string, MetricId> gauge_ids_;
  std::map<std::string, MetricId> histogram_ids_;
  std::map<std::string, MetricId> summary_ids_;
  std::vector<std::vector<double>> histogram_bounds_;  // by histogram id
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SummarySlot>> summary_slots_;  // by summary id

  // Published pointers to the slots above: Observe() resolves id -> slot with
  // one acquire load, no registry mutex.
  std::array<std::atomic<SummarySlot*>, kMaxSummaries> summary_ptrs_{};

  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::atomic<bool> enabled_{true};
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_METRICS_H_
