// MetricsRegistry: counters, gauges, and bounded histograms with sharded
// per-thread storage.
//
// Pipeline sort workers, the summary (drain) thread, and the ingest thread
// all record into the same registry; each thread writes its own shard
// (relaxed atomics on thread-private cache lines), so recording never
// contends. Snapshot() merges the shards.
//
// Determinism contract: counters and histograms record *operation counts and
// operand sizes* — deterministic quantities — so their merged totals are
// bit-identical between serial and pipelined execution, like every other
// count in the system (see docs/COST_MODEL.md). Gauges hold point-in-time
// values (including wall-clock readings) and carry no such guarantee.
//
// The registry is disabled-by-default at the wiring level (a null
// obs::Observability::metrics pointer costs one compare per site); a wired
// registry can additionally be muted at runtime with set_enabled(false),
// which turns Add/Set/Record into a relaxed load + branch.

#ifndef STREAMGPU_OBS_METRICS_H_
#define STREAMGPU_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace streamgpu::obs {

/// Index of a registered metric within its kind (counter / gauge /
/// histogram). Negative = invalid (records are dropped).
using MetricId = int;
inline constexpr MetricId kInvalidMetric = -1;

/// Merged point-in-time view of a registry, ordered by metric name so the
/// serialized form is schema-stable (tests/golden/metrics_schema.golden).
struct MetricsSnapshot {
  struct Histogram {
    std::string name;
    std::vector<double> upper_bounds;   ///< ascending; implicit +inf last bucket
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries
    std::uint64_t count = 0;            ///< total samples
    double sum = 0;                     ///< sum of recorded values
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Histogram> histograms;

  /// Serializes the snapshot as pretty-printed JSON, one key per line
  /// (docs/OBSERVABILITY.md documents the schema).
  void WriteJson(std::FILE* f) const;
};

/// Thread-safe metrics registry. Registration (by name, idempotent) is
/// mutex-guarded and expected at setup time; recording is wait-free.
class MetricsRegistry {
 public:
  /// Fixed per-kind capacities: shards preallocate full-capacity atomic
  /// arrays, so registration never resizes storage other threads are
  /// writing through.
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 256;
  static constexpr int kMaxHistograms = 64;
  static constexpr int kMaxBuckets = 32;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Runtime guard: while disabled, Add/Set/Record are no-ops. Registration
  /// still works, so a registry can be wired first and enabled later.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers (or looks up) a counter. Monotone uint64, sharded per thread.
  MetricId Counter(const std::string& name);

  /// Registers (or looks up) a gauge. Last-written double, registry-level.
  MetricId Gauge(const std::string& name);

  /// Registers (or looks up) a bounded histogram with the given ascending
  /// bucket upper bounds (at most kMaxBuckets); values above the last bound
  /// land in an implicit +inf bucket. Re-registration ignores `upper_bounds`.
  MetricId Histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Adds `delta` to a counter on the calling thread's shard.
  void Add(MetricId counter, std::uint64_t delta = 1);

  /// Sets a gauge.
  void Set(MetricId gauge, double value);

  /// Records one sample into a histogram on the calling thread's shard.
  void Record(MetricId histogram, double value);

  /// Merges all shards into a name-ordered snapshot. Safe to call while
  /// other threads record (counts are merged with relaxed loads; a snapshot
  /// concurrent with recording sees each delta either included or not).
  MetricsSnapshot Snapshot() const;

  /// Snapshot() serialized to `f` as JSON.
  void WriteJson(std::FILE* f) const;

  /// Snapshot() serialized to a new file at `path`. Returns false when the
  /// file cannot be opened.
  bool WriteJsonFile(const char* path) const;

  /// Number of per-thread shards created so far (tests).
  std::size_t shard_count() const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    // Histogram h owns the slice [h * (kMaxBuckets + 1), (h + 1) * ...).
    std::vector<std::atomic<std::uint64_t>> hist_counts;
    std::array<std::atomic<double>, kMaxHistograms> hist_sums{};

    Shard() : hist_counts(kMaxHistograms * (kMaxBuckets + 1)) {}
  };

  Shard& LocalShard();

  const std::uint64_t id_;  // process-unique; keys the thread-local shard cache

  mutable std::mutex mu_;
  std::map<std::string, MetricId> counter_ids_;
  std::map<std::string, MetricId> gauge_ids_;
  std::map<std::string, MetricId> histogram_ids_;
  std::vector<std::vector<double>> histogram_bounds_;  // by histogram id
  std::vector<std::unique_ptr<Shard>> shards_;

  std::array<std::atomic<double>, kMaxGauges> gauges_{};
  std::atomic<bool> enabled_{true};
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_METRICS_H_
