// Observability wiring point for the public API.
//
// Estimators (and everything they drive: the ingest pipeline, the sort
// engines) accept an Observability value — three optional sinks — through
// core::Options. All pointers default to null, which is the fully disabled
// configuration: instrumentation sites reduce to a single pointer compare,
// and the hot paths allocate and lock nothing. See docs/OBSERVABILITY.md.

#ifndef STREAMGPU_OBS_OBSERVABILITY_H_
#define STREAMGPU_OBS_OBSERVABILITY_H_

namespace streamgpu::obs {

class MetricsRegistry;
class TraceRecorder;
class FlightRecorder;

/// Optional sinks for metrics, spans, and flight events. Borrowed, never
/// owned: all objects must outlive every estimator (and pipeline thread)
/// they are wired into.
struct Observability {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  FlightRecorder* flight = nullptr;

  bool any() const {
    return metrics != nullptr || trace != nullptr || flight != nullptr;
  }
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_OBSERVABILITY_H_
