#include "obs/prometheus.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace streamgpu::obs {

namespace {

bool ValidBareName(const std::string& name) {
  if (name.empty()) return false;
  return name.find_first_of("{}\"\n") == std::string::npos;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendEscapedLabelValue(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// Renders `labels` (+ one optional extra pair appended last, for le= /
// quantile=) as a `{...}` block, or "" with no labels.
std::string LabelBlock(const MetricLabels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    AppendEscapedLabelValue(out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    AppendEscapedLabelValue(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

// One exposition family: a HELP/TYPE pair plus its sample lines, in
// snapshot order.
struct Family {
  std::string help;
  const char* type = "untyped";
  std::vector<std::string> lines;
};

Family& FamilyFor(std::map<std::string, Family>& families,
                  const std::string& output_name, const std::string& source_name,
                  const char* kind, const char* type) {
  Family& fam = families[output_name];
  if (fam.help.empty()) {
    fam.help = std::string("streamgpu ") + kind + " " + source_name;
    fam.type = type;
  }
  return fam;
}

}  // namespace

bool ParseMetricKey(const std::string& key, std::string* name,
                    MetricLabels* labels) {
  if (name == nullptr || labels == nullptr) return false;
  labels->clear();
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    if (!ValidBareName(key)) return false;
    *name = key;
    return true;
  }
  if (brace == 0 || key.back() != '}') return false;
  *name = key.substr(0, brace);
  if (!ValidBareName(*name)) return false;

  std::size_t i = brace + 1;
  const std::size_t end = key.size() - 1;  // position of the closing '}'
  if (i >= end) return false;              // `name{}` is never rendered
  while (i < end) {
    const std::size_t eq = key.find('=', i);
    if (eq == std::string::npos || eq >= end) return false;
    std::string label_key = key.substr(i, eq - i);
    if (label_key.empty() ||
        label_key.find_first_of("={},\"\n") != std::string::npos) {
      return false;
    }
    if (eq + 1 >= end || key[eq + 1] != '"') return false;
    std::string value;
    std::size_t j = eq + 2;
    bool closed = false;
    while (j < end) {
      const char c = key[j];
      if (c == '\\') {
        if (j + 1 >= end) return false;
        const char esc = key[j + 1];
        if (esc == '\\') value += '\\';
        else if (esc == '"') value += '"';
        else if (esc == 'n') value += '\n';
        else return false;
        j += 2;
      } else if (c == '"') {
        closed = true;
        ++j;
        break;
      } else {
        value += c;
        ++j;
      }
    }
    if (!closed) return false;
    labels->emplace_back(std::move(label_key), std::move(value));
    if (j < end) {
      if (key[j] != ',') return false;
      ++j;
      if (j >= end) return false;  // trailing comma
    }
    i = j;
  }
  return true;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "streamgpu_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

void WritePrometheus(const MetricsSnapshot& snapshot, std::FILE* f) {
  // Families keyed (and therefore emitted) by output name; sample lines keep
  // snapshot order within each family, so the whole document is
  // schema-stable (tests/golden/metrics_prom.golden).
  std::map<std::string, Family> families;
  std::string name;
  MetricLabels labels;

  for (const auto& [key, value] : snapshot.counters) {
    if (!ParseMetricKey(key, &name, &labels)) continue;
    const std::string fam_name = PrometheusName(name) + "_total";
    Family& fam = FamilyFor(families, fam_name, name, "counter", "counter");
    fam.lines.push_back(fam_name + LabelBlock(labels) + " " +
                        std::to_string(value));
  }

  for (const auto& [key, value] : snapshot.gauges) {
    if (!ParseMetricKey(key, &name, &labels)) continue;
    const std::string fam_name = PrometheusName(name);
    Family& fam = FamilyFor(families, fam_name, name, "gauge", "gauge");
    fam.lines.push_back(fam_name + LabelBlock(labels) + " " +
                        FormatDouble(value));
  }

  for (const MetricsSnapshot::Histogram& h : snapshot.histograms) {
    if (!ParseMetricKey(h.name, &name, &labels)) continue;
    const std::string fam_name = PrometheusName(name);
    Family& fam = FamilyFor(families, fam_name, name, "histogram", "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le = b < h.upper_bounds.size()
                                 ? FormatDouble(h.upper_bounds[b])
                                 : std::string("+Inf");
      fam.lines.push_back(fam_name + "_bucket" + LabelBlock(labels, "le", le) +
                          " " + std::to_string(cumulative));
    }
    fam.lines.push_back(fam_name + "_sum" + LabelBlock(labels) + " " +
                        FormatDouble(h.sum));
    fam.lines.push_back(fam_name + "_count" + LabelBlock(labels) + " " +
                        std::to_string(h.count));
  }

  for (const MetricsSnapshot::Summary& s : snapshot.summaries) {
    if (!ParseMetricKey(s.name, &name, &labels)) continue;
    const std::string fam_name = PrometheusName(name);
    Family& fam = FamilyFor(families, fam_name, name, "summary", "summary");
    for (const auto& [phi, value] : s.quantiles) {
      fam.lines.push_back(fam_name +
                          LabelBlock(labels, "quantile", FormatDouble(phi)) +
                          " " + FormatDouble(value));
    }
    fam.lines.push_back(fam_name + "_sum" + LabelBlock(labels) + " " +
                        FormatDouble(s.sum));
    fam.lines.push_back(fam_name + "_count" + LabelBlock(labels) + " " +
                        std::to_string(s.count));
    // The GK rank-error bound rides along as a sibling gauge family so the
    // documented epsilon is scrapeable, not just in the JSON export.
    const std::string eps_name = fam_name + "_error";
    Family& eps = FamilyFor(families, eps_name, name,
                            "summary rank-error bound for", "gauge");
    eps.lines.push_back(eps_name + LabelBlock(labels) + " " +
                        FormatDouble(s.epsilon));
  }

  for (const auto& [fam_name, fam] : families) {
    std::fprintf(f, "# HELP %s %s\n", fam_name.c_str(), fam.help.c_str());
    std::fprintf(f, "# TYPE %s %s\n", fam_name.c_str(), fam.type);
    for (const std::string& line : fam.lines) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
  }
}

bool WritePrometheusFile(const MetricsSnapshot& snapshot, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  WritePrometheus(snapshot, f);
  std::fclose(f);
  return true;
}

}  // namespace streamgpu::obs
