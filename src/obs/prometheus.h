// Prometheus text-exposition serialization of a MetricsSnapshot
// (https://prometheus.io/docs/instrumenting/exposition_formats/, format
// version 0.0.4), plus the inverse of RenderMetricKey so labeled series can
// be re-split into (name, labels).
//
// Mapping (documented in docs/OBSERVABILITY.md):
//   - metric names are prefixed `streamgpu_` and sanitized (every character
//     outside [a-zA-Z0-9_:] becomes '_', so dotted names keep their shape);
//   - counters gain the conventional `_total` suffix;
//   - histograms emit cumulative `<name>_bucket{le="..."}` series (the
//     implicit overflow bucket becomes le="+Inf") plus `_sum` and `_count`;
//   - summaries emit `<name>{quantile="..."}` series per kSummaryQuantiles
//     plus `_sum` and `_count`; the GK rank-error bound is stated in the
//     HELP line;
//   - label values are escaped per the exposition format (backslash, double
//     quote, newline).
// Output ordering is deterministic: families sorted by output name, one
// HELP/TYPE pair per family, samples in snapshot (key-sorted) order.

#ifndef STREAMGPU_OBS_PROMETHEUS_H_
#define STREAMGPU_OBS_PROMETHEUS_H_

#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace streamgpu::obs {

/// Splits a canonical rendered key (RenderMetricKey output: `name` or
/// `name{k="v",...}`) back into name and labels. Returns false on malformed
/// input, leaving outputs unspecified.
bool ParseMetricKey(const std::string& key, std::string* name,
                    MetricLabels* labels);

/// `streamgpu_` + name with every character outside [a-zA-Z0-9_:] replaced
/// by '_'.
std::string PrometheusName(const std::string& name);

/// Serializes the snapshot in Prometheus text-exposition format.
void WritePrometheus(const MetricsSnapshot& snapshot, std::FILE* f);

/// WritePrometheus to a new file at `path`. Returns false when the file
/// cannot be opened.
bool WritePrometheusFile(const MetricsSnapshot& snapshot, const char* path);

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_PROMETHEUS_H_
