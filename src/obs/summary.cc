#include "obs/summary.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::obs {

namespace {

std::size_t BlockSizeFor(double epsilon) {
  // A block of ~4/epsilon values condensed at epsilon/2 keeps ~2/epsilon
  // tuples — dense enough that the sketch is meaningfully smaller than the
  // block, small enough that sorting a block stays cheap.
  return std::max<std::size_t>(64, static_cast<std::size_t>(std::ceil(4.0 / epsilon)));
}

std::size_t MaxTuplesFor(double epsilon) {
  // Prune target for carry-merges: 1/(2 * max_tuples) = epsilon/32 per level.
  return static_cast<std::size_t>(std::ceil(16.0 / epsilon));
}

}  // namespace

StreamingSummary::StreamingSummary(double target_epsilon)
    : target_epsilon_(target_epsilon),
      block_size_(BlockSizeFor(target_epsilon)),
      max_tuples_(MaxTuplesFor(target_epsilon)) {
  STREAMGPU_CHECK_MSG(target_epsilon > 0 && target_epsilon < 1,
                      "summary epsilon must be in (0, 1)");
  buffer_.reserve(block_size_);
}

void StreamingSummary::Observe(double value) {
  buffer_.push_back(static_cast<float>(value));
  ++count_;
  sum_ += value;
  if (buffer_.size() >= block_size_) FlushBuffer();
}

void StreamingSummary::FlushBuffer() {
  std::vector<float> sorted = buffer_;
  std::sort(sorted.begin(), sorted.end());
  sketch::GkSummary carry =
      sketch::GkSummary::FromSorted(sorted, target_epsilon_ / 2);
  buffer_.clear();

  // Binary-counter carry: level k holds the summary of 2^k blocks or is
  // vacant. Each occupied level absorbs the carry (merge + prune) and goes
  // vacant, exactly like binary addition.
  std::size_t k = 0;
  for (; k < levels_.size() && !levels_[k].empty(); ++k) {
    carry = sketch::GkSummary::Merge(levels_[k], carry).Prune(max_tuples_);
    levels_[k] = sketch::GkSummary();
  }
  if (k == levels_.size()) levels_.emplace_back();
  levels_[k] = std::move(carry);
}

sketch::GkSummary StreamingSummary::Merged() const {
  sketch::GkSummary merged;
  if (!buffer_.empty()) {
    // The open buffer is summarized exactly: an epsilon small enough that
    // the sampling step is 1 keeps every buffered value, so the fresh tail
    // contributes zero error (FromSorted then reports epsilon 0).
    std::vector<float> sorted = buffer_;
    std::sort(sorted.begin(), sorted.end());
    merged = sketch::GkSummary::FromSorted(sorted, 1e-9);
  }
  for (const sketch::GkSummary& level : levels_) {
    if (level.empty()) continue;
    merged = merged.empty() ? level : sketch::GkSummary::Merge(merged, level);
  }
  return merged;
}

double StreamingSummary::Quantile(double phi) const {
  const sketch::GkSummary merged = Merged();
  if (merged.empty()) return 0;
  return merged.Query(phi);
}

double StreamingSummary::epsilon() const {
  // Merge preserves max(epsilon) across parts, so the merged view's bound is
  // the honest one for every quantile this summary reports.
  return Merged().epsilon();
}

std::size_t StreamingSummary::TupleCount() const {
  std::size_t tuples = buffer_.size();
  for (const sketch::GkSummary& level : levels_) tuples += level.size();
  return tuples;
}

}  // namespace streamgpu::obs
