// StreamingSummary: bounded-memory quantile tracking for the telemetry layer,
// built on the project's own Greenwald-Khanna sketch (sketch/gk_summary.h).
//
// The system measures its own per-stage latencies with the same machinery it
// implements for the data path: observations are buffered in small blocks,
// each full block is condensed to a GK summary, and blocks are combined with
// a binary-counter merge cascade (the classic mergeable-summary construction
// — one summary per power-of-two block count, carried like binary addition).
// Memory stays O(log(n)/epsilon) for n observations, versus the unbounded
// vector a naive percentile tracker would keep.
//
// Error accounting (documented in docs/OBSERVABILITY.md): a block summary is
// built at target_epsilon/2; each carry-merge is pruned to
// ceil(16/target_epsilon) tuples, adding target_epsilon/32 per cascade
// level. With L levels the bound is target_epsilon/2 + L*target_epsilon/32,
// which stays under target_epsilon through L = 16 levels — i.e. for at least
// block_size * 2^16 observations (~26M at the default epsilon 0.01). The
// summary tracks the honest bound as it goes; epsilon() reports the current
// value, and every exported quantile carries it.
//
// Not thread-safe: callers (MetricsRegistry's summary slots) serialize
// externally.

#ifndef STREAMGPU_OBS_SUMMARY_H_
#define STREAMGPU_OBS_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "sketch/gk_summary.h"

namespace streamgpu::obs {

/// Streaming quantile summary with a target rank-error bound.
class StreamingSummary {
 public:
  static constexpr double kDefaultEpsilon = 0.01;

  explicit StreamingSummary(double target_epsilon = kDefaultEpsilon);

  /// Feeds one observation.
  void Observe(double value);

  /// Value whose rank is within epsilon() * count() of ceil(phi * count()),
  /// phi in (0, 1]. Returns 0 when empty.
  double Quantile(double phi) const;

  /// Total observations fed so far.
  std::uint64_t count() const { return count_; }

  /// Sum of all observations (exact, not sketched).
  double sum() const { return sum_; }

  /// The bound this summary was configured to stay under.
  double target_epsilon() const { return target_epsilon_; }

  /// Honest rank-error bound of the merged sketch right now
  /// (<= target_epsilon() within the documented observation budget).
  double epsilon() const;

  /// Tuples currently held across all cascade levels plus the open buffer
  /// (tests assert the memory bound).
  std::size_t TupleCount() const;

 private:
  /// Condenses the open buffer into a level-0 summary and carries it up the
  /// cascade.
  void FlushBuffer();

  /// Merges the cascade levels and the open buffer into one queryable
  /// summary.
  sketch::GkSummary Merged() const;

  const double target_epsilon_;
  const std::size_t block_size_;
  const std::size_t max_tuples_;

  std::vector<float> buffer_;                  ///< open block, unsorted
  std::vector<sketch::GkSummary> levels_;      ///< cascade; empty() = vacant
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_SUMMARY_H_
