#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace streamgpu::obs {

namespace {

std::uint64_t NextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceRecorder::TraceRecorder(std::uint64_t sample_every, std::size_t max_spans)
    : id_(NextRecorderId()),
      sample_every_(sample_every == 0 ? 1 : sample_every),
      max_spans_(max_spans),
      epoch_(Clock::now()) {}

int TraceRecorder::CurrentTid() {
  thread_local std::uint64_t cached_id = 0;
  thread_local int cached_tid = 0;
  if (cached_id == id_) return cached_tid;

  thread_local std::unordered_map<std::uint64_t, int> tids_by_recorder;
  auto [it, inserted] = tids_by_recorder.try_emplace(id_, 0);
  if (inserted) {
    std::lock_guard<std::mutex> lock(mu_);
    it->second = next_tid_++;
    thread_names_.resize(static_cast<std::size_t>(next_tid_));
  }
  cached_id = id_;
  cached_tid = it->second;
  return cached_tid;
}

void TraceRecorder::NameCurrentThread(const std::string& name) {
  const int tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  std::string& slot = thread_names_[static_cast<std::size_t>(tid)];
  if (slot.empty()) slot = name;
}

void TraceRecorder::AddSpan(const char* name, const char* cat, double start_us,
                            double dur_us, std::initializer_list<TraceArg> args) {
  const int tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    // The counter Add is registry-sharded and lock-free, so holding mu_
    // across it cannot deadlock (the registry never calls back into the
    // recorder).
    if (drop_metrics_ != nullptr) drop_metrics_->Add(drop_counter_);
    return;
  }
  Span span;
  span.name = name;
  span.cat = cat;
  span.tid = tid;
  span.start_us = start_us;
  span.dur_us = dur_us < 0 ? 0 : dur_us;
  span.args.reserve(args.size());
  for (const TraceArg& arg : args) span.args.emplace_back(arg.key, arg.value);
  spans_.push_back(std::move(span));
}

std::vector<TraceRecorder::Span> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::BindDropCounter(MetricsRegistry* metrics) {
  // Register before taking mu_: Counter() takes the registry mutex, and a
  // consistent recorder-then-registry order elsewhere would be hard to
  // guarantee.
  const MetricId counter =
      metrics != nullptr ? metrics->Counter("obs.trace.spans_dropped") : kInvalidMetric;
  std::lock_guard<std::mutex> lock(mu_);
  drop_metrics_ = metrics;
  drop_counter_ = counter;
}

void TraceRecorder::WriteJson(std::FILE* f) const {
  std::vector<Span> spans;
  std::vector<std::string> names;
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    names = thread_names_;
    dropped = dropped_;
  }
  // Stable-sort by (track, start time): trace viewers expect per-track
  // timestamps to be monotone, and spans are recorded at stage *completion*,
  // which for nested spans (a sort batch and its GPU sub-spans) is not
  // start order.
  std::stable_sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;  // parent before child at equal start
  });

  std::fputs("{\n\"displayTimeUnit\": \"ms\",\n", f);
  std::fprintf(f, "\"otherData\": {\"dropped_spans\": %llu},\n",
               static_cast<unsigned long long>(dropped));
  std::fputs("\"traceEvents\": [\n", f);
  std::fputs("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
             "\"args\": {\"name\": \"streamgpu\"}}",
             f);
  for (std::size_t tid = 1; tid < names.size(); ++tid) {
    if (names[tid].empty()) continue;
    std::fprintf(f,
                 ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": %zu, \"name\": "
                 "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                 tid, names[tid].c_str());
  }
  for (const Span& span : spans) {
    std::fprintf(f,
                 ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"name\": \"%s\", "
                 "\"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f",
                 span.tid, span.name.c_str(), span.cat.c_str(), span.start_us,
                 span.dur_us);
    if (!span.args.empty()) {
      std::fputs(", \"args\": {", f);
      for (std::size_t i = 0; i < span.args.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.9g", i != 0 ? ", " : "",
                     span.args[i].first.c_str(), span.args[i].second);
      }
      std::fputc('}', f);
    }
    std::fputc('}', f);
  }
  std::fputs("\n]\n}\n", f);
}

bool TraceRecorder::WriteJsonFile(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  WriteJson(f);
  std::fclose(f);
  return true;
}

}  // namespace streamgpu::obs
