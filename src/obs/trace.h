// TraceRecorder: per-window span tracing in Chrome trace-event JSON.
//
// Every pipeline stage records one complete ("ph":"X") span per window batch
// — ingest, sort (with GPU pass sub-spans derived from GpuStats deltas),
// merge/compress, drain — onto a per-thread track. The serialized file loads
// directly in chrome://tracing and https://ui.perfetto.dev.
//
// Sampling: the recorder is constructed with `sample_every` = K; callers
// gate span emission on Sampled(seq) so only every K-th window/batch is
// recorded. Metrics are never sampled — only spans are (see
// docs/OBSERVABILITY.md, "Sampling").
//
// Threading: spans are appended under a mutex, at stage granularity (per
// batch / per window), never per element, so contention is negligible next
// to the work being traced. The recorder must outlive every thread that
// records into it.

#ifndef STREAMGPU_OBS_TRACE_H_
#define STREAMGPU_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace streamgpu::obs {

/// One numeric span argument ("args" in the trace-event format).
struct TraceArg {
  const char* key;
  double value;
};

class TraceRecorder {
 public:
  /// A recorded complete span. Exposed for tests; WriteJson() is the
  /// product-facing output.
  struct Span {
    std::string name;
    std::string cat;
    int tid = 0;
    double start_us = 0;
    double dur_us = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  /// Records every `sample_every`-th sampled sequence number; retains at
  /// most `max_spans` spans (further spans are counted as dropped and
  /// reported in the serialized metadata).
  explicit TraceRecorder(std::uint64_t sample_every = 1,
                         std::size_t max_spans = std::size_t{1} << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::uint64_t sample_every() const { return sample_every_; }

  /// True when a span for sampled sequence number `seq` should be recorded.
  bool Sampled(std::uint64_t seq) const {
    return sample_every_ <= 1 || seq % sample_every_ == 0;
  }

  /// Microseconds since the recorder's epoch (its construction), monotone.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }

  /// Names the calling thread's track in the serialized trace ("thread_name"
  /// metadata). First name wins; later calls are ignored.
  void NameCurrentThread(const std::string& name);

  /// Records one complete span on the calling thread's track.
  void AddSpan(const char* name, const char* cat, double start_us, double dur_us,
               std::initializer_list<TraceArg> args = {});

  /// Copy of the recorded spans (tests).
  std::vector<Span> snapshot() const;

  /// Spans dropped because max_spans was reached.
  std::uint64_t dropped() const;

  /// Mirrors every span-cap drop into the `obs.trace.spans_dropped` counter
  /// of `metrics`, so a capped trace is visible from the metrics export, not
  /// just the in-process dropped() accessor. Pass nullptr to unbind. The
  /// registry must outlive the recorder (or the unbind).
  void BindDropCounter(MetricsRegistry* metrics);

  /// Serializes the trace-event JSON. Events are sorted by (tid, start)
  /// so timestamps are monotone within each track.
  void WriteJson(std::FILE* f) const;

  /// WriteJson() to a new file at `path`; false when it cannot be opened.
  bool WriteJsonFile(const char* path) const;

 private:
  using Clock = std::chrono::steady_clock;

  int CurrentTid();

  const std::uint64_t id_;  // process-unique; keys the thread-local tid cache
  const std::uint64_t sample_every_;
  const std::size_t max_spans_;
  const Clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<std::string> thread_names_;  // by tid; "" = unnamed
  int next_tid_ = 1;
  std::uint64_t dropped_ = 0;
  MetricsRegistry* drop_metrics_ = nullptr;
  MetricId drop_counter_ = kInvalidMetric;
};

}  // namespace streamgpu::obs

#endif  // STREAMGPU_OBS_TRACE_H_
