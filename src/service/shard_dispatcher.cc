#include "service/shard_dispatcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace streamgpu::service {

namespace {

// Window-group width per SortRuns call. The Sorter contract reports
// quarantine as a 64-bit mask over the runs of one call, so groups stay
// within that width; the service wires no fault injection, making the mask
// always zero (CHECKed below), but the grouping keeps the contract intact.
constexpr std::size_t kMaxRunsPerGroup = 64;

}  // namespace

void AppendChunkWindows(StreamChunk& chunk, std::vector<std::span<float>>* out) {
  const std::size_t n = chunk.data.size();
  if (n == 0) return;  // recycled slot not used this round
  STREAMGPU_CHECK(chunk.window_size >= 1);
  STREAMGPU_CHECK_MSG(chunk.final_partial || n % chunk.window_size == 0,
                      "non-finalizing chunk must hold whole windows");
  for (std::size_t off = 0; off < n; off += chunk.window_size) {
    const std::size_t len =
        std::min<std::size_t>(chunk.window_size, n - off);
    out->emplace_back(chunk.data.data() + off, len);
  }
}

ShardDispatcher::ShardDispatcher(const Config& config,
                                 std::vector<sort::Sorter*> sorters,
                                 DrainFn drain)
    : sorters_(std::move(sorters)),
      drain_(std::move(drain)),
      flight_(config.flight) {
  STREAMGPU_CHECK_MSG(!sorters_.empty(), "dispatcher needs at least one sorter");
  for (sort::Sorter* sorter : sorters_) STREAMGPU_CHECK(sorter != nullptr);
  STREAMGPU_CHECK_MSG(static_cast<bool>(drain_), "dispatcher needs a drain callback");
  max_in_flight_ = config.max_batches_in_flight > 0
                       ? config.max_batches_in_flight
                       : static_cast<int>(sorters_.size()) + 2;

  pending_ring_.resize(static_cast<std::size_t>(max_in_flight_));
  sorted_ring_.resize(static_cast<std::size_t>(max_in_flight_));
  free_batches_.reserve(static_cast<std::size_t>(max_in_flight_) + 1);
  window_scratch_.resize(sorters_.size());

  workers_.reserve(sorters_.size());
  for (std::size_t i = 0; i < sorters_.size(); ++i) {
    workers_.emplace_back(&ShardDispatcher::WorkerLoop, this, static_cast<int>(i));
  }
  drain_thread_ = std::thread(&ShardDispatcher::DrainLoop, this);
}

ShardDispatcher::~ShardDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  // Workers finish the pending queue, the drain thread finishes the reorder
  // buffer: destruction flushes rather than drops in-flight batches.
  work_ready_.notify_all();
  sorted_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  sorted_ready_.notify_all();  // workers are gone; wake the drain for its exit check
  drain_thread_.join();
}

core::Status ShardDispatcher::Submit(ShardBatch&& batch) {
  if (batch.elements == 0) return core::Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  STREAMGPU_CHECK_MSG(!stop_, "Submit() after destruction began");
  // A dead drain thread never frees a slot: wake on failure too, so the
  // in-flight cap surfaces the drain's Status instead of blocking forever.
  slot_free_.wait(lock, [&] { return !failed_.ok() || in_flight_ < max_in_flight_; });
  if (!failed_.ok()) return failed_;
  ++in_flight_;
  PendingBatch& slot =
      pending_ring_[(pending_head_ + pending_count_) % pending_ring_.size()];
  ++pending_count_;
  slot.seq = next_submit_seq_++;
  slot.batch = std::move(batch);
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kBatchSubmitted, "service", "submit",
                    slot.seq, in_flight_, slot.batch.shard);
  }
  work_ready_.notify_one();
  return core::Status::Ok();
}

ShardBatch ShardDispatcher::AcquireBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_batches_.empty()) return {};
  ShardBatch out = std::move(free_batches_.back());
  free_batches_.pop_back();
  return out;
}

core::Status ShardDispatcher::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock,
             [&] { return !failed_.ok() || next_drain_seq_ == next_submit_seq_; });
  return failed_;
}

std::uint64_t ShardDispatcher::batches_drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_drained_;
}

void ShardDispatcher::WorkerLoop(int worker_index) {
  sort::Sorter* sorter = sorters_[static_cast<std::size_t>(worker_index)];
  std::vector<std::span<float>>& windows =
      window_scratch_[static_cast<std::size_t>(worker_index)];
  PendingBatch pending;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stop_ || pending_count_ != 0; });
      if (pending_count_ == 0) return;  // stop_ set and queue drained
      pending = std::move(pending_ring_[pending_head_]);
      pending_head_ = (pending_head_ + 1) % pending_ring_.size();
      --pending_count_;
    }

    // Sort outside the lock: one SortRuns call covers up to kMaxRunsPerGroup
    // windows drawn from many streams' chunks — the amortization that makes
    // per-stream writes cheap. Grouping is answer-neutral: every backend
    // sorts each window to the same permutation regardless of grouping (the
    // determinism contract in core/options.h), so a window sorted here is
    // bit-identical to the same window sorted by a dedicated estimator.
    ShardBatch& batch = pending.batch;
    batch.run = sort::SortRunInfo{};
    windows.clear();
    for (StreamChunk& chunk : batch.chunks) AppendChunkWindows(chunk, &windows);
    for (std::size_t off = 0; off < windows.size(); off += kMaxRunsPerGroup) {
      const std::size_t count =
          std::min(kMaxRunsPerGroup, windows.size() - off);
      sorter->SortRuns(std::span<std::span<float>>(windows.data() + off, count));
      batch.run += sorter->last_run();
      STREAMGPU_CHECK_MSG(sorter->last_quarantine_mask() == 0,
                          "service sorters wire no fault injection");
    }
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kBatchSorted, "service",
                      sorter->name(), pending.seq,
                      static_cast<std::int64_t>(batch.elements),
                      static_cast<std::int64_t>(windows.size()));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      SortedBatch& slot = sorted_ring_[pending.seq % sorted_ring_.size()];
      STREAMGPU_DCHECK(!slot.occupied);
      slot.batch = std::move(batch);
      slot.occupied = true;
    }
    sorted_ready_.notify_one();
  }
}

void ShardDispatcher::DrainLoop() {
  SortedBatch sorted;
  for (;;) {
    std::uint64_t seq;
    {
      std::unique_lock<std::mutex> lock(mu_);
      sorted_ready_.wait(lock, [&] {
        // Exit only once every submitted batch has been drained; workers
        // keep feeding the reorder buffer after stop_ is set.
        return sorted_ring_[next_drain_seq_ % sorted_ring_.size()].occupied ||
               (stop_ && next_drain_seq_ == next_submit_seq_);
      });
      SortedBatch& slot = sorted_ring_[next_drain_seq_ % sorted_ring_.size()];
      if (!slot.occupied) return;
      seq = next_drain_seq_;
      sorted = std::move(slot);
      slot.occupied = false;
    }

    // Merge outside the lock, overlapping the workers' sorting of later
    // batches. Strict submission order keeps each stream's window sequence —
    // and thus every query answer — identical to a dedicated pipeline.
    const std::size_t batch_elements = sorted.batch.elements;
    ShardBatch recycled = std::move(sorted.batch);
    core::Status drain_status = drain_(std::move(recycled));
    if (!drain_status.ok()) {
      if (flight_ != nullptr) {
        flight_->Record(obs::FlightEventKind::kDrainFailed, "service", "drain",
                        seq, static_cast<std::int64_t>(batch_elements));
        flight_->Dump("service_drain_failed");
      }
      std::lock_guard<std::mutex> lock(mu_);
      failed_ = std::move(drain_status);
      slot_free_.notify_all();
      idle_.notify_all();
      return;
    }
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kBatchDrained, "service", "drain",
                      seq, static_cast<std::int64_t>(seq + 1));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batches_drained_;
      ++next_drain_seq_;
      --in_flight_;
      // Recycle the batch storage: clear the chunks but keep their vector
      // capacities so steady-state dispatch stops allocating.
      if (free_batches_.size() < free_batches_.capacity()) {
        for (StreamChunk& chunk : recycled.chunks) {
          chunk.data.clear();
          chunk.final_partial = false;
        }
        recycled.elements = 0;
        recycled.run = sort::SortRunInfo{};
        free_batches_.push_back(std::move(recycled));
      }
    }
    slot_free_.notify_one();
    idle_.notify_all();
  }
}

}  // namespace streamgpu::service
