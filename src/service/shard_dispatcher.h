// ShardDispatcher: the StreamService's worker-pool executor.
//
// Where stream::SortPipeline carries one stream's homogeneous window-batches,
// the dispatcher carries *shard batches*: micro-batches of per-stream chunks
// coalesced by the service's ingest thread, each chunk holding whole windows
// of one stream (streams in one shard may have different window widths). One
// queue operation and one worker dispatch are thus amortized across the many
// small per-stream writes that produced the batch — the mechanism that makes
// aggregate ingest throughput track worker count rather than stream count
// (docs/SERVICE.md, "Batched shard-by-key dispatch").
//
// Topology mirrors SortPipeline deliberately:
//
//   ingest thread            N sort workers               1 drain thread
//   Submit(batch) ──queue──> SortRuns(chunk windows) ──reorder──> drain(batch)
//
// * Submit() blocks once `max_batches_in_flight` batches are in flight
//   (backpressure; the service's kBlock admission policy).
// * Each worker owns its own Sorter — one simulated GpuDevice per worker on
//   the GPU backends, so GpuStats counting never races.
// * A single drain thread consumes sorted batches strictly in submission
//   order. Batches of one shard therefore drain in the order the ingest
//   thread built them, and within a batch each chunk's windows are merged in
//   stream order — exactly the window sequence a dedicated estimator would
//   merge, which is what makes service answers bit-identical to a dedicated
//   pipeline (every backend sorts a window to the same permutation
//   regardless of how windows are grouped into SortRuns calls).
//
// Drained batch storage is recycled to the ingest thread through
// AcquireBatch(), so steady-state dispatch reuses chunk vectors instead of
// allocating per micro-batch.

#ifndef STREAMGPU_SERVICE_SHARD_DISPATCHER_H_
#define STREAMGPU_SERVICE_SHARD_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/status.h"
#include "obs/flight_recorder.h"
#include "sort/sorter.h"

namespace streamgpu::service {

/// One stream's contribution to a shard batch: whole windows of that
/// stream, concatenated. Only a finalizing chunk (stream Flush) may end in
/// a partial window.
struct StreamChunk {
  std::uint32_t stream = 0;       ///< dense stream index (service registry)
  std::uint64_t window_size = 0;  ///< the stream's resolved window width
  std::vector<float> data;        ///< window-aligned elements
  bool final_partial = false;     ///< last window may be partial (finalize)
};

/// One coalesced micro-batch for one shard.
struct ShardBatch {
  std::uint32_t shard = 0;
  std::vector<StreamChunk> chunks;
  std::size_t elements = 0;    ///< sum of chunk sizes (ingest bookkeeping)
  sort::SortRunInfo run;       ///< accumulated sort record (set by the worker)
};

/// Splits `chunk` into its window spans (the final span may be partial only
/// for a finalizing chunk — callers CHECK otherwise). Appends to `out`;
/// empty chunks (recycled slots not used this round) are skipped.
void AppendChunkWindows(StreamChunk& chunk, std::vector<std::span<float>>* out);

/// Worker-pool executor for shard batches: sorting fans out across workers,
/// summary maintenance stays single-threaded and in submission order.
///
/// Thread contract: Submit()/AcquireBatch()/WaitIdle() must be called from
/// one thread (the service's ingest thread). The drain callback runs on the
/// dispatcher's drain thread; WaitIdle() establishes a happens-before with
/// every drain completed so far. The destructor finishes all submitted work
/// before joining.
class ShardDispatcher {
 public:
  /// Consumes one sorted batch on the drain thread, strictly in submission
  /// order. The batch is on loan: read it, but hand its storage back by
  /// returning — the dispatcher reclaims the chunk vectors afterwards and
  /// reissues them through AcquireBatch(). A non-OK return poisons the
  /// dispatcher: the drain thread stops and every later Submit()/WaitIdle()
  /// returns that Status.
  using DrainFn = std::function<core::Status(ShardBatch&& batch)>;

  struct Config {
    /// Maximum batches admitted before Submit() blocks. 0 = workers + 2.
    int max_batches_in_flight = 0;

    /// Flight-event sink (borrowed; null = off). Batch submit/drain
    /// progress events, and a ring dump when the drain latches a failure.
    obs::FlightRecorder* flight = nullptr;
  };

  /// One worker thread per sorter; `sorters` are borrowed, must outlive the
  /// dispatcher, and must each be exclusive to one worker.
  ShardDispatcher(const Config& config, std::vector<sort::Sorter*> sorters,
                  DrainFn drain);
  ~ShardDispatcher();

  ShardDispatcher(const ShardDispatcher&) = delete;
  ShardDispatcher& operator=(const ShardDispatcher&) = delete;

  /// Hands one shard batch to the pool. Blocks while the in-flight cap is
  /// reached. Empty batches are ignored. Returns the drain's sticky failure
  /// Status — without enqueuing — once the drain has failed.
  core::Status Submit(ShardBatch&& batch);

  /// Returns a drained batch's storage for reuse (chunks cleared, vector
  /// capacities retained), or a fresh empty batch when none has been
  /// recycled yet.
  ShardBatch AcquireBatch();

  /// Blocks until every submitted batch has been sorted and drained.
  /// Returns the drain failure Status (sticky) if the drain thread died.
  core::Status WaitIdle();

  int num_workers() const { return static_cast<int>(sorters_.size()); }
  int max_batches_in_flight() const { return max_in_flight_; }

  /// Batches drained so far (call after WaitIdle() for a settled value).
  std::uint64_t batches_drained() const;

 private:
  struct PendingBatch {
    std::uint64_t seq = 0;
    ShardBatch batch;
  };
  struct SortedBatch {
    ShardBatch batch;
    bool occupied = false;  // ring-slot validity (reorder buffer)
  };

  void WorkerLoop(int worker_index);
  void DrainLoop();

  const std::vector<sort::Sorter*> sorters_;
  const DrainFn drain_;
  obs::FlightRecorder* const flight_;
  int max_in_flight_ = 0;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;     // in_flight_ dropped below the cap
  std::condition_variable work_ready_;    // pending ring non-empty (or stopping)
  std::condition_variable sorted_ready_;  // reorder buffer advanced (or stopping)
  std::condition_variable idle_;          // a batch finished draining

  bool stop_ = false;
  core::Status failed_;  ///< first drain failure (sticky)
  int in_flight_ = 0;
  std::uint64_t next_submit_seq_ = 0;
  std::uint64_t next_drain_seq_ = 0;
  std::uint64_t batches_drained_ = 0;

  // Submit queue: fixed ring of max_in_flight_ slots, consumed FIFO.
  std::vector<PendingBatch> pending_ring_;
  std::size_t pending_head_ = 0;
  std::size_t pending_count_ = 0;

  // Reorder buffer: slot seq % max_in_flight_ holds batch seq.
  std::vector<SortedBatch> sorted_ring_;

  // Storage of drained batches, recycled to the ingest thread.
  std::vector<ShardBatch> free_batches_;

  // Per-worker window-span scratch for SortRuns (reused across batches).
  std::vector<std::vector<std::span<float>>> window_scratch_;

  std::vector<std::thread> workers_;
  std::thread drain_thread_;
};

}  // namespace streamgpu::service

#endif  // STREAMGPU_SERVICE_SHARD_DISPATCHER_H_
