#include "service/stream_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/half.h"
#include "sketch/combiner.h"
#include "sketch/wire.h"

namespace streamgpu::service {

namespace {

namespace wire = sketch::wire;

constexpr std::size_t kDefaultBatchElements = std::size_t{1} << 16;

// Window-group width per SortRuns call (see shard_dispatcher.cc).
constexpr std::size_t kMaxRunsPerGroup = 64;

int ResolveShards(const ServiceConfig& config) {
  if (config.num_shards > 0) return config.num_shards;
  return 4 * std::max(config.num_workers, 1);
}

}  // namespace

core::Status ServiceConfig::Validate() const {
  if (num_workers < 1 || num_workers > 1024) {
    return core::Status::InvalidArgument("num_workers must be in [1, 1024]");
  }
  if (num_shards < 0) {
    return core::Status::InvalidArgument("num_shards must be >= 0");
  }
  if (max_batches_in_flight < 0) {
    return core::Status::InvalidArgument("max_batches_in_flight must be >= 0");
  }
  if (max_batches_in_flight > 0 && num_workers >= 2 &&
      max_batches_in_flight < num_workers) {
    return core::Status::InvalidArgument(
        "max_batches_in_flight below num_workers starves the pool");
  }
  return core::Status::Ok();
}

core::StatusOr<std::unique_ptr<StreamService>> StreamService::Create(
    const ServiceConfig& config) {
  core::Status status = config.Validate();
  if (!status.ok()) return status;
  return std::make_unique<StreamService>(config);
}

StreamService::StreamService(const ServiceConfig& config)
    : config_(config),
      obs_(config.obs),
      admission_(config.admission,
                 static_cast<std::size_t>(ResolveShards(config)),
                 config.shard_ingress_capacity) {
  const core::Status status = config_.Validate();
  STREAMGPU_CHECK_MSG(status.ok(), status.ToString().c_str());

  batch_elements_ = config_.shard_batch_elements > 0
                        ? config_.shard_batch_elements
                        : kDefaultBatchElements;
  const int shards = ResolveShards(config_);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());

  // One engine (and on GPU backends one simulated device) per worker; the
  // per-stream fields of Options are irrelevant to engine construction.
  core::Options engine_options;
  engine_options.backend = config_.backend;
  engine_options.planner = config_.planner;
  engine_options.gpu_format = config_.gpu_format;
  engines_ = core::MakeWorkerEngines(engine_options, config_.num_workers);
  quantize_ = engines_[0]->is_gpu() && config_.gpu_format == gpu::Format::kFloat16;

  if (obs_.metrics != nullptr) {
    m_observed_ = obs_.metrics->Counter("service.elements_observed");
    m_shed_ = obs_.metrics->Counter("service.elements_shed");
    m_batches_ = obs_.metrics->Counter("service.batches_dispatched");
    m_windows_ = obs_.metrics->Counter("service.windows_merged");
    g_streams_ = obs_.metrics->Gauge("service.streams");
    s_batch_query_ = obs_.metrics->Summary("service.batch_query_seconds");
    m_merge_queries_ = obs_.metrics->Counter("service.merge.queries");
    m_merge_shards_ = obs_.metrics->Counter("service.merge.shards");
    s_merge_query_ = obs_.metrics->Summary("service.merge.query_seconds");
  }

  if (config_.num_workers >= 2) {
    std::vector<sort::Sorter*> sorters;
    sorters.reserve(engines_.size());
    for (auto& engine : engines_) sorters.push_back(&engine->sorter());
    ShardDispatcher::Config dispatcher_config;
    dispatcher_config.max_batches_in_flight = config_.max_batches_in_flight;
    dispatcher_config.flight = obs_.flight;
    dispatcher_ = std::make_unique<ShardDispatcher>(
        dispatcher_config, std::move(sorters),
        [this](ShardBatch&& batch) { return MergeBatch(batch); });
  }
}

StreamService::~StreamService() = default;

StreamService::StreamState* StreamService::Find(const StreamKey& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : streams_[it->second].get();
}

std::pair<obs::MetricId, obs::MetricId> StreamService::TenantMetrics(
    std::uint64_t tenant) {
  if (obs_.metrics == nullptr) return {obs::kInvalidMetric, obs::kInvalidMetric};
  const auto it = tenant_metrics_.find(tenant);
  if (it != tenant_metrics_.end()) return it->second;
  if (tenant_metrics_.size() < config_.max_tenant_metric_series) {
    const obs::MetricLabels labels = {{"tenant", std::to_string(tenant)}};
    const std::pair<obs::MetricId, obs::MetricId> ids = {
        obs_.metrics->Counter("service.tenant.elements_observed", labels),
        obs_.metrics->Counter("service.tenant.elements_shed", labels)};
    tenant_metrics_.emplace(tenant, ids);
    return ids;
  }
  // Cardinality cap reached: every further tenant shares one overflow
  // series (the registry aborts at kMaxCounters registered series, so the
  // cap is a correctness bound, not just hygiene).
  if (overflow_tenant_metrics_.first == obs::kInvalidMetric) {
    const obs::MetricLabels labels = {{"tenant", "~other"}};
    overflow_tenant_metrics_ = {
        obs_.metrics->Counter("service.tenant.elements_observed", labels),
        obs_.metrics->Counter("service.tenant.elements_shed", labels)};
  }
  return overflow_tenant_metrics_;
}

core::Status StreamService::Register(const StreamKey& key,
                                     const StreamConfig& config) {
  if (index_.find(key) != index_.end()) {
    return core::Status::FailedPrecondition("stream already registered");
  }
  if (!config.track_quantiles && !config.track_frequencies) {
    return core::Status::InvalidArgument(
        "stream must track quantiles, frequencies, or both");
  }
  // Reuse the estimator-agnostic validation rules (epsilon range, sliding
  // window consistency, window_size vs block size).
  core::Options options;
  options.epsilon = config.epsilon;
  options.backend = config_.backend;
  options.planner = config_.planner;
  options.gpu_format = config_.gpu_format;
  options.window_size = config.window_size;
  options.sliding_window = config.sliding_window;
  options.expected_stream_length = config.expected_stream_length;
  options.quantile_sketch = config.quantile_sketch;
  core::Status status = options.Validate();
  if (!status.ok()) return status;

  // Resolve the processing window exactly as a dedicated estimator would —
  // the precondition for bit-identical answers.
  std::uint64_t window =
      config.track_quantiles
          ? core::NaturalQuantileWindow(config.epsilon, config.window_size,
                                        config.sliding_window)
          : core::NaturalFrequencyWindow(config.epsilon, config.window_size,
                                         config.sliding_window);
  if (config.track_frequencies) {
    const std::uint64_t frequency_window = core::NaturalFrequencyWindow(
        config.epsilon, config.window_size, config.sliding_window);
    if (config.track_quantiles && frequency_window != window) {
      return core::Status::InvalidArgument(
          "quantile and frequency processing windows differ; register two "
          "streams");
    }
    window = config.track_quantiles ? window : frequency_window;
    // Whole-history frequency rule (mirrors FrequencyEstimator::Create): a
    // window wider than the Manku-Motwani bucket voids the error guarantee.
    const std::uint64_t bucket =
        core::NaturalFrequencyWindow(config.epsilon, 0, 0);
    if (config.sliding_window == 0 && window > bucket) {
      return core::Status::InvalidArgument(
          "whole-history frequency window_size must not exceed ceil(1/epsilon)");
    }
  }

  auto state = std::make_unique<StreamState>(window, key);
  state->config = config;
  state->index = static_cast<std::uint32_t>(streams_.size());
  state->shard = static_cast<std::uint32_t>(StreamKeyHash{}(key) % shards_.size());
  if (config.track_quantiles) {
    state->quantiles.emplace(config.epsilon, window, config.sliding_window,
                             config.expected_stream_length,
                             config.quantile_sketch);
  }
  if (config.track_frequencies) {
    state->frequencies.emplace(config.epsilon, window, config.sliding_window);
  }
  const auto tenant_ids = TenantMetrics(key.tenant);
  state->tenant_observed = tenant_ids.first;
  state->tenant_shed = tenant_ids.second;

  index_.emplace(key, state->index);
  streams_.push_back(std::move(state));
  stats_.streams = streams_.size();
  if (obs_.metrics != nullptr) {
    obs_.metrics->Set(g_streams_, static_cast<double>(streams_.size()));
  }
  return core::Status::Ok();
}

core::StatusOr<std::size_t> StreamService::Append(const StreamKey& key,
                                                  std::span<const float> values) {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (state->finalized) {
    return core::Status::FailedPrecondition("stream is finalized");
  }
  if (values.empty()) return std::size_t{0};

  const std::size_t admitted = admission_.Admit(state->shard, values.size());
  const std::size_t dropped = values.size() - admitted;

  std::size_t consumed = 0;
  while (consumed < admitted) {
    const std::span<float> slot = state->batcher.Claim(admitted - consumed);
    if (quantize_) {
      for (std::size_t i = 0; i < slot.size(); ++i) {
        slot[i] = gpu::QuantizeToHalf(values[consumed + i]);
      }
    } else {
      std::copy_n(values.begin() + static_cast<std::ptrdiff_t>(consumed),
                  slot.size(), slot.begin());
    }
    consumed += slot.size();
    if (state->batcher.full()) {
      const core::Status status = StageWindow(*state, /*final_partial=*/false);
      if (!status.ok()) return status;
    }
  }

  state->observed += admitted;
  stats_.elements_observed += admitted;
  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(m_observed_, admitted);
    obs_.metrics->Add(state->tenant_observed, admitted);
  }
  if (dropped > 0) AccountShed(*state, dropped);
  return admitted;
}

void StreamService::AccountShed(StreamState& state, std::size_t dropped) {
  {
    // Shedding is the slow path; the shard summary lock serializes the
    // bound-widening against concurrent queries and drains.
    std::lock_guard<std::mutex> lock(shards_[state.shard]->summary_mu);
    if (state.quantiles) state.quantiles->ShedElements(dropped);
    if (state.frequencies) state.frequencies->ShedElements(dropped);
  }
  state.shed += dropped;
  stats_.elements_shed += dropped;
  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(m_shed_, dropped);
    obs_.metrics->Add(state.tenant_shed, dropped);
  }
  if (obs_.flight != nullptr) {
    obs_.flight->Record(obs::FlightEventKind::kLoadShed, "service", "admission",
                        state.index, static_cast<std::int64_t>(dropped),
                        static_cast<std::int64_t>(admission_.backlog(state.shard)));
  }
}

core::Status StreamService::StageWindow(StreamState& state, bool final_partial) {
  Shard& shard = *shards_[state.shard];
  if (state.pending_chunk < 0) {
    if (shard.used_chunks == shard.pending.chunks.size()) {
      shard.pending.chunks.emplace_back();
    }
    StreamChunk& chunk = shard.pending.chunks[shard.used_chunks];
    STREAMGPU_DCHECK(chunk.data.empty());
    chunk.stream = state.index;
    chunk.window_size = state.window_size;
    chunk.final_partial = false;
    state.pending_chunk = static_cast<int>(shard.used_chunks);
    ++shard.used_chunks;
  }
  StreamChunk& chunk =
      shard.pending.chunks[static_cast<std::size_t>(state.pending_chunk)];
  const std::span<const float> elements = state.batcher.contents();
  chunk.data.insert(chunk.data.end(), elements.begin(), elements.end());
  if (final_partial) chunk.final_partial = true;
  shard.pending.elements += elements.size();
  state.batcher.Clear();
  if (!paused_ && shard.pending.elements >= batch_elements_) {
    return DispatchShard(state.shard);
  }
  return core::Status::Ok();
}

core::Status StreamService::DispatchShard(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  if (shard.pending.elements == 0) return core::Status::Ok();
  shard.pending.shard = shard_index;
  admission_.OnDispatched(shard_index, shard.pending.elements);
  for (std::size_t c = 0; c < shard.used_chunks; ++c) {
    streams_[shard.pending.chunks[c].stream]->pending_chunk = -1;
  }
  shard.used_chunks = 0;
  ++stats_.batches_dispatched;
  if (obs_.metrics != nullptr) obs_.metrics->Add(m_batches_);

  if (dispatcher_ != nullptr) {
    const core::Status status = dispatcher_->Submit(std::move(shard.pending));
    shard.pending = dispatcher_->AcquireBatch();
    return status;
  }

  // Single-worker mode: sort and merge synchronously on the ingest thread,
  // then recycle the batch storage in place.
  inline_scratch_.clear();
  for (StreamChunk& chunk : shard.pending.chunks) {
    AppendChunkWindows(chunk, &inline_scratch_);
  }
  sort::Sorter& sorter = engines_[0]->sorter();
  shard.pending.run = sort::SortRunInfo{};
  for (std::size_t off = 0; off < inline_scratch_.size();
       off += kMaxRunsPerGroup) {
    const std::size_t count =
        std::min(kMaxRunsPerGroup, inline_scratch_.size() - off);
    sorter.SortRuns(
        std::span<std::span<float>>(inline_scratch_.data() + off, count));
    shard.pending.run += sorter.last_run();
    STREAMGPU_CHECK_MSG(sorter.last_quarantine_mask() == 0,
                        "service sorters wire no fault injection");
  }
  const core::Status status = MergeBatch(shard.pending);
  for (StreamChunk& chunk : shard.pending.chunks) {
    chunk.data.clear();
    chunk.final_partial = false;
  }
  shard.pending.elements = 0;
  return status;
}

core::Status StreamService::MergeBatch(ShardBatch& batch) {
  Shard& shard = *shards_[batch.shard];
  std::uint64_t windows = 0;
  {
    std::lock_guard<std::mutex> lock(shard.summary_mu);
    for (StreamChunk& chunk : batch.chunks) {
      if (chunk.data.empty()) continue;
      drain_scratch_.clear();
      AppendChunkWindows(chunk, &drain_scratch_);
      StreamState& state = *streams_[chunk.stream];
      for (const std::span<float> window : drain_scratch_) {
        if (state.quantiles) state.quantiles->MergeSortedWindow(window);
        if (state.frequencies) state.frequencies->MergeSortedWindow(window);
        ++windows;
      }
    }
  }
  windows_merged_.fetch_add(windows, std::memory_order_relaxed);
  if (obs_.metrics != nullptr) obs_.metrics->Add(m_windows_, windows);
  return core::Status::Ok();
}

core::Status StreamService::Flush(const StreamKey& key) {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (state->finalized) return core::Status::Ok();
  state->finalized = true;
  if (!state->batcher.empty()) {
    const core::Status status = StageWindow(*state, /*final_partial=*/true);
    if (!status.ok()) return status;
  }
  return DispatchShard(state->shard);
}

core::Status StreamService::FlushAll() {
  paused_ = false;
  for (auto& state : streams_) {
    if (state->finalized) continue;
    state->finalized = true;
    if (!state->batcher.empty()) {
      const core::Status status = StageWindow(*state, /*final_partial=*/true);
      if (!status.ok()) return status;
    }
  }
  return WaitIdle();
}

core::Status StreamService::WaitIdle() {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const core::Status status = DispatchShard(s);
    if (!status.ok()) return status;
  }
  return dispatcher_ != nullptr ? dispatcher_->WaitIdle() : core::Status::Ok();
}

core::Status StreamService::ResumeDispatch() {
  paused_ = false;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->pending.elements >= batch_elements_) {
      const core::Status status = DispatchShard(s);
      if (!status.ok()) return status;
    }
  }
  return core::Status::Ok();
}

core::StatusOr<core::QuantileReport> StreamService::Quantile(
    const StreamKey& key, double phi, std::uint64_t window) const {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (!state->quantiles) {
    return core::Status::InvalidArgument("stream does not track quantiles");
  }
  std::lock_guard<std::mutex> lock(shards_[state->shard]->summary_mu);
  return state->quantiles->Quantile(phi, window);
}

core::StatusOr<core::FrequencyReport> StreamService::HeavyHitters(
    const StreamKey& key, double support, std::uint64_t window) const {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (!state->frequencies) {
    return core::Status::InvalidArgument("stream does not track frequencies");
  }
  std::lock_guard<std::mutex> lock(shards_[state->shard]->summary_mu);
  return state->frequencies->HeavyHitters(support, window);
}

core::StatusOr<std::uint64_t> StreamService::EstimateCount(
    const StreamKey& key, float value, std::uint64_t window) const {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (!state->frequencies) {
    return core::Status::InvalidArgument("stream does not track frequencies");
  }
  const float probe = quantize_ ? gpu::QuantizeToHalf(value) : value;
  std::lock_guard<std::mutex> lock(shards_[state->shard]->summary_mu);
  return state->frequencies->EstimateCount(probe, window);
}

core::StatusOr<std::vector<std::uint8_t>> StreamService::ExportQuantileSummary(
    const StreamKey& key) const {
  StreamState* state = Find(key);
  if (state == nullptr) return core::Status::InvalidArgument("unknown stream");
  if (!state->quantiles) {
    return core::Status::InvalidArgument("stream does not track quantiles");
  }
  std::vector<std::uint8_t> bytes;
  std::lock_guard<std::mutex> lock(shards_[state->shard]->summary_mu);
  const core::Status status = state->quantiles->AppendWireSummary(&bytes);
  if (!status.ok()) return status;
  return bytes;
}

core::StatusOr<core::QuantileReport> StreamService::MergedQuantile(
    std::span<const StreamKey> keys, double phi) const {
  if (keys.empty()) {
    return core::Status::InvalidArgument("MergedQuantile needs at least one key");
  }
  Timer timer;
  sketch::QuantileShardCombiner combiner;
  std::uint64_t windows_quarantined = 0;
  std::uint64_t elements_dropped = 0;
  std::uint64_t elements_shed = 0;
  for (const StreamKey& key : keys) {
    core::StatusOr<std::vector<std::uint8_t>> bytes = ExportQuantileSummary(key);
    if (!bytes.ok()) return bytes.status();
    const core::Status status = combiner.AddShard(*bytes);
    if (!status.ok()) return status;
    // Lost coverage is a property of each source stream, not of its
    // serialized summary; fold it in here so the merged bound stays honest.
    StreamState* state = Find(key);
    std::lock_guard<std::mutex> lock(shards_[state->shard]->summary_mu);
    windows_quarantined += state->quantiles->windows_quarantined();
    elements_dropped += state->quantiles->elements_dropped();
    elements_shed += state->quantiles->elements_shed();
  }
  core::QuantileReport report = combiner.Quantile(phi);
  report.windows_quarantined = windows_quarantined;
  report.elements_dropped = elements_dropped;
  report.elements_shed = elements_shed;
  report.rank_error_bound += elements_dropped + elements_shed;
  if (obs_.metrics != nullptr) {
    obs_.metrics->Add(m_merge_queries_);
    obs_.metrics->Add(m_merge_shards_, keys.size());
    obs_.metrics->Observe(s_merge_query_, timer.ElapsedSeconds());
  }
  if (obs_.flight != nullptr) {
    obs_.flight->Record(obs::FlightEventKind::kSummaryMerged, "service", "merge",
                        /*seq=*/0, static_cast<std::int64_t>(keys.size()),
                        static_cast<std::int64_t>(report.window_coverage));
  }
  return report;
}

std::vector<core::QuantileReport> StreamService::BatchQuantiles(
    std::span<const StreamKey> keys, double phi, std::uint64_t window) const {
  std::vector<core::QuantileReport> out(keys.size());
  // Bucket the answer slots by owning shard so each shard's summary lock is
  // taken once per call, not once per stream.
  std::vector<std::vector<std::pair<std::size_t, StreamState*>>> by_shard(
      shards_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    StreamState* state = Find(keys[i]);
    STREAMGPU_CHECK_MSG(state != nullptr, "BatchQuantiles: unknown stream");
    STREAMGPU_CHECK_MSG(state->quantiles.has_value(),
                        "BatchQuantiles: stream does not track quantiles");
    by_shard[state->shard].emplace_back(i, state);
  }
  Timer timer;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    std::lock_guard<std::mutex> lock(shards_[s]->summary_mu);
    for (const auto& [slot, state] : by_shard[s]) {
      out[slot] = state->quantiles->Quantile(phi, window);
    }
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->Observe(s_batch_query_, timer.ElapsedSeconds());
  }
  return out;
}

core::Status StreamService::Checkpoint(durable::CheckpointWriter* writer) {
  if (writer == nullptr) {
    return core::Status::InvalidArgument("Checkpoint requires a writer");
  }
  // A consistent cut: every staged window is merged before the snapshot, so
  // only per-stream partial windows (< one window each) remain in staging.
  if (core::Status s = WaitIdle(); !s.ok()) return s;

  writer->Begin();
  durable::SnapshotHeader header;
  header.mode = durable::kSnapshotModeService;
  header.aux = streams_.size();
  std::vector<std::uint8_t> payload;
  durable::AppendSnapshotHeader(header, &payload);
  writer->Add(durable::RecordType::kSnapshotHeader, payload);

  payload.clear();
  wire::Append<std::uint64_t>(&payload, stats_.elements_observed);
  wire::Append<std::uint64_t>(&payload, stats_.elements_shed);
  wire::Append<std::uint64_t>(&payload, stats_.batches_dispatched);
  wire::Append<std::uint64_t>(&payload,
                              windows_merged_.load(std::memory_order_relaxed));
  writer->Add(durable::RecordType::kServiceStats, payload);

  payload.clear();
  wire::Append<std::uint64_t>(&payload, shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    wire::Append<std::uint64_t>(&payload, admission_.shed(s));
  }
  writer->Add(durable::RecordType::kAdmissionState, payload);

  for (const auto& state : streams_) {
    payload.clear();
    wire::Append<std::uint64_t>(&payload, state->key.tenant);
    wire::Append<std::uint64_t>(&payload, state->key.stream);
    wire::Append<double>(&payload, state->config.epsilon);
    wire::Append<std::uint64_t>(&payload, state->config.window_size);
    wire::Append<std::uint64_t>(&payload, state->config.sliding_window);
    wire::Append<std::uint64_t>(&payload, state->config.expected_stream_length);
    wire::Append<std::uint16_t>(
        &payload, static_cast<std::uint16_t>(state->config.quantile_sketch));
    wire::Append<std::uint8_t>(&payload, state->config.track_quantiles ? 1 : 0);
    wire::Append<std::uint8_t>(&payload, state->config.track_frequencies ? 1 : 0);
    wire::Append<std::uint8_t>(&payload, state->finalized ? 1 : 0);
    wire::Append<std::uint64_t>(&payload, state->observed);
    wire::Append<std::uint64_t>(&payload, state->shed);
    writer->Add(durable::RecordType::kStreamBegin, payload);

    if (state->quantiles) {
      payload.clear();
      if (core::Status s = state->quantiles->AppendCheckpointState(&payload);
          !s.ok()) {
        return s;
      }
      writer->Add(durable::RecordType::kQuantileState, payload);
    }
    if (state->frequencies) {
      payload.clear();
      if (core::Status s = state->frequencies->AppendCheckpointState(&payload);
          !s.ok()) {
        return s;
      }
      writer->Add(durable::RecordType::kFrequencyState, payload);
    }
    if (!state->batcher.empty()) {
      payload.clear();
      durable::AppendWindowBuffer(state->batcher.contents(), &payload);
      writer->Add(durable::RecordType::kWindowBuffer, payload);
    }
  }
  // The watermark is everything the service ever offered admission:
  // admitted + shed. RestoreFrom's caller replays each stream's suffix past
  // its per-stream observed + shed counts.
  return writer->Commit(stats_.elements_observed + stats_.elements_shed);
}

core::StatusOr<std::unique_ptr<StreamService>> StreamService::RestoreFrom(
    const ServiceConfig& config, const std::string& dir) {
  if (dir.empty()) {
    return core::Status::InvalidArgument(
        "RestoreFrom requires a checkpoint directory");
  }
  core::StatusOr<durable::Snapshot> snapshot = durable::LoadLatestSnapshot(dir);
  if (!snapshot.ok()) return snapshot.status();
  core::StatusOr<std::unique_ptr<StreamService>> service = Create(config);
  if (!service.ok()) return service.status();
  const core::Status status = service.value()->InstallSnapshot(snapshot.value());
  if (!status.ok()) return status;
  durable::RecordRestore(config.obs, snapshot.value());
  return service;
}

core::Status StreamService::InstallSnapshot(const durable::Snapshot& snapshot) {
  if (!streams_.empty()) {
    return core::Status::FailedPrecondition(
        "snapshots install into a freshly constructed service");
  }
  if (snapshot.records.empty()) {
    return core::Status::InvalidArgument("snapshot has no records");
  }
  durable::SnapshotHeader header;
  if (!durable::ReadSnapshotHeader(snapshot.records[0].payload, &header)) {
    return core::Status::InvalidArgument("malformed snapshot header");
  }
  if (header.mode != durable::kSnapshotModeService) {
    return core::Status::InvalidArgument(
        "checkpoint was written by a different subsystem (header mode " +
        std::to_string(header.mode) + ")");
  }

  ServiceStats restored_stats;
  std::vector<std::uint64_t> shard_shed;
  bool stats_seen = false;
  bool admission_seen = false;
  StreamState* current = nullptr;
  bool have_quantile_state = false;
  bool have_frequency_state = false;
  bool have_window_buffer = false;

  // Validates the just-finished stream group: its state records are all
  // present and together cover exactly the recorded watermark.
  const auto finish_stream = [&]() -> core::Status {
    if (current == nullptr) return core::Status::Ok();
    if (current->quantiles && !have_quantile_state) {
      return core::Status::InvalidArgument(
          "stream is missing its quantile-state record");
    }
    if (current->frequencies && !have_frequency_state) {
      return core::Status::InvalidArgument(
          "stream is missing its frequency-state record");
    }
    const std::uint64_t buffered = current->batcher.buffered();
    if (current->finalized && buffered != 0) {
      return core::Status::InvalidArgument(
          "finalized stream still stages elements");
    }
    const auto covers = [&](const std::uint64_t processed,
                            const std::uint64_t dropped,
                            const std::uint64_t shed) {
      return processed + dropped + buffered == current->observed &&
             shed == current->shed;
    };
    if (current->quantiles &&
        !covers(current->quantiles->processed(),
                current->quantiles->elements_dropped(),
                current->quantiles->elements_shed())) {
      return core::Status::InvalidArgument(
          "restored quantile state does not cover the stream's watermark");
    }
    if (current->frequencies &&
        !covers(current->frequencies->processed(),
                current->frequencies->elements_dropped(),
                current->frequencies->elements_shed())) {
      return core::Status::InvalidArgument(
          "restored frequency state does not cover the stream's watermark");
    }
    return core::Status::Ok();
  };

  for (std::size_t i = 1; i < snapshot.records.size(); ++i) {
    const durable::OwnedRecord& record = snapshot.records[i];
    std::span<const std::uint8_t> payload = record.payload;
    switch (record.type) {
      case durable::RecordType::kServiceStats: {
        if (stats_seen || current != nullptr) {
          return core::Status::InvalidArgument("misplaced service-stats record");
        }
        if (!wire::Read(&payload, &restored_stats.elements_observed) ||
            !wire::Read(&payload, &restored_stats.elements_shed) ||
            !wire::Read(&payload, &restored_stats.batches_dispatched) ||
            !wire::Read(&payload, &restored_stats.windows_merged) ||
            !payload.empty()) {
          return core::Status::InvalidArgument("malformed service-stats record");
        }
        stats_seen = true;
        break;
      }
      case durable::RecordType::kAdmissionState: {
        if (admission_seen || current != nullptr) {
          return core::Status::InvalidArgument("misplaced admission-state record");
        }
        std::uint64_t count = 0;
        if (!wire::Read(&payload, &count) || count != shards_.size()) {
          return core::Status::InvalidArgument(
              "admission-state shard count does not match the service "
              "configuration");
        }
        shard_shed.resize(shards_.size());
        for (std::uint64_t s = 0; s < count; ++s) {
          if (!wire::Read(&payload, &shard_shed[s])) {
            return core::Status::InvalidArgument(
                "truncated admission-state record");
          }
        }
        if (!payload.empty()) {
          return core::Status::InvalidArgument(
              "trailing bytes in admission-state record");
        }
        admission_seen = true;
        break;
      }
      case durable::RecordType::kStreamBegin: {
        if (core::Status s = finish_stream(); !s.ok()) return s;
        current = nullptr;
        StreamKey key;
        StreamConfig config;
        std::uint16_t kind = 0;
        std::uint8_t track_quantiles = 0;
        std::uint8_t track_frequencies = 0;
        std::uint8_t finalized = 0;
        std::uint64_t observed = 0;
        std::uint64_t shed = 0;
        if (!wire::Read(&payload, &key.tenant) ||
            !wire::Read(&payload, &key.stream) ||
            !wire::Read(&payload, &config.epsilon) ||
            !wire::Read(&payload, &config.window_size) ||
            !wire::Read(&payload, &config.sliding_window) ||
            !wire::Read(&payload, &config.expected_stream_length) ||
            !wire::Read(&payload, &kind) ||
            !wire::Read(&payload, &track_quantiles) ||
            !wire::Read(&payload, &track_frequencies) ||
            !wire::Read(&payload, &finalized) ||
            !wire::Read(&payload, &observed) ||
            !wire::Read(&payload, &shed) || !payload.empty()) {
          return core::Status::InvalidArgument("malformed stream record");
        }
        if (config.sliding_window != 0) {
          return core::Status::InvalidArgument(
              "snapshot holds a sliding-window stream (not checkpointable)");
        }
        if (kind > static_cast<std::uint16_t>(sketch::QuantileSketchKind::kKll) ||
            track_quantiles > 1 || track_frequencies > 1 || finalized > 1) {
          return core::Status::InvalidArgument("malformed stream record");
        }
        config.quantile_sketch = static_cast<sketch::QuantileSketchKind>(kind);
        config.track_quantiles = track_quantiles != 0;
        config.track_frequencies = track_frequencies != 0;
        // Re-registration assigns the same index (file order is
        // registration order) and the same shard (the hash is stable).
        if (core::Status s = Register(key, config); !s.ok()) return s;
        current = streams_.back().get();
        current->observed = observed;
        current->shed = shed;
        current->finalized = finalized != 0;
        have_quantile_state = false;
        have_frequency_state = false;
        have_window_buffer = false;
        break;
      }
      case durable::RecordType::kQuantileState: {
        if (current == nullptr || !current->quantiles || have_quantile_state) {
          return core::Status::InvalidArgument("misplaced quantile-state record");
        }
        if (core::Status s = current->quantiles->RestoreCheckpointState(payload);
            !s.ok()) {
          return s;
        }
        have_quantile_state = true;
        break;
      }
      case durable::RecordType::kFrequencyState: {
        if (current == nullptr || !current->frequencies || have_frequency_state) {
          return core::Status::InvalidArgument(
              "misplaced frequency-state record");
        }
        if (core::Status s =
                current->frequencies->RestoreCheckpointState(payload);
            !s.ok()) {
          return s;
        }
        have_frequency_state = true;
        break;
      }
      case durable::RecordType::kWindowBuffer: {
        if (current == nullptr || have_window_buffer) {
          return core::Status::InvalidArgument("misplaced window-buffer record");
        }
        std::vector<float> buffered;
        if (!durable::ReadWindowBuffer(payload, &buffered)) {
          return core::Status::InvalidArgument("malformed window-buffer record");
        }
        if (buffered.empty() || buffered.size() >= current->window_size) {
          return core::Status::InvalidArgument(
              "window-buffer record stages " + std::to_string(buffered.size()) +
              " elements; a service stream stages between 1 and " +
              std::to_string(current->window_size - 1));
        }
        // Already quantized at original ingest; copy back verbatim.
        const std::span<float> slot = current->batcher.Claim(buffered.size());
        std::copy(buffered.begin(), buffered.end(), slot.begin());
        have_window_buffer = true;
        break;
      }
      default:
        return core::Status::InvalidArgument(
            std::string("unexpected ") + durable::RecordTypeName(record.type) +
            " record in a service snapshot");
    }
  }
  if (core::Status s = finish_stream(); !s.ok()) return s;
  if (!stats_seen || !admission_seen) {
    return core::Status::InvalidArgument(
        "snapshot is missing its service accounting records");
  }
  if (streams_.size() != header.aux) {
    return core::Status::InvalidArgument(
        "snapshot header stream count does not match its stream records");
  }
  if (snapshot.watermark !=
      restored_stats.elements_observed + restored_stats.elements_shed) {
    return core::Status::InvalidArgument(
        "snapshot watermark does not cover the restored service state");
  }

  // Reinstate admission accounting: the backlog is exactly the re-staged
  // partial windows; shed counts come from the snapshot.
  std::vector<std::size_t> backlog(shards_.size(), 0);
  for (const auto& state : streams_) {
    backlog[state->shard] += state->batcher.buffered();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    admission_.RestoreShard(s, backlog[s], shard_shed[s]);
  }

  const std::uint64_t streams = stats_.streams;  // set by Register
  stats_ = restored_stats;
  stats_.streams = streams;
  windows_merged_.store(restored_stats.windows_merged,
                        std::memory_order_relaxed);

  // Re-seed the live counters so metric exports stay continuous across
  // restarts (gauges refresh on their own).
  if (obs_.metrics != nullptr) {
    if (stats_.elements_observed > 0) {
      obs_.metrics->Add(m_observed_, stats_.elements_observed);
    }
    if (stats_.elements_shed > 0) obs_.metrics->Add(m_shed_, stats_.elements_shed);
    if (stats_.batches_dispatched > 0) {
      obs_.metrics->Add(m_batches_, stats_.batches_dispatched);
    }
    if (stats_.windows_merged > 0) {
      obs_.metrics->Add(m_windows_, stats_.windows_merged);
    }
    for (const auto& state : streams_) {
      if (state->observed > 0) {
        obs_.metrics->Add(state->tenant_observed, state->observed);
      }
      if (state->shed > 0) obs_.metrics->Add(state->tenant_shed, state->shed);
    }
  }
  return core::Status::Ok();
}

ServiceStats StreamService::stats() const {
  ServiceStats out = stats_;
  out.windows_merged = windows_merged_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace streamgpu::service
