// StreamService: multi-tenant stream-mining service multiplexing up to
// hundreds of thousands of registered streams onto ONE shared worker pool.
//
// The paper's estimators assume one pipeline per stream; at DSMS scale (§1:
// "thousands of continuous queries over hundreds of data streams") that is a
// thread pool per stream — untenable at 100k streams. The service instead
// shards streams by key onto a fixed set of ingress shards, coalesces small
// per-stream writes into per-shard micro-batches, and dispatches those
// batches to a single ShardDispatcher worker pool: one queue operation and
// one sorter invocation amortize across many streams, so aggregate ingest
// throughput tracks the worker count, not the stream count.
//
// Per-stream answers stay bit-identical to a dedicated estimator pipeline:
// both sides delegate summary maintenance to the same
// core::{Quantile,Frequency}SummaryCore, every backend sorts a window to the
// same permutation regardless of batching, and the dispatcher's ordered
// drain merges each stream's windows in ingest order (docs/SERVICE.md,
// "Bit-identity").
//
// Admission control (the §1 load-shedding DSMS frontend, live): each shard's
// backlog of admitted-but-undispatched elements is bounded by
// stream::AdmissionController. Under AdmissionPolicy::kShed, arrivals beyond
// the cap are dropped newest-first, per-stream shed counts are surfaced in
// reports (QuantileReport::elements_shed), and the reported error bound
// widens by the shed count — the answer's guarantee stays honest under
// overload, exactly like quarantined windows.
//
// Thread contract:
//  * Register/Append/Flush/FlushAll/WaitIdle/Pause/Resume: one ingest thread.
//  * Queries (Quantile/HeavyHitters/EstimateCount/BatchQuantiles) may run
//    concurrently with Append from other threads — they briefly take the
//    owning shard's summary lock, never stalling ingest on other shards —
//    but not concurrently with Register (registration mutates the registry).
//  * Query answers cover the windows drained so far; call FlushAll() +
//    WaitIdle() first for answers over everything appended.

#ifndef STREAMGPU_SERVICE_STREAM_SERVICE_H_
#define STREAMGPU_SERVICE_STREAM_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/options.h"
#include "core/report.h"
#include "core/status.h"
#include "core/summary_core.h"
#include "durable/checkpoint.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "service/shard_dispatcher.h"
#include "sketch/quantile_sketch.h"
#include "stream/dsms.h"
#include "stream/window_buffer.h"

namespace streamgpu::service {

/// Identity of one registered stream: tenant plus stream id within the
/// tenant. Tenants exist for metric labeling and reporting; isolation is
/// per-stream.
struct StreamKey {
  std::uint64_t tenant = 0;
  std::uint64_t stream = 0;

  friend bool operator==(const StreamKey& a, const StreamKey& b) {
    return a.tenant == b.tenant && a.stream == b.stream;
  }
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& key) const {
    // splitmix64 finalizer over the combined words: cheap, well-mixed, and
    // deterministic across platforms (shard assignment must be stable).
    std::uint64_t x = key.tenant * 0x9E3779B97F4A7C15ull ^ key.stream;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Per-stream approximation configuration — the subset of core::Options that
/// is a property of the stream rather than of the shared execution engine.
struct StreamConfig {
  /// Rank / frequency error bound: at most epsilon * N.
  double epsilon = 0.001;

  /// Elements per processing window; 0 = the natural width (see
  /// core::NaturalQuantileWindow). Must equal a dedicated estimator's
  /// resolved window for bit-identical answers (it does by construction
  /// when both sides use the same Options fields).
  std::uint64_t window_size = 0;

  /// Sliding-window width W; 0 = whole-history queries.
  std::uint64_t sliding_window = 0;

  /// A-priori stream length for the whole-history quantile structure; 0 =
  /// provision generously.
  std::uint64_t expected_stream_length = 0;

  /// Whole-history quantile backend (sketch/quantile_sketch.h). Non-GK
  /// kinds are rejected when combined with a sliding window, mirroring
  /// core::Options::Validate().
  sketch::QuantileSketchKind quantile_sketch = sketch::QuantileSketchKind::kGk;

  /// Which summaries to maintain. One sorted pass serves both: tracking
  /// both costs one sort plus two merges per window.
  bool track_quantiles = true;
  bool track_frequencies = false;
};

/// Shared execution-engine configuration for one StreamService.
struct ServiceConfig {
  /// Sorting backend shared by every stream (one Sorter per worker). The
  /// host radix/merge backend is the aggregate-throughput default; any
  /// backend is valid — answers are backend-independent by the determinism
  /// contract (the GPU f16 path additionally quantizes at ingest).
  core::Backend backend = core::Backend::kCpuRadixMerge;

  /// Planner knobs for Backend::kAuto.
  core::PlannerConfig planner;

  /// Texture precision for the GPU backends (kFloat16 quantizes ingest).
  gpu::Format gpu_format = gpu::Format::kFloat16;

  /// Sort workers in the shared pool. 1 = synchronous dispatch on the
  /// ingest thread (no threads spawned); >= 2 runs the ShardDispatcher.
  int num_workers = 1;

  /// Ingress shards streams hash onto. 0 = 4 * num_workers (enough
  /// dispatch granularity to keep every worker busy).
  int num_shards = 0;

  /// Elements a shard coalesces before dispatching one micro-batch.
  /// 0 = 64k. Larger batches amortize more per dispatch; smaller ones
  /// bound per-stream merge latency.
  std::size_t shard_batch_elements = 0;

  /// Dispatcher backpressure cap; 0 = num_workers + 2 batches.
  int max_batches_in_flight = 0;

  /// What Append() does when a shard's ingress backlog is full: kBlock
  /// (default) relies on dispatcher backpressure; kShed drops the excess
  /// and widens the affected streams' error bounds (docs/SERVICE.md).
  stream::AdmissionPolicy admission = stream::AdmissionPolicy::kBlock;

  /// Per-shard backlog cap in elements (kShed only).
  std::size_t shard_ingress_capacity = std::size_t{1} << 20;

  /// Distinct tenants given their own labeled metric series
  /// ("service.tenant.*"{tenant="..."}); later tenants share the "~other"
  /// series. Bounds registry slot usage (obs::MetricsRegistry::kMaxCounters
  /// is a hard cap the registry aborts at).
  std::size_t max_tenant_metric_series = 32;

  /// Observability sinks (borrowed; null = disabled).
  obs::Observability obs;

  /// First configuration error, or OK.
  core::Status Validate() const;
};

/// Aggregate service accounting (point-in-time; single ingest thread).
struct ServiceStats {
  std::uint64_t streams = 0;
  std::uint64_t elements_observed = 0;  ///< admitted into stream staging
  std::uint64_t elements_shed = 0;      ///< dropped by admission control
  std::uint64_t batches_dispatched = 0;
  std::uint64_t windows_merged = 0;
};

/// Multi-tenant stream-mining service. See the file comment for the model
/// and docs/SERVICE.md for the full guide.
class StreamService {
 public:
  /// Validated construction; the returned service is never null on ok().
  static core::StatusOr<std::unique_ptr<StreamService>> Create(
      const ServiceConfig& config);

  /// CHECK-aborts on invalid config; prefer Create().
  explicit StreamService(const ServiceConfig& config);

  /// Finishes in-flight work, then joins the pool. Appended-but-unflushed
  /// elements still buffered in stream staging are discarded — call
  /// FlushAll() first when final answers matter.
  ~StreamService();

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Registers a stream. Returns kFailedPrecondition when the key already
  /// exists, or the StreamConfig's validation error. Registration is cheap
  /// (no window buffer is reserved until the first append), so hundreds of
  /// thousands of mostly-idle streams stay in bounded memory.
  core::Status Register(const StreamKey& key, const StreamConfig& config);

  bool Contains(const StreamKey& key) const {
    return index_.find(key) != index_.end();
  }
  std::size_t num_streams() const { return streams_.size(); }

  /// Appends elements to one stream. Returns the number admitted (always
  /// values.size() under kBlock; possibly fewer under kShed — the admitted
  /// count is the exact prefix of `values` that entered the stream, so a
  /// caller can mirror it elsewhere). Returns kInvalidArgument for an
  /// unknown key, kFailedPrecondition after Flush(key), or the dispatcher's
  /// sticky failure.
  core::StatusOr<std::size_t> Append(const StreamKey& key,
                                     std::span<const float> values);

  /// Finalizes one stream: its buffered partial window is dispatched (as
  /// the stream's final, possibly partial, window) and further appends are
  /// rejected. Idempotent. Does not wait — call WaitIdle() before relying
  /// on the final answer.
  core::Status Flush(const StreamKey& key);

  /// Finalizes every stream, dispatches all pending shard batches, and
  /// waits for the pool to drain. After an OK return, every query answers
  /// over everything ever admitted.
  core::Status FlushAll();

  /// Dispatches every pending shard batch without finalizing any stream
  /// (partial windows stay staged), then waits for the pool to drain.
  core::Status WaitIdle();

  /// Maintenance / test control: while paused, filled shard batches
  /// accumulate at the ingress (bounded by the admission policy) instead of
  /// dispatching. Resume dispatches every batch that reached the dispatch
  /// threshold while paused.
  void PauseDispatch() { paused_ = true; }
  core::Status ResumeDispatch();

  /// The phi-quantile of one stream over the windows drained so far. The
  /// report's error bound includes quarantine and shed widening; its
  /// elements_shed field carries the stream's shed count explicitly.
  /// Returns kInvalidArgument for an unknown key or a stream that does not
  /// track quantiles.
  core::StatusOr<core::QuantileReport> Quantile(const StreamKey& key, double phi,
                                                std::uint64_t window = 0) const;

  /// Heavy hitters of one stream (requires track_frequencies).
  core::StatusOr<core::FrequencyReport> HeavyHitters(
      const StreamKey& key, double support, std::uint64_t window = 0) const;

  /// Estimated frequency of `value` in one stream (requires
  /// track_frequencies). The value is quantized through binary16 first on
  /// the GPU f16 path, mirroring ingest.
  core::StatusOr<std::uint64_t> EstimateCount(const StreamKey& key, float value,
                                              std::uint64_t window = 0) const;

  /// Serializes one stream's mergeable quantile summary as a wire envelope
  /// (sketch/serialize.h) — the shard export `streamgpu_cli merge` and the
  /// combiners consume. Taken under the owning shard's summary lock, so it
  /// snapshots a consistent summary concurrent with ingest; call FlushAll()
  /// first for a summary over everything appended. Returns
  /// kInvalidArgument for an unknown key or a stream that does not track
  /// quantiles, kFailedPrecondition for sliding mode (not mergeable).
  core::StatusOr<std::vector<std::uint8_t>> ExportQuantileSummary(
      const StreamKey& key) const;

  /// Cross-shard query: merges the named streams' summaries and answers the
  /// phi-quantile over the union of their elements — the scale-out path
  /// where one logical stream was partitioned across keys. Every stream's
  /// quarantine/shed accounting is summed into the report, so the stated
  /// bound stays honest over the union. The merge is performed over
  /// serialized exports in canonical order (sketch/combiner.h), so the
  /// answer is bit-identical regardless of key order. All streams must
  /// track quantiles in whole-history mode with the same backend kind (and,
  /// KLL, the same epsilon).
  core::StatusOr<core::QuantileReport> MergedQuantile(
      std::span<const StreamKey> keys, double phi) const;

  /// Batch query: the phi-quantile of every key, in order. Groups keys by
  /// shard and takes each shard's summary lock once, so snapshotting
  /// thousands of reports costs one lock round per shard, not per stream.
  /// Every key must be registered and track quantiles (CHECKed).
  std::vector<core::QuantileReport> BatchQuantiles(
      std::span<const StreamKey> keys, double phi,
      std::uint64_t window = 0) const;

  /// Snapshots the whole service — every registered stream's configuration,
  /// summary cores, staged partial window, observed/shed watermarks, plus
  /// the admission controller's shed accounting and the aggregate stats —
  /// into `writer` as one crash-consistent snapshot (docs/DURABILITY.md).
  /// Waits for in-flight shard batches first (WaitIdle), so the snapshot is
  /// a consistent cut; like Register, it must not run concurrently with
  /// queries. Fails with kFailedPrecondition when any stream is in sliding
  /// mode (not checkpointable).
  core::Status Checkpoint(durable::CheckpointWriter* writer);

  /// Rebuilds a service from the newest usable snapshot in `dir`:
  /// re-registers every stream (same indices and shard assignment — both
  /// are deterministic), reinstalls its summary cores and staged partial
  /// windows, and reinstates shed/admission/stats accounting, so reports
  /// and exports are bit-identical to the checkpointed service after the
  /// caller replays each stream's un-checkpointed suffix (the elements past
  /// observed + shed). kFailedPrecondition when `dir` holds no usable
  /// checkpoint (callers typically start fresh); kInvalidArgument when the
  /// snapshot is corrupt or disagrees with `config` — never a crash.
  static core::StatusOr<std::unique_ptr<StreamService>> RestoreFrom(
      const ServiceConfig& config, const std::string& dir);

  /// Elements ever offered to one stream (admitted + shed) — the replay
  /// cursor for durable restore: after RestoreFrom, the caller re-appends
  /// each stream's source suffix past this point. kInvalidArgument for an
  /// unknown key.
  core::StatusOr<std::uint64_t> OfferedLength(const StreamKey& key) const {
    const StreamState* state = Find(key);
    if (state == nullptr) return core::Status::InvalidArgument("unknown stream key");
    return state->observed + state->shed;
  }

  /// Aggregate accounting. Stable after WaitIdle()/FlushAll().
  ServiceStats stats() const;

  /// The admission controller (per-shard backlogs and shed counts).
  const stream::AdmissionController& admission() const { return admission_; }

  const ServiceConfig& config() const { return config_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool dispatch_paused() const { return paused_; }

 private:
  /// One registered stream. Summary cores are guarded by the owning shard's
  /// summary lock; staging (batcher) belongs to the ingest thread.
  struct StreamState {
    StreamKey key;
    StreamConfig config;  ///< as registered (checkpoint re-registration)
    std::uint32_t index = 0;
    std::uint32_t shard = 0;
    std::uint64_t window_size = 0;
    stream::WindowBatcher batcher;
    std::optional<core::QuantileSummaryCore> quantiles;
    std::optional<core::FrequencySummaryCore> frequencies;
    std::uint64_t observed = 0;  ///< admitted elements
    std::uint64_t shed = 0;      ///< dropped by admission control
    int pending_chunk = -1;      ///< index into the shard's pending chunks
    bool finalized = false;
    obs::MetricId tenant_observed = obs::kInvalidMetric;
    obs::MetricId tenant_shed = obs::kInvalidMetric;

    StreamState(std::uint64_t window, const StreamKey& k)
        : key(k), window_size(window),
          batcher(window, /*batch_windows=*/1, /*lazy_reserve=*/true) {}
  };

  /// One ingress shard: the micro-batch being coalesced (ingest thread) and
  /// the lock serializing summary merges against queries.
  struct Shard {
    ShardBatch pending;
    std::size_t used_chunks = 0;
    mutable std::mutex summary_mu;
  };

  StreamState* Find(const StreamKey& key) const;

  /// Installs a validated snapshot into this freshly constructed service
  /// (RestoreFrom()'s second half).
  core::Status InstallSnapshot(const durable::Snapshot& snapshot);

  /// Moves the stream's completed window (or finalizing partial window)
  /// from its staging buffer into the shard's pending chunk, dispatching
  /// the shard when the micro-batch threshold is reached.
  core::Status StageWindow(StreamState& state, bool final_partial);

  /// Submits (or, single-worker, synchronously processes) a shard's pending
  /// micro-batch.
  core::Status DispatchShard(std::uint32_t shard_index);

  /// Drain side: merges every chunk's windows into its stream's summary
  /// cores under the shard's summary lock.
  core::Status MergeBatch(ShardBatch& batch);

  /// Accounts `dropped` shed elements against the stream (summary cores,
  /// counters, flight event).
  void AccountShed(StreamState& state, std::size_t dropped);

  /// The tenant's labeled counter ids, creating them on first use (capped
  /// at max_tenant_metric_series; overflow shares the "~other" series).
  std::pair<obs::MetricId, obs::MetricId> TenantMetrics(std::uint64_t tenant);

  ServiceConfig config_;
  obs::Observability obs_;
  bool quantize_ = false;  ///< GPU f16 path: quantize at ingest
  std::size_t batch_elements_ = 0;

  std::unordered_map<StreamKey, std::uint32_t, StreamKeyHash> index_;
  std::vector<std::unique_ptr<StreamState>> streams_;
  std::vector<std::unique_ptr<Shard>> shards_;

  stream::AdmissionController admission_;
  bool paused_ = false;

  /// Ingest-thread accounting; windows_merged lives separately because the
  /// drain thread increments it (relaxed atomic; exact after WaitIdle()).
  ServiceStats stats_;
  std::atomic<std::uint64_t> windows_merged_{0};

  /// Tenant label cache: tenant id -> (observed, shed) counter ids.
  std::unordered_map<std::uint64_t, std::pair<obs::MetricId, obs::MetricId>>
      tenant_metrics_;
  std::pair<obs::MetricId, obs::MetricId> overflow_tenant_metrics_{
      obs::kInvalidMetric, obs::kInvalidMetric};

  /// Service-level instruments (kInvalidMetric when metrics are unwired).
  obs::MetricId m_observed_ = obs::kInvalidMetric;
  obs::MetricId m_shed_ = obs::kInvalidMetric;
  obs::MetricId m_batches_ = obs::kInvalidMetric;
  obs::MetricId m_windows_ = obs::kInvalidMetric;
  obs::MetricId g_streams_ = obs::kInvalidMetric;
  obs::MetricId s_batch_query_ = obs::kInvalidMetric;
  obs::MetricId m_merge_queries_ = obs::kInvalidMetric;
  obs::MetricId m_merge_shards_ = obs::kInvalidMetric;
  obs::MetricId s_merge_query_ = obs::kInvalidMetric;

  /// One engine per worker (each owning its Sorter and, on GPU backends,
  /// its simulated device). engines_[0] serves the synchronous single-
  /// worker mode. Declared before the dispatcher so worker threads stop
  /// before the sorters they borrow are destroyed.
  std::vector<std::unique_ptr<core::SortEngine>> engines_;
  std::vector<std::span<float>> inline_scratch_;  ///< single-worker SortRuns spans
  std::vector<std::span<float>> drain_scratch_;   ///< drain-side window splitting
  std::unique_ptr<ShardDispatcher> dispatcher_;
};

}  // namespace streamgpu::service

#endif  // STREAMGPU_SERVICE_STREAM_SERVICE_H_
