#include "sketch/combiner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "common/check.h"

namespace streamgpu::sketch {

namespace {

using core::Status;

std::uint64_t StatedBound(double epsilon, std::uint64_t count) {
  return static_cast<std::uint64_t>(std::ceil(epsilon * static_cast<double>(count)));
}

/// Canonical fold order: indices of `shards` sorted by serialized bytes.
/// Any AddShard permutation of the same shard set yields this exact order,
/// which makes the merged answer merge-order independent bit-for-bit.
template <typename ShardT>
std::vector<std::size_t> CanonicalOrder(const std::vector<ShardT>& shards) {
  std::vector<std::size_t> order(shards.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&shards](std::size_t a, std::size_t b) {
    return std::lexicographical_compare(
        shards[a].bytes.begin(), shards[a].bytes.end(),
        shards[b].bytes.begin(), shards[b].bytes.end());
  });
  return order;
}

/// The envelope prefix of `bytes` that one deserialize pass consumed.
std::vector<std::uint8_t> ConsumedPrefix(std::span<const std::uint8_t> original,
                                         std::span<const std::uint8_t> rest) {
  const std::size_t consumed = original.size() - rest.size();
  return std::vector<std::uint8_t>(original.begin(), original.begin() + consumed);
}

}  // namespace

Status QuantileShardCombiner::AddShard(std::span<const std::uint8_t> bytes) {
  core::StatusOr<SketchType> peeked = PeekSketchType(bytes);
  if (!peeked.ok()) return peeked.status();
  if (*peeked != SketchType::kGkSummary && *peeked != SketchType::kKll) {
    return Status::InvalidArgument(std::string("shard holds a ") +
                                   SketchTypeName(*peeked) +
                                   " sketch; the quantile combiner accepts gk or kll");
  }
  if (type_.has_value() && *type_ != *peeked) {
    return Status::InvalidArgument(
        std::string("shard sketch type ") + SketchTypeName(*peeked) +
        " differs from the previously admitted " + SketchTypeName(*type_));
  }

  std::span<const std::uint8_t> cursor = bytes;
  if (*peeked == SketchType::kGkSummary) {
    core::StatusOr<GkSummary> parsed = DeserializeGkSummary(&cursor);
    if (!parsed.ok()) return parsed.status();
    shards_.push_back({ConsumedPrefix(bytes, cursor), *std::move(parsed)});
  } else {
    core::StatusOr<KllSketch> parsed = DeserializeKllSketch(&cursor);
    if (!parsed.ok()) return parsed.status();
    if (!shards_.empty()) {
      const double have = std::get<KllSketch>(shards_.front().parsed).epsilon();
      if (parsed->epsilon() != have) {
        return Status::InvalidArgument(
            "KLL shard epsilon " + std::to_string(parsed->epsilon()) +
            " differs from the previously admitted " + std::to_string(have) +
            "; shards must share one capacity schedule");
      }
    }
    shards_.push_back({ConsumedPrefix(bytes, cursor), *std::move(parsed)});
  }
  type_ = *peeked;
  return Status::Ok();
}

std::variant<GkSummary, KllSketch> QuantileShardCombiner::Merged() const {
  STREAMGPU_CHECK(!shards_.empty());
  const std::vector<std::size_t> order = CanonicalOrder(shards_);
  if (*type_ == SketchType::kGkSummary) {
    GkSummary merged;
    for (std::size_t i : order) {
      merged = GkSummary::Merge(merged, std::get<GkSummary>(shards_[i].parsed));
    }
    return merged;
  }
  KllSketch merged = std::get<KllSketch>(shards_[order.front()].parsed);
  for (std::size_t pos = 1; pos < order.size(); ++pos) {
    const Status status =
        merged.Merge(std::get<KllSketch>(shards_[order[pos]].parsed));
    STREAMGPU_CHECK_MSG(status.ok(), "epsilon mismatch past AddShard validation");
  }
  return merged;
}

core::QuantileReport QuantileShardCombiner::Quantile(double phi) const {
  core::QuantileReport report;
  report.phi = phi;
  if (shards_.empty()) return report;  // no shards: value 0 over coverage 0

  const std::variant<GkSummary, KllSketch> merged = Merged();
  if (const auto* gk = std::get_if<GkSummary>(&merged)) {
    report.epsilon = gk->epsilon();
    report.stream_length = gk->count();
    report.window_coverage = gk->count();
    report.rank_error_bound = StatedBound(gk->epsilon(), gk->count());
    if (gk->count() != 0) report.value = gk->Query(phi);
  } else {
    const KllSketch& kll = std::get<KllSketch>(merged);
    report.epsilon = kll.epsilon();
    report.stream_length = kll.count();
    report.window_coverage = kll.count();
    report.rank_error_bound = kll.rank_error_bound();
    if (kll.count() != 0) report.value = kll.Quantile(phi);
  }
  return report;
}

Status QuantileShardCombiner::AppendMergedSummary(std::vector<std::uint8_t>* out) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("no shard summaries admitted; nothing to merge");
  }
  const std::variant<GkSummary, KllSketch> merged = Merged();
  if (const auto* gk = std::get_if<GkSummary>(&merged)) {
    return SerializeSummary(*gk, out);
  }
  return SerializeSummary(std::get<KllSketch>(merged), out);
}

Status FrequencyShardCombiner::AddShard(std::span<const std::uint8_t> bytes) {
  core::StatusOr<SketchType> peeked = PeekSketchType(bytes);
  if (!peeked.ok()) return peeked.status();
  if (*peeked != SketchType::kMisraGries && *peeked != SketchType::kCountMin) {
    return Status::InvalidArgument(
        std::string("shard holds a ") + SketchTypeName(*peeked) +
        " sketch; the frequency combiner accepts misra-gries or count-min");
  }
  if (type_.has_value() && *type_ != *peeked) {
    return Status::InvalidArgument(
        std::string("shard sketch type ") + SketchTypeName(*peeked) +
        " differs from the previously admitted " + SketchTypeName(*type_));
  }

  std::span<const std::uint8_t> cursor = bytes;
  if (*peeked == SketchType::kMisraGries) {
    core::StatusOr<MisraGries> parsed = DeserializeMisraGries(&cursor);
    if (!parsed.ok()) return parsed.status();
    if (!shards_.empty()) {
      const double have = std::get<MisraGries>(shards_.front().parsed).epsilon();
      if (parsed->epsilon() != have) {
        return Status::InvalidArgument(
            "Misra-Gries shard epsilon " + std::to_string(parsed->epsilon()) +
            " differs from the previously admitted " + std::to_string(have) +
            "; shards must share one counter budget");
      }
    }
    shards_.push_back({ConsumedPrefix(bytes, cursor), *std::move(parsed)});
  } else {
    core::StatusOr<CountMinSketch> parsed = DeserializeCountMin(&cursor);
    if (!parsed.ok()) return parsed.status();
    if (!shards_.empty()) {
      const auto& have = std::get<CountMinSketch>(shards_.front().parsed);
      if (parsed->epsilon() != have.epsilon() || parsed->delta() != have.delta()) {
        return Status::InvalidArgument(
            "Count-Min shard parameters differ from the previously admitted "
            "shard; shards must share one geometry");
      }
    }
    shards_.push_back({ConsumedPrefix(bytes, cursor), *std::move(parsed)});
  }
  type_ = *peeked;
  return Status::Ok();
}

std::variant<MisraGries, CountMinSketch> FrequencyShardCombiner::Merged() const {
  STREAMGPU_CHECK(!shards_.empty());
  const std::vector<std::size_t> order = CanonicalOrder(shards_);
  if (*type_ == SketchType::kMisraGries) {
    MisraGries merged = std::get<MisraGries>(shards_[order.front()].parsed);
    for (std::size_t pos = 1; pos < order.size(); ++pos) {
      const Status status =
          merged.Merge(std::get<MisraGries>(shards_[order[pos]].parsed));
      STREAMGPU_CHECK_MSG(status.ok(), "epsilon mismatch past AddShard validation");
    }
    return merged;
  }
  CountMinSketch merged = std::get<CountMinSketch>(shards_[order.front()].parsed);
  for (std::size_t pos = 1; pos < order.size(); ++pos) {
    const Status status =
        merged.Merge(std::get<CountMinSketch>(shards_[order[pos]].parsed));
    STREAMGPU_CHECK_MSG(status.ok(), "parameter mismatch past AddShard validation");
  }
  return merged;
}

core::StatusOr<core::FrequencyReport> FrequencyShardCombiner::HeavyHitters(
    double support) const {
  core::FrequencyReport report;
  report.support = support;
  if (shards_.empty()) return report;  // no shards: no items over coverage 0
  if (*type_ == SketchType::kCountMin) {
    return Status::FailedPrecondition(
        "Count-Min shards cannot enumerate heavy hitters (the sketch stores "
        "no keys); use EstimateCount, or ship Misra-Gries shards");
  }
  const MisraGries merged = std::get<MisraGries>(Merged());
  report.epsilon = merged.epsilon();
  report.stream_length = merged.stream_length();
  report.window_coverage = merged.stream_length();
  report.error_bound = StatedBound(merged.epsilon(), merged.stream_length());
  for (const auto& [value, estimate] : merged.HeavyHitters(support)) {
    report.items.push_back({value, estimate});
  }
  return report;
}

std::uint64_t FrequencyShardCombiner::EstimateCount(float value) const {
  if (shards_.empty()) return 0;
  const std::variant<MisraGries, CountMinSketch> merged = Merged();
  if (const auto* mg = std::get_if<MisraGries>(&merged)) {
    return mg->EstimateCount(value);
  }
  const std::int64_t estimate =
      std::get<CountMinSketch>(merged).EstimateCount(value);
  return estimate < 0 ? 0 : static_cast<std::uint64_t>(estimate);
}

Status FrequencyShardCombiner::AppendMergedSummary(std::vector<std::uint8_t>* out) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("no shard summaries admitted; nothing to merge");
  }
  const std::variant<MisraGries, CountMinSketch> merged = Merged();
  if (const auto* mg = std::get_if<MisraGries>(&merged)) {
    return SerializeSummary(*mg, out);
  }
  return SerializeSummary(std::get<CountMinSketch>(merged), out);
}

}  // namespace streamgpu::sketch
