// Shard-summary combiners: merge S serialized shard summaries
// (sketch/serialize.h envelopes) into one global QuantileReport /
// FrequencyReport — the scale-out path where S shards ingest independently
// (separate processes, separate machines) and ship summaries to a combiner,
// the sensor-network setting of [21] the source paper builds on.
//
// Merge-order independence: shards are folded in a CANONICAL order — sorted
// by their serialized bytes — so any permutation of AddShard calls produces
// a bit-identical merged answer. Combined with the per-shard determinism
// contract (ordered drain, seeded KLL compaction), a fixed set of shard
// files yields one exact answer regardless of merge order, worker count, or
// sort backend (docs/SKETCHES.md, "Merge-order canonicalization").
//
// Error composition (proved per sketch on its Merge contract, exercised by
// tests/combiner_test.cc): GK keeps max(epsilon_i) over the combined count;
// KLL's tracked worst case adds and its stated epsilon carries over;
// Misra-Gries and Count-Min keep epsilon * N_total outright. Empty shards
// are identities; a combiner holding only empty shards (or none) answers
// value 0 over coverage 0, matching the summary cores' empty contract.
//
// Single-threaded value types; callers serialize access.

#ifndef STREAMGPU_SKETCH_COMBINER_H_
#define STREAMGPU_SKETCH_COMBINER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "core/report.h"
#include "core/status.h"
#include "sketch/count_min.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"
#include "sketch/misra_gries.h"
#include "sketch/serialize.h"

namespace streamgpu::sketch {

/// Merges serialized quantile shard summaries (GK or KLL envelopes; the
/// legacy GK framing is accepted through the serialize shim).
class QuantileShardCombiner {
 public:
  /// Parses and admits one shard summary. Returns kInvalidArgument on a
  /// malformed envelope, a non-quantile sketch type, a type differing from
  /// the shards already admitted, or (KLL) an epsilon differing from
  /// theirs.
  core::Status AddShard(std::span<const std::uint8_t> bytes);

  /// The phi-quantile over the union of every admitted shard's stream.
  /// With no (or only empty) shards: value 0 over coverage 0.
  core::QuantileReport Quantile(double phi) const;

  /// Re-serializes the merged summary as one envelope appended to `out`
  /// (tree-structured merges: combine combiner outputs). Fails with
  /// kFailedPrecondition when no shard has been admitted.
  core::Status AppendMergedSummary(std::vector<std::uint8_t>* out) const;

  std::size_t shards() const { return shards_.size(); }

  /// The admitted sketch type; unset before the first AddShard.
  std::optional<SketchType> type() const { return type_; }

 private:
  struct Shard {
    std::vector<std::uint8_t> bytes;  ///< canonical-order key
    std::variant<GkSummary, KllSketch> parsed;
  };

  /// Folds the shards in canonical (byte-sorted) order.
  std::variant<GkSummary, KllSketch> Merged() const;

  std::optional<SketchType> type_;
  std::vector<Shard> shards_;
};

/// Merges serialized frequency shard summaries (Misra-Gries or Count-Min
/// envelopes).
class FrequencyShardCombiner {
 public:
  /// Parses and admits one shard summary (same contract as the quantile
  /// combiner; Count-Min additionally requires matching epsilon/delta).
  core::Status AddShard(std::span<const std::uint8_t> bytes);

  /// Heavy hitters above `support` over the union stream. Misra-Gries
  /// shards only — Count-Min cannot enumerate its keys, so it fails with
  /// kFailedPrecondition. With no (or only empty) shards: no items over
  /// coverage 0.
  core::StatusOr<core::FrequencyReport> HeavyHitters(double support) const;

  /// Estimated frequency of `value` over the union stream (both types).
  /// Returns 0 with no shards.
  std::uint64_t EstimateCount(float value) const;

  /// Re-serializes the merged summary (see QuantileShardCombiner).
  core::Status AppendMergedSummary(std::vector<std::uint8_t>* out) const;

  std::size_t shards() const { return shards_.size(); }
  std::optional<SketchType> type() const { return type_; }

 private:
  struct Shard {
    std::vector<std::uint8_t> bytes;
    std::variant<MisraGries, CountMinSketch> parsed;
  };

  std::variant<MisraGries, CountMinSketch> Merged() const;

  std::optional<SketchType> type_;
  std::vector<Shard> shards_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_COMBINER_H_
