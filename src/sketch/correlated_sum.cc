#include "sketch/correlated_sum.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

CorrelatedSumSummary CorrelatedSumSummary::FromSortedPairs(
    std::span<const std::pair<float, float>> sorted_by_x, double target_epsilon) {
  STREAMGPU_CHECK(target_epsilon > 0.0);
  CorrelatedSumSummary out;
  if (sorted_by_x.empty()) return out;

  double total = 0;
  for (const auto& [x, y] : sorted_by_x) {
    STREAMGPU_CHECK_MSG(y >= 0.0f, "correlated sums require non-negative y");
    total += y;
  }
  out.total_ = total;
  out.count_ = sorted_by_x.size();
  out.epsilon_ = target_epsilon;

  // Walk runs of equal x, emitting a tuple whenever skipping the run would
  // let more than 2*epsilon*total of unrecorded mass accumulate between
  // emitted tuples. First and last runs are always emitted, so queries
  // below the minimum and at/above the maximum are exact.
  const double budget = 2.0 * target_epsilon * total;
  double cum = 0;          // mass through the end of the current run
  double skipped = 0;      // mass of skipped runs since the last emission
  std::size_t i = 0;
  while (i < sorted_by_x.size()) {
    const float x = sorted_by_x[i].first;
    double run_mass = 0;
    std::size_t j = i;
    while (j < sorted_by_x.size() && sorted_by_x[j].first == x) {
      STREAMGPU_DCHECK(j == i || sorted_by_x[j - 1].first <= sorted_by_x[j].first);
      run_mass += sorted_by_x[j].second;
      ++j;
    }
    cum += run_mass;
    const bool last = j == sorted_by_x.size();
    const bool first = out.tuples_.empty();
    if (first || last || skipped + run_mass > budget) {
      out.tuples_.push_back({x, cum, cum, cum - run_mass});
      skipped = 0;
    } else {
      skipped += run_mass;
    }
    i = j;
  }
  return out;
}

CorrelatedSumSummary CorrelatedSumSummary::Merge(const CorrelatedSumSummary& a,
                                                 const CorrelatedSumSummary& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;

  CorrelatedSumSummary out;
  out.total_ = a.total_ + b.total_;
  out.count_ = a.count_ + b.count_;
  out.epsilon_ = std::max(a.epsilon_, b.epsilon_);
  out.tuples_.reserve(a.size() + b.size());

  // For a tuple x from one summary, the other contributes (mass is
  // value-based, so ties need no ordering convention):
  //   smin: its largest tuple with value <= x certainly lies at or below x;
  //   smax: at most pmax of its first tuple with value > x (or its total);
  //   pmax: at most pmax of its first tuple with value >= x (or its total).
  const auto emit = [&out](const CsTuple& t, const CorrelatedSumSummary& other,
                           std::size_t le /* last index with value <= t.x, or npos */,
                           std::size_t ge /* first index with value >= t.x */,
                           std::size_t gt /* first index with value > t.x */) {
    CsTuple m = t;
    if (le != static_cast<std::size_t>(-1)) m.smin += other.tuples_[le].smin;
    m.smax += gt < other.size() ? other.tuples_[gt].pmax : other.total_;
    m.pmax += ge < other.size() ? other.tuples_[ge].pmax : other.total_;
    out.tuples_.push_back(m);
  };

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() || (i < a.size() && a.tuples_[i].x <= b.tuples_[j].x);
    const CorrelatedSumSummary& own = take_a ? a : b;
    const CorrelatedSumSummary& other = take_a ? b : a;
    std::size_t& own_idx = take_a ? i : j;
    const CsTuple& t = own.tuples_[own_idx];

    // Boundary indices in `other` (linear scans amortize over the merge).
    std::size_t ge = take_a ? j : i;
    while (ge < other.size() && other.tuples_[ge].x < t.x) ++ge;
    std::size_t gt = ge;
    while (gt < other.size() && other.tuples_[gt].x <= t.x) ++gt;
    const std::size_t le = gt == 0 ? static_cast<std::size_t>(-1) : gt - 1;
    emit(t, other,
         le != static_cast<std::size_t>(-1) && other.tuples_[le].x <= t.x
             ? le
             : static_cast<std::size_t>(-1),
         ge, gt);
    ++own_idx;
  }
  return out;
}

CorrelatedSumSummary CorrelatedSumSummary::Prune(std::size_t max_tuples) const {
  STREAMGPU_CHECK(max_tuples >= 1);
  if (size() <= max_tuples + 1) return *this;

  CorrelatedSumSummary out;
  out.total_ = total_;
  out.count_ = count_;
  out.epsilon_ = epsilon_ + 1.0 / (2.0 * static_cast<double>(max_tuples));
  out.tuples_.reserve(max_tuples + 1);
  for (std::size_t k = 0; k <= max_tuples; ++k) {
    const double target =
        static_cast<double>(k) * total_ / static_cast<double>(max_tuples);
    // First tuple whose midpoint mass reaches the target (midpoints are
    // nondecreasing).
    const auto it = std::partition_point(
        tuples_.begin(), tuples_.end(),
        [target](const CsTuple& t) { return (t.smin + t.smax) / 2.0 < target; });
    const CsTuple& chosen = it == tuples_.end() ? tuples_.back() : *it;
    if (out.tuples_.empty() || out.tuples_.back().x != chosen.x) {
      out.tuples_.push_back(chosen);
    }
  }
  // Keep the extremes so out-of-range queries stay exact.
  if (out.tuples_.back().x != tuples_.back().x) out.tuples_.push_back(tuples_.back());
  if (out.tuples_.front().x != tuples_.front().x) {
    out.tuples_.insert(out.tuples_.begin(), tuples_.front());
  }
  return out;
}

double CorrelatedSumSummary::SumBelow(float threshold) const {
  if (empty()) return 0.0;
  // Last tuple with x <= threshold.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), threshold,
      [](float c, const CsTuple& t) { return c < t.x; });
  if (it == tuples_.begin()) return 0.0;  // below the minimum: exact zero
  const CsTuple& at = *(it - 1);
  const double lo = at.smin;
  const double hi = std::max(lo, it == tuples_.end() ? total_ : it->pmax);
  return (lo + hi) / 2.0;
}

}  // namespace streamgpu::sketch
