// Correlated sum aggregates — the second extension query §1.2 claims the
// machinery supports ("hierarchical heavy hitter and correlated sum
// aggregate queries").
//
// Over a stream of pairs (x, y) with y >= 0, the summary answers
// SUM(y) WHERE x <= c for any threshold c, within epsilon * SUM(y) — and,
// composed with a quantile summary over x, correlated aggregates such as
// "the total of y over the lowest phi fraction of x".
//
// The structure is the Greenwald-Khanna summary with ranks generalized to
// y-mass: tuples hold a threshold value x and lower/upper bounds on the
// total y-mass of pairs whose x is at most that value. FromSortedPairs
// samples the x-sorted window every epsilon*mass of y; Merge recombines the
// mass bounds exactly like GK recombines rank bounds.

#ifndef STREAMGPU_SKETCH_CORRELATED_SUM_H_
#define STREAMGPU_SKETCH_CORRELATED_SUM_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace streamgpu::sketch {

/// One summary tuple: a threshold and bounds on the y-mass at or below it.
struct CsTuple {
  float x = 0;        ///< threshold value (an observed x)
  double smin = 0;    ///< y-mass certainly contributed by pairs with x' <= x
  double smax = 0;    ///< y-mass possibly contributed by pairs with x' <= x
  double pmax = 0;    ///< upper bound on the y-mass of pairs with x' < x
};

/// An epsilon-approximate correlated-sum summary.
class CorrelatedSumSummary {
 public:
  CorrelatedSumSummary() = default;

  /// Builds a summary from pairs sorted ascending by x (y >= 0 required).
  /// Samples a tuple whenever epsilon * (window's total y) more mass has
  /// accumulated; the result's epsilon() is <= target_epsilon.
  static CorrelatedSumSummary FromSortedPairs(
      std::span<const std::pair<float, float>> sorted_by_x, double target_epsilon);

  /// Combines two summaries over disjoint pair sets; the result is
  /// max(a.epsilon(), b.epsilon())-approximate for the combined mass.
  static CorrelatedSumSummary Merge(const CorrelatedSumSummary& a,
                                    const CorrelatedSumSummary& b);

  /// Reduces to at most max_tuples + 1 tuples at the price of
  /// 1/(2*max_tuples) additional relative error.
  CorrelatedSumSummary Prune(std::size_t max_tuples) const;

  /// Estimated SUM(y) over pairs with x <= threshold, within
  /// epsilon() * total_sum() of the truth.
  double SumBelow(float threshold) const;

  /// Total y-mass covered (exact).
  double total_sum() const { return total_; }

  /// Number of pairs covered.
  std::uint64_t count() const { return count_; }

  /// Mass-error bound as a fraction of total_sum().
  double epsilon() const { return epsilon_; }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<CsTuple>& tuples() const { return tuples_; }

 private:
  std::vector<CsTuple> tuples_;  ///< ascending by x
  double total_ = 0;
  std::uint64_t count_ = 0;
  double epsilon_ = 0;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_CORRELATED_SUM_H_
