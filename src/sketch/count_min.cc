#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"

namespace streamgpu::sketch {

CountMinSketch::CountMinSketch(double epsilon, double delta)
    : epsilon_(epsilon), delta_(delta) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(delta > 0.0 && delta < 1.0);
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / epsilon));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  depth_ = std::max<std::size_t>(depth_, 1);
  counters_.assign(width_ * depth_, 0);
  // Fixed distinct odd seeds per row (splitmix-style derivation).
  row_seeds_.resize(depth_);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (auto& seed : row_seeds_) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    seed = z ^ (z >> 31);
  }
}

std::uint64_t CountMinSketch::Hash(float value, std::size_t row) const {
  // Canonicalize -0.0f so it hashes like +0.0f (they compare equal).
  if (value == 0.0f) value = 0.0f;
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  std::uint64_t x = (static_cast<std::uint64_t>(bits) + 1) * row_seeds_[row];
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

void CountMinSketch::Update(float value, std::int64_t weight) {
  total_ += weight;
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[row * width_ + Hash(value, row) % width_] += weight;
  }
}

std::int64_t CountMinSketch::EstimateCount(float value) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[row * width_ + Hash(value, row) % width_]);
  }
  return best;
}

core::Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.epsilon_ != epsilon_ || other.delta_ != delta_) {
    return core::Status::InvalidArgument(
        "cannot merge Count-Min sketches with different parameters (epsilon " +
        std::to_string(epsilon_) + "/" + std::to_string(other.epsilon_) +
        ", delta " + std::to_string(delta_) + "/" + std::to_string(other.delta_) +
        "): the counter geometries and row hashes differ");
  }
  STREAMGPU_CHECK(other.width_ == width_ && other.depth_ == depth_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
  return core::Status::Ok();
}

bool CountMinSketch::FromParts(double epsilon, double delta, std::int64_t total,
                               std::size_t width, std::size_t depth,
                               std::vector<std::int64_t> counters,
                               CountMinSketch* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) return false;
  if (!(delta > 0.0 && delta < 1.0)) return false;
  CountMinSketch parsed(epsilon, delta);
  // The geometry and row hashes are pure functions of (epsilon, delta), so
  // matching dimensions restore the exact sketch the writer held.
  if (width != parsed.width_ || depth != parsed.depth_) return false;
  if (counters.size() != width * depth) return false;
  parsed.total_ = total;
  parsed.counters_ = std::move(counters);
  *out = std::move(parsed);
  return true;
}

}  // namespace streamgpu::sketch
