#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace streamgpu::sketch {

CountMinSketch::CountMinSketch(double epsilon, double delta)
    : epsilon_(epsilon), delta_(delta) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(delta > 0.0 && delta < 1.0);
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / epsilon));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  depth_ = std::max<std::size_t>(depth_, 1);
  counters_.assign(width_ * depth_, 0);
  // Fixed distinct odd seeds per row (splitmix-style derivation).
  row_seeds_.resize(depth_);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (auto& seed : row_seeds_) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    seed = z ^ (z >> 31);
  }
}

std::uint64_t CountMinSketch::Hash(float value, std::size_t row) const {
  // Canonicalize -0.0f so it hashes like +0.0f (they compare equal).
  if (value == 0.0f) value = 0.0f;
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  std::uint64_t x = (static_cast<std::uint64_t>(bits) + 1) * row_seeds_[row];
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

void CountMinSketch::Update(float value, std::int64_t weight) {
  total_ += weight;
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[row * width_ + Hash(value, row) % width_] += weight;
  }
}

std::int64_t CountMinSketch::EstimateCount(float value) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[row * width_ + Hash(value, row) % width_]);
  }
  return best;
}

}  // namespace streamgpu::sketch
