// Count-Min sketch — the hash-based frequency-estimation family of §2.1
// ("The hash-based approaches for frequency counts use a hash table and each
// item in the stream owns a respective list of counters in the table. These
// algorithms can also handle delete operations.") Included as the
// probabilistic, delete-capable baseline to the paper's deterministic
// sample-based summaries.
//
// Guarantees (Cormode-Muthukrishnan): with width w = ceil(e/epsilon) and
// depth d = ceil(ln(1/delta)), estimates never undercount and overcount by
// at most epsilon * N with probability 1 - delta.

#ifndef STREAMGPU_SKETCH_COUNT_MIN_H_
#define STREAMGPU_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"

namespace streamgpu::sketch {

/// A Count-Min sketch over float-valued stream items.
class CountMinSketch {
 public:
  /// epsilon in (0, 1): overcount bound as a fraction of the stream's total
  /// weight. delta in (0, 1): failure probability of that bound per query.
  CountMinSketch(double epsilon, double delta);

  /// Adds `weight` occurrences of `value` (negative weights implement
  /// deletes, the capability §2.1 credits the hash-based family with).
  void Update(float value, std::int64_t weight = 1);

  /// Processes a batch of unit-weight elements.
  void ObserveBatch(std::span<const float> values) {
    for (float v : values) Update(v);
  }

  /// Estimated frequency: >= the true frequency, and <= true + epsilon * N
  /// with probability 1 - delta (for non-negative streams).
  std::int64_t EstimateCount(float value) const;

  /// Total weight inserted (sum of updates).
  std::int64_t total_weight() const { return total_; }

  /// Counter-array dimensions.
  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }

  /// The raw counter array (depth x width, row-major) — the serialization
  /// payload.
  const std::vector<std::int64_t>& counters() const { return counters_; }

  /// Folds `other` into this sketch by element-wise counter addition —
  /// Count-Min is linear, so the merged sketch is exactly the sketch of the
  /// concatenated streams: estimates overcount by at most
  /// epsilon * (total_weight() + other.total_weight()) with probability
  /// 1 - delta, the same stated bound (docs/SKETCHES.md). Requires identical
  /// epsilon and delta (identical geometry and row hashes); returns
  /// kInvalidArgument otherwise.
  core::Status Merge(const CountMinSketch& other);

  /// Reconstructs a sketch from its serialized components. Validates that
  /// epsilon/delta are in (0, 1) and that width/depth/counter-count match
  /// the geometry those parameters derive (the row hashes are a pure
  /// function of depth, so matching geometry restores them exactly);
  /// returns false on violation, leaving `out` untouched.
  static bool FromParts(double epsilon, double delta, std::int64_t total,
                        std::size_t width, std::size_t depth,
                        std::vector<std::int64_t> counters, CountMinSketch* out);

 private:
  std::uint64_t Hash(float value, std::size_t row) const;

  double epsilon_;
  double delta_;
  std::size_t width_;
  std::size_t depth_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> counters_;       ///< depth x width, row-major
  std::vector<std::uint64_t> row_seeds_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_COUNT_MIN_H_
