#include "sketch/exact.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

std::unordered_map<float, std::uint64_t> ExactCounts(std::span<const float> data) {
  std::unordered_map<float, std::uint64_t> counts;
  counts.reserve(data.size() / 4 + 1);
  for (float v : data) ++counts[v];
  return counts;
}

std::vector<std::pair<float, std::uint64_t>> ExactHeavyHitters(std::span<const float> data,
                                                               double support) {
  const auto counts = ExactCounts(data);
  const double threshold = support * static_cast<double>(data.size());
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const auto& [value, count] : counts) {
    if (static_cast<double>(count) > threshold) out.emplace_back(value, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

float ExactQuantile(std::span<const float> data, double phi) {
  STREAMGPU_CHECK(!data.empty());
  STREAMGPU_CHECK(phi > 0.0 && phi <= 1.0);
  std::vector<float> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(phi * static_cast<double>(sorted.size())));
  return sorted[std::max<std::uint64_t>(rank, 1) - 1];
}

std::pair<std::uint64_t, std::uint64_t> ExactRankRange(std::span<const float> data,
                                                       float value) {
  std::uint64_t below = 0;
  std::uint64_t at_or_below = 0;
  for (float v : data) {
    if (v < value) ++below;
    if (v <= value) ++at_or_below;
  }
  return {below, at_or_below == 0 ? 0 : at_or_below - 1};
}

}  // namespace streamgpu::sketch
