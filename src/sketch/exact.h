// Exact offline reference computations — ground truth for tests, examples,
// and the accuracy columns of the benchmark harness. These hold the whole
// data set in memory, which is precisely what streaming algorithms avoid.

#ifndef STREAMGPU_SKETCH_EXACT_H_
#define STREAMGPU_SKETCH_EXACT_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace streamgpu::sketch {

/// Exact frequency of every distinct value.
std::unordered_map<float, std::uint64_t> ExactCounts(std::span<const float> data);

/// Exact heavy hitters: every value with frequency > support * data.size(),
/// in descending frequency order, as (value, frequency) pairs.
std::vector<std::pair<float, std::uint64_t>> ExactHeavyHitters(std::span<const float> data,
                                                               double support);

/// Exact phi-quantile: the element of rank ceil(phi * N) (1-based), phi in
/// (0, 1].
float ExactQuantile(std::span<const float> data, double phi);

/// Zero-based rank bounds of `value` in `data`: [number of elements strictly
/// smaller, number of elements <= value - 1]. Any rank in this closed
/// interval is a correct rank for `value`.
std::pair<std::uint64_t, std::uint64_t> ExactRankRange(std::span<const float> data,
                                                       float value);

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_EXACT_H_
