#include "sketch/exponential_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"

namespace streamgpu::sketch {

EhQuantileSummary::EhQuantileSummary(double epsilon, std::uint64_t window_size,
                                     std::uint64_t expected_length)
    : epsilon_(epsilon), window_size_(window_size) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(window_size >= 1);
  const std::uint64_t expected_windows =
      std::max<std::uint64_t>(1, (expected_length + window_size - 1) / window_size);
  // Combining pairs of equal-id buckets means ids grow like log2 of the
  // number of windows; one extra level absorbs rounding.
  levels_ = static_cast<int>(
                std::ceil(std::log2(static_cast<double>(expected_windows) + 1.0))) +
            1;
  // Each combine's prune may add at most the per-level budget increment
  // eps/(2*(levels+1)), i.e. 1/(2*prune_tuples) <= eps/(2*(levels+1)).
  prune_tuples_ = static_cast<std::size_t>(
      std::ceil(static_cast<double>(levels_ + 1) / epsilon_));
  buckets_.resize(static_cast<std::size_t>(levels_) + 8);
}

bool EhQuantileSummary::FromParts(double epsilon, std::uint64_t window_size,
                                  std::uint64_t expected_length,
                                  std::uint64_t count,
                                  std::vector<GkSummary> buckets,
                                  EhQuantileSummary* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0) || window_size < 1) return false;
  // Bucket ids grow like log2 of the window count, so even a 2^64-element
  // history cannot legitimately occupy more than ~64 ids past the
  // provisioned levels. Anything deeper is corrupted input.
  EhQuantileSummary fresh(epsilon, window_size, expected_length);
  if (buckets.size() > fresh.buckets_.size() + 64) return false;
  std::uint64_t total = 0;
  for (const GkSummary& bucket : buckets) total += bucket.count();
  if (total != count) return false;
  if (buckets.size() > fresh.buckets_.size()) fresh.buckets_.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    fresh.buckets_[i] = std::move(buckets[i]);
  }
  fresh.count_ = count;
  *out = std::move(fresh);
  return true;
}

double EhQuantileSummary::LevelBudget(int bucket_id) const {
  return epsilon_ / 2.0 + epsilon_ * static_cast<double>(bucket_id) /
                              (2.0 * static_cast<double>(levels_ + 1));
}

void EhQuantileSummary::AddWindowSummary(GkSummary window_summary) {
  if (window_summary.empty()) return;
  STREAMGPU_CHECK_MSG(window_summary.epsilon() <= LevelBudget(1) + 1e-12,
                      "window summary must be (epsilon/2)-approximate");
  count_ += window_summary.count();

  GkSummary carry = std::move(window_summary);
  std::size_t id = 1;
  while (id <= buckets_.size() && !buckets_[id - 1].empty()) {
    // Combine the two same-id buckets: merge, then prune with the error
    // parameter of bucket id + 1 (§5.2).
    Timer merge_timer;
    GkSummary merged = GkSummary::Merge(carry, buckets_[id - 1]);
    merge_seconds_ += merge_timer.ElapsedSeconds();
    merged_tuples_ += merged.size();

    Timer compress_timer;
    pruned_tuples_ += merged.size();
    carry = merged.Prune(prune_tuples_);
    compress_seconds_ += compress_timer.ElapsedSeconds();

    buckets_[id - 1] = GkSummary();
    ++id;
  }
  if (id > buckets_.size()) buckets_.resize(id);
  buckets_[id - 1] = std::move(carry);
}

float EhQuantileSummary::Query(double phi) const {
  STREAMGPU_CHECK_MSG(count_ > 0, "query on empty summary");
  GkSummary all;
  for (const GkSummary& bucket : buckets_) {
    if (!bucket.empty()) all = GkSummary::Merge(all, bucket);
  }
  return all.Query(phi);
}

std::size_t EhQuantileSummary::TotalTuples() const {
  std::size_t total = 0;
  for (const GkSummary& bucket : buckets_) total += bucket.size();
  return total;
}

int EhQuantileSummary::MaxBucketId() const {
  int max_id = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (!buckets_[i].empty()) max_id = static_cast<int>(i) + 1;
  }
  return max_id;
}

}  // namespace streamgpu::sketch
