// The exponential histogram of quantile summaries from §5.2: the stream
// model extension of the Greenwald-Khanna sensor-network algorithm.
//
// "The exponential histogram has log N buckets and each bucket is associated
// with a bucket id. ... If the bucket id is b, the error is set to
// eps/2 + eps*b/(2*(log N + 1)). ... we compute an eps/2-approximate summary
// for each new window ... assign it a bucket id of one ... If there are two
// buckets with the same bucket id, we combine the two into one larger bucket
// and increment their bucket id by one. The combine operation involves a
// merge and prune operation performed using an error parameter for
// (bucket id + 1)."

#ifndef STREAMGPU_SKETCH_EXPONENTIAL_HISTOGRAM_H_
#define STREAMGPU_SKETCH_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "sketch/gk_summary.h"

namespace streamgpu::sketch {

/// Whole-stream epsilon-approximate quantile summary maintained as an
/// exponential histogram of GK summaries. The stream length N is known a
/// priori (§5.2: "Given a large data stream of size N, where N is known"),
/// fixing the number of levels and hence each level's error budget.
class EhQuantileSummary {
 public:
  /// `epsilon` in (0, 1); `window_size` is the elements per incoming window;
  /// `expected_length` the a-priori stream length N.
  EhQuantileSummary(double epsilon, std::uint64_t window_size,
                    std::uint64_t expected_length);

  /// Inserts the summary of one new window at bucket id 1 and performs the
  /// combine cascade. `window_summary` must be an (epsilon/2)-approximate
  /// summary (e.g. GkSummary::FromSorted(sorted_window, epsilon/2)).
  void AddWindowSummary(GkSummary window_summary);

  /// Reconstructs a summary from checkpointed parts (the durability restore
  /// path, docs/DURABILITY.md). `buckets` uses the buckets() layout: index i
  /// holds bucket id i+1, empty() = vacant. The configuration arguments must
  /// match the original constructor call. Validates that the bucket counts
  /// sum to `count` and the bucket list stays within a sane cascade depth;
  /// returns false on violation, leaving `out` untouched.
  static bool FromParts(double epsilon, std::uint64_t window_size,
                        std::uint64_t expected_length, std::uint64_t count,
                        std::vector<GkSummary> buckets, EhQuantileSummary* out);

  /// Epsilon-approximate phi-quantile over everything inserted so far.
  float Query(double phi) const;

  /// Elements covered so far.
  std::uint64_t count() const { return count_; }

  /// Total tuples across all buckets (space usage).
  std::size_t TotalTuples() const;

  /// Number of levels the structure was provisioned for.
  int levels() const { return levels_; }

  /// Highest occupied bucket id (0 when empty).
  int MaxBucketId() const;

  /// The error budget of bucket id b: eps/2 + eps*b/(2*(levels+1)).
  double LevelBudget(int bucket_id) const;

  /// Tuple budget used by each combine's prune step.
  std::size_t prune_tuples() const { return prune_tuples_; }

  /// The bucket summaries (index i holds bucket id i+1; empty() = vacant).
  /// Exposed so the mergeable-summary export can flatten the histogram into
  /// one GkSummary via repeated GkSummary::Merge (sketch/quantile_sketch.cc).
  const std::vector<GkSummary>& buckets() const { return buckets_; }

  /// Merge/compress wall costs, for Fig. 6-style breakdowns.
  double merge_seconds() const { return merge_seconds_; }
  double compress_seconds() const { return compress_seconds_; }

  /// Tuples touched by merges / prunes — operation counts for the P4 model.
  std::uint64_t merged_tuples() const { return merged_tuples_; }
  std::uint64_t pruned_tuples() const { return pruned_tuples_; }

 private:
  double epsilon_;
  std::uint64_t window_size_;
  int levels_;
  std::size_t prune_tuples_;
  std::uint64_t count_ = 0;
  std::vector<GkSummary> buckets_;  ///< index i holds bucket id i+1; empty = vacant
  double merge_seconds_ = 0;
  double compress_seconds_ = 0;
  std::uint64_t merged_tuples_ = 0;
  std::uint64_t pruned_tuples_ = 0;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_EXPONENTIAL_HISTOGRAM_H_
