#include "sketch/gk_adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

GkAdaptive::GkAdaptive(double epsilon) : epsilon_(epsilon) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  compress_period_ =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(1.0 / (2.0 * epsilon)));
}

void GkAdaptive::Observe(float value) {
  ++n_;
  const auto budget = static_cast<std::uint64_t>(2.0 * epsilon_ * static_cast<double>(n_));

  // Position of the first tuple with a strictly greater value.
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](float v, const GkAdaptiveTuple& t) { return v < t.value; });

  GkAdaptiveTuple fresh;
  fresh.value = value;
  fresh.g = 1;
  // A new minimum/maximum has exact rank; interior insertions inherit the
  // full uncertainty budget.
  const bool extreme = it == tuples_.begin() || it == tuples_.end();
  fresh.delta = extreme || budget == 0 ? 0 : budget - 1;
  tuples_.insert(it, fresh);

  if (n_ % compress_period_ == 0) Compress();
}

void GkAdaptive::Compress() {
  if (tuples_.size() < 3) return;
  const auto budget = static_cast<std::uint64_t>(2.0 * epsilon_ * static_cast<double>(n_));
  // Sweep from the tail, folding tuple i-1 into tuple i whenever the
  // combined uncertainty stays within the budget. The first tuple (the
  // minimum, whose rank is exact) is never removed. One compacting pass.
  std::vector<GkAdaptiveTuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.back());
  for (std::size_t i = tuples_.size() - 1; i >= 2; --i) {
    GkAdaptiveTuple& prev = tuples_[i - 1];
    GkAdaptiveTuple& successor = kept.back();
    if (prev.g + successor.g + successor.delta <= budget) {
      successor.g += prev.g;  // fold prev into its successor
    } else {
      kept.push_back(prev);
    }
  }
  kept.push_back(tuples_.front());
  std::reverse(kept.begin(), kept.end());
  tuples_ = std::move(kept);
}

float GkAdaptive::Quantile(double phi) const {
  STREAMGPU_CHECK(phi > 0.0 && phi <= 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(phi * static_cast<double>(n_))));
  return QueryRank(rank);
}

float GkAdaptive::QueryRank(std::uint64_t rank) const {
  STREAMGPU_CHECK(!tuples_.empty());
  STREAMGPU_CHECK(rank >= 1 && rank <= n_);
  // Pick the tuple whose [rmin, rmax] deviates least from the target.
  std::uint64_t rmin = 0;
  std::uint64_t best_cost = ~std::uint64_t{0};
  float best_value = tuples_.front().value;
  for (const GkAdaptiveTuple& t : tuples_) {
    rmin += t.g;
    const std::uint64_t rmax = rmin + t.delta;
    const std::uint64_t lo = rmin > rank ? rmin - rank : rank - rmin;
    const std::uint64_t hi = rmax > rank ? rmax - rank : rank - rmax;
    const std::uint64_t cost = std::max(lo, hi);
    if (cost < best_cost) {
      best_cost = cost;
      best_value = t.value;
    }
  }
  return best_value;
}

bool GkAdaptive::FromParts(double epsilon, std::uint64_t n,
                           std::vector<GkAdaptiveTuple> tuples, GkAdaptive* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) return false;
  if ((n == 0) != tuples.empty()) return false;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (tuples[i].g == 0) return false;
    if (i > 0 && tuples[i].value < tuples[i - 1].value) return false;
  }
  GkAdaptive fresh(epsilon);
  fresh.n_ = n;
  fresh.tuples_ = std::move(tuples);
  if (!fresh.CheckInvariant()) return false;
  *out = std::move(fresh);
  return true;
}

bool GkAdaptive::CheckInvariant() const {
  const auto budget = static_cast<std::uint64_t>(2.0 * epsilon_ * static_cast<double>(n_));
  std::uint64_t total_g = 0;
  for (const GkAdaptiveTuple& t : tuples_) {
    total_g += t.g;
    if (t.g + t.delta > std::max<std::uint64_t>(budget, 1)) return false;
  }
  return total_g == n_;
}

}  // namespace streamgpu::sketch
