// The original Greenwald-Khanna one-pass streaming quantile summary
// (GK01, [21]-adjacent; §2.1's deterministic quantile algorithms) — the
// single-element-insertion baseline to the paper's window-based approach
// (§3.2 contrasts "Single element-based" vs "Window-based" insertion).
//
// Maintains tuples (v, g, Delta): g is the rank gap to the previous tuple,
// Delta the extra rank uncertainty. Invariant after compression:
// g_i + Delta_i <= floor(2*epsilon*n), which makes every rank query
// answerable within epsilon*n.

#ifndef STREAMGPU_SKETCH_GK_ADAPTIVE_H_
#define STREAMGPU_SKETCH_GK_ADAPTIVE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamgpu::sketch {

/// One GK01 tuple.
struct GkAdaptiveTuple {
  float value = 0;
  std::uint64_t g = 0;      ///< rmin(v_i) - rmin(v_{i-1})
  std::uint64_t delta = 0;  ///< rmax(v_i) - rmin(v_i)
};

/// Single-element-insertion epsilon-approximate quantile summary.
class GkAdaptive {
 public:
  explicit GkAdaptive(double epsilon);

  /// Inserts one stream element (O(log size) search + periodic compress).
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values) {
    for (float v : values) Observe(v);
  }

  /// The phi-quantile (phi in (0, 1]): an element whose rank is within
  /// epsilon*n of ceil(phi*n).
  float Quantile(double phi) const;

  /// Element answering rank `r` (1-based) within epsilon*n.
  float QueryRank(std::uint64_t rank) const;

  std::uint64_t stream_length() const { return n_; }
  std::size_t summary_size() const { return tuples_.size(); }
  double epsilon() const { return epsilon_; }

  /// Verifies the g + Delta invariant (used by tests).
  bool CheckInvariant() const;

  /// Reconstructs a summary from checkpointed parts (the durability restore
  /// path, docs/DURABILITY.md). Validates values nondecreasing, every g >= 1,
  /// and the g + Delta invariant at stream length `n`; returns false on
  /// violation, leaving `out` untouched.
  static bool FromParts(double epsilon, std::uint64_t n,
                        std::vector<GkAdaptiveTuple> tuples, GkAdaptive* out);

  /// The raw (v, g, Delta) tuples, ascending by value. Exposed so the
  /// mergeable-summary export can convert to explicit (rmin, rmax) bounds
  /// (rmin_i = sum of g up to i, rmax_i = rmin_i + Delta_i).
  const std::vector<GkAdaptiveTuple>& tuples() const { return tuples_; }

 private:
  /// Merges tuples whose combined uncertainty fits the error budget.
  void Compress();

  double epsilon_;
  std::uint64_t n_ = 0;
  std::uint64_t compress_period_;
  std::vector<GkAdaptiveTuple> tuples_;  ///< ascending by value
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_GK_ADAPTIVE_H_
