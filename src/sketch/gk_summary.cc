#include "sketch/gk_summary.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

GkSummary GkSummary::FromSorted(std::span<const float> sorted_window,
                                double target_epsilon) {
  STREAMGPU_CHECK(target_epsilon > 0.0);
  GkSummary out;
  const std::uint64_t w = sorted_window.size();
  if (w == 0) return out;
  out.count_ = w;

  const auto step = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(2.0 * target_epsilon * static_cast<double>(w)));
  for (std::uint64_t r = 0; r < w; r += step) {
    STREAMGPU_DCHECK(r == 0 || sorted_window[r - 1] <= sorted_window[r]);
    out.tuples_.push_back({sorted_window[r], r + 1, r + 1});
  }
  if (out.tuples_.back().rmin != w) out.tuples_.push_back({sorted_window[w - 1], w, w});

  // Ranks are exact; the only error is the distance to the nearest sample,
  // at most floor(step/2).
  out.epsilon_ = static_cast<double>(step / 2) / static_cast<double>(w);
  return out;
}

bool GkSummary::FromParts(std::vector<GkTuple> tuples, std::uint64_t count,
                          double epsilon, GkSummary* out) {
  if (out == nullptr) return false;
  if (epsilon < 0.0 || epsilon >= 1.0) return false;
  if (tuples.empty() != (count == 0)) return false;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const GkTuple& t = tuples[i];
    if (t.rmin < 1 || t.rmin > t.rmax || t.rmax > count) return false;
    if (i > 0) {
      if (tuples[i - 1].value > t.value) return false;
      if (tuples[i - 1].rmin > t.rmin || tuples[i - 1].rmax > t.rmax) return false;
    }
  }
  out->tuples_ = std::move(tuples);
  out->count_ = count;
  out->epsilon_ = epsilon;
  return true;
}

GkSummary GkSummary::Merge(const GkSummary& a, const GkSummary& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;

  GkSummary out;
  out.count_ = a.count_ + b.count_;
  out.epsilon_ = std::max(a.epsilon_, b.epsilon_);
  out.tuples_.reserve(a.size() + b.size());

  // Equal values are ordered consistently — every element of `a` precedes
  // every equal-valued element of `b`. A consistent tie order keeps the rank
  // intervals tight on duplicate-heavy data; without it each merge widens
  // the interval of a repeated value by the partner's multiplicity and the
  // epsilon invariant collapses.
  //
  // For a tuple x from `a`: the b-elements certainly before x are those
  // covered by the largest b-tuple with value < x, and at most
  // rmax(first b-tuple with value >= x) - 1 of b's elements can precede x.
  // For a tuple y from `b` the comparisons flip to <= and >.
  std::size_t i = 0;  // next a-tuple
  std::size_t j = 0;  // next b-tuple

  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() || (i < a.size() && a.tuples_[i].value <= b.tuples_[j].value);
    if (take_a) {
      const GkTuple& t = a.tuples_[i];
      // First b-tuple with value >= t.value. b.tuples_[j-1].value < t.value
      // is guaranteed by the merge order, so j itself is the boundary after
      // advancing over smaller values.
      std::size_t ge = j;
      while (ge < b.size() && b.tuples_[ge].value < t.value) ++ge;
      std::uint64_t rmin = t.rmin;
      std::uint64_t rmax = t.rmax;
      if (ge > 0) rmin += b.tuples_[ge - 1].rmin;
      rmax += ge < b.size() ? b.tuples_[ge].rmax - 1 : b.count_;
      out.tuples_.push_back({t.value, rmin, rmax});
      ++i;
    } else {
      const GkTuple& t = b.tuples_[j];
      // First a-tuple with value > t.value (a precedes b on ties).
      std::size_t gt = i;
      while (gt < a.size() && a.tuples_[gt].value <= t.value) ++gt;
      std::uint64_t rmin = t.rmin;
      std::uint64_t rmax = t.rmax;
      if (gt > 0) rmin += a.tuples_[gt - 1].rmin;
      rmax += gt < a.size() ? a.tuples_[gt].rmax - 1 : a.count_;
      out.tuples_.push_back({t.value, rmin, rmax});
      ++j;
    }
  }
  return out;
}

GkSummary GkSummary::Prune(std::size_t max_tuples) const {
  STREAMGPU_CHECK(max_tuples >= 1);
  if (size() <= max_tuples + 1) return *this;

  GkSummary out;
  out.count_ = count_;
  out.epsilon_ = epsilon_ + 1.0 / (2.0 * static_cast<double>(max_tuples));
  out.tuples_.reserve(max_tuples + 1);
  for (std::size_t i = 0; i <= max_tuples; ++i) {
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(i) * static_cast<double>(count_) /
                            static_cast<double>(max_tuples))));
    const GkTuple& t = tuples_[BestTupleForRank(rank)];
    if (out.tuples_.empty() || !(out.tuples_.back() == t)) out.tuples_.push_back(t);
  }
  return out;
}

std::size_t GkSummary::BestTupleForRank(std::uint64_t rank) const {
  STREAMGPU_CHECK(!tuples_.empty());
  // Worst-case rank deviation of tuple t from target r is
  // cost(t) = max(r - rmin, rmax - r). Over the value-sorted tuples the
  // first term is nonincreasing and the second nondecreasing, so cost is
  // unimodal and its minimum sits at the first tuple with
  // rmin + rmax >= 2r — a binary-searchable monotone predicate (rmin and
  // rmax are both nondecreasing). Compare that tuple with its predecessor.
  const auto cost = [rank](const GkTuple& t) {
    const std::uint64_t lo = t.rmin > rank ? t.rmin - rank : rank - t.rmin;
    const std::uint64_t hi = t.rmax > rank ? t.rmax - rank : rank - t.rmax;
    return std::max(lo, hi);
  };
  const auto it = std::partition_point(
      tuples_.begin(), tuples_.end(),
      [rank](const GkTuple& t) { return t.rmin + t.rmax < 2 * rank; });
  std::size_t best = it == tuples_.end() ? tuples_.size() - 1
                                         : static_cast<std::size_t>(it - tuples_.begin());
  if (best > 0 && cost(tuples_[best - 1]) < cost(tuples_[best])) --best;
  return best;
}

float GkSummary::Query(double phi) const {
  STREAMGPU_CHECK(phi > 0.0 && phi <= 1.0);
  STREAMGPU_CHECK(!empty());
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(phi * static_cast<double>(count_))));
  return QueryRank(rank);
}

float GkSummary::QueryRank(std::uint64_t rank) const {
  STREAMGPU_CHECK(!empty());
  STREAMGPU_CHECK(rank >= 1 && rank <= count_);
  return tuples_[BestTupleForRank(rank)].value;
}

}  // namespace streamgpu::sketch
