// Greenwald-Khanna epsilon-approximate quantile summaries [21], in the
// sensor-network formulation §5.2 builds on: a summary is a sorted list of
// (value, rmin, rmax) tuples built from a sorted window by rank sampling,
// and summaries support the classic MERGE (union with rank recombination)
// and PRUNE (requery at B+1 evenly spaced ranks, adding 1/(2B) error)
// operations.

#ifndef STREAMGPU_SKETCH_GK_SUMMARY_H_
#define STREAMGPU_SKETCH_GK_SUMMARY_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamgpu::sketch {

/// One summary tuple: an observed value together with lower/upper bounds on
/// its rank (1-based) among the elements the summary covers.
struct GkTuple {
  float value = 0;
  std::uint64_t rmin = 0;
  std::uint64_t rmax = 0;

  friend bool operator==(const GkTuple&, const GkTuple&) = default;
};

/// An epsilon-approximate quantile summary of `count()` elements: for any
/// rank r there is a tuple whose true rank is within epsilon()*count() of r.
class GkSummary {
 public:
  GkSummary() = default;

  /// Builds a summary from an ascending-sorted window by sampling every
  /// max(1, floor(2*target_epsilon*w))-th rank plus the extremes — the
  /// paper's "choosing the elements of rank 1, eps*S, 2*eps*S, ..., S"
  /// (§5.2). The result's epsilon() is <= target_epsilon.
  static GkSummary FromSorted(std::span<const float> sorted_window,
                              double target_epsilon);

  /// Reconstructs a summary from its components (deserialization path).
  /// Validates the structural invariants — values ascending, rmin <= rmax,
  /// rmin/rmax nondecreasing and within [1, count] — and returns false on
  /// violation, leaving `out` untouched.
  static bool FromParts(std::vector<GkTuple> tuples, std::uint64_t count,
                        double epsilon, GkSummary* out);

  /// Combines two summaries covering disjoint element sets. The union of
  /// tuples is kept with recombined rank bounds; the result is
  /// max(a.epsilon(), b.epsilon())-approximate for a.count() + b.count()
  /// elements ([21]'s merge).
  static GkSummary Merge(const GkSummary& a, const GkSummary& b);

  /// Reduces the summary to at most max_tuples + 1 tuples by querying it at
  /// ranks i*count()/max_tuples, i = 0..max_tuples, at the price of
  /// 1/(2*max_tuples) additional error ([21]'s prune; §5.2's compress).
  GkSummary Prune(std::size_t max_tuples) const;

  /// Value whose rank is within epsilon()*count() of ceil(phi * count()),
  /// phi in (0, 1].
  float Query(double phi) const;

  /// Value whose rank is within epsilon()*count() of `rank` (1-based).
  float QueryRank(std::uint64_t rank) const;

  /// Number of stream elements this summary covers.
  std::uint64_t count() const { return count_; }

  /// Rank-error bound as a fraction of count().
  double epsilon() const { return epsilon_; }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<GkTuple>& tuples() const { return tuples_; }

 private:
  /// Index of the tuple minimizing the worst-case rank deviation from
  /// `rank`.
  std::size_t BestTupleForRank(std::uint64_t rank) const;

  std::vector<GkTuple> tuples_;  ///< ascending by value
  std::uint64_t count_ = 0;
  double epsilon_ = 0;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_GK_SUMMARY_H_
