#include "sketch/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "sketch/histogram.h"

namespace streamgpu::sketch {

HierarchicalHeavyHitters::HierarchicalHeavyHitters(double epsilon, int levels,
                                                   double branch)
    : epsilon_(epsilon), branch_(branch) {
  STREAMGPU_CHECK(levels >= 1);
  STREAMGPU_CHECK(branch > 1.0);
  summaries_.reserve(static_cast<std::size_t>(levels) + 1);
  for (int l = 0; l <= levels; ++l) summaries_.emplace_back(epsilon);
}

float HierarchicalHeavyHitters::Generalize(float value, int level) const {
  STREAMGPU_CHECK(level >= 0 && level <= levels());
  return static_cast<float>(
      std::floor(static_cast<double>(value) / std::pow(branch_, level)));
}

void HierarchicalHeavyHitters::AddSortedWindow(std::span<const float> sorted_window) {
  if (sorted_window.empty()) return;
  // Level 0 uses the window directly; higher levels apply the monotone
  // generalization, which preserves the sorted order, then histogram it.
  std::vector<float> generalized(sorted_window.begin(), sorted_window.end());
  for (int level = 0; level < static_cast<int>(summaries_.size()); ++level) {
    if (level > 0) {
      const double divisor = branch_;
      for (float& v : generalized) {
        v = static_cast<float>(std::floor(static_cast<double>(v) / divisor));
      }
      STREAMGPU_DCHECK(std::is_sorted(generalized.begin(), generalized.end()));
    }
    summaries_[static_cast<std::size_t>(level)].AddWindowHistogram(
        BuildHistogram(generalized), generalized.size());
  }
}

std::uint64_t HierarchicalHeavyHitters::EstimateCount(float prefix, int level) const {
  STREAMGPU_CHECK(level >= 0 && level <= levels());
  return summaries_[static_cast<std::size_t>(level)].EstimateCount(prefix);
}

std::vector<HhhResult> HierarchicalHeavyHitters::Query(double support) const {
  std::vector<HhhResult> out;
  const double n = static_cast<double>(stream_length());
  const double threshold = (support - epsilon_) * n;

  // Discount map at the current level: mass of already-reported descendant
  // subtrees. It must keep rolling up through levels whose own node is NOT
  // reported, or a grandparent of a reported leaf would be re-reported with
  // the leaf's mass.
  const auto parent_of = [this](float prefix) {
    return static_cast<float>(std::floor(static_cast<double>(prefix) / branch_));
  };
  std::unordered_map<float, std::uint64_t> discounts;
  for (int level = 0; level <= levels(); ++level) {
    std::unordered_map<float, std::uint64_t> next;
    std::unordered_map<float, std::uint64_t> remaining = discounts;
    // Candidate prefixes at this level: everything the summary retained (a
    // superset of the true heavy hitters).
    for (const auto& [prefix, count] :
         summaries_[static_cast<std::size_t>(level)].HeavyHitters(0.0)) {
      std::uint64_t discount = 0;
      if (const auto it = discounts.find(prefix); it != discounts.end()) {
        discount = it->second;
        remaining.erase(prefix);
      }
      const std::uint64_t discounted = count > discount ? count - discount : 0;
      if (static_cast<double>(discounted) >= threshold && threshold > 0) {
        out.push_back({level, prefix, count, discounted});
        // A reported node's subtree count subsumes its descendants' mass.
        next[parent_of(prefix)] += count;
      } else {
        next[parent_of(prefix)] += discount;
      }
    }
    // Discounts whose prefix the summary no longer retains still roll up.
    for (const auto& [prefix, discount] : remaining) {
      next[parent_of(prefix)] += discount;
    }
    discounts = std::move(next);
  }

  std::stable_sort(out.begin(), out.end(), [](const HhhResult& a, const HhhResult& b) {
    if (a.level != b.level) return a.level < b.level;
    return a.discounted_count > b.discounted_count;
  });
  return out;
}

std::size_t HierarchicalHeavyHitters::summary_size() const {
  std::size_t total = 0;
  for (const LossyCounting& s : summaries_) total += s.summary_size();
  return total;
}

}  // namespace streamgpu::sketch
