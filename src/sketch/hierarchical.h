// Hierarchical heavy hitters — the extension query §1.2 claims the
// frequency machinery supports ("also applicable to hierarchical heavy
// hitter ... queries").
//
// Values live in a hierarchy defined by repeated division: the level-l
// generalization of value v is floor(v / branch^l) (IP-prefix-style
// aggregation for integer-valued streams). One Manku-Motwani summary is
// maintained per level; because generalization is monotone, every level's
// histogram is computed from the *same sorted window*, so a single
// (GPU) sort per window serves the whole hierarchy.
//
// A node is reported as a hierarchical heavy hitter when its frequency,
// discounted by the frequency of its already-reported descendants, still
// reaches the support threshold.

#ifndef STREAMGPU_SKETCH_HIERARCHICAL_H_
#define STREAMGPU_SKETCH_HIERARCHICAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/lossy_counting.h"

namespace streamgpu::sketch {

/// One reported hierarchical heavy hitter.
struct HhhResult {
  int level = 0;          ///< 0 = leaf values, increasing toward the root
  float prefix = 0;       ///< generalized value floor(v / branch^level)
  std::uint64_t count = 0;             ///< estimated total frequency of the subtree
  std::uint64_t discounted_count = 0;  ///< count minus reported descendants
};

/// Multi-level epsilon-approximate hierarchical heavy hitters.
class HierarchicalHeavyHitters {
 public:
  /// `epsilon` in (0, 1) is the per-level frequency error; `levels` >= 1
  /// counts hierarchy levels above the leaves; `branch` > 1 is the
  /// per-level aggregation factor.
  HierarchicalHeavyHitters(double epsilon, int levels, double branch = 2.0);

  /// Natural window width (= ceil(1/epsilon), shared by every level).
  std::uint64_t window_width() const { return summaries_[0].window_width(); }

  /// Folds one ascending-sorted window into every level's summary (the
  /// window is sorted once — by the GPU in the accelerated configuration —
  /// and each level's histogram falls out of a linear scan of the same
  /// ordering).
  void AddSortedWindow(std::span<const float> sorted_window);

  /// The generalization of `value` at `level`.
  float Generalize(float value, int level) const;

  /// Estimated subtree frequency of `prefix` at `level`.
  std::uint64_t EstimateCount(float prefix, int level) const;

  /// Hierarchical heavy hitters at `support`: per level from the leaves up,
  /// nodes whose discounted frequency reaches (support - epsilon) * N.
  /// Within a level, descending discounted count.
  std::vector<HhhResult> Query(double support) const;

  std::uint64_t stream_length() const { return summaries_[0].stream_length(); }

  /// Total summary entries across all levels.
  std::size_t summary_size() const;

  int levels() const { return static_cast<int>(summaries_.size()) - 1; }
  double branch() const { return branch_; }
  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  double branch_;
  std::vector<LossyCounting> summaries_;  ///< index = level (0 = leaves)
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_HIERARCHICAL_H_
