#include "sketch/histogram.h"

#include "common/check.h"

namespace streamgpu::sketch {

std::vector<HistogramEntry> BuildHistogram(std::span<const float> sorted_window) {
  std::vector<HistogramEntry> out;
  if (sorted_window.empty()) return out;
  out.push_back({sorted_window[0], 1});
  for (std::size_t i = 1; i < sorted_window.size(); ++i) {
    STREAMGPU_DCHECK(sorted_window[i - 1] <= sorted_window[i]);
    if (sorted_window[i] == out.back().value) {
      ++out.back().count;
    } else {
      out.push_back({sorted_window[i], 1});
    }
  }
  return out;
}

std::vector<std::pair<float, std::uint64_t>> SampleSortedByRank(
    std::span<const float> sorted_window, std::uint64_t step) {
  STREAMGPU_CHECK(step >= 1);
  std::vector<std::pair<float, std::uint64_t>> out;
  if (sorted_window.empty()) return out;
  const std::uint64_t n = sorted_window.size();
  for (std::uint64_t r = 0; r < n; r += step) {
    out.emplace_back(sorted_window[r], r);
  }
  if (out.back().second != n - 1) out.emplace_back(sorted_window[n - 1], n - 1);
  return out;
}

}  // namespace streamgpu::sketch
