// Window histogram computation from sorted data (§3.2, operation 1).
//
// "For each window, the elements are ordered by sorting them and a histogram
// is computed. A histogram data structure holds each element value in the
// window and its frequency." Sorting is the expensive part (70-95% of CPU
// time) and is what the paper offloads to the GPU; the linear scan below is
// the cheap remainder.

#ifndef STREAMGPU_SKETCH_HISTOGRAM_H_
#define STREAMGPU_SKETCH_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace streamgpu::sketch {

/// One histogram bucket: a distinct value and its number of occurrences.
struct HistogramEntry {
  float value = 0;
  std::uint64_t count = 0;

  friend bool operator==(const HistogramEntry&, const HistogramEntry&) = default;
};

/// Builds the (value, frequency) histogram of an ascending-sorted window in
/// one linear pass. Output entries are in ascending value order.
std::vector<HistogramEntry> BuildHistogram(std::span<const float> sorted_window);

/// Samples an ascending-sorted window at rank step `step` (>= 1): returns the
/// elements of rank 1, 1+step, 1+2*step, ..., always including the last
/// element. Used by the quantile path, which "computes a subset of histogram
/// elements by sampling the sorted sequence" (§3.2). Returned pairs are
/// (value, zero-based rank in the window).
std::vector<std::pair<float, std::uint64_t>> SampleSortedByRank(
    std::span<const float> sorted_window, std::uint64_t step);

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_HISTOGRAM_H_
