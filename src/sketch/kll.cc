#include "sketch/kll.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/timer.h"

namespace streamgpu::sketch {

namespace {

/// The repo's canonical float total order (same transform as
/// sort::FloatToOrderedKey): strictly monotone over bit patterns, -0.0 <
/// +0.0, NaNs ordered by payload at the top. Compaction sorts with this so
/// the alternation — and hence the sketch bytes — never depend on how a
/// platform's std::sort breaks operator< ties.
inline std::uint32_t OrderKey(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  return bits & 0x80000000u ? ~bits : bits | 0x80000000u;
}

inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

KllSketch::KllSketch(double epsilon, std::uint64_t seed)
    : epsilon_(epsilon), seed_(seed) {
  STREAMGPU_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
  k_ = std::max(kMinCapacity,
                static_cast<std::size_t>(std::ceil(kCapacityConstant / epsilon)));
  levels_.emplace_back();
  levels_.front().reserve(k_);
}

std::size_t KllSketch::Capacity(std::size_t level) const {
  // Integer decay from the top: cap(top) = k, cap(h) = max(8, cap(h+1)*2/3).
  // Pure integer arithmetic keeps the schedule identical on every platform
  // (std::pow is not correctly rounded everywhere).
  std::size_t cap = k_;
  for (std::size_t h = levels_.size(); h-- > level + 1;) {
    cap = cap * 2 / 3;
    if (cap <= kMinCapacity) return kMinCapacity;
  }
  return std::max(kMinCapacity, cap);
}

bool KllSketch::NextCoin(std::size_t level) {
  // One splitmix64 bit per compaction, keyed by (seed, level, position in
  // the coin sequence): deterministic, but uncorrelated enough across
  // compactions that the +-2^h errors cancel like the random coin's.
  const std::uint64_t x =
      SplitMix64(seed_ ^ (static_cast<std::uint64_t>(level + 1) *
                          0x9E3779B97F4A7C15ull) ^
                 compactions_);
  return (x & 1) != 0;
}

void KllSketch::CompactLevel(std::size_t level) {
  // Grow the hierarchy before taking references: emplace_back may reallocate
  // levels_ and would invalidate them.
  if (level + 1 == levels_.size()) levels_.emplace_back();

  std::vector<float>& items = levels_[level];
  std::sort(items.begin(), items.end(),
            [](float a, float b) { return OrderKey(a) < OrderKey(b); });

  // An odd item count keeps one item (the smallest) at this level so the
  // compacted range is even and promotion conserves weight exactly:
  // 2p items of weight 2^h become p items of weight 2^(h+1).
  const std::size_t start = items.size() % 2;
  const bool odd_offset = NextCoin(level);
  ++compactions_;
  worst_case_error_ += std::uint64_t{1} << level;

  std::vector<float>& next = levels_[level + 1];
  const std::size_t promoted = (items.size() - start) / 2;
  next.reserve(next.size() + promoted);
  for (std::size_t i = start + (odd_offset ? 1 : 0); i < items.size(); i += 2) {
    next.push_back(items[i]);
  }
  discarded_items_ += promoted;

  // The retained odd item (the sorted minimum) stays; everything compacted
  // is gone from this level.
  items.resize(start);
}

void KllSketch::Compress() {
  Timer timer;
  // Growing a new top level shrinks every lower level's capacity, so sweep
  // until the whole hierarchy fits its (possibly updated) schedule.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t h = 0; h < levels_.size(); ++h) {
      if (levels_[h].size() >= Capacity(h) && levels_[h].size() >= 2) {
        CompactLevel(h);
        changed = true;
      }
    }
  }
  compress_seconds_ += timer.ElapsedSeconds();
}

void KllSketch::Observe(float value) {
  levels_.front().push_back(value);
  ++count_;
  if (levels_.front().size() >= Capacity(0)) Compress();
}

void KllSketch::ObserveSorted(std::span<const float> window) {
  for (float v : window) Observe(v);
}

core::Status KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return core::Status::Ok();
  if (other.epsilon_ != epsilon_) {
    return core::Status::InvalidArgument(
        "cannot merge KLL sketches with different epsilon (" +
        std::to_string(epsilon_) + " vs " + std::to_string(other.epsilon_) +
        "): the capacity schedules differ");
  }
  count_ += other.count_;
  worst_case_error_ += other.worst_case_error_;
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (std::size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  Compress();
  return core::Status::Ok();
}

std::size_t KllSketch::summary_size() const {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

std::uint64_t KllSketch::rank_error_bound() const {
  const auto stated =
      static_cast<std::uint64_t>(std::ceil(epsilon_ * static_cast<double>(count_)));
  return std::min(worst_case_error_, stated);
}

float KllSketch::QueryRank(std::uint64_t rank) const {
  if (count_ == 0) return 0;
  rank = std::clamp<std::uint64_t>(rank, 1, count_);

  // Gather every retained item with its level weight, order canonically,
  // and walk the cumulative weight to the requested rank.
  struct Weighted {
    std::uint32_t key;
    float value;
    std::uint64_t weight;
  };
  std::vector<Weighted> items;
  items.reserve(summary_size());
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    const std::uint64_t weight = std::uint64_t{1} << h;
    for (float v : levels_[h]) items.push_back({OrderKey(v), v, weight});
  }
  STREAMGPU_CHECK_MSG(!items.empty(), "non-zero count with no retained items");
  std::sort(items.begin(), items.end(),
            [](const Weighted& a, const Weighted& b) { return a.key < b.key; });

  std::uint64_t cumulative = 0;
  for (const Weighted& item : items) {
    cumulative += item.weight;
    if (cumulative >= rank) return item.value;
  }
  return items.back().value;
}

float KllSketch::Quantile(double phi) const {
  if (count_ == 0) return 0;
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(phi * static_cast<double>(count_)));
  return QueryRank(rank);
}

bool KllSketch::FromParts(double epsilon, std::uint64_t seed, std::uint64_t count,
                          std::uint64_t worst_case_error, std::uint64_t compactions,
                          std::vector<std::vector<float>> levels, KllSketch* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) return false;
  if (levels.empty() || levels.size() >= 64) return false;
  // Weight conservation is exact under the compaction rule, so the weighted
  // item total must reproduce the claimed element count.
  std::uint64_t total_weight = 0;
  for (std::size_t h = 0; h < levels.size(); ++h) {
    const std::uint64_t weight = std::uint64_t{1} << h;
    const std::uint64_t level_weight = weight * levels[h].size();
    if (!levels[h].empty() && level_weight / levels[h].size() != weight) {
      return false;  // weight overflow
    }
    if (total_weight + level_weight < total_weight) return false;
    total_weight += level_weight;
  }
  if (total_weight != count) return false;
  if (count == 0 && (worst_case_error != 0 || compactions != 0)) return false;

  KllSketch parsed(epsilon, seed);
  parsed.count_ = count;
  parsed.worst_case_error_ = worst_case_error;
  parsed.compactions_ = compactions;
  parsed.levels_ = std::move(levels);
  *out = std::move(parsed);
  return true;
}

}  // namespace streamgpu::sketch
