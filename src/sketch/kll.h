// Karnin-Lang-Liberty (KLL) streaming quantile sketch — the "almost optimal"
// compactor-hierarchy algorithm (PAPERS.md: Karnin, Lang, Liberty, FOCS'16).
//
// Structure: a stack of levels; an item at level h carries weight 2^h. New
// elements enter level 0. When a level reaches its capacity it is COMPACTED:
// the level is sorted, a coin chooses the odd- or even-indexed half, the
// chosen half is promoted to the next level (weight doubled) and the other
// half is discarded. Level capacities decay geometrically (ratio 2/3) from
// the top, floored at 8, so the sketch holds O(1/epsilon) items in total.
//
// Determinism: the compaction coin is NOT random — it is a splitmix64 bit
// derived from (seed, level, compaction counter), so the same insertion
// sequence always produces the same sketch bit-for-bit. The estimators and
// the StreamService drain windows in submission order regardless of worker
// count, which makes KLL-backed reports bit-identical across worker counts
// and sort backends, exactly like the GK path (docs/SKETCHES.md).
//
// Error accounting (the "tracked honest" bound, mirroring obs/summary.cc):
// one compaction at level h shifts any rank estimate by at most 2^h, so the
// sketch tracks W = sum over compactions of 2^level — a bound that holds
// deterministically for every input. The stated epsilon (from the capacity
// constant) is the standard KLL high-probability bound. rank_error_bound()
// reports min(W, ceil(epsilon * count())): early in a stream W is the
// tighter — and certain — bound; on long streams the stated epsilon takes
// over. See docs/SKETCHES.md ("KLL error accounting") for the composition
// proof under Merge().

#ifndef STREAMGPU_SKETCH_KLL_H_
#define STREAMGPU_SKETCH_KLL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"

namespace streamgpu::sketch {

/// KLL epsilon-approximate quantile sketch over float-valued streams.
class KllSketch {
 public:
  /// Capacity constant: the top-level capacity is ceil(kCapacityConstant /
  /// epsilon), sized so the observed rank error stays comfortably under the
  /// stated epsilon (tests/quantile_sketch_test.cc sweeps this).
  static constexpr double kCapacityConstant = 4.0;

  /// Smallest per-level capacity; also the floor of the derived k.
  static constexpr std::size_t kMinCapacity = 8;

  static constexpr std::uint64_t kDefaultSeed = 0x6B6C6C736565640ULL;  // "kllseed"

  /// epsilon in (0, 1): target rank-error bound as a fraction of count().
  /// The seed drives the deterministic compaction coin; two sketches fed the
  /// same sequence with the same seed are bit-identical.
  explicit KllSketch(double epsilon, std::uint64_t seed = kDefaultSeed);

  /// Inserts one stream element (amortized O(log(1/epsilon)) with a sort at
  /// each compaction).
  void Observe(float value);

  /// Inserts a batch. The window being pre-sorted is not required (level-0
  /// contents are re-sorted at compaction), but the estimator path always
  /// feeds ascending-sorted windows.
  void ObserveSorted(std::span<const float> window);

  /// Folds `other` into this sketch: per-level concatenation followed by the
  /// normal compaction cascade. Requires equal epsilon (equal capacity
  /// schedules). The tracked worst-case bounds add, and the stated epsilon
  /// bound composes: the merged sketch is epsilon-approximate for
  /// count() + other.count() elements (docs/SKETCHES.md). Merging an empty
  /// sketch is the identity. New compactions use THIS sketch's seed, so a
  /// fixed fold order yields a bit-identical result (the combiner
  /// canonicalizes shard order for order-independence).
  core::Status Merge(const KllSketch& other);

  /// Value whose rank is within rank_error_bound() of ceil(phi * count()),
  /// phi in (0, 1]. Returns 0 on an empty sketch.
  float Quantile(double phi) const;

  /// Value answering rank `rank` (1-based, clamped to [1, count()]) within
  /// rank_error_bound(). Returns 0 on an empty sketch.
  float QueryRank(std::uint64_t rank) const;

  /// Elements covered (total inserted weight).
  std::uint64_t count() const { return count_; }

  /// Stated rank-error bound as a fraction of count().
  double epsilon() const { return epsilon_; }

  std::uint64_t seed() const { return seed_; }

  /// Items currently retained across all levels (space usage).
  std::size_t summary_size() const;

  /// Tracked deterministic worst-case rank error W = sum of 2^level over
  /// every compaction performed (including those inside Merge). Holds for
  /// every input with certainty, unlike the probabilistic stated epsilon.
  std::uint64_t worst_case_rank_error() const { return worst_case_error_; }

  /// Honest absolute rank-error bound at the current count:
  /// min(worst_case_rank_error(), ceil(epsilon * count())).
  std::uint64_t rank_error_bound() const;

  /// Compactions performed so far (also the coin-sequence position; must be
  /// preserved across serialization for bit-identical future behavior).
  std::uint64_t compactions() const { return compactions_; }

  /// Items discarded by compactions (cost mirror for the estimator's
  /// pruned-tuples accounting).
  std::uint64_t discarded_items() const { return discarded_items_; }

  /// Wall time spent compacting (cost mirror).
  double compress_seconds() const { return compress_seconds_; }

  /// Top-level capacity k derived from epsilon.
  std::size_t k() const { return k_; }

  std::size_t num_levels() const { return levels_.size(); }
  const std::vector<std::vector<float>>& levels() const { return levels_; }

  /// Reconstructs a sketch from its serialized components. Validates that
  /// epsilon is in (0, 1), levels fit the 2^level weight arithmetic
  /// (< 64 levels), and the weighted item total equals `count` (the exact
  /// weight-conservation invariant of the compaction rule); returns false on
  /// violation, leaving `out` untouched.
  static bool FromParts(double epsilon, std::uint64_t seed, std::uint64_t count,
                        std::uint64_t worst_case_error, std::uint64_t compactions,
                        std::vector<std::vector<float>> levels, KllSketch* out);

 private:
  /// Capacity of `level` given the current height: ceil-free integer decay
  /// cap(top) = k, cap(h) = max(8, cap(h+1) * 2 / 3) — integer arithmetic so
  /// the schedule is identical on every platform.
  std::size_t Capacity(std::size_t level) const;

  /// Compacts every over-capacity level until the hierarchy is stable.
  void Compress();

  /// Sorts and halves one full level, promoting the coin-chosen alternation
  /// to level + 1.
  void CompactLevel(std::size_t level);

  /// The next deterministic compaction coin for `level`.
  bool NextCoin(std::size_t level);

  double epsilon_;
  std::uint64_t seed_;
  std::size_t k_;
  std::uint64_t count_ = 0;
  std::uint64_t worst_case_error_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t discarded_items_ = 0;
  double compress_seconds_ = 0;
  std::vector<std::vector<float>> levels_;  ///< levels_[h]: items of weight 2^h
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_KLL_H_
