#include "sketch/lossy_counting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/timer.h"

namespace streamgpu::sketch {

LossyCounting::LossyCounting(double epsilon) : epsilon_(epsilon) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  window_width_ = static_cast<std::uint64_t>(std::ceil(1.0 / epsilon));
}

bool LossyCounting::FromParts(double epsilon, std::uint64_t n,
                              std::uint64_t bucket_id, std::vector<Entry> entries,
                              LossyCounting* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) return false;
  if ((n == 0) != (bucket_id == 0)) return false;
  LossyCounting fresh(epsilon);
  // Each bucket covers at most window_width elements, and every live entry
  // survived the last compress (frequency + delta > bucket_id).
  if (n > bucket_id * fresh.window_width_) return false;
  std::uint64_t total_frequency = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.frequency == 0) return false;
    if (e.delta >= bucket_id) return false;
    if (e.frequency + e.delta <= bucket_id) return false;
    if (i > 0 && !(entries[i - 1].value < e.value)) return false;
    total_frequency += e.frequency;
  }
  if (total_frequency > n) return false;
  fresh.n_ = n;
  fresh.bucket_id_ = bucket_id;
  fresh.entries_ = std::move(entries);
  *out = std::move(fresh);
  return true;
}

void LossyCounting::AddWindowHistogram(std::span<const HistogramEntry> histogram,
                                       std::uint64_t window_elements) {
  STREAMGPU_CHECK_MSG(window_elements <= window_width_,
                      "window larger than ceil(1/epsilon)");
  if (window_elements == 0) return;
  n_ += window_elements;
  ++bucket_id_;

  // --- Merge (§3.2 operation 2): both the summary and the histogram are ---
  // --- sorted by value, so this is a linear merge.                      ---
  Timer merge_timer;
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + histogram.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < entries_.size() || j < histogram.size()) {
    if (j >= histogram.size() ||
        (i < entries_.size() && entries_[i].value < histogram[j].value)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() || histogram[j].value < entries_[i].value) {
      STREAMGPU_DCHECK(j == 0 || histogram[j - 1].value < histogram[j].value);
      // New element: it may have occurred unseen in every previous bucket,
      // so its maximal undercount is bucket_id - 1.
      merged.push_back(Entry{histogram[j].value, histogram[j].count, bucket_id_ - 1});
      ++j;
    } else {
      Entry e = entries_[i++];
      e.frequency += histogram[j++].count;
      merged.push_back(e);
    }
  }
  entries_ = std::move(merged);
  op_costs_.merge_seconds += merge_timer.ElapsedSeconds();
  op_costs_.merged_entries += entries_.size();

  // --- Compress (§3.2 operation 3). ---
  Timer compress_timer;
  op_costs_.compressed_entries += entries_.size();
  Compress();
  op_costs_.compress_seconds += compress_timer.ElapsedSeconds();
}

void LossyCounting::Compress() {
  // Drop entries whose frequency can no longer reach the error floor:
  // f + delta <= b (for entries inserted this bucket with f == 1 this is the
  // paper's "elements with a frequency of unity are deleted", §5.1).
  const std::uint64_t b = bucket_id_;
  std::erase_if(entries_, [b](const Entry& e) { return e.frequency + e.delta <= b; });
}

std::uint64_t LossyCounting::EstimateCount(float value) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), value,
      [](const Entry& e, float v) { return e.value < v; });
  if (it == entries_.end() || it->value != value) return 0;
  return it->frequency;
}

std::vector<std::pair<float, std::uint64_t>> LossyCounting::HeavyHitters(
    double support) const {
  const double threshold = (support - epsilon_) * static_cast<double>(n_);
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const Entry& e : entries_) {
    if (static_cast<double>(e.frequency) >= threshold) {
      out.emplace_back(e.value, e.frequency);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace streamgpu::sketch
