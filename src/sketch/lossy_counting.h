// Manku-Motwani window-based epsilon-approximate frequency estimation [32],
// as used in §5.1: the stream is processed in windows of w = ceil(1/epsilon)
// elements; each window is sorted (on the GPU in the accelerated
// configuration), reduced to a histogram, merged into the summary, and the
// summary is compressed.
//
// Guarantees (Theorem of [32], restated in §5.1): every estimate
// underestimates the true frequency by at most epsilon*N, the query at
// support s returns every element with true frequency >= s*N (no false
// negatives), and the summary holds O((1/epsilon) log(epsilon*N)) entries.

#ifndef STREAMGPU_SKETCH_LOSSY_COUNTING_H_
#define STREAMGPU_SKETCH_LOSSY_COUNTING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/histogram.h"

namespace streamgpu::sketch {

/// Per-operation cost accounting for the summary maintenance (Fig. 6 splits
/// total time into sort / merge / compress; sort time is tracked by the
/// pipeline, the other two here as wall seconds).
struct SummaryOpCosts {
  double merge_seconds = 0;
  double compress_seconds = 0;

  /// Entries touched by merges / compress passes — the operation counts the
  /// P4 model converts into simulated CPU time for those operations.
  std::uint64_t merged_entries = 0;
  std::uint64_t compressed_entries = 0;
};

/// The epsilon-approximate frequency summary.
class LossyCounting {
 public:
  /// One summary entry: (e, f, delta) of [32]. `frequency` is the counted
  /// occurrences since insertion; `delta` the maximal undercount at
  /// insertion time (current bucket id - 1). Public so the durability layer
  /// can checkpoint and restore the exact summary (docs/DURABILITY.md).
  struct Entry {
    float value = 0;
    std::uint64_t frequency = 0;
    std::uint64_t delta = 0;
  };

  /// epsilon in (0, 1). The natural window width is window_width() =
  /// ceil(1/epsilon); AddWindowHistogram expects windows of that size (a
  /// final partial window is allowed).
  explicit LossyCounting(double epsilon);

  /// Reconstructs a summary from checkpointed parts (the durability restore
  /// path). Validates values strictly ascending, frequencies >= 1, deltas
  /// within the bucket bound, and the element/bucket accounting; returns
  /// false on violation, leaving `out` untouched.
  static bool FromParts(double epsilon, std::uint64_t n, std::uint64_t bucket_id,
                        std::vector<Entry> entries, LossyCounting* out);

  /// Window width w = ceil(1/epsilon) the stream should be chunked into.
  std::uint64_t window_width() const { return window_width_; }

  /// Merges the histogram of one stream window into the summary, then
  /// compresses. `window_elements` is the number of elements the histogram
  /// was built from (== w except possibly for the final window). The
  /// histogram must be sorted by value (as BuildHistogram produces).
  void AddWindowHistogram(std::span<const HistogramEntry> histogram,
                          std::uint64_t window_elements);

  /// Estimated frequency of `value`: in [f - epsilon*N, f].
  std::uint64_t EstimateCount(float value) const;

  /// Every element whose estimated frequency is at least (s - epsilon) * N.
  /// Contains all elements with true frequency >= s*N (no false negatives)
  /// and none with true frequency < (s - epsilon) * N.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(double support) const;

  /// Elements processed so far.
  std::uint64_t stream_length() const { return n_; }

  /// Live summary entries (space usage).
  std::size_t summary_size() const { return entries_.size(); }

  double epsilon() const { return epsilon_; }

  /// Cumulative merge/compress wall costs (Fig. 6).
  const SummaryOpCosts& op_costs() const { return op_costs_; }

  /// Windows (possibly partial) merged so far — the [32] bucket id. Part of
  /// the checkpointed state: the compress threshold depends on it.
  std::uint64_t bucket_id() const { return bucket_id_; }

  /// The live (e, f, delta) entries, ascending by value.
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  /// Deletes entries with frequency + delta <= current bucket id.
  void Compress();

  double epsilon_;
  std::uint64_t window_width_;
  std::uint64_t n_ = 0;
  std::uint64_t bucket_id_ = 0;  ///< number of (possibly partial) windows seen
  std::vector<Entry> entries_;   ///< sorted by value
  SummaryOpCosts op_costs_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_LOSSY_COUNTING_H_
