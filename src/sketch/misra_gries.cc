#include "sketch/misra_gries.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <utility>

#include "common/check.h"

namespace streamgpu::sketch {

MisraGries::MisraGries(double epsilon) : epsilon_(epsilon) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  max_counters_ = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
  counters_.reserve(max_counters_ + 1);
}

void MisraGries::Observe(float value) {
  ++n_;
  auto it = counters_.find(value);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < max_counters_) {
    counters_.emplace(value, 1);
    return;
  }
  // Decrement-all step: every counter loses one; zeroed counters are
  // reclaimed. Each decrement is paid for by a previous increment, so the
  // amortized per-element cost stays constant.
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    if (--iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
}

std::uint64_t MisraGries::EstimateCount(float value) const {
  auto it = counters_.find(value);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<float, std::uint64_t>> MisraGries::HeavyHitters(
    double support) const {
  const double threshold =
      (support - epsilon_) * static_cast<double>(n_);
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const auto& [value, count] : counters_) {
    if (static_cast<double>(count) >= threshold) out.emplace_back(value, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

core::Status MisraGries::Merge(const MisraGries& other) {
  if (other.epsilon_ != epsilon_) {
    return core::Status::InvalidArgument(
        "cannot merge Misra-Gries summaries with different epsilon (" +
        std::to_string(epsilon_) + " vs " + std::to_string(other.epsilon_) +
        "): the counter budgets differ");
  }
  for (const auto& [value, count] : other.counters_) {
    counters_[value] += count;
  }
  n_ += other.n_;
  if (counters_.size() <= max_counters_) return core::Status::Ok();

  // Mergeable-summaries trim (Agarwal et al.): subtract the (k+1)-th
  // largest count from every counter and drop the non-positive ones. At
  // most k counters survive (everything at or below the pivot dies), and
  // the total decrement stays within the (n1+n2)/(k+1) error budget.
  std::vector<std::uint64_t> counts;
  counts.reserve(counters_.size());
  for (const auto& [value, count] : counters_) counts.push_back(count);
  std::nth_element(counts.begin(), counts.begin() + max_counters_, counts.end(),
                   std::greater<std::uint64_t>());
  const std::uint64_t pivot = counts[max_counters_];
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= pivot) {
      it = counters_.erase(it);
    } else {
      it->second -= pivot;
      ++it;
    }
  }
  return core::Status::Ok();
}

bool MisraGries::FromParts(double epsilon, std::uint64_t n,
                           std::vector<std::pair<float, std::uint64_t>> entries,
                           MisraGries* out) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) return false;
  MisraGries parsed(epsilon);
  if (entries.size() > parsed.max_counters_) return false;
  std::uint64_t total = 0;
  for (const auto& [value, count] : entries) {
    if (count == 0) return false;
    if (total + count < total) return false;  // overflow
    total += count;
    if (!parsed.counters_.emplace(value, count).second) return false;  // duplicate
  }
  if (total > n) return false;
  parsed.n_ = n;
  *out = std::move(parsed);
  return true;
}

}  // namespace streamgpu::sketch
