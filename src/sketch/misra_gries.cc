#include "sketch/misra_gries.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/check.h"

namespace streamgpu::sketch {

MisraGries::MisraGries(double epsilon) : epsilon_(epsilon) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  max_counters_ = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
  counters_.reserve(max_counters_ + 1);
}

void MisraGries::Observe(float value) {
  ++n_;
  auto it = counters_.find(value);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < max_counters_) {
    counters_.emplace(value, 1);
    return;
  }
  // Decrement-all step: every counter loses one; zeroed counters are
  // reclaimed. Each decrement is paid for by a previous increment, so the
  // amortized per-element cost stays constant.
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    if (--iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
}

std::uint64_t MisraGries::EstimateCount(float value) const {
  auto it = counters_.find(value);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<float, std::uint64_t>> MisraGries::HeavyHitters(
    double support) const {
  const double threshold =
      (support - epsilon_) * static_cast<double>(n_);
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const auto& [value, count] : counters_) {
    if (static_cast<double>(count) >= threshold) out.emplace_back(value, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace streamgpu::sketch
