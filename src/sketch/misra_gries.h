// The Misra-Gries deterministic frequent-items algorithm [36] — the classic
// counter-based baseline the related-work section traces through Demaine et
// al. [14] and Karp et al. [27] (§2.1). Single-element insertion, k counters,
// one-sided error: estimates undercount true frequencies by at most N/(k+1).

#ifndef STREAMGPU_SKETCH_MISRA_GRIES_H_
#define STREAMGPU_SKETCH_MISRA_GRIES_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace streamgpu::sketch {

/// Misra-Gries frequent-items summary with ceil(1/epsilon) counters.
class MisraGries {
 public:
  /// epsilon in (0, 1): frequency estimates undercount by at most
  /// epsilon * N.
  explicit MisraGries(double epsilon);

  /// Processes one stream element (amortized O(1) map operations).
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values) {
    for (float v : values) Observe(v);
  }

  /// Estimated frequency of `value`: in [f - epsilon*N, f] where f is the
  /// true frequency.
  std::uint64_t EstimateCount(float value) const;

  /// Every tracked value whose estimated frequency is at least
  /// (support - epsilon) * N — a superset of the true heavy hitters at
  /// `support` (no false negatives). Descending estimated frequency.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(double support) const;

  /// Elements processed so far.
  std::uint64_t stream_length() const { return n_; }

  /// Live counters (space usage).
  std::size_t summary_size() const { return counters_.size(); }

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  std::size_t max_counters_;
  std::uint64_t n_ = 0;
  std::unordered_map<float, std::uint64_t> counters_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_MISRA_GRIES_H_
