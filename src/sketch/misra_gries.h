// The Misra-Gries deterministic frequent-items algorithm [36] — the classic
// counter-based baseline the related-work section traces through Demaine et
// al. [14] and Karp et al. [27] (§2.1). Single-element insertion, k counters,
// one-sided error: estimates undercount true frequencies by at most N/(k+1).

#ifndef STREAMGPU_SKETCH_MISRA_GRIES_H_
#define STREAMGPU_SKETCH_MISRA_GRIES_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"

namespace streamgpu::sketch {

/// Misra-Gries frequent-items summary with ceil(1/epsilon) counters.
class MisraGries {
 public:
  /// epsilon in (0, 1): frequency estimates undercount by at most
  /// epsilon * N.
  explicit MisraGries(double epsilon);

  /// Processes one stream element (amortized O(1) map operations).
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values) {
    for (float v : values) Observe(v);
  }

  /// Estimated frequency of `value`: in [f - epsilon*N, f] where f is the
  /// true frequency.
  std::uint64_t EstimateCount(float value) const;

  /// Every tracked value whose estimated frequency is at least
  /// (support - epsilon) * N — a superset of the true heavy hitters at
  /// `support` (no false negatives). Descending estimated frequency.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(double support) const;

  /// Elements processed so far.
  std::uint64_t stream_length() const { return n_; }

  /// Live counters (space usage).
  std::size_t summary_size() const { return counters_.size(); }

  double epsilon() const { return epsilon_; }

  /// The live counters (unordered) — the serialization payload; callers
  /// needing a stable order sort by the canonical float order.
  const std::unordered_map<float, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Folds `other` into this summary: counters add, and if more than
  /// ceil(1/epsilon) counters survive, the (k+1)-th largest count is
  /// subtracted from every counter and non-positive counters are dropped
  /// (Agarwal et al., "Mergeable Summaries"). The merged summary still
  /// undercounts by at most epsilon * (stream_length() +
  /// other.stream_length()) — the stated bound composes with NO error
  /// accumulation (docs/SKETCHES.md). Requires equal epsilon (equal counter
  /// budgets); returns kInvalidArgument otherwise.
  core::Status Merge(const MisraGries& other);

  /// Reconstructs a summary from its serialized components. Validates that
  /// epsilon is in (0, 1), values are distinct, counts are positive and sum
  /// to at most `n`, and the entry count fits the ceil(1/epsilon) budget;
  /// returns false on violation, leaving `out` untouched.
  static bool FromParts(double epsilon, std::uint64_t n,
                        std::vector<std::pair<float, std::uint64_t>> entries,
                        MisraGries* out);

 private:
  double epsilon_;
  std::size_t max_counters_;
  std::uint64_t n_ = 0;
  std::unordered_map<float, std::uint64_t> counters_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_MISRA_GRIES_H_
