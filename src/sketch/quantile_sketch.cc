#include "sketch/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "sketch/exponential_histogram.h"
#include "sketch/gk_adaptive.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"
#include "sketch/serialize.h"
#include "sketch/wire.h"

namespace streamgpu::sketch {

namespace {

std::uint64_t StatedBound(double epsilon, std::uint64_t count) {
  return static_cast<std::uint64_t>(std::ceil(epsilon * static_cast<double>(count)));
}

core::Status TruncatedState(const char* what) {
  return core::Status::InvalidArgument(std::string("truncated ") + what +
                                       " checkpoint state");
}

/// The paper's backend (§5.2): per-window GK summaries maintained in an
/// exponential histogram. The mergeable export flattens the buckets into one
/// GkSummary — each bucket is at most epsilon-approximate (LevelBudget), and
/// GK MERGE preserves max(epsilon) over the combined count, so the flattened
/// summary is epsilon-approximate for everything covered.
class GkEhSketch final : public QuantileSketch {
 public:
  GkEhSketch(double epsilon, std::uint64_t window_size,
             std::uint64_t expected_length)
      : epsilon_(epsilon), eh_(epsilon, window_size, expected_length) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    Timer timer;
    GkSummary summary = GkSummary::FromSorted(window, epsilon_ / 2.0);
    summarize_seconds_ += timer.ElapsedSeconds();
    const std::size_t tuples = summary.size();
    eh_.AddWindowSummary(std::move(summary));
    return tuples;
  }

  float Query(double phi) const override { return eh_.Query(phi); }
  std::uint64_t count() const override { return eh_.count(); }
  std::size_t summary_size() const override { return eh_.TotalTuples(); }
  std::uint64_t rank_error_bound() const override {
    return StatedBound(epsilon_, eh_.count());
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    GkSummary flat;
    for (const GkSummary& bucket : eh_.buckets()) {
      if (!bucket.empty()) flat = GkSummary::Merge(flat, bucket);
    }
    return SerializeSummary(flat, out);
  }

  // Full state: the bucket cascade itself. Layout: count u64, slot count
  // u32, then per slot a present byte followed (when present) by the
  // bucket's nested SGMS GK envelope.
  core::Status AppendCheckpointState(std::vector<std::uint8_t>* out) const override {
    wire::Append<std::uint64_t>(out, eh_.count());
    const auto& buckets = eh_.buckets();
    wire::Append<std::uint32_t>(out, static_cast<std::uint32_t>(buckets.size()));
    for (const GkSummary& bucket : buckets) {
      wire::Append<std::uint8_t>(out, bucket.empty() ? 0 : 1);
      if (!bucket.empty()) {
        if (core::Status s = SerializeSummary(bucket, out); !s.ok()) return s;
      }
    }
    return core::Status::Ok();
  }

  core::Status RestoreState(std::span<const std::uint8_t> payload,
                            std::uint64_t window_size,
                            std::uint64_t expected_length) {
    std::uint64_t count = 0;
    std::uint32_t slots = 0;
    if (!wire::Read(&payload, &count) || !wire::Read(&payload, &slots)) {
      return TruncatedState("gk");
    }
    // The cascade depth is logarithmic in the window count; reject absurd
    // slot counts before allocating.
    if (slots > 4096) {
      return core::Status::InvalidArgument("gk checkpoint bucket count " +
                                           std::to_string(slots) + " not plausible");
    }
    std::vector<GkSummary> buckets(slots);
    for (std::uint32_t i = 0; i < slots; ++i) {
      std::uint8_t present = 0;
      if (!wire::Read(&payload, &present)) return TruncatedState("gk");
      if (present > 1) {
        return core::Status::InvalidArgument("gk checkpoint present flag corrupt");
      }
      if (present == 1) {
        auto bucket = DeserializeGkSummary(&payload);
        if (!bucket.ok()) return bucket.status();
        buckets[i] = std::move(bucket).value();
      }
    }
    if (!payload.empty()) {
      return core::Status::InvalidArgument("trailing bytes after gk checkpoint state");
    }
    EhQuantileSummary restored(epsilon_, 1, 1);
    if (!EhQuantileSummary::FromParts(epsilon_, window_size, expected_length,
                                      count, std::move(buckets), &restored)) {
      return core::Status::InvalidArgument(
          "gk checkpoint state violates the exponential-histogram invariants");
    }
    eh_ = std::move(restored);
    return core::Status::Ok();
  }

  QuantileSketchKind kind() const override { return QuantileSketchKind::kGk; }

  double summarize_seconds() const override { return summarize_seconds_; }
  double merge_seconds() const override { return eh_.merge_seconds(); }
  double compress_seconds() const override { return eh_.compress_seconds(); }
  std::uint64_t merged_tuples() const override { return eh_.merged_tuples(); }
  std::uint64_t pruned_tuples() const override { return eh_.pruned_tuples(); }

 private:
  double epsilon_;
  EhQuantileSummary eh_;
  double summarize_seconds_ = 0;
};

/// The single-element GK01 baseline. Windows are fed element-wise; the
/// mergeable export converts the (v, g, Delta) tuples to explicit rank
/// bounds (rmin_i = sum of g up to i, rmax_i = rmin_i + Delta_i).
class GkAdaptiveSketch final : public QuantileSketch {
 public:
  explicit GkAdaptiveSketch(double epsilon) : gk_(epsilon) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    Timer timer;
    gk_.ObserveBatch(window);
    summarize_seconds_ += timer.ElapsedSeconds();
    return window.size();
  }

  float Query(double phi) const override { return gk_.Quantile(phi); }
  std::uint64_t count() const override { return gk_.stream_length(); }
  std::size_t summary_size() const override { return gk_.summary_size(); }
  std::uint64_t rank_error_bound() const override {
    return StatedBound(gk_.epsilon(), gk_.stream_length());
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    std::vector<GkTuple> tuples;
    tuples.reserve(gk_.summary_size());
    std::uint64_t rmin = 0;
    std::uint64_t rmax_floor = 0;
    for (const GkAdaptiveTuple& t : gk_.tuples()) {
      rmin += t.g;
      // rmax is a valid upper bound, so clamping it monotone (and within
      // count) keeps it valid while satisfying GkSummary's invariants.
      const std::uint64_t rmax =
          std::min(gk_.stream_length(), std::max(rmax_floor, rmin + t.delta));
      rmax_floor = rmax;
      tuples.push_back({t.value, rmin, rmax});
    }
    GkSummary converted;
    STREAMGPU_CHECK_MSG(GkSummary::FromParts(std::move(tuples), gk_.stream_length(),
                                             gk_.epsilon(), &converted),
                        "GK01 tuples violate the summary invariants");
    return SerializeSummary(converted, out);
  }

  // Full state: n plus the raw (v, g, Delta) tuples. The compress period is
  // a pure function of epsilon and the next compress fires on n % period, so
  // nothing else is needed for bit-identical continuation.
  core::Status AppendCheckpointState(std::vector<std::uint8_t>* out) const override {
    wire::Append<std::uint64_t>(out, gk_.stream_length());
    wire::Append<std::uint64_t>(out, static_cast<std::uint64_t>(gk_.tuples().size()));
    for (const GkAdaptiveTuple& t : gk_.tuples()) {
      wire::Append<float>(out, t.value);
      wire::Append<std::uint64_t>(out, t.g);
      wire::Append<std::uint64_t>(out, t.delta);
    }
    return core::Status::Ok();
  }

  core::Status RestoreState(std::span<const std::uint8_t> payload) {
    std::uint64_t n = 0;
    std::uint64_t tuple_count = 0;
    if (!wire::Read(&payload, &n) || !wire::Read(&payload, &tuple_count)) {
      return TruncatedState("gk-adaptive");
    }
    constexpr std::size_t kTupleBytes = sizeof(float) + 2 * sizeof(std::uint64_t);
    if (tuple_count > n || payload.size() % kTupleBytes != 0 ||
        payload.size() / kTupleBytes != tuple_count) {
      return core::Status::InvalidArgument(
          "gk-adaptive checkpoint tuple count inconsistent with payload size");
    }
    std::vector<GkAdaptiveTuple> tuples;
    tuples.reserve(tuple_count);
    for (std::uint64_t i = 0; i < tuple_count; ++i) {
      GkAdaptiveTuple t;
      wire::Read(&payload, &t.value);
      wire::Read(&payload, &t.g);
      wire::Read(&payload, &t.delta);
      tuples.push_back(t);
    }
    GkAdaptive restored(gk_.epsilon());
    if (!GkAdaptive::FromParts(gk_.epsilon(), n, std::move(tuples), &restored)) {
      return core::Status::InvalidArgument(
          "gk-adaptive checkpoint state violates the g + Delta invariant");
    }
    gk_ = std::move(restored);
    return core::Status::Ok();
  }

  QuantileSketchKind kind() const override {
    return QuantileSketchKind::kGkAdaptive;
  }

  double summarize_seconds() const override { return summarize_seconds_; }

 private:
  GkAdaptive gk_;
  double summarize_seconds_ = 0;
};

/// The KLL compactor hierarchy (sketch/kll.h). Natively mergeable: the wire
/// export is the sketch itself.
class KllQuantileSketch final : public QuantileSketch {
 public:
  explicit KllQuantileSketch(double epsilon) : kll_(epsilon) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    // Keep the summarize/compress mirrors disjoint: compaction time is
    // tracked inside the sketch and subtracted from the insert wall time.
    const double compress_before = kll_.compress_seconds();
    Timer timer;
    kll_.ObserveSorted(window);
    const double elapsed = timer.ElapsedSeconds();
    summarize_seconds_ +=
        std::max(0.0, elapsed - (kll_.compress_seconds() - compress_before));
    return window.size();
  }

  float Query(double phi) const override { return kll_.Quantile(phi); }
  std::uint64_t count() const override { return kll_.count(); }
  std::size_t summary_size() const override { return kll_.summary_size(); }
  std::uint64_t rank_error_bound() const override {
    return kll_.rank_error_bound();
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    return SerializeSummary(kll_, out);
  }

  // The KLL wire envelope already carries the full state — levels, seed, and
  // the compaction counter that positions the deterministic coin sequence —
  // so the checkpoint payload is simply the nested envelope.
  core::Status AppendCheckpointState(std::vector<std::uint8_t>* out) const override {
    return SerializeSummary(kll_, out);
  }

  core::Status RestoreState(std::span<const std::uint8_t> payload, double epsilon) {
    auto restored = DeserializeKllSketch(&payload);
    if (!restored.ok()) return restored.status();
    if (!payload.empty()) {
      return core::Status::InvalidArgument("trailing bytes after kll checkpoint state");
    }
    if (restored.value().epsilon() != epsilon) {
      return core::Status::InvalidArgument(
          "kll checkpoint epsilon does not match the configured epsilon");
    }
    kll_ = std::move(restored).value();
    return core::Status::Ok();
  }

  QuantileSketchKind kind() const override { return QuantileSketchKind::kKll; }

  double summarize_seconds() const override { return summarize_seconds_; }
  double compress_seconds() const override { return kll_.compress_seconds(); }
  std::uint64_t pruned_tuples() const override { return kll_.discarded_items(); }

 private:
  KllSketch kll_;
  double summarize_seconds_ = 0;
};

}  // namespace

const char* QuantileSketchKindName(QuantileSketchKind kind) {
  switch (kind) {
    case QuantileSketchKind::kGk:
      return "gk";
    case QuantileSketchKind::kGkAdaptive:
      return "gk-adaptive";
    case QuantileSketchKind::kKll:
      return "kll";
  }
  return "?";
}

bool ParseQuantileSketchKind(const char* name, QuantileSketchKind* kind) {
  if (std::strcmp(name, "gk") == 0) {
    *kind = QuantileSketchKind::kGk;
  } else if (std::strcmp(name, "gk-adaptive") == 0) {
    *kind = QuantileSketchKind::kGkAdaptive;
  } else if (std::strcmp(name, "kll") == 0) {
    *kind = QuantileSketchKind::kKll;
  } else {
    return false;
  }
  return true;
}

core::StatusOr<std::unique_ptr<QuantileSketch>> QuantileSketch::Create(
    QuantileSketchKind kind, double epsilon, std::uint64_t window_size,
    std::uint64_t expected_stream_length) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return core::Status::InvalidArgument("epsilon must be in (0, 1), got " +
                                         std::to_string(epsilon));
  }
  switch (kind) {
    case QuantileSketchKind::kGk:
      return std::unique_ptr<QuantileSketch>(
          new GkEhSketch(epsilon, window_size, expected_stream_length));
    case QuantileSketchKind::kGkAdaptive:
      return std::unique_ptr<QuantileSketch>(new GkAdaptiveSketch(epsilon));
    case QuantileSketchKind::kKll:
      return std::unique_ptr<QuantileSketch>(new KllQuantileSketch(epsilon));
  }
  return core::Status::InvalidArgument("unknown quantile sketch kind");
}

core::StatusOr<std::unique_ptr<QuantileSketch>> QuantileSketch::RestoreCheckpointState(
    QuantileSketchKind kind, double epsilon, std::uint64_t window_size,
    std::uint64_t expected_stream_length, std::span<const std::uint8_t> payload) {
  auto sketch = Create(kind, epsilon, window_size, expected_stream_length);
  if (!sketch.ok()) return sketch.status();
  core::Status restored = core::Status::InvalidArgument("unknown quantile sketch kind");
  switch (kind) {
    case QuantileSketchKind::kGk:
      restored = static_cast<GkEhSketch*>(sketch.value().get())
                     ->RestoreState(payload, window_size, expected_stream_length);
      break;
    case QuantileSketchKind::kGkAdaptive:
      restored =
          static_cast<GkAdaptiveSketch*>(sketch.value().get())->RestoreState(payload);
      break;
    case QuantileSketchKind::kKll:
      restored = static_cast<KllQuantileSketch*>(sketch.value().get())
                     ->RestoreState(payload, epsilon);
      break;
  }
  if (!restored.ok()) return restored;
  return std::move(sketch).value();
}

}  // namespace streamgpu::sketch
