#include "sketch/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "sketch/exponential_histogram.h"
#include "sketch/gk_adaptive.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"
#include "sketch/serialize.h"

namespace streamgpu::sketch {

namespace {

std::uint64_t StatedBound(double epsilon, std::uint64_t count) {
  return static_cast<std::uint64_t>(std::ceil(epsilon * static_cast<double>(count)));
}

/// The paper's backend (§5.2): per-window GK summaries maintained in an
/// exponential histogram. The mergeable export flattens the buckets into one
/// GkSummary — each bucket is at most epsilon-approximate (LevelBudget), and
/// GK MERGE preserves max(epsilon) over the combined count, so the flattened
/// summary is epsilon-approximate for everything covered.
class GkEhSketch final : public QuantileSketch {
 public:
  GkEhSketch(double epsilon, std::uint64_t window_size,
             std::uint64_t expected_length)
      : epsilon_(epsilon), eh_(epsilon, window_size, expected_length) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    Timer timer;
    GkSummary summary = GkSummary::FromSorted(window, epsilon_ / 2.0);
    summarize_seconds_ += timer.ElapsedSeconds();
    const std::size_t tuples = summary.size();
    eh_.AddWindowSummary(std::move(summary));
    return tuples;
  }

  float Query(double phi) const override { return eh_.Query(phi); }
  std::uint64_t count() const override { return eh_.count(); }
  std::size_t summary_size() const override { return eh_.TotalTuples(); }
  std::uint64_t rank_error_bound() const override {
    return StatedBound(epsilon_, eh_.count());
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    GkSummary flat;
    for (const GkSummary& bucket : eh_.buckets()) {
      if (!bucket.empty()) flat = GkSummary::Merge(flat, bucket);
    }
    return SerializeSummary(flat, out);
  }

  QuantileSketchKind kind() const override { return QuantileSketchKind::kGk; }

  double summarize_seconds() const override { return summarize_seconds_; }
  double merge_seconds() const override { return eh_.merge_seconds(); }
  double compress_seconds() const override { return eh_.compress_seconds(); }
  std::uint64_t merged_tuples() const override { return eh_.merged_tuples(); }
  std::uint64_t pruned_tuples() const override { return eh_.pruned_tuples(); }

 private:
  double epsilon_;
  EhQuantileSummary eh_;
  double summarize_seconds_ = 0;
};

/// The single-element GK01 baseline. Windows are fed element-wise; the
/// mergeable export converts the (v, g, Delta) tuples to explicit rank
/// bounds (rmin_i = sum of g up to i, rmax_i = rmin_i + Delta_i).
class GkAdaptiveSketch final : public QuantileSketch {
 public:
  explicit GkAdaptiveSketch(double epsilon) : gk_(epsilon) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    Timer timer;
    gk_.ObserveBatch(window);
    summarize_seconds_ += timer.ElapsedSeconds();
    return window.size();
  }

  float Query(double phi) const override { return gk_.Quantile(phi); }
  std::uint64_t count() const override { return gk_.stream_length(); }
  std::size_t summary_size() const override { return gk_.summary_size(); }
  std::uint64_t rank_error_bound() const override {
    return StatedBound(gk_.epsilon(), gk_.stream_length());
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    std::vector<GkTuple> tuples;
    tuples.reserve(gk_.summary_size());
    std::uint64_t rmin = 0;
    std::uint64_t rmax_floor = 0;
    for (const GkAdaptiveTuple& t : gk_.tuples()) {
      rmin += t.g;
      // rmax is a valid upper bound, so clamping it monotone (and within
      // count) keeps it valid while satisfying GkSummary's invariants.
      const std::uint64_t rmax =
          std::min(gk_.stream_length(), std::max(rmax_floor, rmin + t.delta));
      rmax_floor = rmax;
      tuples.push_back({t.value, rmin, rmax});
    }
    GkSummary converted;
    STREAMGPU_CHECK_MSG(GkSummary::FromParts(std::move(tuples), gk_.stream_length(),
                                             gk_.epsilon(), &converted),
                        "GK01 tuples violate the summary invariants");
    return SerializeSummary(converted, out);
  }

  QuantileSketchKind kind() const override {
    return QuantileSketchKind::kGkAdaptive;
  }

  double summarize_seconds() const override { return summarize_seconds_; }

 private:
  GkAdaptive gk_;
  double summarize_seconds_ = 0;
};

/// The KLL compactor hierarchy (sketch/kll.h). Natively mergeable: the wire
/// export is the sketch itself.
class KllQuantileSketch final : public QuantileSketch {
 public:
  explicit KllQuantileSketch(double epsilon) : kll_(epsilon) {}

  std::size_t AddSortedWindow(std::span<const float> window) override {
    // Keep the summarize/compress mirrors disjoint: compaction time is
    // tracked inside the sketch and subtracted from the insert wall time.
    const double compress_before = kll_.compress_seconds();
    Timer timer;
    kll_.ObserveSorted(window);
    const double elapsed = timer.ElapsedSeconds();
    summarize_seconds_ +=
        std::max(0.0, elapsed - (kll_.compress_seconds() - compress_before));
    return window.size();
  }

  float Query(double phi) const override { return kll_.Quantile(phi); }
  std::uint64_t count() const override { return kll_.count(); }
  std::size_t summary_size() const override { return kll_.summary_size(); }
  std::uint64_t rank_error_bound() const override {
    return kll_.rank_error_bound();
  }

  core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const override {
    return SerializeSummary(kll_, out);
  }

  QuantileSketchKind kind() const override { return QuantileSketchKind::kKll; }

  double summarize_seconds() const override { return summarize_seconds_; }
  double compress_seconds() const override { return kll_.compress_seconds(); }
  std::uint64_t pruned_tuples() const override { return kll_.discarded_items(); }

 private:
  KllSketch kll_;
  double summarize_seconds_ = 0;
};

}  // namespace

const char* QuantileSketchKindName(QuantileSketchKind kind) {
  switch (kind) {
    case QuantileSketchKind::kGk:
      return "gk";
    case QuantileSketchKind::kGkAdaptive:
      return "gk-adaptive";
    case QuantileSketchKind::kKll:
      return "kll";
  }
  return "?";
}

bool ParseQuantileSketchKind(const char* name, QuantileSketchKind* kind) {
  if (std::strcmp(name, "gk") == 0) {
    *kind = QuantileSketchKind::kGk;
  } else if (std::strcmp(name, "gk-adaptive") == 0) {
    *kind = QuantileSketchKind::kGkAdaptive;
  } else if (std::strcmp(name, "kll") == 0) {
    *kind = QuantileSketchKind::kKll;
  } else {
    return false;
  }
  return true;
}

core::StatusOr<std::unique_ptr<QuantileSketch>> QuantileSketch::Create(
    QuantileSketchKind kind, double epsilon, std::uint64_t window_size,
    std::uint64_t expected_stream_length) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return core::Status::InvalidArgument("epsilon must be in (0, 1), got " +
                                         std::to_string(epsilon));
  }
  switch (kind) {
    case QuantileSketchKind::kGk:
      return std::unique_ptr<QuantileSketch>(
          new GkEhSketch(epsilon, window_size, expected_stream_length));
    case QuantileSketchKind::kGkAdaptive:
      return std::unique_ptr<QuantileSketch>(new GkAdaptiveSketch(epsilon));
    case QuantileSketchKind::kKll:
      return std::unique_ptr<QuantileSketch>(new KllQuantileSketch(epsilon));
  }
  return core::Status::InvalidArgument("unknown quantile sketch kind");
}

}  // namespace streamgpu::sketch
