// QuantileSketch: the swappable whole-history quantile backend behind
// core::QuantileSummaryCore, so GK+EH (the paper's §5.2 structure), the
// single-element GK01 baseline, and KLL are selectable via Options::
// quantile_sketch instead of a hard-coded EhQuantileSummary member — the
// same factory/Status conventions as the estimator Create() redesign.
//
// Implementations are single-threaded value objects: the owner serializes
// AddSortedWindow against queries (the estimators via the ordered drain
// thread, the StreamService via its per-shard summary lock). Every
// implementation is deterministic — the same window sequence produces the
// same sketch and the same answers regardless of worker count or sort
// backend (KLL's compaction coin is seeded, docs/SKETCHES.md).
//
// Sliding-window mode keeps its dedicated GK block decomposition
// (sketch/sliding_window.h); Options::Validate() rejects non-GK kinds
// combined with a sliding window.

#ifndef STREAMGPU_SKETCH_QUANTILE_SKETCH_H_
#define STREAMGPU_SKETCH_QUANTILE_SKETCH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/status.h"

namespace streamgpu::sketch {

/// Which whole-history quantile backend a stream uses.
enum class QuantileSketchKind {
  kGk,          ///< GK summaries in an exponential histogram (§5.2, default)
  kGkAdaptive,  ///< single-element GK01 (sketch/gk_adaptive.h)
  kKll,         ///< Karnin-Lang-Liberty compactor hierarchy (sketch/kll.h)
};

/// CLI/config name: "gk", "gk-adaptive", "kll".
const char* QuantileSketchKindName(QuantileSketchKind kind);

/// Inverse of QuantileSketchKindName; returns false on an unknown name.
bool ParseQuantileSketchKind(const char* name, QuantileSketchKind* kind);

/// Abstract whole-history quantile backend.
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Folds one ascending-sorted window (the repo's canonical bit-pattern
  /// order, any backend) into the sketch. Returns the size of the condensed
  /// per-window summary (trace metadata; the window size for backends that
  /// insert elements directly).
  virtual std::size_t AddSortedWindow(std::span<const float> window) = 0;

  /// The phi-quantile (phi in (0, 1]) over everything added. Callers guard
  /// the empty case (count() == 0) themselves, mirroring the summary core's
  /// coverage-0 contract.
  virtual float Query(double phi) const = 0;

  /// Elements covered so far.
  virtual std::uint64_t count() const = 0;

  /// Tuples/items currently retained (space usage).
  virtual std::size_t summary_size() const = 0;

  /// Honest absolute rank-error bound at the current count, excluding
  /// quarantine/shed widening (the summary core adds those).
  virtual std::uint64_t rank_error_bound() const = 0;

  /// Serializes the sketch's mergeable summary as one wire envelope
  /// (sketch/serialize.h) appended to `out` — the shard export the combiner
  /// and `streamgpu_cli merge` consume. GK-family backends export a
  /// flattened GkSummary; KLL exports itself.
  virtual core::Status AppendWireSummary(std::vector<std::uint8_t>* out) const = 0;

  /// Serializes the sketch's FULL internal state — unlike the mergeable
  /// export, which may condense (GK+EH flattens its bucket cascade) — so a
  /// restored sketch continues bit-identically from the checkpoint: GK+EH
  /// keeps every bucket, GK01 its (v, g, Delta) tuples and n, KLL its levels
  /// plus the compaction-coin position. Payload layouts in
  /// docs/DURABILITY.md; consumed by RestoreCheckpointState.
  virtual core::Status AppendCheckpointState(std::vector<std::uint8_t>* out) const = 0;

  virtual QuantileSketchKind kind() const = 0;

  /// Cost mirrors for the estimators' PipelineCosts accounting; backends
  /// without a matching operation report zero.
  virtual double summarize_seconds() const { return 0; }  ///< per-window condense
  virtual double merge_seconds() const { return 0; }
  virtual double compress_seconds() const { return 0; }
  virtual std::uint64_t merged_tuples() const { return 0; }
  virtual std::uint64_t pruned_tuples() const { return 0; }

  /// Factory. `epsilon` in (0, 1); `window_size` is the resolved processing
  /// window and `expected_stream_length` the a-priori N — both consulted
  /// only by the GK+EH backend (level provisioning). Returns kInvalidArgument
  /// for an out-of-range epsilon or an unknown kind.
  static core::StatusOr<std::unique_ptr<QuantileSketch>> Create(
      QuantileSketchKind kind, double epsilon, std::uint64_t window_size,
      std::uint64_t expected_stream_length);

  /// Inverse of AppendCheckpointState: reconstructs a sketch of `kind` from
  /// one checkpointed state payload (which must span `payload` exactly). The
  /// configuration arguments must match the original Create() call. Returns
  /// kInvalidArgument on truncation, trailing bytes, or a payload that fails
  /// the sketch's structural validation — never aborts on untrusted input.
  static core::StatusOr<std::unique_ptr<QuantileSketch>> RestoreCheckpointState(
      QuantileSketchKind kind, double epsilon, std::uint64_t window_size,
      std::uint64_t expected_stream_length, std::span<const std::uint8_t> payload);
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_QUANTILE_SKETCH_H_
