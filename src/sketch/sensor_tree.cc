#include "sketch/sensor_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

SensorTreeAggregator::SensorTreeAggregator(double epsilon, int height)
    : epsilon_(epsilon), height_(height) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(height >= 1);
  // One compress per level may add eps/(2*height): B = ceil(2*height/eps).
  compress_tuples_ = static_cast<std::size_t>(
      std::ceil(2.0 * static_cast<double>(height) / epsilon));
}

double SensorTreeAggregator::LevelBudget(int node_height) const {
  STREAMGPU_CHECK(node_height >= 0 && node_height <= height_);
  return epsilon_ / 2.0 + static_cast<double>(node_height) * epsilon_ /
                              (2.0 * static_cast<double>(height_));
}

GkSummary SensorTreeAggregator::MakeLeafSummary(
    std::span<const float> sorted_observations) const {
  return GkSummary::FromSorted(sorted_observations, epsilon_ / 2.0);
}

GkSummary SensorTreeAggregator::AggregateAtNode(std::vector<GkSummary> children,
                                                int node_height) {
  STREAMGPU_CHECK(node_height >= 1 && node_height <= height_);
  GkSummary merged;
  for (GkSummary& child : children) {
    tuples_transmitted_ += child.size();
    merged = GkSummary::Merge(merged, child);
  }
  GkSummary compressed = merged.Prune(compress_tuples_);
  STREAMGPU_CHECK_MSG(compressed.epsilon() <= LevelBudget(node_height) + 1e-12,
                      "node summary exceeded its level budget");
  return compressed;
}

GkSummary SensorTreeAggregator::AggregateComplete(
    const std::vector<std::vector<float>>& leaf_data, int fanout) {
  STREAMGPU_CHECK(fanout >= 2);
  STREAMGPU_CHECK(!leaf_data.empty());

  std::vector<GkSummary> level;
  level.reserve(leaf_data.size());
  for (const auto& observations : leaf_data) {
    STREAMGPU_DCHECK(std::is_sorted(observations.begin(), observations.end()));
    level.push_back(MakeLeafSummary(observations));
  }

  int node_height = 1;
  while (level.size() > 1) {
    STREAMGPU_CHECK_MSG(node_height <= height_,
                        "tree deeper than the provisioned height");
    std::vector<GkSummary> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (std::size_t base = 0; base < level.size(); base += fanout) {
      const std::size_t end = std::min(level.size(), base + fanout);
      std::vector<GkSummary> group(
          std::make_move_iterator(level.begin() + static_cast<std::ptrdiff_t>(base)),
          std::make_move_iterator(level.begin() + static_cast<std::ptrdiff_t>(end)));
      next.push_back(AggregateAtNode(std::move(group), node_height));
    }
    level = std::move(next);
    ++node_height;
  }
  return std::move(level.front());
}

}  // namespace streamgpu::sketch
