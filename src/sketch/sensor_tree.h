// The sensor-network quantile aggregation of Greenwald & Khanna [21] that
// §5.2 extends to streams: "The sensor network is assumed as a tree with
// height h. Each node in the tree initially computes an eps'-approximate
// quantile summary by sorting its set of observations locally ... Each node
// communicates its summary structure to its parent node. At the parent node,
// a merge operation is performed ... Finally, the node performs a compress
// operation to compute a new summary structure with B+1 elements, B = h/eps.
// The new summary structure is (eps/2 + i/B)-approximate where i is the
// height of the current node measured from the leaf."
//
// This module simulates that aggregation over an explicit tree and reports
// the total summary traffic ("minimizing the communication costs in a sensor
// network") alongside the epsilon-accurate root summary.

#ifndef STREAMGPU_SKETCH_SENSOR_TREE_H_
#define STREAMGPU_SKETCH_SENSOR_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/gk_summary.h"

namespace streamgpu::sketch {

/// Aggregates per-node observations up a complete tree, producing an
/// epsilon-approximate quantile summary of the union at the root.
class SensorTreeAggregator {
 public:
  /// `epsilon` in (0, 1); `height` >= 1 is the tree height (leaves at
  /// height 0, root at `height`).
  SensorTreeAggregator(double epsilon, int height);

  /// Per-level error budget: eps/2 + i * eps / (2 * height) at height i.
  double LevelBudget(int node_height) const;

  /// Tuple budget B = ceil(2 * height / epsilon) used by each compress, so
  /// one compress adds at most eps/(2*height) error.
  std::size_t compress_tuples() const { return compress_tuples_; }

  /// Builds a leaf summary from one node's sorted observations (the local
  /// sort is the step §5.2's stream extension moves to the GPU).
  GkSummary MakeLeafSummary(std::span<const float> sorted_observations) const;

  /// Aggregates children summaries at a node of height `node_height`:
  /// merge all, then compress to the level budget. Counts the children's
  /// tuples as upward communication traffic.
  GkSummary AggregateAtNode(std::vector<GkSummary> children, int node_height);

  /// Convenience: distributes `observations_per_leaf`-sized slices of
  /// `sorted pools` over the leaves of a complete `fanout`-ary tree and
  /// aggregates to the root. Every leaf's data must be pre-sorted.
  GkSummary AggregateComplete(const std::vector<std::vector<float>>& leaf_data,
                              int fanout);

  /// Total tuples transmitted upward so far (the communication cost [21]
  /// minimizes).
  std::uint64_t tuples_transmitted() const { return tuples_transmitted_; }

  double epsilon() const { return epsilon_; }
  int height() const { return height_; }

 private:
  double epsilon_;
  int height_;
  std::size_t compress_tuples_;
  std::uint64_t tuples_transmitted_ = 0;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_SENSOR_TREE_H_
