#include "sketch/serialize.h"

#include <cstring>

namespace streamgpu::sketch {

namespace {

constexpr std::uint32_t kGkMagic = 0x474B5331;  // "GKS1"

template <typename T>
void Append(std::vector<std::uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool Read(std::span<const std::uint8_t>* bytes, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes->size() < sizeof(T)) return false;
  std::memcpy(value, bytes->data(), sizeof(T));
  *bytes = bytes->subspan(sizeof(T));
  return true;
}

}  // namespace

std::size_t GkSummaryWireSize(std::size_t tuples) {
  // magic + count + epsilon + tuple count + tuples (value, rmin, rmax).
  return sizeof(std::uint32_t) + sizeof(std::uint64_t) + sizeof(double) +
         sizeof(std::uint64_t) + tuples * (sizeof(float) + 2 * sizeof(std::uint64_t));
}

void SerializeGkSummary(const GkSummary& summary, std::vector<std::uint8_t>* out) {
  out->reserve(out->size() + GkSummaryWireSize(summary.size()));
  Append(out, kGkMagic);
  Append(out, summary.count());
  Append(out, summary.epsilon());
  Append(out, static_cast<std::uint64_t>(summary.size()));
  for (const GkTuple& t : summary.tuples()) {
    Append(out, t.value);
    Append(out, t.rmin);
    Append(out, t.rmax);
  }
}

bool DeserializeGkSummary(std::span<const std::uint8_t>* bytes, GkSummary* summary) {
  std::span<const std::uint8_t> cursor = *bytes;
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  double epsilon = 0;
  std::uint64_t tuple_count = 0;
  if (!Read(&cursor, &magic) || magic != kGkMagic) return false;
  if (!Read(&cursor, &count) || !Read(&cursor, &epsilon) || !Read(&cursor, &tuple_count)) {
    return false;
  }
  // Reject sizes the remaining bytes cannot possibly hold (corrupted length
  // fields must not drive allocation).
  if (tuple_count > cursor.size() / (sizeof(float) + 2 * sizeof(std::uint64_t))) {
    return false;
  }
  std::vector<GkTuple> tuples(static_cast<std::size_t>(tuple_count));
  for (GkTuple& t : tuples) {
    if (!Read(&cursor, &t.value) || !Read(&cursor, &t.rmin) || !Read(&cursor, &t.rmax)) {
      return false;
    }
  }
  GkSummary parsed;
  if (!GkSummary::FromParts(std::move(tuples), count, epsilon, &parsed)) return false;
  *summary = std::move(parsed);
  *bytes = cursor;
  return true;
}

}  // namespace streamgpu::sketch
