#include "sketch/serialize.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <string>
#include <utility>

namespace streamgpu::sketch {

namespace {

using core::Status;
using core::StatusOr;

/// Pre-envelope GK framing ("GKS1") — readable for one release (shim).
constexpr std::uint32_t kLegacyGkMagic = 0x474B5331;

constexpr std::size_t kHeaderSize =
    sizeof(std::uint32_t) + sizeof(std::uint16_t) + sizeof(std::uint16_t) +
    sizeof(std::uint64_t) + sizeof(std::uint32_t);

template <typename T>
void Append(std::vector<std::uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool Read(std::span<const std::uint8_t>* bytes, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes->size() < sizeof(T)) return false;
  std::memcpy(value, bytes->data(), sizeof(T));
  *bytes = bytes->subspan(sizeof(T));
  return true;
}

/// Same canonical float order as the sort backends (sort::FloatToOrderedKey):
/// serialization of unordered containers sorts by it so equal summaries
/// always produce identical bytes.
inline std::uint32_t OrderKey(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  return bits & 0x80000000u ? ~bits : bits | 0x80000000u;
}

struct Crc32Table {
  std::array<std::uint32_t, 256> entries{};
  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      entries[i] = crc;
    }
  }
};

constexpr Crc32Table kCrcTable;

/// Writes the envelope header + payload onto `out`.
void AppendEnvelope(SketchType type, std::span<const std::uint8_t> payload,
                    std::vector<std::uint8_t>* out) {
  out->reserve(out->size() + kHeaderSize + payload.size());
  Append(out, kWireMagic);
  Append(out, kWireVersion);
  Append(out, static_cast<std::uint16_t>(type));
  Append(out, static_cast<std::uint64_t>(payload.size()));
  Append(out, Crc32(payload));
  out->insert(out->end(), payload.begin(), payload.end());
}

struct Envelope {
  SketchType type;
  std::span<const std::uint8_t> payload;
  std::size_t consumed;  ///< total envelope bytes, header included
};

bool IsKnownType(std::uint16_t tag) {
  return tag >= static_cast<std::uint16_t>(SketchType::kGkSummary) &&
         tag <= static_cast<std::uint16_t>(SketchType::kMisraGries);
}

/// Parses and validates one envelope header (magic, version, tag, length,
/// checksum) without interpreting the payload. Does not advance `bytes`.
StatusOr<Envelope> ParseEnvelope(std::span<const std::uint8_t> bytes) {
  std::span<const std::uint8_t> cursor = bytes;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t tag = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t checksum = 0;
  if (!Read(&cursor, &magic) || !Read(&cursor, &version) || !Read(&cursor, &tag) ||
      !Read(&cursor, &payload_len) || !Read(&cursor, &checksum)) {
    return Status::InvalidArgument("truncated summary envelope: " +
                                   std::to_string(bytes.size()) +
                                   " bytes is smaller than the 20-byte header");
  }
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad summary envelope magic");
  }
  if (version > kWireVersion) {
    return Status::InvalidArgument(
        "summary envelope version " + std::to_string(version) +
        " is newer than this reader (version " + std::to_string(kWireVersion) +
        "); upgrade the reader");
  }
  if (version == 0) {
    return Status::InvalidArgument("summary envelope version 0 is invalid");
  }
  if (!IsKnownType(tag)) {
    return Status::InvalidArgument("unknown sketch-type tag " + std::to_string(tag));
  }
  // A corrupted length field must not drive allocation or out-of-bounds
  // reads: the payload has to fit in the remaining buffer.
  if (payload_len > cursor.size()) {
    return Status::InvalidArgument(
        "summary envelope payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(cursor.size()) + " remaining bytes");
  }
  const std::span<const std::uint8_t> payload =
      cursor.first(static_cast<std::size_t>(payload_len));
  if (Crc32(payload) != checksum) {
    return Status::InvalidArgument("summary envelope checksum mismatch: corrupted payload");
  }
  return Envelope{static_cast<SketchType>(tag), payload,
                  kHeaderSize + static_cast<std::size_t>(payload_len)};
}

// ---------------------------------------------------------------------------
// Per-type payloads.

void AppendGkPayload(const GkSummary& summary, std::vector<std::uint8_t>* out) {
  Append(out, summary.count());
  Append(out, summary.epsilon());
  Append(out, static_cast<std::uint64_t>(summary.size()));
  for (const GkTuple& t : summary.tuples()) {
    Append(out, t.value);
    Append(out, t.rmin);
    Append(out, t.rmax);
  }
}

StatusOr<GkSummary> ParseGkPayload(std::span<const std::uint8_t> payload) {
  std::uint64_t count = 0;
  double epsilon = 0;
  std::uint64_t tuple_count = 0;
  if (!Read(&payload, &count) || !Read(&payload, &epsilon) ||
      !Read(&payload, &tuple_count)) {
    return Status::InvalidArgument("GK payload truncated before the tuple list");
  }
  constexpr std::size_t kTupleBytes = sizeof(float) + 2 * sizeof(std::uint64_t);
  if (tuple_count > payload.size() / kTupleBytes) {
    return Status::InvalidArgument("GK payload tuple count " +
                                   std::to_string(tuple_count) +
                                   " does not fit the payload");
  }
  std::vector<GkTuple> tuples(static_cast<std::size_t>(tuple_count));
  for (GkTuple& t : tuples) {
    if (!Read(&payload, &t.value) || !Read(&payload, &t.rmin) || !Read(&payload, &t.rmax)) {
      return Status::InvalidArgument("GK payload truncated inside the tuple list");
    }
  }
  GkSummary parsed;
  if (!GkSummary::FromParts(std::move(tuples), count, epsilon, &parsed)) {
    return Status::InvalidArgument(
        "GK payload violates the summary invariants (values ascending, "
        "rmin <= rmax, rank bounds within [1, count])");
  }
  return parsed;
}

void AppendKllPayload(const KllSketch& sketch, std::vector<std::uint8_t>* out) {
  Append(out, sketch.epsilon());
  Append(out, sketch.seed());
  Append(out, sketch.count());
  Append(out, sketch.worst_case_rank_error());
  Append(out, sketch.compactions());
  Append(out, static_cast<std::uint32_t>(sketch.num_levels()));
  for (const std::vector<float>& level : sketch.levels()) {
    Append(out, static_cast<std::uint64_t>(level.size()));
    for (float v : level) Append(out, v);
  }
}

StatusOr<KllSketch> ParseKllPayload(std::span<const std::uint8_t> payload) {
  double epsilon = 0;
  std::uint64_t seed = 0;
  std::uint64_t count = 0;
  std::uint64_t worst_case = 0;
  std::uint64_t compactions = 0;
  std::uint32_t num_levels = 0;
  if (!Read(&payload, &epsilon) || !Read(&payload, &seed) || !Read(&payload, &count) ||
      !Read(&payload, &worst_case) || !Read(&payload, &compactions) ||
      !Read(&payload, &num_levels)) {
    return Status::InvalidArgument("KLL payload truncated before the levels");
  }
  if (num_levels == 0 || num_levels >= 64) {
    return Status::InvalidArgument("KLL payload level count " +
                                   std::to_string(num_levels) + " is invalid");
  }
  std::vector<std::vector<float>> levels(num_levels);
  for (std::vector<float>& level : levels) {
    std::uint64_t items = 0;
    if (!Read(&payload, &items)) {
      return Status::InvalidArgument("KLL payload truncated at a level header");
    }
    if (items > payload.size() / sizeof(float)) {
      return Status::InvalidArgument("KLL payload level item count " +
                                     std::to_string(items) +
                                     " does not fit the payload");
    }
    level.resize(static_cast<std::size_t>(items));
    for (float& v : level) {
      if (!Read(&payload, &v)) {
        return Status::InvalidArgument("KLL payload truncated inside a level");
      }
    }
  }
  KllSketch parsed(0.5);  // overwritten by FromParts on success
  if (!KllSketch::FromParts(epsilon, seed, count, worst_case, compactions,
                            std::move(levels), &parsed)) {
    return Status::InvalidArgument(
        "KLL payload violates the sketch invariants (weighted item total "
        "must equal the element count)");
  }
  return parsed;
}

void AppendCountMinPayload(const CountMinSketch& sketch,
                           std::vector<std::uint8_t>* out) {
  Append(out, sketch.epsilon());
  Append(out, sketch.delta());
  Append(out, sketch.total_weight());
  Append(out, static_cast<std::uint64_t>(sketch.width()));
  Append(out, static_cast<std::uint64_t>(sketch.depth()));
  for (std::int64_t counter : sketch.counters()) Append(out, counter);
}

StatusOr<CountMinSketch> ParseCountMinPayload(std::span<const std::uint8_t> payload) {
  double epsilon = 0;
  double delta = 0;
  std::int64_t total = 0;
  std::uint64_t width = 0;
  std::uint64_t depth = 0;
  if (!Read(&payload, &epsilon) || !Read(&payload, &delta) || !Read(&payload, &total) ||
      !Read(&payload, &width) || !Read(&payload, &depth)) {
    return Status::InvalidArgument("Count-Min payload truncated before the counters");
  }
  if (width == 0 || depth == 0 ||
      width > payload.size() / sizeof(std::int64_t) / std::max<std::uint64_t>(depth, 1)) {
    return Status::InvalidArgument("Count-Min payload dimensions do not fit the payload");
  }
  std::vector<std::int64_t> counters(static_cast<std::size_t>(width * depth));
  for (std::int64_t& counter : counters) {
    if (!Read(&payload, &counter)) {
      return Status::InvalidArgument("Count-Min payload truncated inside the counters");
    }
  }
  CountMinSketch parsed(0.5, 0.5);  // overwritten by FromParts on success
  if (!CountMinSketch::FromParts(epsilon, delta, total,
                                 static_cast<std::size_t>(width),
                                 static_cast<std::size_t>(depth),
                                 std::move(counters), &parsed)) {
    return Status::InvalidArgument(
        "Count-Min payload violates the sketch invariants (dimensions must "
        "match the epsilon/delta-derived geometry)");
  }
  return parsed;
}

void AppendMisraGriesPayload(const MisraGries& sketch,
                             std::vector<std::uint8_t>* out) {
  Append(out, sketch.epsilon());
  Append(out, sketch.stream_length());
  // Canonical entry order (the repo's float total order): equal summaries
  // serialize to identical bytes regardless of hash-map iteration order.
  std::vector<std::pair<float, std::uint64_t>> entries(sketch.counters().begin(),
                                                       sketch.counters().end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return OrderKey(a.first) < OrderKey(b.first);
            });
  Append(out, static_cast<std::uint64_t>(entries.size()));
  for (const auto& [value, count] : entries) {
    Append(out, value);
    Append(out, count);
  }
}

StatusOr<MisraGries> ParseMisraGriesPayload(std::span<const std::uint8_t> payload) {
  double epsilon = 0;
  std::uint64_t n = 0;
  std::uint64_t entry_count = 0;
  if (!Read(&payload, &epsilon) || !Read(&payload, &n) || !Read(&payload, &entry_count)) {
    return Status::InvalidArgument("Misra-Gries payload truncated before the entries");
  }
  constexpr std::size_t kEntryBytes = sizeof(float) + sizeof(std::uint64_t);
  if (entry_count > payload.size() / kEntryBytes) {
    return Status::InvalidArgument("Misra-Gries payload entry count " +
                                   std::to_string(entry_count) +
                                   " does not fit the payload");
  }
  std::vector<std::pair<float, std::uint64_t>> entries(
      static_cast<std::size_t>(entry_count));
  for (auto& [value, count] : entries) {
    if (!Read(&payload, &value) || !Read(&payload, &count)) {
      return Status::InvalidArgument("Misra-Gries payload truncated inside the entries");
    }
  }
  MisraGries parsed(0.5);  // overwritten by FromParts on success
  if (!MisraGries::FromParts(epsilon, n, std::move(entries), &parsed)) {
    return Status::InvalidArgument(
        "Misra-Gries payload violates the sketch invariants (distinct values, "
        "positive counts within the stream length, bounded counter set)");
  }
  return parsed;
}

/// Legacy "GKS1" framing: magic u32 | count u64 | epsilon f64 |
/// tuple_count u64 | tuples. No version, tag, or checksum.
StatusOr<GkSummary> ParseLegacyGk(std::span<const std::uint8_t>* bytes) {
  std::span<const std::uint8_t> cursor = *bytes;
  std::uint32_t magic = 0;
  if (!Read(&cursor, &magic) || magic != kLegacyGkMagic) {
    return Status::InvalidArgument("not a legacy GK summary");
  }
  StatusOr<GkSummary> parsed = ParseGkPayload(cursor);
  if (!parsed.ok()) return parsed.status();
  // The legacy framing is not self-delimiting via a length field; recompute
  // the consumed size from the parsed tuple count.
  const std::size_t consumed = sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                               sizeof(double) + sizeof(std::uint64_t) +
                               parsed->size() * (sizeof(float) + 2 * sizeof(std::uint64_t));
  *bytes = bytes->subspan(consumed);
  return parsed;
}

bool LooksLegacy(std::span<const std::uint8_t> bytes) {
  std::uint32_t magic = 0;
  return Read(&bytes, &magic) && magic == kLegacyGkMagic;
}

/// Shared front half of the typed Deserialize* functions: parse one envelope
/// (or detect the legacy framing), check the tag, hand the payload to
/// `parse`, and advance the span only on success.
template <typename T, typename ParseFn>
StatusOr<T> DeserializeTyped(std::span<const std::uint8_t>* bytes, SketchType want,
                             ParseFn parse) {
  StatusOr<Envelope> envelope = ParseEnvelope(*bytes);
  if (!envelope.ok()) return envelope.status();
  if (envelope->type != want) {
    return Status::InvalidArgument(std::string("summary envelope holds a ") +
                                   SketchTypeName(envelope->type) +
                                   " sketch, expected " + SketchTypeName(want));
  }
  StatusOr<T> parsed = parse(envelope->payload);
  if (!parsed.ok()) return parsed.status();
  *bytes = bytes->subspan(envelope->consumed);
  return parsed;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ kCrcTable.entries[(crc ^ byte) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* SketchTypeName(SketchType type) {
  switch (type) {
    case SketchType::kGkSummary:
      return "gk";
    case SketchType::kKll:
      return "kll";
    case SketchType::kCountMin:
      return "count-min";
    case SketchType::kMisraGries:
      return "misra-gries";
  }
  return "?";
}

core::Status SerializeSummary(const GkSummary& summary, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  AppendGkPayload(summary, &payload);
  AppendEnvelope(SketchType::kGkSummary, payload, out);
  return Status::Ok();
}

core::Status SerializeSummary(const KllSketch& sketch, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  AppendKllPayload(sketch, &payload);
  AppendEnvelope(SketchType::kKll, payload, out);
  return Status::Ok();
}

core::Status SerializeSummary(const CountMinSketch& sketch,
                              std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  AppendCountMinPayload(sketch, &payload);
  AppendEnvelope(SketchType::kCountMin, payload, out);
  return Status::Ok();
}

core::Status SerializeSummary(const MisraGries& sketch, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  AppendMisraGriesPayload(sketch, &payload);
  AppendEnvelope(SketchType::kMisraGries, payload, out);
  return Status::Ok();
}

core::StatusOr<SketchType> PeekSketchType(std::span<const std::uint8_t> bytes) {
  if (LooksLegacy(bytes)) return SketchType::kGkSummary;
  StatusOr<Envelope> envelope = ParseEnvelope(bytes);
  if (!envelope.ok()) return envelope.status();
  return envelope->type;
}

core::StatusOr<GkSummary> DeserializeGkSummary(std::span<const std::uint8_t>* bytes) {
  if (LooksLegacy(*bytes)) return ParseLegacyGk(bytes);
  return DeserializeTyped<GkSummary>(bytes, SketchType::kGkSummary, ParseGkPayload);
}

core::StatusOr<KllSketch> DeserializeKllSketch(std::span<const std::uint8_t>* bytes) {
  return DeserializeTyped<KllSketch>(bytes, SketchType::kKll, ParseKllPayload);
}

core::StatusOr<CountMinSketch> DeserializeCountMin(std::span<const std::uint8_t>* bytes) {
  return DeserializeTyped<CountMinSketch>(bytes, SketchType::kCountMin,
                                          ParseCountMinPayload);
}

core::StatusOr<MisraGries> DeserializeMisraGries(std::span<const std::uint8_t>* bytes) {
  return DeserializeTyped<MisraGries>(bytes, SketchType::kMisraGries,
                                      ParseMisraGriesPayload);
}

}  // namespace streamgpu::sketch
