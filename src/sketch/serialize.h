// Binary (de)serialization of the summary structures, so summaries can be
// checkpointed, shipped between processes (the sensor-network setting
// literally transmits them, [21]), or archived next to the stream they
// describe.
//
// Format: little-endian, fixed-width fields, a 4-byte magic and version per
// structure. Deserialization validates structure invariants and returns
// false on malformed input instead of aborting.

#ifndef STREAMGPU_SKETCH_SERIALIZE_H_
#define STREAMGPU_SKETCH_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/gk_summary.h"
#include "sketch/lossy_counting.h"

namespace streamgpu::sketch {

/// Appends the serialized form of `summary` to `out`.
void SerializeGkSummary(const GkSummary& summary, std::vector<std::uint8_t>* out);

/// Parses a GkSummary from the front of `bytes`. On success stores the
/// result, advances `bytes` past the consumed prefix, and returns true;
/// on malformed input returns false and leaves outputs untouched.
bool DeserializeGkSummary(std::span<const std::uint8_t>* bytes, GkSummary* summary);

/// Serialized size in bytes of a GkSummary with `tuples` tuples.
std::size_t GkSummaryWireSize(std::size_t tuples);

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_SERIALIZE_H_
