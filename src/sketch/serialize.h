// Versioned, type-tagged wire format for the mergeable summaries, so shards
// can checkpoint summaries, ship them between processes (the sensor-network
// setting literally transmits them, [21]), and merge them into one global
// answer (sketch/combiner.h, `streamgpu_cli merge`).
//
// Envelope (little-endian, fixed-width fields):
//
//   offset  size  field
//   0       4     magic 0x53474D53 ("SGMS")
//   4       2     format version (currently 1)
//   6       2     sketch-type tag (SketchType)
//   8       8     payload length in bytes
//   16      4     CRC-32 (IEEE, reflected) of the payload bytes
//   20      -     payload (per-type layout, docs/SKETCHES.md)
//
// Every Deserialize* returns Status on malformed input — truncation, a bad
// magic or tag, a version from the future, a corrupted checksum, a length
// field the buffer cannot hold, or a payload violating the sketch's
// structural invariants — and never aborts. Envelopes are self-delimiting:
// the span cursor advances past exactly one envelope, so summaries can be
// framed back-to-back in one buffer.
//
// Legacy shim (one release): DeserializeGkSummary also accepts the pre-
// envelope "GKS1" GK framing so summaries checkpointed by the previous
// release keep loading. SerializeSummary only ever writes the envelope.

#ifndef STREAMGPU_SKETCH_SERIALIZE_H_
#define STREAMGPU_SKETCH_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "sketch/count_min.h"
#include "sketch/gk_summary.h"
#include "sketch/kll.h"
#include "sketch/misra_gries.h"

namespace streamgpu::sketch {

/// Envelope magic ("SGMS": StreamGpu Mergeable Summary).
inline constexpr std::uint32_t kWireMagic = 0x53474D53;

/// Current wire-format version. Readers reject anything newer.
inline constexpr std::uint16_t kWireVersion = 1;

/// Sketch-type tag carried in the envelope.
enum class SketchType : std::uint16_t {
  kGkSummary = 1,
  kKll = 2,
  kCountMin = 3,
  kMisraGries = 4,
};

/// Tag name for diagnostics ("gk", "kll", "count-min", "misra-gries").
const char* SketchTypeName(SketchType type);

/// Appends one enveloped summary to `out`.
core::Status SerializeSummary(const GkSummary& summary, std::vector<std::uint8_t>* out);
core::Status SerializeSummary(const KllSketch& sketch, std::vector<std::uint8_t>* out);
core::Status SerializeSummary(const CountMinSketch& sketch, std::vector<std::uint8_t>* out);
core::Status SerializeSummary(const MisraGries& sketch, std::vector<std::uint8_t>* out);

/// Reads the envelope header at the front of `bytes` (without consuming it)
/// and returns the sketch-type tag — how the combiner and `streamgpu_cli
/// merge` dispatch on shard files. Validates magic, version, length, and
/// checksum. Also recognizes the legacy "GKS1" framing (as kGkSummary).
core::StatusOr<SketchType> PeekSketchType(std::span<const std::uint8_t> bytes);

/// Parses one enveloped summary from the front of `bytes`, advancing the
/// span past the consumed envelope on success. On error the span is left
/// untouched. The typed functions additionally fail with kInvalidArgument
/// when the envelope holds a different sketch type.
core::StatusOr<GkSummary> DeserializeGkSummary(std::span<const std::uint8_t>* bytes);
core::StatusOr<KllSketch> DeserializeKllSketch(std::span<const std::uint8_t>* bytes);
core::StatusOr<CountMinSketch> DeserializeCountMin(std::span<const std::uint8_t>* bytes);
core::StatusOr<MisraGries> DeserializeMisraGries(std::span<const std::uint8_t>* bytes);

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the envelope checksum.
std::uint32_t Crc32(std::span<const std::uint8_t> bytes);

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_SERIALIZE_H_
