#include "sketch/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace streamgpu::sketch {

namespace {

std::uint64_t BlockSizeFor(double epsilon, std::uint64_t window_size) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(epsilon * static_cast<double>(window_size) / 2.0));
}

}  // namespace

// ---------------------------------------------------------------------------
// SlidingWindowFrequency
// ---------------------------------------------------------------------------

SlidingWindowFrequency::SlidingWindowFrequency(double epsilon, std::uint64_t window_size)
    : epsilon_(epsilon), window_size_(window_size) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(window_size >= 1);
  block_size_ = BlockSizeFor(epsilon, window_size);
  // Dropping per-block counts below epsilon*B/2 costs at most
  // (W/B) * epsilon*B/2 = epsilon*W/2 per value across all live blocks;
  // together with the excluded boundary block (<= B <= epsilon*W/2) the
  // total undercount stays within epsilon*W.
  truncate_threshold_ = static_cast<std::uint64_t>(
      epsilon_ * static_cast<double>(block_size_) / 2.0);
}

void SlidingWindowFrequency::AddBlockHistogram(
    std::span<const HistogramEntry> histogram, std::uint64_t block_elements) {
  STREAMGPU_CHECK(block_elements <= block_size_);
  if (block_elements == 0) return;
  Block block;
  block.elements = block_elements;
  block.entries.reserve(histogram.size());
  for (const HistogramEntry& e : histogram) {
    STREAMGPU_DCHECK(block.entries.empty() || block.entries.back().value < e.value);
    if (e.count > truncate_threshold_) block.entries.push_back(e);
  }
  covered_ += block_elements;
  blocks_.push_back(std::move(block));

  // Keep at most window_size elements covered: with blocks of B <=
  // epsilon*W/2, the retained suffix spans more than W - B elements, so the
  // uncovered boundary plus per-block truncation stays within epsilon*W.
  while (!blocks_.empty() && covered_ > window_size_) {
    covered_ -= blocks_.front().elements;
    blocks_.pop_front();
  }
}

std::size_t SlidingWindowFrequency::LiveBlockCount(std::uint64_t window) const {
  if (window == 0 || window > window_size_) window = window_size_;
  std::uint64_t span = 0;
  std::size_t live = 0;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (span + it->elements > window) break;
    span += it->elements;
    ++live;
  }
  return live;
}

std::uint64_t SlidingWindowFrequency::EstimateCount(float value,
                                                    std::uint64_t window) const {
  const std::size_t live = LiveBlockCount(window);
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < live; ++k) {
    const Block& block = blocks_[blocks_.size() - 1 - k];
    const auto it = std::lower_bound(
        block.entries.begin(), block.entries.end(), value,
        [](const HistogramEntry& e, float v) { return e.value < v; });
    if (it != block.entries.end() && it->value == value) total += it->count;
  }
  return total;
}

std::vector<std::pair<float, std::uint64_t>> SlidingWindowFrequency::HeavyHitters(
    double support, std::uint64_t window) const {
  if (window == 0 || window > window_size_) window = window_size_;
  const std::size_t live = LiveBlockCount(window);
  std::map<float, std::uint64_t> merged;
  for (std::size_t k = 0; k < live; ++k) {
    const Block& block = blocks_[blocks_.size() - 1 - k];
    for (const HistogramEntry& e : block.entries) merged[e.value] += e.count;
  }
  // Estimates undercount by at most epsilon * window_size, so the cutoff is
  // lowered by that slack to avoid false negatives.
  const double threshold = support * static_cast<double>(window) -
                           epsilon_ * static_cast<double>(window_size_);
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const auto& [value, count] : merged) {
    if (static_cast<double>(count) >= threshold) out.emplace_back(value, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::size_t SlidingWindowFrequency::summary_size() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.entries.size();
  return total;
}

// ---------------------------------------------------------------------------
// SlidingWindowQuantile
// ---------------------------------------------------------------------------

SlidingWindowQuantile::SlidingWindowQuantile(double epsilon, std::uint64_t window_size)
    : epsilon_(epsilon), window_size_(window_size) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(window_size >= 1);
  block_size_ = BlockSizeFor(epsilon, window_size);
}

void SlidingWindowQuantile::AddBlockSummary(GkSummary block_summary) {
  STREAMGPU_CHECK(block_summary.count() <= block_size_);
  STREAMGPU_CHECK_MSG(block_summary.epsilon() <= epsilon_ / 2.0 + 1e-12,
                      "block summary must be (epsilon/2)-approximate");
  if (block_summary.empty()) return;
  covered_ += block_summary.count();
  blocks_.push_back(std::move(block_summary));
  // Keep at most window_size elements covered (see AddBlockHistogram).
  while (!blocks_.empty() && covered_ > window_size_) {
    covered_ -= blocks_.front().count();
    blocks_.pop_front();
  }
}

std::size_t SlidingWindowQuantile::LiveBlockCount(std::uint64_t window) const {
  if (window == 0 || window > window_size_) window = window_size_;
  std::uint64_t span = 0;
  std::size_t live = 0;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (span + it->count() > window) break;
    span += it->count();
    ++live;
  }
  return live;
}

float SlidingWindowQuantile::Query(double phi, std::uint64_t window) const {
  const std::size_t live = LiveBlockCount(window);
  STREAMGPU_CHECK_MSG(live > 0, "query requires at least one complete block in the window");
  GkSummary all;
  for (std::size_t k = 0; k < live; ++k) {
    all = GkSummary::Merge(all, blocks_[blocks_.size() - 1 - k]);
  }
  return all.Query(phi);
}

std::size_t SlidingWindowQuantile::summary_size() const {
  std::size_t total = 0;
  for (const GkSummary& b : blocks_) total += b.size();
  return total;
}

}  // namespace streamgpu::sketch
