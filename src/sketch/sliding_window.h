// Epsilon-approximate frequency and quantile queries over sliding windows
// (§5.3). The source text of §5.3 is truncated in the paper; this module
// reconstructs the standard block-decomposition approach that the §5.2
// machinery (per-window summaries + merge) directly supports:
//
//   * The last W elements are covered by a queue of fixed-size blocks of
//     B = max(1, floor(epsilon*W/2)) elements.
//   * Each completed block is sorted (the GPU-accelerated step) and reduced
//     to a small per-block summary — a truncated histogram for frequencies,
//     an (epsilon/2)-approximate GK summary for quantiles.
//   * A query over the most recent W' <= W elements combines the summaries
//     of the blocks fully contained in the query window. Excluding the
//     partially expired boundary block costs at most B <= epsilon*W/2
//     additional error, keeping the total within epsilon*W.
//
// Both fixed-width (W' == W) and variable-width (any W' <= W) windows are
// supported, per §3.1's query taxonomy.

#ifndef STREAMGPU_SKETCH_SLIDING_WINDOW_H_
#define STREAMGPU_SKETCH_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "sketch/gk_summary.h"
#include "sketch/histogram.h"

namespace streamgpu::sketch {

/// Sliding-window heavy hitters / frequency estimation.
class SlidingWindowFrequency {
 public:
  /// `epsilon` in (0, 1); `window_size` W is the maximum window width.
  SlidingWindowFrequency(double epsilon, std::uint64_t window_size);

  /// Block width B the stream must be chunked into.
  std::uint64_t block_size() const { return block_size_; }

  /// Inserts the histogram of one completed block (`BuildHistogram` of the
  /// sorted block; `block_elements` elements, == block_size() except for a
  /// final partial block). Entries with block count below the truncation
  /// threshold are dropped to bound space; expired blocks are evicted.
  void AddBlockHistogram(std::span<const HistogramEntry> histogram,
                         std::uint64_t block_elements);

  /// Estimated frequency of `value` over the most recent `window` elements
  /// (0 = the full window_size). Underestimates by at most epsilon * W.
  std::uint64_t EstimateCount(float value, std::uint64_t window = 0) const;

  /// Heavy hitters at `support` over the most recent `window` elements:
  /// contains every value with true in-window frequency >= support * window
  /// (no false negatives). Descending estimated count.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(
      double support, std::uint64_t window = 0) const;

  /// Elements currently covered by live blocks.
  std::uint64_t covered_elements() const { return covered_; }

  /// Total histogram entries retained (space usage).
  std::size_t summary_size() const;

  double epsilon() const { return epsilon_; }
  std::uint64_t window_size() const { return window_size_; }

 private:
  struct Block {
    std::vector<HistogramEntry> entries;  ///< sorted by value, truncated
    std::uint64_t elements = 0;
  };

  /// Blocks (newest last) fully contained in the most recent `window`
  /// elements; returns how many of the newest blocks qualify.
  std::size_t LiveBlockCount(std::uint64_t window) const;

  double epsilon_;
  std::uint64_t window_size_;
  std::uint64_t block_size_;
  std::uint64_t truncate_threshold_;
  std::uint64_t covered_ = 0;
  std::deque<Block> blocks_;
};

/// Sliding-window epsilon-approximate quantiles.
class SlidingWindowQuantile {
 public:
  /// `epsilon` in (0, 1); `window_size` W is the maximum window width.
  SlidingWindowQuantile(double epsilon, std::uint64_t window_size);

  /// Block width B the stream must be chunked into.
  std::uint64_t block_size() const { return block_size_; }

  /// Error budget for per-block summaries passed to GkSummary::FromSorted.
  double block_epsilon() const { return epsilon_ / 2.0; }

  /// Inserts the (epsilon/2)-approximate summary of one completed block;
  /// expired blocks are evicted.
  void AddBlockSummary(GkSummary block_summary);

  /// phi-quantile over the most recent `window` elements (0 = full
  /// window_size). Rank error at most epsilon * W.
  float Query(double phi, std::uint64_t window = 0) const;

  /// Elements currently covered by live blocks.
  std::uint64_t covered_elements() const { return covered_; }

  /// Total tuples retained (space usage).
  std::size_t summary_size() const;

  double epsilon() const { return epsilon_; }
  std::uint64_t window_size() const { return window_size_; }

 private:
  std::size_t LiveBlockCount(std::uint64_t window) const;

  double epsilon_;
  std::uint64_t window_size_;
  std::uint64_t block_size_;
  std::uint64_t covered_ = 0;
  std::deque<GkSummary> blocks_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_SLIDING_WINDOW_H_
