#include "sketch/sticky_sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::sketch {

StickySampling::StickySampling(double epsilon, double support_floor, double delta,
                               std::uint64_t seed)
    : epsilon_(epsilon), rng_(seed) {
  STREAMGPU_CHECK(epsilon > 0.0 && epsilon < 1.0);
  STREAMGPU_CHECK(support_floor > epsilon);
  STREAMGPU_CHECK(delta > 0.0 && delta < 1.0);
  // t = (1/epsilon) * ln(1/(s*delta)), from [32]. The first 2t elements are
  // sampled at rate 1, the next 2t at rate 2, then 4t at rate 4, ...
  t_ = std::max(1.0, std::log(1.0 / (support_floor * delta)) / epsilon);
  next_rate_switch_ = static_cast<std::uint64_t>(2.0 * t_);
}

void StickySampling::Observe(float value) {
  ++n_;
  if (n_ > next_rate_switch_) {
    rate_ *= 2;
    next_rate_switch_ += static_cast<std::uint64_t>(2.0 * t_) * rate_;
    Resample();
  }

  if (const auto it = counters_.find(value); it != counters_.end()) {
    ++it->second;  // already sampled: count exactly
    return;
  }
  std::uniform_int_distribution<std::uint64_t> coin(1, rate_);
  if (coin(rng_) == 1) counters_.emplace(value, 1);
}

void StickySampling::Resample() {
  // For each existing counter, toss unbiased coins until heads, diminishing
  // the count by one per tail; counters reaching zero are evicted ([32]).
  std::bernoulli_distribution tail(0.5);
  for (auto it = counters_.begin(); it != counters_.end();) {
    while (it->second > 0 && tail(rng_)) --it->second;
    if (it->second == 0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t StickySampling::EstimateCount(float value) const {
  const auto it = counters_.find(value);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<float, std::uint64_t>> StickySampling::HeavyHitters(
    double support) const {
  const double threshold = (support - epsilon_) * static_cast<double>(n_);
  std::vector<std::pair<float, std::uint64_t>> out;
  for (const auto& [value, count] : counters_) {
    if (static_cast<double>(count) >= threshold) out.emplace_back(value, count);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace streamgpu::sketch
