// Sticky Sampling — Manku & Motwani's probabilistic frequency algorithm,
// the sampling-based counterpart of lossy counting ([32]; §2.1's
// "probabilistic algorithms" / sample-based family).
//
// Elements are sampled into the summary with a rate that halves as the
// stream grows; sampled elements are counted exactly from then on. With
// probability >= 1 - delta, a query at support s returns every element with
// true frequency >= s*N, and estimates undercount by at most epsilon*N in
// expectation. Expected space is (2/epsilon) * log(1/(s*delta)) entries —
// independent of the stream length.

#ifndef STREAMGPU_SKETCH_STICKY_SAMPLING_H_
#define STREAMGPU_SKETCH_STICKY_SAMPLING_H_

#include <cstdint>
#include <random>
#include <span>
#include <unordered_map>
#include <vector>

namespace streamgpu::sketch {

/// Sticky-sampling frequency summary.
class StickySampling {
 public:
  /// `epsilon` < `support_floor`; `delta` is the failure probability. The
  /// summary targets queries at supports >= `support_floor`.
  StickySampling(double epsilon, double support_floor, double delta,
                 std::uint64_t seed = 1);

  /// Processes one stream element.
  void Observe(float value);

  /// Processes a batch of stream elements.
  void ObserveBatch(std::span<const float> values) {
    for (float v : values) Observe(v);
  }

  /// Estimated frequency (undercounts; exact once the element is sampled).
  std::uint64_t EstimateCount(float value) const;

  /// Every tracked element with estimated frequency >= (support - epsilon)*N.
  std::vector<std::pair<float, std::uint64_t>> HeavyHitters(double support) const;

  std::uint64_t stream_length() const { return n_; }
  std::size_t summary_size() const { return counters_.size(); }
  double epsilon() const { return epsilon_; }

  /// Current sampling rate r: elements enter the summary with probability
  /// 1/r.
  std::uint64_t sampling_rate() const { return rate_; }

 private:
  /// Halves all counters geometrically when the sampling rate doubles, as
  /// if the survivors had been sampled at the new rate all along.
  void Resample();

  double epsilon_;
  double t_;  ///< window factor: first 2t elements at rate 1, next 2t at 2, ...
  std::uint64_t n_ = 0;
  std::uint64_t rate_ = 1;
  std::uint64_t next_rate_switch_;
  std::mt19937_64 rng_;
  std::unordered_map<float, std::uint64_t> counters_;
};

}  // namespace streamgpu::sketch

#endif  // STREAMGPU_SKETCH_STICKY_SAMPLING_H_
