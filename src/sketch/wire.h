// Little-endian fixed-width byte codec shared by the wire formats: the
// mergeable-summary envelope (sketch/serialize.cc), the sketch checkpoint
// payloads (sketch/quantile_sketch.cc), and the durable record log
// (durable/record_log.cc). Matches the layout serialize.cc has always
// written: memcpy of the native little-endian representation.

#ifndef STREAMGPU_SKETCH_WIRE_H_
#define STREAMGPU_SKETCH_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace streamgpu::sketch::wire {

/// Appends the little-endian bytes of `value` to `out`.
template <typename T>
void Append(std::vector<std::uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto old_size = out->size();
  out->resize(old_size + sizeof(T));
  std::memcpy(out->data() + old_size, &value, sizeof(T));
}

/// Reads one T from the front of `in`, advancing it. Returns false on
/// truncation, leaving `in` and `value` untouched.
template <typename T>
bool Read(std::span<const std::uint8_t>* in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  *in = in->subspan(sizeof(T));
  return true;
}

}  // namespace streamgpu::sketch::wire

#endif  // STREAMGPU_SKETCH_WIRE_H_
