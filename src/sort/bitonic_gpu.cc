#include "sort/bitonic_gpu.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "sort/pbsn_network.h"

namespace streamgpu::sort {

namespace {

void TextureDims(std::int64_t padded, int* width, int* height) {
  const int levels = CeilLog2(static_cast<std::uint64_t>(padded));
  *width = 1 << ((levels + 1) / 2);
  *height = 1 << (levels / 2);
}

}  // namespace

BitonicGpuSorter::BitonicGpuSorter(gpu::GpuDevice* device,
                                   const hwmodel::GpuHardwareProfile& profile,
                                   gpu::Format format)
    : device_(device), model_(profile), format_(format) {
  STREAMGPU_CHECK(device != nullptr);
}

void BitonicGpuSorter::Sort(std::span<float> data) {
  Timer timer;
  last_run_ = SortRunInfo{};
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  if (n == 0) {
    last_run_.wall_seconds = timer.ElapsedSeconds();
    return;
  }

  // One value per pixel (no channel packing in the baseline [40]); the value
  // is replicated across RGBA.
  const std::int64_t padded =
      static_cast<std::int64_t>(NextPowerOfTwo(static_cast<std::uint64_t>(n)));
  int width = 0;
  int height = 0;
  TextureDims(padded, &width, &height);

  const gpu::GpuStats before = device_->stats();

  gpu::TextureHandle tex = device_->CreateTexture(width, height, format_);
  staging_.resize(static_cast<std::size_t>(padded));
  std::copy_n(data.data(), n, staging_.data());
  std::fill(staging_.begin() + n, staging_.end(), std::numeric_limits<float>::infinity());
  for (int c = 0; c < gpu::kNumChannels; ++c) device_->UploadChannel(tex, c, staging_);
  device_->BindFramebuffer(width, height, format_);
  if (padded < 2) {
    // Degenerate single-texel input: no merge stages run, so the readback
    // below must still see the (quantized) data in the framebuffer.
    device_->SetBlend(gpu::BlendOp::kReplace);
    device_->DrawQuad(tex, gpu::Quad::Identity(0, 0, 1, 1));
  }

  // Bitonic merge sort: log(M)*(log(M)+1)/2 full-screen fragment-program
  // passes; each pixel fetches its own and its partner's value and keeps the
  // min or max depending on its position and the merge direction.
  const int w = width;
  for (std::int64_t k = 2; k <= padded; k <<= 1) {
    for (std::int64_t j = k >> 1; j > 0; j >>= 1) {
      device_->RunFragmentProgram(
          tex, 0, 0, width, height, kInstructionsPerFragment, /*fetches_per_fragment=*/2,
          [k, j, w](int x, int y, const gpu::Surface& t, float out[gpu::kNumChannels]) {
            const std::int64_t i = static_cast<std::int64_t>(y) * w + x;
            const std::int64_t p = i ^ j;
            const float own = t.Get(0, x, y);
            const float other =
                t.Get(0, static_cast<int>(p % w), static_cast<int>(p / w));
            const bool ascending = (i & k) == 0;
            const bool keep_small = (i < p) == ascending;
            const float result = keep_small ? std::min(own, other) : std::max(own, other);
            for (int c = 0; c < gpu::kNumChannels; ++c) out[c] = result;
          });
      device_->CopyFramebufferToTexture(tex);
    }
  }

  device_->ReadbackChannel(0, staging_);
  std::copy_n(staging_.data(), n, data.data());

  last_stats_ = device_->stats() - before;
  const hwmodel::GpuTimeBreakdown breakdown = model_.Simulate(last_stats_);
  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.sim_device_seconds = breakdown.DeviceSeconds();
  last_run_.sim_transfer_seconds = breakdown.transfer_s;
  last_run_.simulated_seconds = breakdown.TotalSeconds();
  // One scalar comparison per fragment (the baseline does not exploit the
  // 4-wide vector units for independent sequences).
  last_run_.comparisons = last_stats_.program_fragments;

  device_->DestroyAllTextures();
}

}  // namespace streamgpu::sort
