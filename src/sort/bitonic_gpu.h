// The prior GPU sorting baseline: Purcell et al.'s bitonic merge sort [40],
// implemented as a fragment program — each stage is one full-screen pass
// where every pixel fetches itself and its comparator partner and writes the
// min or max. The paper reports this implementation executes at least 53
// fragment-program instructions per pixel per stage (§4.5), roughly an order
// of magnitude more per-comparator work than the blending path.

#ifndef STREAMGPU_SORT_BITONIC_GPU_H_
#define STREAMGPU_SORT_BITONIC_GPU_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.h"
#include "hwmodel/gpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

/// GPU bitonic sorter (baseline) over a simulated device.
class BitonicGpuSorter final : public Sorter {
 public:
  /// Fragment-program instruction count per pixel per stage, from §4.5.
  static constexpr std::uint64_t kInstructionsPerFragment = 53;

  BitonicGpuSorter(gpu::GpuDevice* device, const hwmodel::GpuHardwareProfile& profile,
                   gpu::Format format = gpu::Format::kFloat32);

  void Sort(std::span<float> data) override;
  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "gpu-bitonic"; }

  /// Device work counters for the most recent Sort() call.
  const gpu::GpuStats& last_stats() const { return last_stats_; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  gpu::GpuDevice* device_;
  hwmodel::GpuModel model_;
  gpu::Format format_;
  SortRunInfo last_run_;
  gpu::GpuStats last_stats_;
  // Reusable upload/readback staging plane (no per-sort reallocation).
  std::vector<float> staging_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_BITONIC_GPU_H_
