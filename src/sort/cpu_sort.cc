#include "sort/cpu_sort.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/timer.h"

namespace streamgpu::sort {

namespace {

constexpr std::size_t kInsertionCutoff = 16;

void InsertionSort(float* data, std::size_t lo, std::size_t hi, CpuSortCounters* c) {
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const float key = data[i];
    std::size_t j = i;
    while (j > lo) {
      ++c->comparisons;
      if (data[j - 1] <= key) break;
      data[j] = data[j - 1];
      ++c->swaps;
      --j;
    }
    data[j] = key;
  }
}

// Median-of-three pivot selection; leaves the pivot at index `mid`.
float MedianOfThree(float* data, std::size_t lo, std::size_t mid, std::size_t hi,
                    CpuSortCounters* c) {
  c->comparisons += 3;
  if (data[mid] < data[lo]) std::swap(data[mid], data[lo]);
  if (data[hi] < data[lo]) std::swap(data[hi], data[lo]);
  if (data[hi] < data[mid]) std::swap(data[hi], data[mid]);
  return data[mid];
}

void QuicksortRecurse(float* data, std::size_t lo, std::size_t hi, CpuSortCounters* c) {
  // [lo, hi) half-open. Recurse on the smaller side to bound stack depth.
  while (hi - lo > kInsertionCutoff) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const float pivot = MedianOfThree(data, lo, mid, hi - 1, c);

    std::size_t i = lo;
    std::size_t j = hi - 1;
    while (true) {
      do {
        ++c->comparisons;
        ++i;
      } while (data[i] < pivot);
      do {
        ++c->comparisons;
        --j;
      } while (pivot < data[j]);
      if (i >= j) break;
      std::swap(data[i], data[j]);
      ++c->swaps;
    }
    const std::size_t split = j + 1;
    if (split - lo < hi - split) {
      QuicksortRecurse(data, lo, split, c);
      lo = split;
    } else {
      QuicksortRecurse(data, split, hi, c);
      hi = split;
    }
  }
  InsertionSort(data, lo, hi, c);
}

}  // namespace

void QuicksortInstrumented(std::span<float> data, CpuSortCounters* counters) {
  if (data.size() < 2) return;
  QuicksortRecurse(data.data(), 0, data.size(), counters);
}

void QuicksortSorter::Sort(std::span<float> data) {
  Timer timer;
  CpuSortCounters counters;
  QuicksortInstrumented(data, &counters);
  last_run_ = SortRunInfo{};
  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.comparisons = counters.comparisons;
  last_run_.simulated_seconds =
      model_.ComparisonSortSeconds(counters.comparisons, data.size(), sizeof(float));
}

void StdSortSorter::Sort(std::span<float> data) {
  Timer timer;
  std::sort(data.begin(), data.end());
  last_run_ = SortRunInfo{};
  last_run_.wall_seconds = timer.ElapsedSeconds();
  const double n = static_cast<double>(data.size());
  last_run_.comparisons =
      data.size() < 2 ? 0 : static_cast<std::uint64_t>(1.39 * n * std::log2(n));
  last_run_.simulated_seconds = model_.QuicksortSeconds(data.size(), sizeof(float));
}

}  // namespace streamgpu::sort
