// CPU sorting baselines: an instrumented quicksort (the paper benchmarks
// the Intel compiler's optimized quicksort and MSVC's qsort, §4.5) and a
// std::sort wrapper. The instrumentation feeds the Pentium IV timing model.

#ifndef STREAMGPU_SORT_CPU_SORT_H_
#define STREAMGPU_SORT_CPU_SORT_H_

#include <cstdint>
#include <span>

#include "hwmodel/cpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

/// Work counters for an instrumented CPU sort.
struct CpuSortCounters {
  std::uint64_t comparisons = 0;
  std::uint64_t swaps = 0;
};

/// Sorts `data` in place with median-of-three quicksort (insertion-sort
/// cutoff at small partitions), counting comparisons and swaps.
void QuicksortInstrumented(std::span<float> data, CpuSortCounters* counters);

/// Quicksort-based Sorter with P4-model simulated timing.
class QuicksortSorter final : public Sorter {
 public:
  explicit QuicksortSorter(const hwmodel::CpuHardwareProfile& profile)
      : model_(profile) {}

  void Sort(std::span<float> data) override;
  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "cpu-quicksort"; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  hwmodel::CpuModel model_;
  SortRunInfo last_run_;
};

/// std::sort-based Sorter (introsort). Simulated timing uses the analytic
/// quicksort estimate since std::sort is not instrumented.
class StdSortSorter final : public Sorter {
 public:
  explicit StdSortSorter(const hwmodel::CpuHardwareProfile& profile)
      : model_(profile) {}

  void Sort(std::span<float> data) override;
  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "cpu-std-sort"; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  hwmodel::CpuModel model_;
  SortRunInfo last_run_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_CPU_SORT_H_
