#include "sort/merge.h"

#include <algorithm>

#include "common/check.h"

namespace streamgpu::sort {

std::uint64_t TwoWayMerge(std::span<const float> a, std::span<const float> b,
                          std::span<float> out) {
  STREAMGPU_CHECK(out.size() == a.size() + b.size());
  std::size_t i = 0, j = 0, k = 0;
  std::uint64_t comparisons = 0;
  while (i < a.size() && j < b.size()) {
    ++comparisons;
    if (b[j] < a[i]) {
      out[k++] = b[j++];
    } else {
      out[k++] = a[i++];
    }
  }
  while (i < a.size()) out[k++] = a[i++];
  while (j < b.size()) out[k++] = b[j++];
  return comparisons;
}

std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out) {
  const std::size_t n01 = runs[0].size() + runs[1].size();
  const std::size_t n23 = runs[2].size() + runs[3].size();
  STREAMGPU_CHECK(out.size() == n01 + n23);
  std::vector<float> lo(n01);
  std::vector<float> hi(n23);
  std::uint64_t comparisons = 0;
  comparisons += TwoWayMerge(runs[0], runs[1], lo);
  comparisons += TwoWayMerge(runs[2], runs[3], hi);
  comparisons += TwoWayMerge(lo, hi, out);
  return comparisons;
}

std::uint64_t KWayMerge(std::span<const std::span<const float>> runs, std::span<float> out) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  STREAMGPU_CHECK(out.size() == total);

  std::vector<std::size_t> pos(runs.size(), 0);
  std::uint64_t comparisons = 0;
  for (std::size_t k = 0; k < total; ++k) {
    int best = -1;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (pos[r] >= runs[r].size()) continue;
      if (best < 0) {
        best = static_cast<int>(r);
        continue;
      }
      ++comparisons;
      if (runs[r][pos[r]] < runs[best][pos[best]]) best = static_cast<int>(r);
    }
    STREAMGPU_CHECK(best >= 0);
    out[k] = runs[best][pos[best]++];
  }
  return comparisons;
}

}  // namespace streamgpu::sort
