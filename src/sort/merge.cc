#include "sort/merge.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"

namespace streamgpu::sort {

std::uint64_t TwoWayMerge(std::span<const float> a, std::span<const float> b,
                          std::span<float> out) {
  STREAMGPU_CHECK(out.size() == a.size() + b.size());
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  std::size_t i = 0, j = 0, k = 0;
  std::uint64_t comparisons = 0;
  // Branchless main loop: the selection compiles to conditional moves, so
  // merging random runs costs no branch mispredictions. The count semantics
  // match the seed implementation exactly: one comparison per output while
  // both runs are non-empty, ties taken from `a`.
  while (i < na && j < nb) {
    ++comparisons;
    const float av = a[i];
    const float bv = b[j];
    const bool take_b = bv < av;
    out[k++] = take_b ? bv : av;
    j += static_cast<std::size_t>(take_b);
    i += static_cast<std::size_t>(!take_b);
  }
  std::copy(a.begin() + static_cast<std::ptrdiff_t>(i), a.end(), out.begin() + static_cast<std::ptrdiff_t>(k));
  k += na - i;
  std::copy(b.begin() + static_cast<std::ptrdiff_t>(j), b.end(), out.begin() + static_cast<std::ptrdiff_t>(k));
  return comparisons;
}

std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out) {
  std::vector<float> scratch;
  return FourWayMerge(runs, out, &scratch);
}

std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out, std::vector<float>* scratch) {
  const std::size_t n01 = runs[0].size() + runs[1].size();
  const std::size_t n23 = runs[2].size() + runs[3].size();
  STREAMGPU_CHECK(out.size() == n01 + n23);
  scratch->resize(n01 + n23);
  const std::span<float> lo(scratch->data(), n01);
  const std::span<float> hi(scratch->data() + n01, n23);
  std::uint64_t comparisons = 0;
  comparisons += TwoWayMerge(runs[0], runs[1], lo);
  comparisons += TwoWayMerge(runs[2], runs[3], hi);
  comparisons += TwoWayMerge(lo, hi, out);
  return comparisons;
}

namespace {

// Sentinel leaf index for padded / not-yet-inserted loser-tree slots.
constexpr std::size_t kNoRun = static_cast<std::size_t>(-1);

}  // namespace

std::uint64_t KWayMerge(std::span<const std::span<const float>> runs, std::span<float> out) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  STREAMGPU_CHECK(out.size() == total);

  const std::size_t k = runs.size();
  if (k == 0) return 0;
  if (k == 1) {
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return 0;
  }

  std::uint64_t comparisons = 0;
  std::vector<std::size_t> pos(k, 0);

  // Returns true when run `a`'s head should be output before run `b`'s.
  // Exhausted (or padded) runs lose every match; ties go to the lower run
  // index, which makes the merge stable and matches the head-scan's order.
  // Only real key comparisons are counted.
  const auto beats = [&](std::size_t a, std::size_t b) {
    const bool b_live = b != kNoRun && pos[b] < runs[b].size();
    if (!b_live) return true;
    const bool a_live = a != kNoRun && pos[a] < runs[a].size();
    if (!a_live) return false;
    ++comparisons;
    const float av = runs[a][pos[a]];
    const float bv = runs[b][pos[b]];
    if (av < bv) return true;
    if (bv < av) return false;
    return a < b;
  };

  // Loser tree over L = 2^ceil(log2 k) leaves: node[1..L-1] hold match
  // losers, the overall winner is kept aside. Each output replays one
  // leaf-to-root path — ceil(log2 k) comparisons — instead of scanning all
  // k heads.
  std::size_t leaves = 1;
  while (leaves < k) leaves <<= 1;
  std::vector<std::size_t> node(leaves, kNoRun);

  // Bottom-up build: play every first-round-to-final match once, parking the
  // loser at the node where the match happened and promoting the winner.
  std::vector<std::size_t> promoted(2 * leaves, kNoRun);
  for (std::size_t r = 0; r < k; ++r) promoted[leaves + r] = r;
  for (std::size_t i = leaves - 1; i >= 1; --i) {
    const std::size_t a = promoted[2 * i];
    const std::size_t b = promoted[2 * i + 1];
    if (beats(a, b)) {
      promoted[i] = a;
      node[i] = b;
    } else {
      promoted[i] = b;
      node[i] = a;
    }
  }
  std::size_t winner = promoted[1];

  for (std::size_t o = 0; o < total; ++o) {
    STREAMGPU_CHECK(winner != kNoRun && pos[winner] < runs[winner].size());
    out[o] = runs[winner][pos[winner]++];
    std::size_t contender = winner;
    for (std::size_t i = (leaves + winner) >> 1; i >= 1; i >>= 1) {
      if (beats(node[i], contender)) std::swap(node[i], contender);
    }
    winner = contender;
  }
  return comparisons;
}

std::uint64_t KWayMergeHeadScan(std::span<const std::span<const float>> runs,
                                std::span<float> out) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  STREAMGPU_CHECK(out.size() == total);

  std::vector<std::size_t> pos(runs.size(), 0);
  std::uint64_t comparisons = 0;
  for (std::size_t k = 0; k < total; ++k) {
    int best = -1;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (pos[r] >= runs[r].size()) continue;
      if (best < 0) {
        best = static_cast<int>(r);
        continue;
      }
      ++comparisons;
      if (runs[r][pos[r]] < runs[best][pos[best]]) best = static_cast<int>(r);
    }
    STREAMGPU_CHECK(best >= 0);
    out[k] = runs[best][pos[best]++];
  }
  return comparisons;
}

}  // namespace streamgpu::sort
