// CPU-side merging of sorted runs.
//
// The GPU PBSN sort returns four independently sorted channel runs; "a merge
// operation is performed in software. The merge routine performs O(n)
// comparisons and is very efficient" (§4.4).

#ifndef STREAMGPU_SORT_MERGE_H_
#define STREAMGPU_SORT_MERGE_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace streamgpu::sort {

/// Merges two sorted runs into `out` (out.size() == a.size() + b.size()).
/// Returns the number of comparisons performed.
std::uint64_t TwoWayMerge(std::span<const float> a, std::span<const float> b,
                          std::span<float> out);

/// Merges four sorted runs into `out` via two levels of binary merges (the
/// structure the paper's CPU merge uses: O(n) comparisons total).
/// Returns the number of comparisons performed.
std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out);

/// Merges k sorted runs into `out` with a simple tournament over run heads.
/// Returns the number of comparisons performed.
std::uint64_t KWayMerge(std::span<const std::span<const float>> runs, std::span<float> out);

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_MERGE_H_
