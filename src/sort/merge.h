// CPU-side merging of sorted runs.
//
// The GPU PBSN sort returns four independently sorted channel runs; "a merge
// operation is performed in software. The merge routine performs O(n)
// comparisons and is very efficient" (§4.4).
//
// TwoWayMerge is branchless (conditional-move selection, no unpredictable
// branch per element); KWayMerge replays a loser tree, so each output costs
// ceil(log2 k) comparisons instead of the k-1 head comparisons of the naive
// scan (kept as KWayMergeHeadScan for reference and count-invariant tests).
// Every routine returns the number of key comparisons it actually performed;
// TwoWayMerge/FourWayMerge counts are unchanged from the seed implementation
// (one comparison per output while both runs are non-empty), so the
// comparison totals reported by the PBSN sorter are bit-identical.

#ifndef STREAMGPU_SORT_MERGE_H_
#define STREAMGPU_SORT_MERGE_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace streamgpu::sort {

/// Merges two sorted runs into `out` (out.size() == a.size() + b.size()).
/// Stable toward `a` on ties. Returns the number of comparisons performed.
std::uint64_t TwoWayMerge(std::span<const float> a, std::span<const float> b,
                          std::span<float> out);

/// Merges four sorted runs into `out` via two levels of binary merges (the
/// structure the paper's CPU merge uses: O(n) comparisons total).
/// Returns the number of comparisons performed.
std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out);

/// As above, but staging the two first-level merges in `*scratch` (resized
/// to out.size(); capacity is reused across calls — the allocation-free path
/// the steady-state sort loop uses).
std::uint64_t FourWayMerge(const std::array<std::span<const float>, 4>& runs,
                           std::span<float> out, std::vector<float>* scratch);

/// Merges k sorted runs into `out` with a loser tree: ceil(log2 k)
/// comparisons per output element. Stable toward lower run indices on ties.
/// Returns the number of comparisons performed.
std::uint64_t KWayMerge(std::span<const std::span<const float>> runs, std::span<float> out);

/// Reference k-way merge scanning all run heads per output (the seed
/// implementation): k-1 comparisons per output. Kept for comparison-count
/// invariants and differential tests against the loser tree.
std::uint64_t KWayMergeHeadScan(std::span<const std::span<const float>> runs,
                                std::span<float> out);

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_MERGE_H_
