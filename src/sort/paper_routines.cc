#include "sort/paper_routines.h"

#include "sort/pbsn_network.h"

namespace streamgpu::sort::paper {

namespace {
using gpu::GlContext;
}  // namespace

// ROUTINE 4.1:
//   1 Enable Texturing and set tex as active texture
//   2 v[0] = (0,0), t[0] = (0,0)
//   3 v[1] = (W,0), t[1] = (W,0)
//   4 v[2] = (W,H), t[2] = (W,H)
//   5 v[3] = (0,H), t[3] = (0,H)
//   6 DrawQuad(v,t)
void Copy(GlContext& gl, gpu::TextureHandle tex, int w, int h) {
  gl.Enable(GlContext::kTexture2D);
  gl.BindTexture(tex);
  gl.Disable(GlContext::kBlend);
  const auto fw = static_cast<float>(w);
  const auto fh = static_cast<float>(h);
  gl.Begin(GlContext::kQuads);
  gl.TexCoord2f(0, 0);
  gl.Vertex2f(0, 0);
  gl.TexCoord2f(fw, 0);
  gl.Vertex2f(fw, 0);
  gl.TexCoord2f(fw, fh);
  gl.Vertex2f(fw, fh);
  gl.TexCoord2f(0, fh);
  gl.Vertex2f(0, fh);
  gl.End();
}

// ROUTINE 4.2:
//   1 Enable Texturing and set tex as active texture
//   2 Enable Blending and set blend function to compute the minimum
//   3 v[0] = (0, s),       t[0] = (W, s+H)
//   4 v[1] = (W, s),       t[1] = (0, s+H)
//   5 v[2] = (W, s + H/2), t[2] = (0, s + H/2)
//   6 v[3] = (0, s + H/2), t[3] = (W, s + H/2)
//   7 DrawQuad(v, t)
void ComputeMin(GlContext& gl, gpu::TextureHandle tex, int s, int w, int h) {
  gl.Enable(GlContext::kTexture2D);
  gl.BindTexture(tex);
  gl.Enable(GlContext::kBlend);
  gl.BlendEquation(GlContext::kFuncMin);
  const auto fw = static_cast<float>(w);
  const auto fs = static_cast<float>(s);
  const auto fh = static_cast<float>(h);
  gl.Begin(GlContext::kQuads);
  gl.TexCoord2f(fw, fs + fh);
  gl.Vertex2f(0, fs);
  gl.TexCoord2f(0, fs + fh);
  gl.Vertex2f(fw, fs);
  gl.TexCoord2f(0, fs + fh / 2);
  gl.Vertex2f(fw, fs + fh / 2);
  gl.TexCoord2f(fw, fs + fh / 2);
  gl.Vertex2f(0, fs + fh / 2);
  gl.End();
}

// The symmetric maximum routine: the upper half of the block keeps the
// maximum of each mirrored pair.
void ComputeMax(GlContext& gl, gpu::TextureHandle tex, int s, int w, int h) {
  gl.Enable(GlContext::kTexture2D);
  gl.BindTexture(tex);
  gl.Enable(GlContext::kBlend);
  gl.BlendEquation(GlContext::kFuncMax);
  const auto fw = static_cast<float>(w);
  const auto fs = static_cast<float>(s);
  const auto fh = static_cast<float>(h);
  gl.Begin(GlContext::kQuads);
  gl.TexCoord2f(fw, fs + fh / 2);
  gl.Vertex2f(0, fs + fh / 2);
  gl.TexCoord2f(0, fs + fh / 2);
  gl.Vertex2f(fw, fs + fh / 2);
  gl.TexCoord2f(0, fs);
  gl.Vertex2f(fw, fs + fh);
  gl.TexCoord2f(fw, fs);
  gl.Vertex2f(0, fs + fh);
  gl.End();
}

// Fig. 2 (left): one quad covers the same columns of every row; u mirrors
// the block, v is the identity.
void ComputeRowMin(GlContext& gl, gpu::TextureHandle tex, int offset, int block,
                   int height) {
  gl.Enable(GlContext::kTexture2D);
  gl.BindTexture(tex);
  gl.Enable(GlContext::kBlend);
  gl.BlendEquation(GlContext::kFuncMin);
  const auto off = static_cast<float>(offset);
  const auto b = static_cast<float>(block);
  const auto fh = static_cast<float>(height);
  gl.Begin(GlContext::kQuads);
  gl.TexCoord2f(off + b, 0);
  gl.Vertex2f(off, 0);
  gl.TexCoord2f(off + b / 2, 0);
  gl.Vertex2f(off + b / 2, 0);
  gl.TexCoord2f(off + b / 2, fh);
  gl.Vertex2f(off + b / 2, fh);
  gl.TexCoord2f(off + b, fh);
  gl.Vertex2f(off, fh);
  gl.End();
}

void ComputeRowMax(GlContext& gl, gpu::TextureHandle tex, int offset, int block,
                   int height) {
  gl.Enable(GlContext::kTexture2D);
  gl.BindTexture(tex);
  gl.Enable(GlContext::kBlend);
  gl.BlendEquation(GlContext::kFuncMax);
  const auto off = static_cast<float>(offset);
  const auto b = static_cast<float>(block);
  const auto fh = static_cast<float>(height);
  gl.Begin(GlContext::kQuads);
  gl.TexCoord2f(off + b / 2, 0);
  gl.Vertex2f(off + b / 2, 0);
  gl.TexCoord2f(off, 0);
  gl.Vertex2f(off + b, 0);
  gl.TexCoord2f(off, fh);
  gl.Vertex2f(off + b, fh);
  gl.TexCoord2f(off + b / 2, fh);
  gl.Vertex2f(off + b / 2, fh);
  gl.End();
}

// ROUTINE 4.4:
//   1 if blocksize <= width
//   2   numRowBlocks = width / blocksize
//   3   for i = 0 to (numRowBlocks-1)
//   4     offset = i * blocksize
//   5     ComputeRowMin(tex, offset, blocksize, height)
//   6     ComputeRowMax(tex, offset, blocksize, height)
//   7 else
//   8   numBlocks = width*height/blocksize, block_height = blocksize/width
//   9   for i = 0 to (numBlocks-1)
//  10     offset = i * block_height
//  11     ComputeMin(tex, offset, width, block_height)
//  12     ComputeMax(tex, offset, width, block_height)
void SortStep(GlContext& gl, gpu::TextureHandle tex, int width, int height,
              int block_size) {
  if (block_size <= width) {
    const int num_row_blocks = width / block_size;
    for (int i = 0; i < num_row_blocks; ++i) {
      const int offset = i * block_size;
      ComputeRowMin(gl, tex, offset, block_size, height);
      ComputeRowMax(gl, tex, offset, block_size, height);
    }
  } else {
    const int num_blocks = width * height / block_size;
    const int block_height = block_size / width;
    for (int i = 0; i < num_blocks; ++i) {
      const int offset = i * block_height;
      ComputeMin(gl, tex, offset, width, block_height);
      ComputeMax(gl, tex, offset, width, block_height);
    }
  }
}

// ROUTINE 4.3:
//   3 Copy(tex, W, H)
//   4 for i = 1 to log n           /* for each stage */
//   5   for j = log n to 1
//   6     Block size B = 2^j
//   7     SortStep(tex, W, H, B)
//   8     Copy from frame buffer to tex
void Pbsn(GlContext& gl, gpu::TextureHandle tex, int width, int height) {
  Copy(gl, tex, width, height);
  const int log_n = CeilLog2(static_cast<std::uint64_t>(width) *
                             static_cast<std::uint64_t>(height));
  for (int i = 1; i <= log_n; ++i) {
    for (int j = log_n; j >= 1; --j) {
      const int block_size = 1 << j;
      SortStep(gl, tex, width, height, block_size);
      gl.BindTexture(tex);
      gl.CopyTexSubImage2D();
    }
  }
}

}  // namespace streamgpu::sort::paper
