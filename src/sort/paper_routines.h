// Verbatim transcriptions of the paper's Routines 4.1-4.4 in the GL-style
// immediate-mode API (gpu/gl.h), kept as the readable reference for the
// optimized implementation in pbsn_gpu.h. tests/paper_routines_test.cc
// verifies the two produce bit-identical results.
//
// The routines operate on a single texture whose four channels each hold an
// independent sequence (padded to the texture's power-of-two capacity with
// +inf), with the framebuffer as the blend destination, exactly as in §4.

#ifndef STREAMGPU_SORT_PAPER_ROUTINES_H_
#define STREAMGPU_SORT_PAPER_ROUTINES_H_

#include "gpu/gl.h"

namespace streamgpu::sort::paper {

/// Routine 4.1: copies a W x H texture into the frame buffer.
void Copy(gpu::GlContext& gl, gpu::TextureHandle tex, int w, int h);

/// Routine 4.2: compares the value at the i-th location with the value at
/// the (W*H - 1 - i)-th location of the block of rows [s, s+h) and stores
/// the minimum at the i-th location (first half of the block).
void ComputeMin(gpu::GlContext& gl, gpu::TextureHandle tex, int s, int w, int h);

/// The mirror of ComputeMin: stores the maximum in the second half.
void ComputeMax(gpu::GlContext& gl, gpu::TextureHandle tex, int s, int w, int h);

/// Row-block variants (Fig. 2 left): compare within a block of `block`
/// columns starting at column `offset`, across all `height` rows.
void ComputeRowMin(gpu::GlContext& gl, gpu::TextureHandle tex, int offset, int block,
                   int height);
void ComputeRowMax(gpu::GlContext& gl, gpu::TextureHandle tex, int offset, int block,
                   int height);

/// Routine 4.4: one step of the sorting network at the given block size.
void SortStep(gpu::GlContext& gl, gpu::TextureHandle tex, int width, int height,
              int block_size);

/// Routine 4.3: the full periodic balanced sorting network over a texture
/// holding `padded` = width*height values per channel. The caller uploads
/// the data and reads back the framebuffer afterwards.
void Pbsn(gpu::GlContext& gl, gpu::TextureHandle tex, int width, int height);

}  // namespace streamgpu::sort::paper

#endif  // STREAMGPU_SORT_PAPER_ROUTINES_H_
