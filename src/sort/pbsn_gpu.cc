#include "sort/pbsn_gpu.h"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "gpu/vertex.h"
#include "sort/merge.h"
#include "sort/pbsn_network.h"

namespace streamgpu::sort {

namespace {

constexpr float kPad = std::numeric_limits<float>::infinity();

// Texture dimensions for M = 2^L texels: width 2^ceil(L/2), height the rest,
// so W >= H and both are powers of two (§4.4, Routine 4.3).
void TextureDims(std::int64_t padded, int* width, int* height) {
  const int levels = CeilLog2(static_cast<std::uint64_t>(padded));
  *width = 1 << ((levels + 1) / 2);
  *height = 1 << (levels / 2);
}

}  // namespace

PbsnGpuSorter::PbsnGpuSorter(gpu::GpuDevice* device,
                             const hwmodel::GpuHardwareProfile& gpu_profile,
                             const hwmodel::CpuHardwareProfile& cpu_profile,
                             Options options)
    : device_(device),
      gpu_model_(gpu_profile),
      cpu_model_(cpu_profile),
      options_(options) {
  STREAMGPU_CHECK(device != nullptr);
}

void PbsnGpuSorter::Sort(std::span<float> data) {
  Timer timer;
  last_run_ = SortRunInfo{};
  last_stats_ = gpu::GpuStats{};
  last_breakdown_ = hwmodel::GpuTimeBreakdown{};
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  if (n == 0) {
    last_run_.wall_seconds = timer.ElapsedSeconds();
    return;
  }

  std::array<std::span<float>, gpu::kNumChannels> group;
  if (options_.use_four_channels) {
    // Split into four contiguous subsequences, one per color channel (§4.4).
    const std::int64_t per_channel = (n + gpu::kNumChannels - 1) / gpu::kNumChannels;
    for (int c = 0; c < gpu::kNumChannels; ++c) {
      const std::int64_t begin = std::min<std::int64_t>(n, c * per_channel);
      const std::int64_t end = std::min<std::int64_t>(n, begin + per_channel);
      group[c] = data.subspan(static_cast<std::size_t>(begin),
                              static_cast<std::size_t>(end - begin));
    }
  } else {
    group[0] = data;
  }
  SortGroup(group);

  std::uint64_t merge_comparisons = 0;
  if (options_.use_four_channels) {
    // The four sorted channel runs are merged in software (§4.4).
    merge_out_.resize(static_cast<std::size_t>(n));
    std::array<std::span<const float>, gpu::kNumChannels> views;
    for (int c = 0; c < gpu::kNumChannels; ++c) views[c] = group[c];
    merge_comparisons = FourWayMerge(views, merge_out_, &merge_scratch_);
    std::copy(merge_out_.begin(), merge_out_.end(), data.begin());
    last_run_.sim_merge_seconds =
        cpu_model_.MergeSeconds(static_cast<std::uint64_t>(n), 4, sizeof(float));
  }

  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.sim_device_seconds = last_breakdown_.DeviceSeconds();
  last_run_.sim_transfer_seconds = last_breakdown_.transfer_s;
  last_run_.simulated_seconds = last_breakdown_.TotalSeconds() + last_run_.sim_merge_seconds;
  last_run_.comparisons = last_stats_.ScalarComparisons() + merge_comparisons;
}

void PbsnGpuSorter::SortRuns(std::span<std::span<float>> runs) {
  Timer timer;
  last_run_ = SortRunInfo{};
  last_stats_ = gpu::GpuStats{};
  last_breakdown_ = hwmodel::GpuTimeBreakdown{};

  // Buffer four runs (stream windows) per texture, one per color channel
  // (§4.1: "we buffer four windows of data values and represent each of the
  // windows in a color component").
  const int group_width = options_.use_four_channels ? gpu::kNumChannels : 1;
  for (std::size_t base = 0; base < runs.size(); base += group_width) {
    std::array<std::span<float>, gpu::kNumChannels> group;
    for (int c = 0; c < group_width && base + c < runs.size(); ++c) {
      group[c] = runs[base + c];
    }
    SortGroup(group);
  }

  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.sim_device_seconds = last_breakdown_.DeviceSeconds();
  last_run_.sim_transfer_seconds = last_breakdown_.transfer_s;
  last_run_.simulated_seconds = last_breakdown_.TotalSeconds();
  last_run_.comparisons = last_stats_.ScalarComparisons();
}

void PbsnGpuSorter::SortGroup(const std::array<std::span<float>, gpu::kNumChannels>& runs) {
  std::int64_t longest = 0;
  for (const auto& run : runs) {
    longest = std::max<std::int64_t>(longest, static_cast<std::int64_t>(run.size()));
  }
  if (longest == 0) return;

  const std::int64_t padded = longest < 2
                                  ? 1
                                  : static_cast<std::int64_t>(NextPowerOfTwo(
                                        static_cast<std::uint64_t>(longest)));
  int width = 0;
  int height = 0;
  TextureDims(padded, &width, &height);
  STREAMGPU_CHECK(static_cast<std::int64_t>(width) * height == padded);

  const gpu::GpuStats before = device_->stats();

  // --- Transfer the runs to the GPU as one RGBA texture (§4.1). ---
  // The staging plane is a reusable member: same-sized windows (the steady
  // state of every stream pipeline) never reallocate it.
  gpu::TextureHandle tex = device_->CreateTexture(width, height, options_.format);
  staging_.resize(static_cast<std::size_t>(padded));
  for (int c = 0; c < gpu::kNumChannels; ++c) {
    std::copy(runs[c].begin(), runs[c].end(), staging_.begin());
    std::fill(staging_.begin() + static_cast<std::ptrdiff_t>(runs[c].size()),
              staging_.end(), kPad);
    device_->UploadChannel(tex, c, staging_);
  }

  // --- Routine 4.3: copy into the framebuffer, then log(M) stages of ---
  // --- log(M) steps, copying back into the texture after each step.  ---
  device_->BindFramebuffer(width, height, options_.format);
  device_->SetBlend(gpu::BlendOp::kReplace);
  device_->DrawQuad(tex, gpu::Quad::Identity(0, 0, static_cast<float>(width),
                                             static_cast<float>(height)));

  const int stages = CeilLog2(static_cast<std::uint64_t>(padded));
  for (int stage = 0; stage < stages; ++stage) {
    for (std::int64_t block = padded; block >= 2; block /= 2) {
      SortStep(tex, width, height, block);
      device_->CopyFramebufferToTexture(tex);
    }
  }

  // --- Read the sorted channels back (§4.1). ---
  for (int c = 0; c < gpu::kNumChannels; ++c) {
    device_->ReadbackChannel(c, staging_);
    std::copy_n(staging_.begin(), runs[c].size(), runs[c].begin());
  }

  const gpu::GpuStats delta = device_->stats() - before;
  last_stats_ += delta;
  const hwmodel::GpuTimeBreakdown b = gpu_model_.Simulate(delta);
  last_breakdown_.compute_s += b.compute_s;
  last_breakdown_.memory_s += b.memory_s;
  last_breakdown_.setup_s += b.setup_s;
  last_breakdown_.transfer_s += b.transfer_s;

  device_->DestroyAllTextures();
}

void PbsnGpuSorter::SortStep(gpu::TextureHandle tex, int width, int height,
                             std::int64_t block_size) {
  if (block_size <= width) {
    RowBlockStep(tex, width, height, block_size);
  } else {
    TallBlockStep(tex, width, height, block_size);
  }
}

void PbsnGpuSorter::RowBlockStep(gpu::TextureHandle tex, int width, int height,
                                 std::int64_t block_size) {
  // Fig. 2 (left): blocks lie within rows. One quad per row block covers the
  // same columns of every row; the texture u coordinate mirrors the block
  // (u(x) = 2*offset + B - x) and v is the identity.
  const auto b = static_cast<float>(block_size);
  const float h = static_cast<float>(height);
  const std::int64_t num_row_blocks = width / block_size;
  for (std::int64_t j = 0; j < num_row_blocks; ++j) {
    const float off = static_cast<float>(j * block_size);
    const float row_span = options_.use_row_block_optimization ? h : 1.0f;
    for (float y0 = 0; y0 < h; y0 += row_span) {
      const float y1 = y0 + row_span;
      // ComputeRowMin: lower half of the block keeps the minimum.
      device_->SetBlend(gpu::BlendOp::kMin);
      device_->DrawQuad(tex, gpu::Quad::Make(off, y0, off + b / 2, y1,        //
                                             off + b, y0, off + b / 2, y0,    //
                                             off + b / 2, y1, off + b, y1));
      // ComputeRowMax: upper half keeps the maximum.
      device_->SetBlend(gpu::BlendOp::kMax);
      device_->DrawQuad(tex, gpu::Quad::Make(off + b / 2, y0, off + b, y1,    //
                                             off + b / 2, y0, off, y0,        //
                                             off, y1, off + b / 2, y1));
    }
  }
}

void PbsnGpuSorter::TallBlockStep(gpu::TextureHandle tex, int width, int height,
                                  std::int64_t block_size) {
  // Fig. 2 (right): blocks span block_size/width full rows. The u coordinate
  // mirrors the columns and v mirrors the block's rows (Routine 4.2).
  const float w = static_cast<float>(width);
  const std::int64_t block_height = block_size / width;
  STREAMGPU_CHECK(block_height >= 2 && block_height % 2 == 0);
  const std::int64_t num_blocks =
      static_cast<std::int64_t>(width) * height / block_size;
  const auto bh = static_cast<float>(block_height);
  for (std::int64_t i = 0; i < num_blocks; ++i) {
    const float r = static_cast<float>(i * block_height);
    // ComputeMin over the block's lower half-rows.
    device_->SetBlend(gpu::BlendOp::kMin);
    device_->DrawQuad(tex, gpu::Quad::Make(0, r, w, r + bh / 2,        //
                                           w, r + bh, 0, r + bh,       //
                                           0, r + bh / 2, w, r + bh / 2));
    // ComputeMax over the block's upper half-rows.
    device_->SetBlend(gpu::BlendOp::kMax);
    device_->DrawQuad(tex, gpu::Quad::Make(0, r + bh / 2, w, r + bh,   //
                                           w, r + bh / 2, 0, r + bh / 2,  //
                                           0, r, w, r));
  }
}

}  // namespace streamgpu::sort
