// The paper's novel GPU sorting algorithm (§4): the periodic balanced
// sorting network executed entirely with rasterization — comparator mappings
// via quad texture coordinates, comparisons via MIN/MAX framebuffer blending
// (Routines 4.1-4.4).
//
// Four independent subsequences are packed into the RGBA channels of one 2-D
// texture and sorted simultaneously by the 4-wide vector blend units; a
// CPU-side 4-way merge combines the sorted runs (§4.4).

#ifndef STREAMGPU_SORT_PBSN_GPU_H_
#define STREAMGPU_SORT_PBSN_GPU_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.h"
#include "hwmodel/cpu_model.h"
#include "hwmodel/gpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

/// Configuration of the GPU PBSN sorter.
struct PbsnOptions {
  /// Render-target and texture precision. The paper's optimized
  /// implementation uses 16-bit offscreen buffers (§4.5); kFloat16
  /// reproduces that (values are quantized through binary16).
  gpu::Format format = gpu::Format::kFloat32;

  /// Pack four subsequences into the RGBA channels and merge on the CPU
  /// (§4.4). When false, only the R channel carries data — the ablation
  /// for the vector-parallelism design choice.
  bool use_four_channels = true;

  /// Use the row-block fast path of Routine 4.4 / Fig. 2, which renders
  /// one quad of height H per row block when B <= W. When false, each
  /// block of each row is rendered with its own height-1 quads —
  /// identical fragments, many more draw calls (setup-cost ablation).
  bool use_row_block_optimization = true;
};

/// GPU PBSN sorter over a simulated device.
class PbsnGpuSorter final : public Sorter {
 public:
  using Options = PbsnOptions;

  /// The device is borrowed and must outlive the sorter. Hardware profiles
  /// drive the simulated timing of the GPU passes and the CPU merge.
  PbsnGpuSorter(gpu::GpuDevice* device, const hwmodel::GpuHardwareProfile& gpu_profile,
                const hwmodel::CpuHardwareProfile& cpu_profile,
                Options options = Options());

  void Sort(std::span<float> data) override;

  /// Sorts several independent runs, four at a time through the RGBA
  /// channels of a shared texture (the paper's four-window buffering, §4.1).
  /// Runs in one group are padded to the longest run's power-of-two size.
  void SortRuns(std::span<std::span<float>> runs) override;

  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "gpu-pbsn"; }

  /// Device work counters for the most recent Sort() call.
  const gpu::GpuStats& last_stats() const { return last_stats_; }

  /// Simulated GPU time breakdown of the most recent Sort() call (Fig. 4).
  const hwmodel::GpuTimeBreakdown& last_breakdown() const { return last_breakdown_; }

  const Options& options() const { return options_; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  /// Uploads up to four runs into one texture, runs the full PBSN schedule,
  /// and reads the sorted runs back in place. Accumulates stats/timing into
  /// the current call's record.
  void SortGroup(const std::array<std::span<float>, gpu::kNumChannels>& runs);

  /// One step of the sorting network at the given block size: renders the
  /// MIN and MAX comparator quads of Routine 4.4 / Fig. 2.
  void SortStep(gpu::TextureHandle tex, int width, int height, std::int64_t block_size);

  void RowBlockStep(gpu::TextureHandle tex, int width, int height, std::int64_t block_size);
  void TallBlockStep(gpu::TextureHandle tex, int width, int height, std::int64_t block_size);

  gpu::GpuDevice* device_;
  hwmodel::GpuModel gpu_model_;
  hwmodel::CpuModel cpu_model_;
  Options options_;
  SortRunInfo last_run_;
  gpu::GpuStats last_stats_;
  hwmodel::GpuTimeBreakdown last_breakdown_;

  // Reusable scratch (capacity persists across calls, so the steady-state
  // window loop performs no heap allocation): the upload/readback staging
  // plane and the CPU-merge buffers of Sort().
  std::vector<float> staging_;
  std::vector<float> merge_out_;
  std::vector<float> merge_scratch_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_PBSN_GPU_H_
