#include "sort/pbsn_network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace streamgpu::sort {

int CeilLog2(std::uint64_t x) {
  STREAMGPU_CHECK(x >= 1);
  int bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::uint64_t NextPowerOfTwo(std::uint64_t x) { return std::uint64_t{1} << CeilLog2(x); }

void PbsnStepCpu(std::span<float> data, std::size_t block_size) {
  STREAMGPU_CHECK(block_size >= 2 && (block_size & (block_size - 1)) == 0);
  STREAMGPU_CHECK(data.size() % block_size == 0);
  for (std::size_t base = 0; base < data.size(); base += block_size) {
    for (std::size_t i = 0; i < block_size / 2; ++i) {
      float& lo = data[base + i];
      float& hi = data[base + block_size - 1 - i];
      if (lo > hi) std::swap(lo, hi);
    }
  }
}

void PbsnStageCpu(std::span<float> data) {
  for (std::size_t block = data.size(); block >= 2; block /= 2) {
    PbsnStepCpu(data, block);
  }
}

void PbsnSortCpu(std::span<float> data) {
  const std::size_t n = data.size();
  if (n < 2) return;
  STREAMGPU_CHECK_MSG((n & (n - 1)) == 0, "PBSN requires a power-of-two input size");
  const int stages = CeilLog2(n);
  for (int s = 0; s < stages; ++s) PbsnStageCpu(data);
}

std::uint64_t PbsnComparatorCount(std::uint64_t n) {
  if (n < 2) return 0;
  const auto k = static_cast<std::uint64_t>(CeilLog2(n));
  return (n / 2) * k * k;
}

}  // namespace streamgpu::sort
