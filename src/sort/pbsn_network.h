// The periodic balanced sorting network (PBSN) comparator schedule [16]
// (Dowd, Perl, Rudolph, Saks), shared between the GPU implementation and a
// scalar reference executor used for validation.
//
// For an input of n = 2^k elements the network runs k stages; each stage
// performs k steps with block sizes n, n/2, ..., 2. A step with block size B
// partitions the input into contiguous blocks of B elements and, within each
// block, compares the element at offset i with the element at offset B-1-i;
// the minimum lands in the lower half and the maximum in the upper half
// (§4.4). After k identical stages the sequence is sorted.

#ifndef STREAMGPU_SORT_PBSN_NETWORK_H_
#define STREAMGPU_SORT_PBSN_NETWORK_H_

#include <cstdint>
#include <span>

namespace streamgpu::sort {

/// ceil(log2(x)) for x >= 1.
int CeilLog2(std::uint64_t x);

/// Smallest power of two >= x (x >= 1).
std::uint64_t NextPowerOfTwo(std::uint64_t x);

/// Applies one PBSN step with the given block size to `data` (whose size
/// must be a multiple of `block_size`; `block_size` a power of two >= 2).
void PbsnStepCpu(std::span<float> data, std::size_t block_size);

/// Runs one full PBSN stage (steps with block sizes data.size() .. 2).
void PbsnStageCpu(std::span<float> data);

/// Sorts `data` (size a power of two) with the full PBSN schedule —
/// the scalar reference for the GPU implementation.
void PbsnSortCpu(std::span<float> data);

/// Total comparator count of the PBSN schedule for n = 2^k elements:
/// each step has n/2 comparators, and there are k^2 steps.
std::uint64_t PbsnComparatorCount(std::uint64_t n);

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_PBSN_NETWORK_H_
