#include "sort/planned.h"

#include <utility>

#include "common/check.h"

namespace streamgpu::sort {

PlannedSorter::PlannedSorter(const hwmodel::SortPlanner* planner,
                             std::vector<Candidate> candidates,
                             const obs::Observability& obs,
                             const std::string& metric_prefix)
    : planner_(planner),
      candidates_(std::move(candidates)),
      metrics_(obs.metrics),
      flight_(obs.flight) {
  STREAMGPU_CHECK(planner_ != nullptr);
  STREAMGPU_CHECK_MSG(!candidates_.empty(),
                      "PlannedSorter needs at least one candidate");
  for (const Candidate& c : candidates_) {
    STREAMGPU_CHECK(c.sorter != nullptr);
  }
  if (metrics_ != nullptr) {
    m_chosen_.reserve(candidates_.size());
    for (const Candidate& c : candidates_) {
      m_chosen_.push_back(metrics_->Counter(metric_prefix + "planner.chosen." +
                                            hwmodel::SortBackendName(c.kind)));
    }
  }
}

PlannedSorter::Candidate* PlannedSorter::FindCandidate(
    hwmodel::SortBackend kind) {
  for (Candidate& c : candidates_) {
    if (c.kind == kind) return &c;
  }
  return nullptr;
}

void PlannedSorter::Sort(std::span<float> data) {
  std::span<float> runs[1] = {data};
  SortRuns(std::span<std::span<float>>(runs, 1));
}

void PlannedSorter::SortRuns(std::span<std::span<float>> runs) {
  STREAMGPU_CHECK_MSG(runs.size() <= 64,
                      "PlannedSorter batches at most 64 runs");
  quarantine_mask_ = 0;
  const std::uint64_t batch = batch_index_++;
  SortRunInfo total;
  if (runs.empty()) {
    last_run_ = total;
    return;
  }

  // Plan every run, then dispatch one grouped SortRuns() per chosen backend
  // (in candidate order — deterministic, and it keeps the GPU candidate's
  // four-window RGBA packing intact when several runs pick it).
  run_choice_.resize(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const hwmodel::SortBackend kind = planner_->Choose(runs[i].size());
    const Candidate* c = FindCandidate(kind);
    STREAMGPU_CHECK_MSG(c != nullptr,
                        "planner chose a backend with no candidate");
    run_choice_[i] = static_cast<std::size_t>(c - candidates_.data());
    last_choice_ = kind;
  }

  for (std::size_t ci = 0; ci < candidates_.size(); ++ci) {
    group_.clear();
    group_run_index_.clear();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (run_choice_[i] == ci) {
        group_.push_back(runs[i]);
        group_run_index_.push_back(i);
      }
    }
    if (group_.empty()) continue;
    Candidate& c = candidates_[ci];
    c.sorter->SortRuns(std::span<std::span<float>>(group_));
    total += c.sorter->last_run();
    // Re-map the backend's per-group quarantine bits onto batch positions.
    const std::uint64_t mask = c.sorter->last_quarantine_mask();
    if (mask != 0) {
      for (std::size_t g = 0; g < group_run_index_.size(); ++g) {
        if (mask & (std::uint64_t{1} << g)) {
          quarantine_mask_ |= std::uint64_t{1} << group_run_index_[g];
        }
      }
    }
    if (metrics_ != nullptr && !m_chosen_.empty()) {
      metrics_->Add(m_chosen_[ci], group_.size());
    }
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kBackendChosen, "plan",
                      hwmodel::SortBackendName(c.kind), batch,
                      static_cast<std::int64_t>(group_.size()),
                      static_cast<std::int64_t>(group_.front().size()));
    }
  }
  last_run_ = total;
}

}  // namespace streamgpu::sort
