// PlannedSorter: the "auto" backend — a cost-model dispatcher over concrete
// Sorter candidates.
//
// Each Sort()/SortRuns() call asks the hwmodel::SortPlanner which backend
// minimizes the configured objective for each run's size and forwards the
// run to that candidate. Batches keep the inner backends' batching: runs
// that plan onto the same backend are grouped (preserving order) and handed
// to it in one SortRuns() call, so the PBSN candidate still packs four
// windows into RGBA channels when it wins.
//
// Determinism contract: the planner choice is a pure function of run size
// and planner config (see hwmodel/sort_planner.h), and every candidate
// produces the identical ascending permutation of its input, so estimator
// reports are bit-identical whatever the planner picks — the
// engine-equivalence suite asserts this across backends and worker counts.
// Simulated seconds, by contrast, reflect the chosen backend's cost model
// and therefore vary with the machine when the planner is live-calibrated;
// pin memcpy_ns_per_byte for machine-independent simulated timings.
//
// Thread safety: not thread-safe; one instance (with its own candidates and
// shared immutable planner) per pipeline worker, like every backend.

#ifndef STREAMGPU_SORT_PLANNED_H_
#define STREAMGPU_SORT_PLANNED_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hwmodel/sort_planner.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

class PlannedSorter final : public Sorter {
 public:
  /// One selectable backend: the planner kind it is costed as, plus the
  /// concrete sorter that executes it (borrowed; must outlive the wrapper).
  struct Candidate {
    hwmodel::SortBackend kind;
    Sorter* sorter = nullptr;
  };

  /// `planner` is borrowed and immutable; its candidate list must be exactly
  /// the kinds present in `candidates`. `metric_prefix` namespaces the
  /// per-backend choice counters ("<prefix>planner.chosen.<backend>").
  PlannedSorter(const hwmodel::SortPlanner* planner,
                std::vector<Candidate> candidates,
                const obs::Observability& obs,
                const std::string& metric_prefix);

  void Sort(std::span<float> data) override;
  void SortRuns(std::span<std::span<float>> runs) override;

  const SortRunInfo& last_run() const override { return last_run_; }
  std::uint64_t last_quarantine_mask() const override {
    return quarantine_mask_;
  }
  const char* name() const override { return "auto"; }

  /// Planner kind chosen for the most recent run (last run of a batch);
  /// exposed for tests and reports.
  hwmodel::SortBackend last_choice() const { return last_choice_; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  Candidate* FindCandidate(hwmodel::SortBackend kind);

  const hwmodel::SortPlanner* const planner_;
  std::vector<Candidate> candidates_;
  obs::MetricsRegistry* const metrics_;
  obs::FlightRecorder* const flight_;
  std::vector<obs::MetricId> m_chosen_;  // parallel to candidates_

  SortRunInfo last_run_;
  std::uint64_t quarantine_mask_ = 0;
  hwmodel::SortBackend last_choice_ = hwmodel::SortBackend::kCpuStdSort;
  std::uint64_t batch_index_ = 0;  // flight-event sequence

  // Batch scratch: per-run candidate index, and the grouped span list handed
  // to each backend.
  std::vector<std::size_t> run_choice_;
  std::vector<std::span<float>> group_;
  std::vector<std::size_t> group_run_index_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_PLANNED_H_
