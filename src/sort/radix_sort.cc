#include "sort/radix_sort.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/timer.h"

namespace streamgpu::sort {

namespace {

constexpr std::size_t kRadixBits = 8;
constexpr std::size_t kRadixBins = std::size_t{1} << kRadixBits;
constexpr std::size_t kRadixPasses = 32 / kRadixBits;
constexpr std::size_t kInsertionCutoff = 32;

void InsertionSortKeys(std::uint32_t* keys, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t key = keys[i];
    std::size_t j = i;
    while (j > 0 && keys[j - 1] > key) {
      keys[j] = keys[j - 1];
      --j;
    }
    keys[j] = key;
  }
}

}  // namespace

void RadixSortKeys(std::span<std::uint32_t> keys, std::vector<std::uint32_t>* scratch) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  if (n <= kInsertionCutoff) {
    InsertionSortKeys(keys.data(), n);
    return;
  }
  scratch->resize(n);

  // One read pass builds the histograms of all four byte positions.
  std::array<std::array<std::uint32_t, kRadixBins>, kRadixPasses> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = keys[i];
    for (std::size_t p = 0; p < kRadixPasses; ++p) {
      ++hist[p][(k >> (p * kRadixBits)) & (kRadixBins - 1)];
    }
  }

  std::uint32_t* src = keys.data();
  std::uint32_t* dst = scratch->data();
  for (std::size_t p = 0; p < kRadixPasses; ++p) {
    const auto& h = hist[p];
    // A pass whose byte is constant across all keys is the identity; skip it.
    if (std::any_of(h.begin(), h.end(),
                    [n](std::uint32_t c) { return c == n; })) {
      continue;
    }
    std::array<std::uint32_t, kRadixBins> offset;
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < kRadixBins; ++b) {
      offset[b] = sum;
      sum += h[b];
    }
    const std::size_t shift = p * kRadixBits;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t k = src[i];
      dst[offset[(k >> shift) & (kRadixBins - 1)]++] = k;
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) {
    std::memcpy(keys.data(), src, n * sizeof(std::uint32_t));
  }
}

std::uint64_t MergeKeyRuns(std::span<const std::span<const std::uint32_t>> runs,
                           std::span<std::uint32_t> out) {
  const std::size_t ways = runs.size();
  if (ways == 0) return 0;
  if (ways == 1) {
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return 0;
  }

  // True loser tree over packed (key, run) entries: key in the high 32 bits,
  // run index low, so one uint64 compare realizes the lexicographic order —
  // ties break toward the lower run index, which keeps the merge stable and
  // therefore deterministic for any input. Exhausted runs pack the sentinel
  // {0xFFFFFFFF, ways}; a real 0xFFFFFFFF key from a live run (run < ways)
  // still orders below every sentinel. Refilling walks leaf-to-root against
  // the stored loser of each match — one load and one compare per level,
  // half the traffic of replaying a winner tree's sibling pairs.
  std::size_t tree = 1;
  while (tree < ways) tree <<= 1;

  const auto pack = [](std::uint32_t key, std::uint32_t run) {
    return (static_cast<std::uint64_t>(key) << 32) | run;
  };
  const std::uint64_t kExhausted =
      pack(0xFFFFFFFFu, static_cast<std::uint32_t>(ways));

  // Run cursors hoisted out of the span-of-spans (one indirection per
  // refill instead of two); padding leaves beyond `ways` stay exhausted.
  struct RunCursor {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
    std::size_t pos = 0;
  };
  std::vector<RunCursor> cursor(tree);
  for (std::size_t r = 0; r < ways; ++r) {
    cursor[r].data = runs[r].data();
    cursor[r].size = runs[r].size();
  }
  const auto leaf = [&](std::size_t r) {
    const RunCursor& c = cursor[r];
    return c.pos < c.size ? pack(c.data[c.pos], static_cast<std::uint32_t>(r))
                          : kExhausted;
  };

  // Build: play the bracket as a winner tree (tree - 1 counted matches),
  // then convert the internal nodes to the losers of their matches. The
  // top-down sweep may overwrite node i before its children: each node only
  // reads its children's still-intact winner values, and the loser of a
  // match is simply the larger child.
  std::uint64_t comparisons = 0;
  std::vector<std::uint64_t> nodes(2 * tree);
  for (std::size_t r = 0; r < tree; ++r) nodes[tree + r] = leaf(r);
  for (std::size_t i = tree - 1; i >= 1; --i) {
    ++comparisons;
    nodes[i] = std::min(nodes[2 * i], nodes[2 * i + 1]);
  }
  std::uint64_t winner = nodes[1];
  for (std::size_t i = 1; i < tree; ++i) {
    nodes[i] = std::max(nodes[2 * i], nodes[2 * i + 1]);
  }

  for (std::size_t o = 0; o < out.size(); ++o) {
    out[o] = static_cast<std::uint32_t>(winner >> 32);
    const auto r = static_cast<std::size_t>(winner & 0xFFFFFFFFu);
    ++cursor[r].pos;
    std::uint64_t contender = leaf(r);
    for (std::size_t node = (tree + r) >> 1; node >= 1; node >>= 1) {
      ++comparisons;
      if (nodes[node] < contender) std::swap(nodes[node], contender);
    }
    winner = contender;
  }
  return comparisons;
}

void RadixMergeSorter::Sort(std::span<float> data) {
  Timer timer;
  const std::size_t n = data.size();
  last_run_ = SortRunInfo{};
  if (n < 2) {
    last_run_.wall_seconds = timer.ElapsedSeconds();
    return;
  }

  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    keys_[i] = FloatToOrderedKey(bits);
  }

  const std::size_t chunks = (n + kChunkKeys - 1) / kChunkKeys;
  std::uint64_t merge_comparisons = 0;
  if (chunks <= 1) {
    RadixSortKeys(std::span<std::uint32_t>(keys_), &radix_scratch_);
  } else {
    run_views_.clear();
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * kChunkKeys;
      const std::size_t len = std::min(kChunkKeys, n - begin);
      auto chunk = std::span<std::uint32_t>(keys_).subspan(begin, len);
      RadixSortKeys(chunk, &radix_scratch_);
      run_views_.emplace_back(chunk.data(), chunk.size());
    }
    merge_out_.resize(n);
    merge_comparisons = MergeKeyRuns(run_views_, merge_out_);
    keys_.swap(merge_out_);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = OrderedKeyToFloat(keys_[i]);
    std::memcpy(&data[i], &bits, sizeof(bits));
  }

  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.comparisons = merge_comparisons;
  last_run_.simulated_seconds =
      model_.RadixSortSeconds(n, sizeof(float)) +
      (chunks > 1
           ? model_.MergeSeconds(n, static_cast<int>(chunks), sizeof(float))
           : 0.0);
}

}  // namespace streamgpu::sort
