#include "sort/radix_sort.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/timer.h"

namespace streamgpu::sort {

namespace {

constexpr std::size_t kRadixBits = 8;
constexpr std::size_t kRadixBins = std::size_t{1} << kRadixBits;
constexpr std::size_t kRadixPasses = 32 / kRadixBits;
constexpr std::size_t kInsertionCutoff = 32;

void InsertionSortKeys(std::uint32_t* keys, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t key = keys[i];
    std::size_t j = i;
    while (j > 0 && keys[j - 1] > key) {
      keys[j] = keys[j - 1];
      --j;
    }
    keys[j] = key;
  }
}

}  // namespace

void RadixSortKeys(std::span<std::uint32_t> keys, std::vector<std::uint32_t>* scratch) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  if (n <= kInsertionCutoff) {
    InsertionSortKeys(keys.data(), n);
    return;
  }
  scratch->resize(n);

  // One read pass builds the histograms of all four byte positions.
  std::array<std::array<std::uint32_t, kRadixBins>, kRadixPasses> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = keys[i];
    for (std::size_t p = 0; p < kRadixPasses; ++p) {
      ++hist[p][(k >> (p * kRadixBits)) & (kRadixBins - 1)];
    }
  }

  std::uint32_t* src = keys.data();
  std::uint32_t* dst = scratch->data();
  for (std::size_t p = 0; p < kRadixPasses; ++p) {
    const auto& h = hist[p];
    // A pass whose byte is constant across all keys is the identity; skip it.
    if (std::any_of(h.begin(), h.end(),
                    [n](std::uint32_t c) { return c == n; })) {
      continue;
    }
    std::array<std::uint32_t, kRadixBins> offset;
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < kRadixBins; ++b) {
      offset[b] = sum;
      sum += h[b];
    }
    const std::size_t shift = p * kRadixBits;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t k = src[i];
      dst[offset[(k >> shift) & (kRadixBins - 1)]++] = k;
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) {
    std::memcpy(keys.data(), src, n * sizeof(std::uint32_t));
  }
}

std::uint64_t MergeKeyRuns(std::span<const std::span<const std::uint32_t>> runs,
                           std::span<std::uint32_t> out) {
  const std::size_t ways = runs.size();
  if (ways == 0) return 0;
  if (ways == 1) {
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return 0;
  }

  // Loser tree over run heads. `slots` holds the internal nodes (losers);
  // ties break toward the lower run index, which keeps the merge stable and
  // therefore deterministic for any input. Exhausted runs present an
  // infinite sentinel; real keys equal to the sentinel still win against it
  // via the index tiebreak only when both are sentinels, so exhausted keys
  // use index = ways (larger than any live run).
  std::size_t tree = 1;
  while (tree < ways) tree <<= 1;

  struct Entry {
    std::uint32_t key;
    std::uint32_t run;  // == ways when exhausted (sentinel)
  };
  std::vector<Entry> nodes(2 * tree);
  std::vector<std::size_t> pos(ways, 0);
  const auto ways32 = static_cast<std::uint32_t>(ways);

  auto leaf_entry = [&](std::size_t r) -> Entry {
    if (r >= ways || pos[r] >= runs[r].size()) return {0xFFFFFFFFu, ways32};
    return {runs[r][pos[r]], static_cast<std::uint32_t>(r)};
  };
  auto less = [](const Entry& a, const Entry& b) {
    return a.key < b.key || (a.key == b.key && a.run < b.run);
  };

  std::uint64_t comparisons = 0;
  for (std::size_t r = 0; r < tree; ++r) nodes[tree + r] = leaf_entry(r);
  for (std::size_t i = tree - 1; i >= 1; --i) {
    const Entry& a = nodes[2 * i];
    const Entry& b = nodes[2 * i + 1];
    ++comparisons;
    nodes[i] = less(a, b) ? a : b;
  }

  for (std::size_t o = 0; o < out.size(); ++o) {
    const Entry winner = nodes[1];
    out[o] = winner.key;
    const std::size_t r = winner.run;
    ++pos[r];
    // Replay the winner's leaf-to-root path.
    std::size_t node = tree + r;
    nodes[node] = leaf_entry(r);
    while (node > 1) {
      node >>= 1;
      const Entry& a = nodes[2 * node];
      const Entry& b = nodes[2 * node + 1];
      ++comparisons;
      nodes[node] = less(a, b) ? a : b;
    }
  }
  return comparisons;
}

void RadixMergeSorter::Sort(std::span<float> data) {
  Timer timer;
  const std::size_t n = data.size();
  last_run_ = SortRunInfo{};
  if (n < 2) {
    last_run_.wall_seconds = timer.ElapsedSeconds();
    return;
  }

  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    keys_[i] = FloatToOrderedKey(bits);
  }

  const std::size_t chunks = (n + kChunkKeys - 1) / kChunkKeys;
  std::uint64_t merge_comparisons = 0;
  if (chunks <= 1) {
    RadixSortKeys(std::span<std::uint32_t>(keys_), &radix_scratch_);
  } else {
    run_views_.clear();
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * kChunkKeys;
      const std::size_t len = std::min(kChunkKeys, n - begin);
      auto chunk = std::span<std::uint32_t>(keys_).subspan(begin, len);
      RadixSortKeys(chunk, &radix_scratch_);
      run_views_.emplace_back(chunk.data(), chunk.size());
    }
    merge_out_.resize(n);
    merge_comparisons = MergeKeyRuns(run_views_, merge_out_);
    keys_.swap(merge_out_);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = OrderedKeyToFloat(keys_[i]);
    std::memcpy(&data[i], &bits, sizeof(bits));
  }

  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.comparisons = merge_comparisons;
  last_run_.simulated_seconds =
      model_.RadixSortSeconds(n, sizeof(float)) +
      (chunks > 1
           ? model_.MergeSeconds(n, static_cast<int>(chunks), sizeof(float))
           : 0.0);
}

}  // namespace streamgpu::sort
