// Second-generation CPU sorting backend: cache-blocked LSD radix sort with a
// loser-tree merge of the blocks ("radix/merge").
//
// The paper's CPU baseline (§3.2) is a comparison sort whose costs are branch
// mispredicts and cache misses; the GPU-sorting literature that followed the
// paper (see PAPERS.md: the GPU sample-sort line and the sorting survey)
// replaced comparison networks with distribution sorts. This backend is the
// host-side member of that generation: floats are mapped to order-preserving
// unsigned keys, sorted by byte-wise counting passes (no comparison branches
// at all), in chunks sized to stay cache-resident, and the sorted chunks are
// combined with the existing loser-tree merge. It is the library's fast CPU
// path — the planner's small-window pick and the ResilientSorter degrade
// target (docs/SORT_BACKENDS.md, docs/ROBUSTNESS.md).
//
// Determinism contract: the output is a pure function of the input's float
// bit patterns — elements are ordered by their order-preserving key
// transform, which totally orders every bit pattern (-0.0 before +0.0, NaNs
// above +inf by payload). Re-running on any host, at any optimization level,
// produces byte-identical output. No RNG, no wall clock, no address-dependent
// behavior.
//
// Thread safety: a RadixMergeSorter instance is NOT thread-safe (it reuses
// internal scratch across calls, like every other backend); distinct
// instances are fully independent and may run concurrently — the pipeline
// gives each worker its own instance.

#ifndef STREAMGPU_SORT_RADIX_SORT_H_
#define STREAMGPU_SORT_RADIX_SORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hwmodel/cpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

/// Maps a float's bit pattern to an unsigned key with the same total order:
/// negative floats have their bits inverted, non-negative floats get the sign
/// bit set. Strictly monotone over bit patterns, so sorting the keys sorts
/// the floats with -0.0 < +0.0 and NaNs (sign-cleared payload order) at the
/// top — a deterministic total order where operator< is only partial.
inline std::uint32_t FloatToOrderedKey(std::uint32_t bits) {
  return bits & 0x80000000u ? ~bits : bits | 0x80000000u;
}

/// Inverse of FloatToOrderedKey.
inline std::uint32_t OrderedKeyToFloat(std::uint32_t key) {
  return key & 0x80000000u ? key & 0x7FFFFFFFu : ~key;
}

/// Sorts `keys` ascending in place with byte-wise LSD counting passes
/// (insertion sort below a small cutoff). `scratch` is resized to
/// keys.size() and its capacity is reused across calls. Deterministic and
/// branch-predictable; performs zero key comparisons above the cutoff.
void RadixSortKeys(std::span<std::uint32_t> keys, std::vector<std::uint32_t>* scratch);

/// Merges `runs` (each ascending) into `out` with a loser tree over the key
/// space: ceil(log2 k) comparisons per output element, stable toward lower
/// run indices on ties. Returns the number of key comparisons performed.
std::uint64_t MergeKeyRuns(std::span<const std::span<const std::uint32_t>> runs,
                           std::span<std::uint32_t> out);

/// Cache-blocked radix/merge Sorter over the order-preserving key transform.
/// Simulated-2005 timing charges the Pentium IV model's radix + merge
/// formulas (hwmodel::CpuModel::{RadixSortSeconds,MergeSeconds}); see
/// docs/COST_MODEL.md. last_run().comparisons counts only the merge stage
/// (the counting passes are comparison-free).
class RadixMergeSorter final : public Sorter {
 public:
  /// Keys per cache-resident chunk: 256K keys = 1 MB, sized so one chunk plus
  /// its scatter buffer stay within a typical per-core L2.
  static constexpr std::size_t kChunkKeys = std::size_t{1} << 18;

  explicit RadixMergeSorter(const hwmodel::CpuHardwareProfile& profile)
      : model_(profile) {}

  void Sort(std::span<float> data) override;
  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "cpu-radix"; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  hwmodel::CpuModel model_;
  SortRunInfo last_run_;

  // Reusable scratch (capacity persists across calls): the key plane, the
  // counting-scatter buffer, the merged output, and the run-view list.
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> radix_scratch_;
  std::vector<std::uint32_t> merge_out_;
  std::vector<std::span<const std::uint32_t>> run_views_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_RADIX_SORT_H_
