#include "sort/resilient.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.h"

namespace streamgpu::sort {
namespace {

// splitmix64 finalizer (same mixing as the injector, reimplemented here so
// sort/ stays independent of core/).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ResilientSorter::ResilientSorter(Sorter* inner, Sorter* fallback, gpu::GpuDevice* device,
                                 gpu::DeviceFaultHook* hook, const obs::Observability& obs,
                                 const std::string& metric_prefix,
                                 const ResilienceOptions& options)
    : inner_(inner),
      fallback_(fallback),
      device_(device),
      hook_(hook),
      trace_(obs.trace),
      metrics_(obs.metrics),
      flight_(obs.flight),
      options_(options) {
  STREAMGPU_CHECK(inner_ != nullptr);
  if (metrics_ != nullptr) {
    m_injected_ = metrics_->Counter(metric_prefix + "fault.injected");
    m_retries_ = metrics_->Counter(metric_prefix + "fault.sort_retries");
    m_fallbacks_ = metrics_->Counter(metric_prefix + "fault.cpu_fallbacks");
    m_quarantined_ = metrics_->Counter(metric_prefix + "fault.windows_quarantined");
  }
}

std::uint64_t ResilientSorter::Fingerprint(std::span<const float> data) {
  std::uint64_t sum = 0;
  for (const float v : data) {
    const float normalized = v == 0.0f ? 0.0f : v;  // -0.0 -> 0.0
    std::uint32_t bits;
    std::memcpy(&bits, &normalized, sizeof(bits));
    sum += Mix(bits);  // wrapping sum: order-independent
  }
  return sum;
}

bool ResilientSorter::Verify(std::span<const float> data, std::uint64_t fingerprint) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (!(data[i - 1] <= data[i])) return false;  // also rejects NaN
  }
  return Fingerprint(data) == fingerprint;
}

void ResilientSorter::Backoff(int attempt) const {
  std::uint64_t us = options_.backoff_initial_us;
  for (int i = 1; i < attempt && us < options_.backoff_max_us; ++i) us *= 2;
  us = std::min<std::uint64_t>(us, options_.backoff_max_us);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void ResilientSorter::Sort(std::span<float> data) {
  std::span<float> runs[1] = {data};
  SortRuns(std::span<std::span<float>>(runs, 1));
}

void ResilientSorter::SortRuns(std::span<std::span<float>> runs) {
  STREAMGPU_CHECK_MSG(runs.size() <= 64, "ResilientSorter batches at most 64 runs");
  quarantine_mask_ = 0;
  const std::uint64_t batch = batch_index_++;
  const double span_start = trace_ != nullptr ? trace_->NowMicros() : 0;
  const Stats before = stats_;

  if (degraded_) {
    fallback_->SortRuns(runs);
    last_run_ = fallback_->last_run();
    return;
  }

  // Snapshot the pre-sort contents and fingerprints of every run, so a
  // failed sort can be restored and retried, and a quarantined run hands the
  // caller back its input rather than garbage.
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  snapshot_.resize(total);
  offsets_.assign(1, 0);
  fingerprints_.clear();
  failed_.assign(runs.size(), 1);  // everything pending on the first attempt
  for (const auto& run : runs) {
    std::copy(run.begin(), run.end(), snapshot_.begin() + offsets_.back());
    offsets_.push_back(offsets_.back() + run.size());
    fingerprints_.push_back(Fingerprint(run));
  }

  SortRunInfo accumulated;
  int attempt = 0;
  while (true) {
    pending_.clear();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (failed_[i]) pending_.push_back(runs[i]);
    }
    inner_->SortRuns(pending_);
    accumulated += inner_->last_run();

    const bool lost = device_ != nullptr && device_->lost();
    if (lost) {
      // Transient device loss: the batch's data ops were dropped, leaving
      // the pending runs in an undefined mix of old/new values. Restore and
      // decide: retry, degrade, or quarantine.
      ++consecutive_losses_;
      if (flight_ != nullptr) {
        flight_->Record(obs::FlightEventKind::kDeviceLost, "sort", inner_->name(),
                        batch, consecutive_losses_);
      }
      device_->Recover();
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (!failed_[i]) continue;
        std::copy(snapshot_.begin() + offsets_[i], snapshot_.begin() + offsets_[i + 1],
                  runs[i].begin());
      }
      if (consecutive_losses_ >= options_.max_device_losses && options_.cpu_fallback &&
          fallback_ != nullptr) {
        degraded_ = true;  // the device is gone for good; this worker is CPU-only now
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventKind::kDegraded, "sort", inner_->name(),
                          batch, consecutive_losses_);
          flight_->Dump("degraded");
        }
        fallback_->SortRuns(pending_);
        accumulated += fallback_->last_run();
        ++stats_.cpu_fallbacks;
        if (metrics_ != nullptr) metrics_->Add(m_fallbacks_);
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventKind::kCpuFallback, "sort",
                          fallback_->name(), batch,
                          static_cast<std::int64_t>(pending_.size()));
        }
        break;
      }
    } else {
      consecutive_losses_ = 0;
      bool any_failed = false;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (!failed_[i]) continue;
        if (Verify(runs[i], fingerprints_[i])) {
          failed_[i] = 0;
        } else {
          any_failed = true;
          std::copy(snapshot_.begin() + offsets_[i], snapshot_.begin() + offsets_[i + 1],
                    runs[i].begin());
        }
      }
      if (!any_failed) break;
    }

    if (attempt >= options_.max_retries) {
      // Retries exhausted. Heal on the CPU if allowed, else quarantine.
      pending_.clear();
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (failed_[i]) pending_.push_back(runs[i]);
      }
      if (options_.cpu_fallback && fallback_ != nullptr) {
        fallback_->SortRuns(pending_);
        accumulated += fallback_->last_run();
        ++stats_.cpu_fallbacks;
        if (metrics_ != nullptr) metrics_->Add(m_fallbacks_);
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventKind::kCpuFallback, "sort",
                          fallback_->name(), batch,
                          static_cast<std::int64_t>(pending_.size()));
        }
      } else {
        for (std::size_t i = 0; i < runs.size(); ++i) {
          if (!failed_[i]) continue;
          quarantine_mask_ |= std::uint64_t{1} << i;
          ++stats_.windows_quarantined;
          stats_.elements_dropped += runs[i].size();
          if (metrics_ != nullptr) metrics_->Add(m_quarantined_);
          if (flight_ != nullptr) {
            flight_->Record(obs::FlightEventKind::kWindowQuarantined, "sort",
                            inner_->name(), batch, static_cast<std::int64_t>(i),
                            static_cast<std::int64_t>(runs[i].size()));
          }
        }
        // The decision that motivated the recorder: a quarantined window
        // means data was dropped, so publish the evidence trail now.
        if (flight_ != nullptr && quarantine_mask_ != 0) flight_->Dump("quarantine");
      }
      break;
    }
    ++attempt;
    ++stats_.sort_retries;
    if (metrics_ != nullptr) metrics_->Add(m_retries_);
    if (flight_ != nullptr) {
      std::int64_t still_pending = 0;
      for (const char f : failed_) still_pending += f != 0;
      flight_->Record(obs::FlightEventKind::kSortRetry, "sort", inner_->name(),
                      batch, attempt, still_pending);
    }
    Backoff(attempt);
  }

  // Retries/fallbacks inflate the accumulated cost record: deliberate. The
  // simulated timing of a faulty run reflects the extra work; only the
  // *reports* are bit-identical to the fault-free run (docs/ROBUSTNESS.md).
  last_run_ = accumulated;

  if (hook_ != nullptr) {
    const std::uint64_t fires = hook_->fires();
    const std::uint64_t delta = fires - last_hook_fires_;
    last_hook_fires_ = fires;
    stats_.faults_injected += delta;
    if (delta > 0 && metrics_ != nullptr) metrics_->Add(m_injected_, delta);
  }

  if (trace_ != nullptr && trace_->Sampled(batch)) {
    const std::uint64_t retries = stats_.sort_retries - before.sort_retries;
    const std::uint64_t fallbacks = stats_.cpu_fallbacks - before.cpu_fallbacks;
    const std::uint64_t quarantined = stats_.windows_quarantined - before.windows_quarantined;
    if (retries + fallbacks + quarantined > 0) {
      trace_->AddSpan("sort_recovery", "fault", span_start,
                      trace_->NowMicros() - span_start,
                      {{"retries", static_cast<double>(retries)},
                       {"cpu_fallbacks", static_cast<double>(fallbacks)},
                       {"quarantined", static_cast<double>(quarantined)}});
    }
  }
}

}  // namespace streamgpu::sort
