// ResilientSorter: a self-verifying, self-healing wrapper around any sort
// backend.
//
// The paper's design trusts every GPU window sort; a single corrupted or
// dropped window would silently poison the downstream summaries. This
// wrapper closes that gap with a cheap O(n) post-sort guard and a bounded
// recovery policy:
//
//   snapshot inputs -> inner sort -> verify (sortedness + order-independent
//   multiset fingerprint) -> on failure: restore + retry with exponential
//   backoff -> on exhaustion: CPU-fallback sort, or quarantine the window.
//
// Repeated device loss permanently degrades the wrapper to the CPU fallback
// (the worker's device is considered gone). Quarantined runs are restored to
// their pre-sort contents and flagged in last_quarantine_mask(); the caller
// (the estimators) skips them and widens its reported error bound instead of
// ingesting garbage. See docs/ROBUSTNESS.md.

#ifndef STREAMGPU_SORT_RESILIENT_H_
#define STREAMGPU_SORT_RESILIENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/device.h"
#include "gpu/fault_hook.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

/// Recovery policy knobs (mirrors core::FaultTolerance; duplicated here so
/// sort/ does not depend on core/).
struct ResilienceOptions {
  int max_retries = 3;        ///< re-sorts of a failed batch before giving up
  int max_device_losses = 2;  ///< consecutive losses at which the worker degrades to CPU
  bool cpu_fallback = true;   ///< fall back to `fallback` instead of quarantining
  unsigned backoff_initial_us = 100;
  unsigned backoff_max_us = 10000;
};

/// Verifies and heals an inner sorter. Batches are limited to 64 runs (the
/// quarantine mask width); every caller batches at most 4 (the RGBA packing).
class ResilientSorter final : public Sorter {
 public:
  /// Recovery/accounting totals since construction.
  struct Stats {
    std::uint64_t faults_injected = 0;  ///< via `hook` (0 when hook is null)
    std::uint64_t sort_retries = 0;
    std::uint64_t cpu_fallbacks = 0;  ///< batches sorted by the fallback
    std::uint64_t windows_quarantined = 0;
    std::uint64_t elements_dropped = 0;
  };

  /// All pointers are borrowed and must outlive the wrapper. `fallback` may
  /// be null (quarantine-only recovery); `device` may be null (CPU inner
  /// backend: no loss detection); `hook` may be null (no injected-fault
  /// accounting). `metric_prefix` namespaces the obs counters (e.g. "freq.").
  ResilientSorter(Sorter* inner, Sorter* fallback, gpu::GpuDevice* device,
                  gpu::DeviceFaultHook* hook, const obs::Observability& obs,
                  const std::string& metric_prefix, const ResilienceOptions& options);

  void Sort(std::span<float> data) override;
  void SortRuns(std::span<std::span<float>> runs) override;

  const SortRunInfo& last_run() const override { return last_run_; }
  std::uint64_t last_quarantine_mask() const override { return quarantine_mask_; }
  const char* name() const override { return inner_->name(); }

  const Stats& stats() const { return stats_; }

  /// True once repeated device loss has permanently degraded this wrapper to
  /// the CPU fallback.
  bool degraded() const { return degraded_; }

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  /// Order-independent multiset fingerprint of `data` (sum of per-element
  /// hashes of the float bit patterns, -0.0 normalized to 0.0 so the GPU
  /// min/max paths' signed-zero behavior never false-positives).
  static std::uint64_t Fingerprint(std::span<const float> data);

  /// True when `data` is ascending with no NaNs and hashes to `fingerprint`.
  static bool Verify(std::span<const float> data, std::uint64_t fingerprint);

  void Backoff(int attempt) const;

  Sorter* const inner_;
  Sorter* const fallback_;
  gpu::GpuDevice* const device_;
  gpu::DeviceFaultHook* const hook_;
  obs::TraceRecorder* const trace_;
  obs::MetricsRegistry* const metrics_;
  obs::FlightRecorder* const flight_;
  const ResilienceOptions options_;

  obs::MetricId m_injected_ = obs::kInvalidMetric;
  obs::MetricId m_retries_ = obs::kInvalidMetric;
  obs::MetricId m_fallbacks_ = obs::kInvalidMetric;
  obs::MetricId m_quarantined_ = obs::kInvalidMetric;

  SortRunInfo last_run_;
  std::uint64_t quarantine_mask_ = 0;
  Stats stats_;
  std::uint64_t last_hook_fires_ = 0;
  int consecutive_losses_ = 0;
  bool degraded_ = false;
  std::uint64_t batch_index_ = 0;

  // Reused across batches: pre-sort snapshot of all runs (contiguous),
  // per-run offsets into it, per-run fingerprints, per-run failure flags,
  // and the span list handed to the inner/fallback sorter.
  std::vector<float> snapshot_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint64_t> fingerprints_;
  std::vector<char> failed_;
  std::vector<std::span<float>> pending_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_RESILIENT_H_
