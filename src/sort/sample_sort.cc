#include "sort/sample_sort.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/timer.h"
#include "sort/radix_sort.h"

namespace streamgpu::sort {

int SampleSortSorter::NumBuckets(std::size_t n) {
  const std::size_t target_keys = kTargetBucketBytes / sizeof(std::uint32_t);
  int k = 2;
  while (k < 256 && n > target_keys * static_cast<std::size_t>(k)) k <<= 1;
  return k;
}

void SampleSortSorter::Sort(std::span<float> data) {
  Timer timer;
  const std::size_t n = data.size();
  last_run_ = SortRunInfo{};
  if (n < 2) {
    last_run_.wall_seconds = timer.ElapsedSeconds();
    return;
  }

  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    keys_[i] = FloatToOrderedKey(bits);
  }

  std::uint64_t classify_comparisons = 0;
  int buckets_used = 1;
  if (n < kMinPartitionKeys) {
    RadixSortKeys(std::span<std::uint32_t>(keys_), &radix_scratch_);
  } else {
    const int k = NumBuckets(n);
    buckets_used = k;
    const auto ku = static_cast<std::size_t>(k);

    // Splitter selection by regular sampling: fixed strides, no RNG.
    const std::size_t samples = ku * kOversample;
    const std::size_t stride = n / samples;  // >= 1 since n >= 64K, samples <= 2048
    sample_.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) sample_[s] = keys_[s * stride];
    std::sort(sample_.begin(), sample_.end());
    // splitter[j] = sample[(j+1)*oversample - 1], j in [0, k-1); bucket j
    // receives keys <= splitter[j] not claimed by a lower bucket.
    std::vector<std::uint32_t> splitters(ku - 1);
    for (std::size_t j = 0; j + 1 < ku; ++j) {
      splitters[j] = sample_[(j + 1) * kOversample - 1];
    }

    // Classify: branchless-ish binary search, log2(k) comparisons per key.
    bucket_ids_.resize(n);
    const std::size_t depth =
        static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(k))));
    std::vector<std::size_t> counts(ku, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t key = keys_[i];
      const auto it = std::upper_bound(splitters.begin(), splitters.end(), key);
      const auto b = static_cast<std::uint16_t>(it - splitters.begin());
      bucket_ids_[i] = b;
      ++counts[b];
    }
    classify_comparisons = static_cast<std::uint64_t>(n) * depth;

    // Stable counting scatter by bucket id.
    std::vector<std::size_t> offsets(ku);
    std::size_t sum = 0;
    for (std::size_t b = 0; b < ku; ++b) {
      offsets[b] = sum;
      sum += counts[b];
    }
    scattered_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scattered_[offsets[bucket_ids_[i]]++] = keys_[i];
    }

    // Independent bucket sorts; buckets are value-disjoint, so the sorted
    // buckets concatenate into the sorted whole — no merge needed.
    std::size_t begin = 0;
    for (std::size_t b = 0; b < ku; ++b) {
      auto bucket =
          std::span<std::uint32_t>(scattered_).subspan(begin, counts[b]);
      RadixSortKeys(bucket, &radix_scratch_);
      begin += counts[b];
    }
    keys_.swap(scattered_);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = OrderedKeyToFloat(keys_[i]);
    std::memcpy(&data[i], &bits, sizeof(bits));
  }

  last_run_.wall_seconds = timer.ElapsedSeconds();
  last_run_.comparisons = classify_comparisons;
  last_run_.simulated_seconds =
      buckets_used > 1
          ? model_.SampleSortSeconds(n, buckets_used, sizeof(float))
          : model_.RadixSortSeconds(n, sizeof(float));
}

}  // namespace streamgpu::sort
