// Deterministic sample sort — the second-generation large-window backend.
//
// Follows the regular-sampling design of "Deterministic Sample Sort for GPUs"
// (Dehne & Zaboli; see PAPERS.md): splitters come from a fixed-stride sample
// of the input, never from an RNG, so the bucket boundaries — and therefore
// every intermediate and final array — are a pure function of the input.
// Pass structure per window:
//
//   1. key transform        — floats to order-preserving uint32 keys
//   2. splitter selection   — sample k·oversample keys at fixed strides,
//                             sort the sample, take every oversample-th key
//   3. classify             — binary-search each key against the splitters
//   4. bucket scatter       — counting pass + stable scatter by bucket id
//   5. bucket sorts         — independent LSD radix sort per bucket, each
//                             sized to stay cache-resident
//   6. concatenate + untransform
//
// Because the splitters range-partition the key space, the sorted buckets
// concatenate directly — the loser-tree merge (sort/merge.h) is not needed
// here; it serves the radix/merge backend, whose chunks are position- rather
// than value-partitioned. The fixed-function 2005 GPU the simulator models
// cannot express a scatter (fragments cannot choose their destination), so
// this backend executes on the host and charges the Pentium IV model's
// sample-sort formula to the simulated clock; docs/SORT_BACKENDS.md has the
// full argument.
//
// Determinism contract: identical to RadixMergeSorter — output is the
// canonical ascending bit-pattern order of the input multiset (-0.0 before
// +0.0, NaNs last), byte-identical on every host. Splitter selection uses
// fixed strides, classification uses exact key comparisons, the scatter is
// stable, and the bucket sorts are radix; no step consults an RNG, the
// clock, or addresses.
//
// Thread safety: an instance is NOT thread-safe (reused scratch); distinct
// instances are independent, one per pipeline worker.

#ifndef STREAMGPU_SORT_SAMPLE_SORT_H_
#define STREAMGPU_SORT_SAMPLE_SORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hwmodel/cpu_model.h"
#include "sort/sorter.h"

namespace streamgpu::sort {

class SampleSortSorter final : public Sorter {
 public:
  /// Below this size bucketing cannot pay for the classification pass; the
  /// whole window goes straight to one radix sort.
  static constexpr std::size_t kMinPartitionKeys = std::size_t{1} << 16;

  /// Oversampling factor for splitter selection: k buckets draw k·8 regular
  /// samples. Guarantees no bucket exceeds ~2n/k for any input that has at
  /// least that many distinct keys (the classic regular-sampling bound);
  /// heavy duplicates degrade gracefully to larger radix buckets.
  static constexpr std::size_t kOversample = 8;

  /// Target bucket footprint: half of the Pentium IV's 1 MB L2, so a bucket
  /// and its radix scratch stay resident together.
  static constexpr std::size_t kTargetBucketBytes = std::size_t{512} << 10;

  explicit SampleSortSorter(const hwmodel::CpuHardwareProfile& profile)
      : model_(profile) {}

  void Sort(std::span<float> data) override;
  const SortRunInfo& last_run() const override { return last_run_; }
  const char* name() const override { return "sample-sort"; }

  /// Bucket count the sorter would use for a window of `n` keys: the
  /// smallest power of two giving buckets under kTargetBucketBytes, clamped
  /// to [2, 256]. Exposed for the planner/cost-model tests.
  static int NumBuckets(std::size_t n);

 protected:
  void set_last_run(const SortRunInfo& info) override { last_run_ = info; }

 private:
  hwmodel::CpuModel model_;
  SortRunInfo last_run_;

  // Reusable scratch: key plane, scatter destination, per-key bucket ids,
  // radix scratch, and the sorted splitter sample.
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> scattered_;
  std::vector<std::uint16_t> bucket_ids_;
  std::vector<std::uint32_t> radix_scratch_;
  std::vector<std::uint32_t> sample_;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_SAMPLE_SORT_H_
