// Common interface for the sorting backends the paper benchmarks against one
// another — the novel GPU PBSN sort (§4.4), the prior GPU bitonic sort
// baseline ([40], §4.5), CPU quicksort — plus the second-generation host
// backends (radix/merge, sample sort) and the cost-model dispatcher
// (docs/SORT_BACKENDS.md is the catalog).
//
// Determinism contract (every implementation): Sort() produces the
// ascending permutation of the input's float values, identically on every
// machine and every run — no RNG, no wall-clock-dependent decisions. Where
// float comparison is partial (-0.0 vs +0.0), backends may differ only in
// the byte image, and the distribution backends (RadixMergeSorter,
// SampleSortSorter) commit to one canonical bit-pattern order; all work
// counters in SortRunInfo are deterministic functions of the input.
//
// Thread-safety contract (every implementation): NOT thread-safe. A Sorter
// owns reusable scratch state; callers give each thread its own instance —
// the pipeline builds one SortEngine (and thus one Sorter chain) per worker
// (docs/ARCHITECTURE.md, "Ownership"). Distinct instances never share
// mutable state and may run concurrently.

#ifndef STREAMGPU_SORT_SORTER_H_
#define STREAMGPU_SORT_SORTER_H_

#include <cstdint>
#include <span>

namespace streamgpu::sort {

/// Timing/work record for the most recent Sort() call.
struct SortRunInfo {
  /// Host wall-clock of the whole call (simulator execution time; not
  /// comparable across backends — the GPU backends run on a software
  /// rasterizer).
  double wall_seconds = 0;

  /// Simulated 2005-hardware time, end to end. For GPU backends this
  /// includes bus transfers (as the paper's figures do); for CPU backends it
  /// is the P4 model estimate.
  double simulated_seconds = 0;

  /// Simulated on-device sorting time (GPU backends; Fig. 4's compute
  /// portion). Zero for CPU backends.
  double sim_device_seconds = 0;

  /// Simulated CPU<->GPU transfer time (GPU backends; Fig. 4's transfer
  /// portion). Zero for CPU backends.
  double sim_transfer_seconds = 0;

  /// Simulated time of the CPU-side merge of the four sorted channel runs
  /// (GPU PBSN backend only, §4.4).
  double sim_merge_seconds = 0;

  /// Scalar comparisons performed (GPU: 4 x blended fragments, §4.5; CPU:
  /// instrumented count).
  std::uint64_t comparisons = 0;

  SortRunInfo& operator+=(const SortRunInfo& o) {
    wall_seconds += o.wall_seconds;
    simulated_seconds += o.simulated_seconds;
    sim_device_seconds += o.sim_device_seconds;
    sim_transfer_seconds += o.sim_transfer_seconds;
    sim_merge_seconds += o.sim_merge_seconds;
    comparisons += o.comparisons;
    return *this;
  }
};

/// Abstract in-place float sorter.
class Sorter {
 public:
  virtual ~Sorter() = default;

  /// Sorts `data` ascending in place. Deterministic: the same input bytes
  /// produce the same output bytes and the same last_run() work counters on
  /// every machine (see the header comment for the exact contract).
  virtual void Sort(std::span<float> data) = 0;

  /// Sorts several independent runs, each ascending in place. The default
  /// sorts them one by one; the GPU PBSN backend overrides this to pack four
  /// runs at a time into the RGBA channels of one texture, the way the paper
  /// buffers four stream windows (§4.1). last_run() afterwards holds the
  /// accumulated record of the whole batch.
  virtual void SortRuns(std::span<std::span<float>> runs) {
    SortRunInfo total;
    for (auto& run : runs) {
      Sort(run);
      total += last_run();
    }
    set_last_run(total);
  }

  /// Timing/work record of the most recent Sort()/SortRuns() call.
  virtual const SortRunInfo& last_run() const = 0;

  /// Bitmask over the most recent SortRuns() batch: bit i set means run i
  /// could not be sorted correctly and was quarantined (its data restored to
  /// the pre-sort input, to be skipped and accounted by the caller). Always 0
  /// except for sort::ResilientSorter with recovery exhausted.
  virtual std::uint64_t last_quarantine_mask() const { return 0; }

  /// Backend name for reports.
  virtual const char* name() const = 0;

 protected:
  /// Replaces the last-run record (used by the batched default path).
  virtual void set_last_run(const SortRunInfo& info) = 0;
};

}  // namespace streamgpu::sort

#endif  // STREAMGPU_SORT_SORTER_H_
