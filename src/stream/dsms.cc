#include "stream/dsms.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace streamgpu::stream {

DsmsSimulator::DsmsSimulator(const Config& config) : config_(config) {
  STREAMGPU_CHECK(config.arrival_rate_hz > 0);
  STREAMGPU_CHECK(config.service_chunk >= 1);
  STREAMGPU_CHECK(config.burst_size >= 1);
}

DsmsSimulator::Result DsmsSimulator::Run(StreamGenerator* source,
                                         std::uint64_t total_elements,
                                         const Processor& processor) const {
  STREAMGPU_CHECK(source != nullptr);
  Result result;
  std::vector<float> queue;
  queue.reserve(config_.queue_capacity);
  std::vector<float> chunk;
  chunk.reserve(config_.service_chunk);

  // Pulls `n` new arrivals into the queue, shedding past capacity (drop-
  // newest: the elements that arrive while the queue is full are lost).
  const auto admit = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n && result.arrived < total_elements; ++i) {
      const float value = source->Next();
      ++result.arrived;
      if (queue.size() < config_.queue_capacity) {
        queue.push_back(value);
      } else {
        ++result.shed;
      }
    }
  };

  double arrival_credit = 0;       // fractional arrivals carried between steps
  std::uint64_t burst_pending = 0;  // whole arrivals waiting for a full burst

  // Arrivals are delivered only in whole bursts; the remainder waits for the
  // next step's credit (with burst_size == 1 every whole arrival is
  // delivered immediately, matching smooth arrivals exactly).
  const auto deliver = [&](std::uint64_t whole) {
    burst_pending += whole;
    const std::uint64_t bursts = burst_pending / config_.burst_size;
    if (bursts > 0) {
      const std::uint64_t n = bursts * config_.burst_size;
      burst_pending -= n;
      admit(n);
    }
  };

  while (result.arrived < total_elements || !queue.empty()) {
    if (queue.empty()) {
      // Idle: wait for one service chunk's worth of arrivals.
      const double wait =
          static_cast<double>(config_.service_chunk) / config_.arrival_rate_hz;
      result.virtual_seconds += wait;
      deliver(config_.service_chunk);
      continue;
    }

    // Serve from the queue head.
    const std::size_t take = std::min(config_.service_chunk, queue.size());
    chunk.assign(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(take));
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(take));
    const double service = processor(chunk);
    STREAMGPU_CHECK_MSG(service >= 0, "processor returned negative service time");
    result.processed += take;
    result.busy_seconds += service;
    result.virtual_seconds += service;

    // Arrivals that landed during the service interval.
    arrival_credit += service * config_.arrival_rate_hz;
    const auto whole = static_cast<std::uint64_t>(arrival_credit);
    arrival_credit -= static_cast<double>(whole);
    deliver(whole);
  }
  return result;
}

AdmissionController::AdmissionController(AdmissionPolicy policy,
                                         std::size_t num_shards,
                                         std::size_t capacity)
    : policy_(policy),
      capacity_(capacity),
      backlog_(num_shards, 0),
      shed_(num_shards, 0) {
  STREAMGPU_CHECK(num_shards >= 1);
}

std::size_t AdmissionController::Admit(std::size_t shard, std::size_t incoming) {
  STREAMGPU_CHECK(shard < backlog_.size());
  std::size_t admitted = incoming;
  if (policy_ == AdmissionPolicy::kShed) {
    const std::size_t headroom =
        backlog_[shard] < capacity_ ? capacity_ - backlog_[shard] : 0;
    admitted = std::min(incoming, headroom);
    const std::size_t dropped = incoming - admitted;
    shed_[shard] += dropped;
    total_shed_ += dropped;
  }
  backlog_[shard] += admitted;
  return admitted;
}

void AdmissionController::OnDispatched(std::size_t shard, std::size_t n) {
  STREAMGPU_CHECK(shard < backlog_.size());
  STREAMGPU_CHECK_MSG(n <= backlog_[shard],
                      "dispatched more than the shard's admitted backlog");
  backlog_[shard] -= n;
}

}  // namespace streamgpu::stream
