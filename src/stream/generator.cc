#include "stream/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace streamgpu::stream {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kUniformReal:
      return "uniform-real";
    case Distribution::kZipf:
      return "zipf";
    case Distribution::kSorted:
      return "sorted";
    case Distribution::kReverseSorted:
      return "reverse-sorted";
    case Distribution::kNearlySorted:
      return "nearly-sorted";
    case Distribution::kNetworkFlows:
      return "network-flows";
    case Distribution::kFinanceTicks:
      return "finance-ticks";
  }
  return "?";
}

StreamGenerator::StreamGenerator(const Config& config)
    : config_(config), rng_(config.seed), price_(config.start_price) {
  STREAMGPU_CHECK(config.domain_size >= 1);
  if (config_.distribution == Distribution::kZipf ||
      config_.distribution == Distribution::kNetworkFlows) {
    // Zipf CDF over ranks 1..domain_size with exponent s.
    zipf_cdf_.resize(config_.domain_size);
    double total = 0;
    for (std::uint32_t r = 0; r < config_.domain_size; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r) + 1.0, config_.zipf_s);
      zipf_cdf_[r] = total;
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

float StreamGenerator::NextZipfValue() {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double u = uni(rng_);
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<float>(it - zipf_cdf_.begin());
}

float StreamGenerator::Next() {
  ++position_;
  switch (config_.distribution) {
    case Distribution::kUniform: {
      std::uniform_int_distribution<std::uint32_t> dist(0, config_.domain_size - 1);
      return static_cast<float>(dist(rng_));
    }
    case Distribution::kUniformReal: {
      std::uniform_real_distribution<float> dist(0.0f, 1000.0f);
      return dist(rng_);
    }
    case Distribution::kZipf:
      return NextZipfValue();
    case Distribution::kSorted:
      return static_cast<float>(position_ % (1u << 22));
    case Distribution::kReverseSorted:
      return static_cast<float>((1u << 22) - position_ % (1u << 22));
    case Distribution::kNearlySorted: {
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      const auto base = static_cast<float>(position_ % (1u << 22));
      if (uni(rng_) < config_.disorder) {
        std::uniform_int_distribution<int> jump(-1000, 1000);
        return base + static_cast<float>(jump(rng_));
      }
      return base;
    }
    case Distribution::kNetworkFlows: {
      if (burst_remaining_ == 0) {
        current_flow_ = NextZipfValue();
        std::geometric_distribution<std::uint64_t> burst(1.0 / config_.mean_burst);
        burst_remaining_ = burst(rng_) + 1;
      }
      --burst_remaining_;
      return current_flow_;
    }
    case Distribution::kFinanceTicks: {
      std::normal_distribution<double> step(0.0, config_.volatility);
      price_ = std::max(1.0, price_ + step(rng_));
      // Quantize to a 1/16 tick so prices are exactly representable in
      // binary16 over the typical price range.
      return static_cast<float>(std::round(price_ * 16.0) / 16.0);
    }
  }
  return 0.0f;
}

}  // namespace streamgpu::stream
