// Synthetic data-stream sources.
//
// The paper evaluates on "random databases" of up to 100 million values
// (§4.5, §5) drawn from the application domains of §1: high-speed
// networking, finance logs, sensor networks and web tracking. These
// generators are deterministic (seeded) stand-ins: uniform and Zipfian value
// distributions for frequency workloads, ordered/disordered numeric streams
// for sort stress, and bursty network-flow / random-walk finance-tick
// streams for the example applications.

#ifndef STREAMGPU_STREAM_GENERATOR_H_
#define STREAMGPU_STREAM_GENERATOR_H_

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace streamgpu::stream {

/// Stream value distribution families.
enum class Distribution {
  kUniform,       ///< uniform over an integer domain (duplicates expected)
  kUniformReal,   ///< uniform real values (effectively all distinct)
  kZipf,          ///< Zipf(s) over an integer domain — heavy hitters exist
  kSorted,        ///< ascending ramp (adversarial best case for some sorts)
  kReverseSorted, ///< descending ramp
  kNearlySorted,  ///< ascending ramp with sparse random perturbations
  kNetworkFlows,  ///< bursty flow ids: Zipf-popular flows in geometric bursts
  kFinanceTicks,  ///< tick-quantized random-walk prices
};

/// Human-readable distribution name.
const char* DistributionName(Distribution d);

/// Deterministic, unbounded synthetic stream source.
class StreamGenerator {
 public:
  struct Config {
    Distribution distribution = Distribution::kUniform;
    std::uint64_t seed = 1;

    /// Number of distinct values for the integer-domain distributions.
    /// Values stay <= 2048 by default so they are exactly representable in
    /// the 16-bit float pipeline (§5 streams 16-bit floating point data).
    std::uint32_t domain_size = 2000;

    /// Zipf skew parameter (kZipf, kNetworkFlows).
    double zipf_s = 1.1;

    /// Fraction of perturbed positions (kNearlySorted).
    double disorder = 0.01;

    /// Mean burst length (kNetworkFlows).
    double mean_burst = 8.0;

    /// Starting price and per-tick volatility (kFinanceTicks).
    double start_price = 100.0;
    double volatility = 0.05;
  };

  explicit StreamGenerator(const Config& config);

  /// Next stream element.
  float Next();

  /// Fills `out` with the next out.size() elements.
  void Fill(std::span<float> out) {
    for (float& v : out) v = Next();
  }

  /// Convenience: materializes the next `n` elements.
  std::vector<float> Take(std::size_t n) {
    std::vector<float> out(n);
    Fill(out);
    return out;
  }

  const Config& config() const { return config_; }

 private:
  float NextZipfValue();

  Config config_;
  std::mt19937_64 rng_;
  std::vector<double> zipf_cdf_;  ///< lazily built for the Zipfian families
  std::uint64_t position_ = 0;

  // kNetworkFlows burst state.
  float current_flow_ = 0;
  std::uint64_t burst_remaining_ = 0;

  // kFinanceTicks walk state.
  double price_ = 0;
};

}  // namespace streamgpu::stream

#endif  // STREAMGPU_STREAM_GENERATOR_H_
