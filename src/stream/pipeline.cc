#include "stream/pipeline.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/timer.h"

namespace streamgpu::stream {

namespace {

// Monotonic seconds for queue-wait arithmetic.
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Splits a batch into window-sized runs, mirroring WindowBatcher::Windows()
// (the final run may be partial). Fills caller-owned scratch so the hot loop
// reuses its capacity instead of allocating per batch.
void SplitWindows(std::vector<float>& data, std::uint64_t window_size,
                  std::vector<std::span<float>>* out) {
  out->clear();
  for (std::size_t off = 0; off < data.size(); off += window_size) {
    const std::size_t len = std::min<std::size_t>(window_size, data.size() - off);
    out->emplace_back(data.data() + off, len);
  }
}

}  // namespace

SortPipeline::SortPipeline(const PipelineConfig& config,
                           std::vector<sort::Sorter*> sorters, DrainFn drain)
    : window_size_(config.window_size),
      sorters_(std::move(sorters)),
      drain_(std::move(drain)),
      trace_(config.trace),
      trace_label_(config.trace_label),
      flight_(config.flight),
      drain_deadline_seconds_(config.drain_deadline_seconds),
      queue_stall_hook_(config.queue_stall_hook) {
  STREAMGPU_CHECK_MSG(window_size_ >= 1, "pipeline window_size must be >= 1");
  STREAMGPU_CHECK_MSG(!sorters_.empty(), "pipeline needs at least one sorter");
  for (sort::Sorter* sorter : sorters_) STREAMGPU_CHECK(sorter != nullptr);
  STREAMGPU_CHECK_MSG(static_cast<bool>(drain_), "pipeline needs a drain callback");
  max_in_flight_ = config.max_batches_in_flight > 0
                       ? config.max_batches_in_flight
                       : static_cast<int>(sorters_.size()) + 2;

  pending_ring_.resize(static_cast<std::size_t>(max_in_flight_));
  sorted_ring_.resize(static_cast<std::size_t>(max_in_flight_));
  free_buffers_.reserve(static_cast<std::size_t>(max_in_flight_) + 1);
  window_scratch_.resize(sorters_.size());

  workers_.reserve(sorters_.size());
  for (std::size_t i = 0; i < sorters_.size(); ++i) {
    workers_.emplace_back(&SortPipeline::WorkerLoop, this, static_cast<int>(i));
  }
  drain_thread_ = std::thread(&SortPipeline::DrainLoop, this);
}

SortPipeline::~SortPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  // Workers finish the pending queue, the drain thread finishes the reorder
  // buffer: destruction flushes rather than drops in-flight batches.
  work_ready_.notify_all();
  sorted_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  sorted_ready_.notify_all();  // workers are gone; wake the drain for its exit check
  drain_thread_.join();
}

core::Status SortPipeline::Submit(std::vector<float>&& batch) {
  if (batch.empty()) return core::Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  STREAMGPU_CHECK_MSG(!stop_, "Submit() after destruction began");
  const double wait_start = Now();
  const double trace_start = trace_ != nullptr ? trace_->NowMicros() : 0;
  // A dead drain thread never frees a slot: wake on failure too, so the
  // in-flight cap surfaces the worker's Status instead of blocking forever.
  const auto admissible = [&] { return !failed_.ok() || in_flight_ < max_in_flight_; };
  if (drain_deadline_seconds_ > 0) {
    if (!slot_free_.wait_for(lock, std::chrono::duration<double>(drain_deadline_seconds_),
                             admissible)) {
      return core::Status::DeadlineExceeded(
          "pipeline made no progress within the drain deadline");
    }
  } else {
    slot_free_.wait(lock, admissible);
  }
  if (!failed_.ok()) return failed_;
  stats_.ingest_stall_seconds += Now() - wait_start;
  if (trace_ != nullptr) {
    // Backpressure made visible: only worth a span when Submit() actually
    // blocked (sub-microsecond waits are lock handoff noise).
    const double stall_us = trace_->NowMicros() - trace_start;
    if (stall_us > 1.0) {
      trace_->AddSpan("ingest_stall", "ingest", trace_start, stall_us,
                      {{"seq", static_cast<double>(next_submit_seq_)}});
    }
  }
  ++in_flight_;
  PendingBatch& slot =
      pending_ring_[(pending_head_ + pending_count_) % pending_ring_.size()];
  ++pending_count_;
  slot.seq = next_submit_seq_++;
  slot.data = std::move(batch);
  slot.enqueued_at = Now();
  if (flight_ != nullptr) {
    // The recorder takes its own leaf mutex; holding mu_ across it is safe
    // (the recorder never calls back into the pipeline).
    flight_->Record(obs::FlightEventKind::kBatchSubmitted, "pipeline", "submit",
                    slot.seq, in_flight_);
  }
  work_ready_.notify_one();
  return core::Status::Ok();
}

std::vector<float> SortPipeline::AcquireBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_buffers_.empty()) return {};
  std::vector<float> out = std::move(free_buffers_.back());
  free_buffers_.pop_back();
  return out;
}

core::Status SortPipeline::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto settled = [&] {
    return !failed_.ok() || next_drain_seq_ == next_submit_seq_;
  };
  if (drain_deadline_seconds_ > 0) {
    if (!idle_.wait_for(lock, std::chrono::duration<double>(drain_deadline_seconds_),
                        settled)) {
      return core::Status::DeadlineExceeded(
          "pipeline made no progress within the drain deadline");
    }
  } else {
    idle_.wait(lock, settled);
  }
  return failed_;
}

PipelineWaitStats SortPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SortPipeline::WorkerLoop(int worker_index) {
  if (trace_ != nullptr) {
    trace_->NameCurrentThread(trace_label_ + ".sort-" + std::to_string(worker_index));
  }
  sort::Sorter* sorter = sorters_[static_cast<std::size_t>(worker_index)];
  std::vector<std::span<float>>& windows =
      window_scratch_[static_cast<std::size_t>(worker_index)];
  PendingBatch batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stop_ || pending_count_ != 0; });
      if (pending_count_ == 0) return;  // stop_ set and queue drained
      batch = std::move(pending_ring_[pending_head_]);
      pending_head_ = (pending_head_ + 1) % pending_ring_.size();
      --pending_count_;
      stats_.sort_queue_wait_seconds += Now() - batch.enqueued_at;
    }

    // The queue fault site: a stalled dequeue models a descheduled/wedged
    // worker without touching the device (docs/ROBUSTNESS.md).
    if (queue_stall_hook_) {
      const unsigned stall_us = queue_stall_hook_(worker_index);
      if (stall_us > 0) {
        if (flight_ != nullptr) {
          flight_->Record(obs::FlightEventKind::kQueueStall, "pipeline", "queue",
                          batch.seq, stall_us, worker_index);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      }
    }

    // Sort outside the lock: this is the stage that fans out across workers.
    Timer sort_timer;
    SplitWindows(batch.data, window_size_, &windows);
    sorter->SortRuns(windows);
    const sort::SortRunInfo run = sorter->last_run();
    const std::uint64_t quarantine_mask = sorter->last_quarantine_mask();
    const double sort_wall = sort_timer.ElapsedSeconds();

    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.sort_wall_seconds += sort_wall;
      SortedBatch& slot = sorted_ring_[batch.seq % sorted_ring_.size()];
      STREAMGPU_DCHECK(!slot.occupied);
      slot.data = std::move(batch.data);
      slot.run = run;
      slot.quarantine_mask = quarantine_mask;
      slot.ready_at = Now();
      slot.occupied = true;
    }
    sorted_ready_.notify_one();
  }
}

void SortPipeline::DrainLoop() {
  if (trace_ != nullptr) trace_->NameCurrentThread(trace_label_ + ".drain");
  SortedBatch batch;
  for (;;) {
    std::uint64_t seq;
    {
      std::unique_lock<std::mutex> lock(mu_);
      sorted_ready_.wait(lock, [&] {
        // Exit only once every submitted batch has been drained; workers
        // keep feeding the reorder buffer after stop_ is set.
        return sorted_ring_[next_drain_seq_ % sorted_ring_.size()].occupied ||
               (stop_ && next_drain_seq_ == next_submit_seq_);
      });
      SortedBatch& slot = sorted_ring_[next_drain_seq_ % sorted_ring_.size()];
      if (!slot.occupied) return;
      seq = next_drain_seq_;
      batch = std::move(slot);
      slot.occupied = false;
      stats_.drain_queue_wait_seconds += Now() - batch.ready_at;
    }

    // Merge into the summaries outside the lock, overlapping the workers'
    // sorting of later batches. Strict submission order keeps the summary
    // sequence — and thus every query answer and every accumulated cost
    // record — identical to serial execution.
    const std::size_t batch_elements = batch.data.size();
    const bool traced = trace_ != nullptr && trace_->Sampled(seq);
    const double trace_start = traced ? trace_->NowMicros() : 0;
    Timer drain_timer;
    core::Status drain_status = drain_(std::move(batch.data), batch.run, batch.quarantine_mask);
    const double drain_wall = drain_timer.ElapsedSeconds();
    if (!drain_status.ok()) {
      // The summary stage is broken; draining further batches into it would
      // compound the damage. Latch the Status and stop — Submit()/WaitIdle()
      // report it from here on.
      if (flight_ != nullptr) {
        flight_->Record(obs::FlightEventKind::kDrainFailed, "pipeline", "drain",
                        seq, static_cast<std::int64_t>(batch_elements));
        flight_->Dump("drain_failed");
      }
      std::lock_guard<std::mutex> lock(mu_);
      failed_ = std::move(drain_status);
      slot_free_.notify_all();
      idle_.notify_all();
      return;
    }
    if (traced) {
      trace_->AddSpan("drain_batch", "drain", trace_start,
                      trace_->NowMicros() - trace_start,
                      {{"seq", static_cast<double>(seq)},
                       {"elements", static_cast<double>(batch_elements)}});
    }

    if (flight_ != nullptr) {
      // Drain is strictly ordered, so seq + 1 == batches drained so far.
      flight_->Record(obs::FlightEventKind::kBatchDrained, "pipeline", "drain",
                      seq, static_cast<std::int64_t>(seq + 1));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.drain_wall_seconds += drain_wall;
      ++stats_.batches;
      ++next_drain_seq_;
      --in_flight_;
      // Recycle the batch storage (the drain callback reads it but leaves
      // the vector intact) for reissue through AcquireBuffer().
      if (free_buffers_.size() < free_buffers_.capacity()) {
        batch.data.clear();
        free_buffers_.push_back(std::move(batch.data));
      }
    }
    slot_free_.notify_one();
    idle_.notify_all();
  }
}

}  // namespace streamgpu::stream
