// Parallel multi-window ingest pipeline.
//
// The paper's speedup story is overlap (§4, §5.1): the GPU sorts four
// RGBA-packed windows while the CPU merges and compresses the summaries of
// earlier windows. The seed reproduction ran every stage serially on one host
// thread; SortPipeline restores the overlap on real multicore hardware while
// leaving the simulated-2005 accounting bit-identical to serial execution.
//
// Topology (see docs/ARCHITECTURE.md for the full dataflow):
//
//   caller thread          N sort workers              1 summary thread
//   Submit(batch) ──queue──> SortRuns(windows) ──reorder──> drain(batch)
//
// * The caller (ingest) thread hands over whole window-batches and blocks
//   only when `max_batches_in_flight` batches are already in the pipeline
//   (backpressure, accounted as ingest stall time).
// * Each sort worker owns its own Sorter — for the GPU backends that means
//   one simulated GpuDevice per worker, so GpuStats counting never races.
// * A single drain thread consumes sorted batches strictly in submission
//   order. Summaries therefore see exactly the window sequence serial
//   execution produces: identical merges, identical epsilon guarantees,
//   identical cost accumulation order (bit-identical simulated seconds).
//
// Steady-state operation is allocation-free: the submit queue and the
// reorder buffer are fixed rings sized by the in-flight cap, per-worker
// window-span scratch is reused across batches, and drained batch buffers
// are recycled to the ingest side through AcquireBuffer(). After the first
// few batches warm the rings up, the Submit -> sort -> drain loop performs
// zero heap allocations (tests/alloc_test.cc holds this with a counting
// operator new).
//
// Wall-clock queue-wait per stage is recorded so benchmarks can report how
// much overlap the pipeline actually achieved (PipelineWaitStats).

#ifndef STREAMGPU_STREAM_PIPELINE_H_
#define STREAMGPU_STREAM_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sort/sorter.h"

namespace streamgpu::stream {

/// Static configuration of a SortPipeline.
struct PipelineConfig {
  /// Elements per window; submitted batches are split into spans of this
  /// size (the final span of the final batch may be partial).
  std::uint64_t window_size = 0;

  /// Maximum window-batches admitted before Submit() blocks (backpressure).
  /// 0 = number of workers + 2: enough that every worker stays busy while
  /// one batch drains and one is being filled.
  int max_batches_in_flight = 0;

  /// Span sink (borrowed; null = tracing off, the default). When set, the
  /// pipeline names its threads "<trace_label>.sort-N" / "<trace_label>.drain"
  /// and emits one drain_batch span per drained batch plus an ingest_stall
  /// span whenever Submit() blocks on backpressure. Sort-stage spans come
  /// from the sorters themselves (core::TracingSorter), not from here.
  obs::TraceRecorder* trace = nullptr;

  /// Track-name prefix distinguishing coexisting pipelines in one trace
  /// (e.g. "freq" / "quant" for a StreamMiner).
  std::string trace_label = "pipeline";

  /// Flight-event sink (borrowed; null = off). The pipeline records batch
  /// submit/drain progress and queue stalls into the ring, and dumps it when
  /// the drain latches its sticky failure — the artifact that makes a dead
  /// pipeline diagnosable after the fact (docs/OBSERVABILITY.md).
  obs::FlightRecorder* flight = nullptr;

  /// Maximum seconds Submit()/WaitIdle() block on the in-flight cap before
  /// returning kDeadlineExceeded instead of waiting forever (0 = no
  /// deadline). A fault-tolerance knob: a wedged worker then surfaces as a
  /// Status, not a hang (docs/ROBUSTNESS.md).
  double drain_deadline_seconds = 0;

  /// Fault-injection hook polled by each worker before it sorts a dequeued
  /// batch; returns a stall in microseconds to sleep (0 = none). Null (the
  /// default) disables the queue fault site.
  std::function<unsigned(int worker_index)> queue_stall_hook;
};

/// Wall-clock overlap accounting, accumulated over the pipeline's lifetime.
/// All fields are host wall-clock; none of them feed the simulated-2005
/// model (see docs/COST_MODEL.md).
struct PipelineWaitStats {
  /// Time Submit() spent blocked on the in-flight cap (ingest backpressure:
  /// the stream arrived faster than the pipeline could sort + drain).
  double ingest_stall_seconds = 0;

  /// Time batches sat in the submit queue before a sort worker picked them
  /// up (all workers busy).
  double sort_queue_wait_seconds = 0;

  /// Time sorted batches sat in the reorder buffer before the drain thread
  /// consumed them (drain busy, or an earlier batch still sorting).
  double drain_queue_wait_seconds = 0;

  /// Total wall-clock the workers spent inside SortRuns (summed across
  /// workers; exceeds elapsed time when sorts overlap).
  double sort_wall_seconds = 0;

  /// Total wall-clock spent inside the drain callback.
  double drain_wall_seconds = 0;

  /// Batches drained.
  std::uint64_t batches = 0;
};

/// Worker-pool executor that keeps several window-batches in flight:
/// sorting fans out across workers, summary maintenance stays single-
/// threaded and in order.
///
/// Thread contract: Submit()/AcquireBuffer()/WaitIdle() must be called from
/// one thread (the ingest thread). The drain callback runs on the pipeline's
/// summary thread; WaitIdle() establishes a happens-before with every drain
/// completed so far, after which the ingest thread may safely read
/// drain-side state. The destructor finishes all submitted work before
/// joining.
class SortPipeline {
 public:
  /// Consumes one sorted batch (windows of `window_size`, concatenated; the
  /// last window may be partial) plus the sort-cost record of that batch.
  /// Called on the summary thread, strictly in submission order. The vector
  /// is on loan: read it (or move it out and lose the recycling), but do not
  /// hold the reference past the call — the pipeline reclaims the storage
  /// afterwards and reissues it through AcquireBuffer().
  ///
  /// `quarantine_mask` forwards the sorter's last_quarantine_mask(): bit i
  /// set means window i of the batch was unrecoverable and holds its
  /// *unsorted* input — skip it and account the coverage loss. A non-OK
  /// return poisons the pipeline: the drain thread stops, and every later
  /// Submit()/WaitIdle() returns that Status.
  using DrainFn = std::function<core::Status(
      std::vector<float>&& data, const sort::SortRunInfo& run, std::uint64_t quarantine_mask)>;

  /// One worker thread is spawned per sorter; `sorters` are borrowed and
  /// must outlive the pipeline. Each sorter must be exclusive to this
  /// pipeline (workers drive them concurrently, one worker per sorter).
  SortPipeline(const PipelineConfig& config, std::vector<sort::Sorter*> sorters,
               DrainFn drain);
  ~SortPipeline();

  SortPipeline(const SortPipeline&) = delete;
  SortPipeline& operator=(const SortPipeline&) = delete;

  /// Hands one window-batch to the pipeline. Blocks while
  /// `max_batches_in_flight` batches are already in flight. Empty batches
  /// are ignored. Returns non-OK — without enqueuing — once the drain
  /// callback has failed (its Status, sticky) or when the backpressure wait
  /// exceeds the configured drain deadline (kDeadlineExceeded).
  core::Status Submit(std::vector<float>&& batch);

  /// Returns a drained batch's storage for reuse (empty, capacity retained),
  /// or an empty vector when none has been recycled yet. Hand the result to
  /// WindowBatcher::TakeBuffer() as the replacement buffer and the ingest
  /// loop stops allocating once the pipeline reaches steady state.
  std::vector<float> AcquireBuffer();

  /// Blocks until every submitted batch has been sorted and drained.
  /// Returns the drain failure Status (sticky) if the drain thread has died,
  /// or kDeadlineExceeded when the configured drain deadline elapses first.
  core::Status WaitIdle();

  /// Snapshot of the wait/overlap accounting. Call after WaitIdle() for a
  /// consistent picture.
  PipelineWaitStats stats() const;

  int num_workers() const { return static_cast<int>(sorters_.size()); }
  int max_batches_in_flight() const { return max_in_flight_; }

 private:
  struct PendingBatch {
    std::uint64_t seq = 0;
    std::vector<float> data;
    double enqueued_at = 0;
  };
  struct SortedBatch {
    std::vector<float> data;
    sort::SortRunInfo run;
    std::uint64_t quarantine_mask = 0;
    double ready_at = 0;
    bool occupied = false;  // ring-slot validity (reorder buffer)
  };

  void WorkerLoop(int worker_index);
  void DrainLoop();

  const std::uint64_t window_size_;
  const std::vector<sort::Sorter*> sorters_;
  const DrainFn drain_;
  obs::TraceRecorder* const trace_;
  const std::string trace_label_;
  obs::FlightRecorder* const flight_;
  const double drain_deadline_seconds_;
  const std::function<unsigned(int)> queue_stall_hook_;
  int max_in_flight_ = 0;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;     // in_flight_ dropped below the cap
  std::condition_variable work_ready_;    // pending ring non-empty (or stopping)
  std::condition_variable sorted_ready_;  // reorder buffer advanced (or stopping)
  std::condition_variable idle_;          // a batch finished draining

  bool stop_ = false;
  // First drain failure (sticky). While non-OK the drain thread is gone:
  // Submit()/WaitIdle() return it instead of waiting on progress that will
  // never come (the ISSUE's forever-block bug).
  core::Status failed_;
  int in_flight_ = 0;
  std::uint64_t next_submit_seq_ = 0;
  std::uint64_t next_drain_seq_ = 0;

  // Submit queue: fixed ring of max_in_flight_ slots (the in-flight cap
  // bounds its population), consumed FIFO by the workers.
  std::vector<PendingBatch> pending_ring_;
  std::size_t pending_head_ = 0;
  std::size_t pending_count_ = 0;

  // Reorder buffer: slot seq % max_in_flight_ holds batch seq. The in-flight
  // cap keeps outstanding sequence numbers within one ring revolution, so a
  // slot is always free when a worker stores into it.
  std::vector<SortedBatch> sorted_ring_;

  // Storage of drained batches, recycled to the ingest thread (bounded by
  // the in-flight cap plus the one buffer the ingest thread is filling).
  std::vector<std::vector<float>> free_buffers_;

  // Per-worker window-span scratch for SortRuns (reused across batches).
  std::vector<std::vector<std::span<float>>> window_scratch_;

  PipelineWaitStats stats_;

  std::vector<std::thread> workers_;
  std::thread drain_thread_;
};

}  // namespace streamgpu::stream

#endif  // STREAMGPU_STREAM_PIPELINE_H_
