// Window buffering for per-element stream ingestion.
//
// The window-based algorithms of §3.2 consume the stream in fixed-size
// windows; the GPU path additionally buffers four windows at a time so they
// can ride the four color channels of one texture (§4.1). WindowBatcher
// implements exactly that staging discipline.

#ifndef STREAMGPU_STREAM_WINDOW_BUFFER_H_
#define STREAMGPU_STREAM_WINDOW_BUFFER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace streamgpu::stream {

/// Accumulates stream elements into fixed-size windows and releases them in
/// batches of up to `batch_windows` (4 for the GPU path, 1 for CPU paths).
class WindowBatcher {
 public:
  WindowBatcher(std::uint64_t window_size, int batch_windows)
      : window_size_(window_size), batch_windows_(batch_windows) {
    STREAMGPU_CHECK(window_size >= 1);
    STREAMGPU_CHECK(batch_windows >= 1);
    buffer_.reserve(window_size * static_cast<std::uint64_t>(batch_windows));
  }

  /// Adds one element. Returns true when a full batch is ready (the caller
  /// should then consume TakeWindows()).
  bool Push(float value) {
    buffer_.push_back(value);
    return buffer_.size() ==
           window_size_ * static_cast<std::uint64_t>(batch_windows_);
  }

  /// Views of the buffered windows (the final one may be partial). The spans
  /// point into internal storage: consume them, then call Clear().
  std::vector<std::span<float>> Windows() {
    std::vector<std::span<float>> out;
    for (std::size_t off = 0; off < buffer_.size(); off += window_size_) {
      const std::size_t len = std::min<std::size_t>(window_size_, buffer_.size() - off);
      out.emplace_back(buffer_.data() + off, len);
    }
    return out;
  }

  /// Discards the buffered elements after they have been consumed.
  void Clear() { buffer_.clear(); }

  /// Moves the buffered elements out (leaving the batcher empty), for
  /// handing a whole batch to a SortPipeline without copying. `replacement`
  /// becomes the new staging storage — pass a recycled buffer (e.g. from
  /// SortPipeline::AcquireBuffer()) and the steady-state ingest loop never
  /// allocates; the default grows a fresh buffer.
  std::vector<float> TakeBuffer(std::vector<float>&& replacement = {}) {
    std::vector<float> out = std::move(buffer_);
    buffer_ = std::move(replacement);
    buffer_.clear();
    buffer_.reserve(window_size_ * static_cast<std::uint64_t>(batch_windows_));
    return out;
  }

  bool empty() const { return buffer_.empty(); }
  std::uint64_t window_size() const { return window_size_; }
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::uint64_t window_size_;
  int batch_windows_;
  std::vector<float> buffer_;
};

}  // namespace streamgpu::stream

#endif  // STREAMGPU_STREAM_WINDOW_BUFFER_H_
