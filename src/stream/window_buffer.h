// Window buffering for per-element stream ingestion.
//
// The window-based algorithms of §3.2 consume the stream in fixed-size
// windows; the GPU path additionally buffers four windows at a time so they
// can ride the four color channels of one texture (§4.1). WindowBatcher
// implements exactly that staging discipline.

#ifndef STREAMGPU_STREAM_WINDOW_BUFFER_H_
#define STREAMGPU_STREAM_WINDOW_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace streamgpu::stream {

/// Accumulates stream elements into fixed-size windows and releases them in
/// batches of up to `batch_windows` (4 for the GPU path, 1 for CPU paths).
class WindowBatcher {
 public:
  /// `lazy_reserve` defers the batch-capacity reservation to the first
  /// element: a registered-but-idle stream (service::StreamService keeps up
  /// to 100k of them) then costs an empty vector instead of a full batch
  /// buffer. The default reserves eagerly, preserving the estimators'
  /// allocation profile.
  WindowBatcher(std::uint64_t window_size, int batch_windows,
                bool lazy_reserve = false)
      : window_size_(window_size), batch_windows_(batch_windows) {
    STREAMGPU_CHECK(window_size >= 1);
    STREAMGPU_CHECK(batch_windows >= 1);
    if (!lazy_reserve) buffer_.reserve(capacity());
  }

  /// Adds one element. Returns true when a full batch is ready (the caller
  /// should then consume TakeWindows()).
  bool Push(float value) {
    buffer_.push_back(value);
    return buffer_.size() == capacity();
  }

  /// Bulk-ingest fast path: extends the buffer by up to `max_elements`
  /// (bounded by the space left in the current batch) and returns the
  /// writable span of the newly claimed slots — the caller copies (or
  /// quantizes) stream elements straight into batch storage instead of
  /// pushing one at a time. Check full() afterwards; steady state performs
  /// no allocation (capacity is reserved up front, or on the first claim
  /// when lazily constructed).
  std::span<float> Claim(std::size_t max_elements) {
    const std::size_t cap = capacity();
    if (buffer_.capacity() < cap) buffer_.reserve(cap);
    const std::size_t take = std::min(max_elements, cap - buffer_.size());
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + take);
    return {buffer_.data() + old_size, take};
  }

  /// True when the current batch is complete (the caller should consume
  /// Windows() or TakeBuffer()).
  bool full() const { return buffer_.size() == capacity(); }

  /// Views of the buffered windows (the final one may be partial). The spans
  /// point into internal storage: consume them, then call Clear().
  std::vector<std::span<float>> Windows() {
    std::vector<std::span<float>> out;
    for (std::size_t off = 0; off < buffer_.size(); off += window_size_) {
      const std::size_t len = std::min<std::size_t>(window_size_, buffer_.size() - off);
      out.emplace_back(buffer_.data() + off, len);
    }
    return out;
  }

  /// Discards the buffered elements after they have been consumed.
  void Clear() { buffer_.clear(); }

  /// Moves the buffered elements out (leaving the batcher empty), for
  /// handing a whole batch to a SortPipeline without copying. `replacement`
  /// becomes the new staging storage — pass a recycled buffer (e.g. from
  /// SortPipeline::AcquireBuffer()) and the steady-state ingest loop never
  /// allocates; the default grows a fresh buffer.
  std::vector<float> TakeBuffer(std::vector<float>&& replacement = {}) {
    std::vector<float> out = std::move(buffer_);
    buffer_ = std::move(replacement);
    buffer_.clear();
    buffer_.reserve(capacity());
    return out;
  }

  bool empty() const { return buffer_.empty(); }

  /// Read-only view of the buffered elements, for callers that copy them
  /// into other storage (service shard chunks) instead of taking the buffer.
  std::span<const float> contents() const { return buffer_; }

  std::uint64_t window_size() const { return window_size_; }
  int batch_windows() const { return batch_windows_; }
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t capacity() const {
    return window_size_ * static_cast<std::uint64_t>(batch_windows_);
  }

  std::uint64_t window_size_;
  int batch_windows_;
  std::vector<float> buffer_;
};

}  // namespace streamgpu::stream

#endif  // STREAMGPU_STREAM_WINDOW_BUFFER_H_
