// Steady-state allocation audit of the ingest pipeline.
//
// The zero-allocation window path (docs/ARCHITECTURE.md, "Buffer recycling")
// promises that once the rings and pools are warm, the per-window loop —
// WindowBatcher staging, SortPipeline submit/sort/reorder/drain, sorter
// scratch, simulated-device storage — performs no heap allocations at all.
// This binary overrides global operator new/delete with a counting hook and
// holds the pipeline to that promise: warm up, snapshot the counter, stream
// several more full batches through every stage, and require the counter not
// to move.
//
// The hook lives in this dedicated test binary only (gtest itself allocates
// freely; the counter is sampled around the hot loop, not asserted globally).

// The counting hooks forward to malloc/free by construction, but when GCC
// inlines only the delete side at a use site it pairs the opaque
// `operator new` call with the visible `std::free` and reports a spurious
// new/free mismatch. Silence that diagnostic for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/options.h"
#include "core/quantile_estimator.h"
#include "core/status.h"
#include "gpu/device.h"
#include "hwmodel/hardware_profiles.h"
#include "sort/cpu_sort.h"
#include "sort/pbsn_gpu.h"
#include "stream/generator.h"
#include "stream/pipeline.h"
#include "stream/window_buffer.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting allocator hooks. Sized/aligned variants forward here.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace streamgpu {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::uint64_t AllocCount() { return g_allocations.load(std::memory_order_relaxed); }

// The full estimator stack: ingest -> batcher -> pipeline (2 GPU workers)
// -> sorted-batch drain into the quantile summary. After `warmup_batches`
// batches, additional batches must not allocate anywhere in the loop.
TEST(AllocTest, SteadyStatePipelineLoopIsAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizers intercept operator new";

  core::Options options;
  options.epsilon = 0.01;
  options.backend = core::Backend::kGpuPbsn;
  options.window_size = 1 << 10;
  options.num_sort_workers = 2;
  core::QuantileEstimator estimator(options);

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniformReal, .seed = 7});
  // One batch = batch_windows (4) windows of window_size elements.
  const std::size_t batch_elements = static_cast<std::size_t>(options.window_size) * 4;
  const auto data = gen.Take(batch_elements * 24);

  // Warm-up: fills the rings, the recycled-buffer pool, every worker's
  // sorter scratch and simulated-device arena, and the summary's node pools.
  // No Flush here — it would finalize the estimator (Flush() is terminal);
  // the warm-up is a whole number of batches, so nothing stays buffered, and
  // the query below synchronizes with the pipeline so every in-flight buffer
  // is back in the recycle pool before the counter snapshot.
  std::size_t i = 0;
  for (; i < batch_elements * 16; ++i) estimator.Observe(data[i]);
  (void)estimator.summary_size();

  const std::uint64_t before = AllocCount();
  for (; i < data.size(); ++i) estimator.Observe(data[i]);
  estimator.Flush();
  const std::uint64_t after = AllocCount();

  // The GK sketch layer legitimately allocates per window: FromSorted builds
  // a fresh summary (~10 node/tuple allocations at epsilon 0.01) that the
  // whole-stream structure then absorbs. That is algorithmic state growth,
  // not pipeline machinery — the pipeline itself is held to exactly zero by
  // the tests below. The bound here (~12 per window, 32 windows streamed)
  // still catches the old per-window buffer churn, which added several
  // hundred float-vector allocations at this window count.
  EXPECT_LE(after - before, 12u * 32u) << "per-window allocations in the estimator loop";
}

// The pipeline in isolation (no summary structures): strictly zero
// allocations per steady-state batch.
TEST(AllocTest, SortPipelineAloneIsAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizers intercept operator new";

  constexpr std::uint64_t kWindow = 1 << 10;
  constexpr int kWindowsPerBatch = 4;
  constexpr std::size_t kBatchElements = kWindow * kWindowsPerBatch;

  sort::StdSortSorter sorter_a(hwmodel::kPentium4_3400);
  sort::StdSortSorter sorter_b(hwmodel::kPentium4_3400);
  std::uint64_t drained = 0;
  stream::PipelineConfig config;
  config.window_size = kWindow;
  config.max_batches_in_flight = 4;
  stream::SortPipeline pipeline(
      config, {&sorter_a, &sorter_b},
      [&drained](std::vector<float>&& data, const sort::SortRunInfo&,
                 std::uint64_t) {
        drained += data.size();  // read-only drain; storage stays recyclable
        return streamgpu::core::Status::Ok();
      });

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniformReal, .seed = 11});
  stream::WindowBatcher batcher(kWindow, kWindowsPerBatch);

  auto stream_batches = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      const auto data = gen.Take(kBatchElements);
      for (float v : data) {
        if (batcher.Push(v)) {
          pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
        }
      }
    }
    pipeline.WaitIdle();
  };

  stream_batches(12);  // warm-up: rings, pool, worker scratch, sorter scratch

  // gen.Take above allocates; measure only the ingest->drain loop.
  std::vector<std::vector<float>> prepared;
  for (int b = 0; b < 16; ++b) prepared.push_back(gen.Take(kBatchElements));

  const std::uint64_t before = AllocCount();
  for (const auto& data : prepared) {
    for (float v : data) {
      if (batcher.Push(v)) {
        pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
      }
    }
  }
  pipeline.WaitIdle();
  const std::uint64_t after = AllocCount();

  EXPECT_EQ(after - before, 0u) << "steady-state pipeline loop allocated";
  EXPECT_EQ(drained, kBatchElements * 28);
}

// Same strict-zero contract, with the simulated-GPU sorters: covers the
// device texture/framebuffer arena, the sorter's staging plane, and the
// rasterizer's per-thread scratch on top of the pipeline rings.
TEST(AllocTest, GpuSortPipelineIsAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "sanitizers intercept operator new";

  constexpr std::uint64_t kWindow = 1 << 10;
  constexpr int kWindowsPerBatch = 4;
  constexpr std::size_t kBatchElements = kWindow * kWindowsPerBatch;

  gpu::GpuDevice device_a;
  gpu::GpuDevice device_b;
  sort::PbsnOptions opt;
  opt.format = gpu::Format::kFloat16;
  sort::PbsnGpuSorter sorter_a(&device_a, hwmodel::kGeForce6800Ultra,
                               hwmodel::kPentium4_3400, opt);
  sort::PbsnGpuSorter sorter_b(&device_b, hwmodel::kGeForce6800Ultra,
                               hwmodel::kPentium4_3400, opt);
  std::uint64_t drained = 0;
  stream::PipelineConfig config;
  config.window_size = kWindow;
  config.max_batches_in_flight = 4;
  stream::SortPipeline pipeline(
      config, {&sorter_a, &sorter_b},
      [&drained](std::vector<float>&& data, const sort::SortRunInfo&,
                 std::uint64_t) {
        drained += data.size();
        return streamgpu::core::Status::Ok();
      });

  stream::StreamGenerator gen(
      {.distribution = stream::Distribution::kUniformReal, .seed = 13});
  stream::WindowBatcher batcher(kWindow, kWindowsPerBatch);

  for (int b = 0; b < 12; ++b) {  // warm-up
    const auto data = gen.Take(kBatchElements);
    for (float v : data) {
      if (batcher.Push(v)) {
        pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
      }
    }
  }
  pipeline.WaitIdle();

  std::vector<std::vector<float>> prepared;
  for (int b = 0; b < 16; ++b) prepared.push_back(gen.Take(kBatchElements));

  const std::uint64_t before = AllocCount();
  for (const auto& data : prepared) {
    for (float v : data) {
      if (batcher.Push(v)) {
        pipeline.Submit(batcher.TakeBuffer(pipeline.AcquireBuffer()));
      }
    }
  }
  pipeline.WaitIdle();
  const std::uint64_t after = AllocCount();

  EXPECT_EQ(after - before, 0u) << "steady-state GPU sort pipeline allocated";
  EXPECT_EQ(drained, kBatchElements * 28);
}

}  // namespace
}  // namespace streamgpu
