// Tests for the additional baselines: sticky sampling (probabilistic
// frequency, [32]) and the adaptive single-element GK01 quantile summary.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/exact.h"
#include "sketch/gk_adaptive.h"
#include "sketch/sticky_sampling.h"

namespace streamgpu::sketch {
namespace {

std::vector<float> ZipfStream(std::size_t n, int domain, unsigned seed) {
  std::vector<double> cdf(domain);
  double total = 0;
  for (int r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(r + 1.0, 1.2);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(0, 1);
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(std::lower_bound(cdf.begin(), cdf.end(), uni(rng)) -
                           cdf.begin());
  }
  return out;
}

// --- Sticky sampling. ---

TEST(StickySamplingTest, NeverOvercounts) {
  const auto stream = ZipfStream(100000, 300, 41);
  StickySampling ss(0.002, 0.01, 0.01);
  ss.ObserveBatch(stream);
  const auto exact = ExactCounts(stream);
  for (const auto& [value, truth] : exact) {
    EXPECT_LE(ss.EstimateCount(value), truth) << value;
  }
}

TEST(StickySamplingTest, HeavyHittersUsuallyComplete) {
  // Probabilistic guarantee with delta = 1%: run several seeds and demand
  // at most one miss across all heavy hitters and seeds.
  std::size_t misses = 0;
  for (unsigned seed = 1; seed <= 5; ++seed) {
    const auto stream = ZipfStream(80000, 300, 100 + seed);
    StickySampling ss(0.002, 0.01, 0.01, seed);
    ss.ObserveBatch(stream);
    const auto reported = ss.HeavyHitters(0.01);
    for (const auto& [value, f] : ExactHeavyHitters(stream, 0.01)) {
      const bool found = std::any_of(reported.begin(), reported.end(),
                                     [v = value](const auto& r) { return r.first == v; });
      if (!found) ++misses;
    }
  }
  EXPECT_LE(misses, 1u);
}

TEST(StickySamplingTest, SpaceIndependentOfStreamLength) {
  StickySampling short_run(0.005, 0.02, 0.05, 3);
  StickySampling long_run(0.005, 0.02, 0.05, 3);
  short_run.ObserveBatch(ZipfStream(20000, 5000, 51));
  long_run.ObserveBatch(ZipfStream(200000, 5000, 52));
  // Expected space 2/eps * ln(1/(s*delta)) ~ 2770; allow 3x.
  const double cap = 3.0 * 2.0 / 0.005 * std::log(1.0 / (0.02 * 0.05));
  EXPECT_LE(static_cast<double>(short_run.summary_size()), cap);
  EXPECT_LE(static_cast<double>(long_run.summary_size()), cap);
  EXPECT_GT(long_run.sampling_rate(), short_run.sampling_rate());
}

TEST(StickySamplingTest, DeterministicForSeed) {
  const auto stream = ZipfStream(30000, 100, 53);
  StickySampling a(0.005, 0.02, 0.05, 7);
  StickySampling b(0.005, 0.02, 0.05, 7);
  a.ObserveBatch(stream);
  b.ObserveBatch(stream);
  EXPECT_EQ(a.summary_size(), b.summary_size());
  EXPECT_EQ(a.HeavyHitters(0.02), b.HeavyHitters(0.02));
}

TEST(StickySamplingTest, RejectsBadParameters) {
  EXPECT_DEATH(StickySampling(0.05, 0.01, 0.1), "support_floor > epsilon");
}

// --- Adaptive GK01. ---

struct GkAdaptiveCase {
  double epsilon;
  std::size_t n;
  bool sorted_input;
};

class GkAdaptiveProperty : public ::testing::TestWithParam<GkAdaptiveCase> {};

TEST_P(GkAdaptiveProperty, QuantilesWithinEpsilon) {
  const GkAdaptiveCase& p = GetParam();
  std::mt19937 rng(61);
  std::uniform_real_distribution<float> d(0.0f, 1e6f);
  std::vector<float> stream(p.n);
  for (float& v : stream) v = d(rng);
  if (p.sorted_input) std::sort(stream.begin(), stream.end());

  GkAdaptive gk(p.epsilon);
  gk.ObserveBatch(stream);
  ASSERT_EQ(gk.stream_length(), p.n);
  EXPECT_TRUE(gk.CheckInvariant());

  std::vector<float> sorted(stream);
  std::sort(sorted.begin(), sorted.end());
  const double allowed = p.epsilon * static_cast<double>(p.n) + 1;
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const float q = gk.Quantile(phi);
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), q);
    const double rank = static_cast<double>(it - sorted.begin()) + 1;
    const double target = std::ceil(phi * static_cast<double>(p.n));
    EXPECT_NEAR(rank, target, allowed) << "phi=" << phi;
  }
}

TEST_P(GkAdaptiveProperty, SpaceIsSublinear) {
  const GkAdaptiveCase& p = GetParam();
  std::mt19937 rng(62);
  std::uniform_real_distribution<float> d(0.0f, 1e6f);
  GkAdaptive gk(p.epsilon);
  for (std::size_t i = 0; i < p.n; ++i) gk.Observe(d(rng));
  // O((1/eps) log(eps n)) with a generous constant.
  const double cap =
      (1.0 / p.epsilon) *
      std::max(2.0, std::log2(p.epsilon * static_cast<double>(p.n) + 2.0)) * 12.0;
  EXPECT_LE(static_cast<double>(gk.summary_size()), cap);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkAdaptiveProperty,
    ::testing::Values(GkAdaptiveCase{0.01, 50000, false},
                      GkAdaptiveCase{0.01, 50000, true},
                      GkAdaptiveCase{0.05, 20000, false},
                      GkAdaptiveCase{0.001, 100000, false}),
    [](const ::testing::TestParamInfo<GkAdaptiveCase>& info) {
      return "eps" + std::to_string(static_cast<int>(1.0 / info.param.epsilon)) + "_n" +
             std::to_string(info.param.n) + (info.param.sorted_input ? "_sorted" : "_rand");
    });

TEST(GkAdaptiveTest, ExactOnTinyStreams) {
  GkAdaptive gk(0.1);
  for (float v : {5.0f, 1.0f, 3.0f}) gk.Observe(v);
  EXPECT_EQ(gk.Quantile(1.0 / 3.0), 1.0f);
  EXPECT_EQ(gk.Quantile(1.0), 5.0f);
}

TEST(GkAdaptiveTest, DuplicateHeavyStream) {
  GkAdaptive gk(0.01);
  std::mt19937 rng(63);
  std::uniform_int_distribution<int> d(0, 3);
  for (int i = 0; i < 50000; ++i) gk.Observe(static_cast<float>(d(rng)));
  EXPECT_TRUE(gk.CheckInvariant());
  const float median = gk.Quantile(0.5);
  EXPECT_TRUE(median == 1.0f || median == 2.0f);
}

TEST(GkAdaptiveTest, MinAndMaxAreExact) {
  GkAdaptive gk(0.05);
  std::mt19937 rng(64);
  std::uniform_real_distribution<float> d(0.0f, 100.0f);
  float mn = 1e9f;
  float mx = -1e9f;
  for (int i = 0; i < 10000; ++i) {
    const float v = d(rng);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    gk.Observe(v);
  }
  EXPECT_EQ(gk.QueryRank(1), mn);
  EXPECT_EQ(gk.QueryRank(10000), mx);
}

}  // namespace
}  // namespace streamgpu::sketch
